// Tests for the darknet space, the capture/aggregation engine, and the
// flowtuple stores.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "net/pcap.hpp"
#include "telescope/capture.hpp"
#include "telescope/darknet.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace iotscope::telescope {
namespace {

using net::Ipv4Address;
using util::AnalysisWindow;

TEST(DarknetSpace, DefaultIsSlashEight) {
  DarknetSpace space;
  EXPECT_EQ(space.address_count(), 1ULL << 24);
  EXPECT_TRUE(space.observes(Ipv4Address::from_octets(10, 1, 2, 3)));
  EXPECT_FALSE(space.observes(Ipv4Address::from_octets(11, 1, 2, 3)));
}

TEST(DarknetSpace, RandomAddressesStayInside) {
  DarknetSpace space(net::Ipv4Prefix(Ipv4Address::from_octets(10, 4, 0, 0), 16));
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(space.observes(space.random_address(rng)));
  }
}

TEST(DarknetSpace, AddressAtWrapsAround) {
  DarknetSpace space(net::Ipv4Prefix(Ipv4Address::from_octets(10, 0, 0, 0), 30));
  EXPECT_EQ(space.address_at(0), Ipv4Address::from_octets(10, 0, 0, 0));
  EXPECT_EQ(space.address_at(5), Ipv4Address::from_octets(10, 0, 0, 1));
}

class CaptureTest : public ::testing::Test {
 protected:
  std::vector<net::FlowBatch> hours_;
  DarknetSpace space_;
  TelescopeCapture capture_{space_, [this](net::FlowBatch&& batch) {
                              hours_.push_back(std::move(batch));
                            }};
  const Ipv4Address src_ = Ipv4Address::from_octets(93, 184, 216, 34);
  const Ipv4Address dark_ = Ipv4Address::from_octets(10, 1, 2, 3);
};

TEST_F(CaptureTest, AggregatesIdenticalKeysIntoOneFlow) {
  const auto ts = AnalysisWindow::start() + 10;
  for (int i = 0; i < 5; ++i) {
    capture_.ingest(net::make_tcp_syn(ts + i, src_, dark_, 40000, 23));
  }
  capture_.finish();
  ASSERT_EQ(hours_.size(), 1u);
  ASSERT_EQ(hours_[0].size(), 1u);
  EXPECT_EQ(hours_[0].pkt_count[0], 5u);
  EXPECT_EQ(capture_.stats().packets_observed, 5u);
  EXPECT_EQ(capture_.stats().flows_emitted, 1u);
}

TEST_F(CaptureTest, DistinctKeysStaySeparate) {
  const auto ts = AnalysisWindow::start();
  capture_.ingest(net::make_tcp_syn(ts, src_, dark_, 40000, 23));
  capture_.ingest(net::make_tcp_syn(ts, src_, dark_, 40000, 2323));
  capture_.ingest(net::make_udp(ts, src_, dark_, 40000, 23));
  capture_.finish();
  ASSERT_EQ(hours_.size(), 1u);
  EXPECT_EQ(hours_[0].size(), 3u);
}

TEST_F(CaptureTest, DropsPacketsOutsideDarkSpace) {
  const auto outside = Ipv4Address::from_octets(8, 8, 8, 8);
  capture_.ingest(net::make_tcp_syn(AnalysisWindow::start(), src_, outside,
                                    40000, 23));
  capture_.finish();
  EXPECT_EQ(capture_.stats().packets_dropped, 1u);
  EXPECT_EQ(capture_.stats().packets_observed, 0u);
  EXPECT_TRUE(hours_.empty());
}

TEST_F(CaptureTest, DropsOutOfWindowTimestampsInsteadOfClamping) {
  // Regression: pre-window and post-window packets used to be clamped
  // into hours 0 and 142, corrupting both edges of every hourly series.
  capture_.ingest(net::make_tcp_syn(AnalysisWindow::start() - 1, src_, dark_,
                                    40000, 23));
  capture_.ingest(net::make_tcp_syn(AnalysisWindow::end(), src_, dark_,
                                    40001, 23));
  capture_.ingest(net::make_tcp_syn(AnalysisWindow::end() + 12345, src_,
                                    dark_, 40002, 23));
  capture_.ingest(net::make_tcp_syn(AnalysisWindow::start() + 30, src_, dark_,
                                    40003, 23));
  capture_.finish();
  EXPECT_EQ(capture_.stats().out_of_window, 3u);
  EXPECT_EQ(capture_.stats().packets_observed, 1u);
  ASSERT_EQ(hours_.size(), 1u);
  EXPECT_EQ(hours_[0].interval, 0);
  EXPECT_EQ(hours_[0].total_packets(), 1u);
}

TEST_F(CaptureTest, RotatesHourlyInOrderIncludingGaps) {
  capture_.ingest(net::make_tcp_syn(AnalysisWindow::interval_start(0), src_,
                                    dark_, 1, 23));
  capture_.ingest(net::make_tcp_syn(AnalysisWindow::interval_start(3) + 5,
                                    src_, dark_, 2, 23));
  capture_.finish();
  // Hours 0..3 are all emitted (1 and 2 empty) so interval indexing holds.
  ASSERT_EQ(hours_.size(), 4u);
  EXPECT_EQ(hours_[0].interval, 0);
  EXPECT_EQ(hours_[0].size(), 1u);
  EXPECT_TRUE(hours_[1].empty());
  EXPECT_TRUE(hours_[2].empty());
  EXPECT_EQ(hours_[3].interval, 3);
  EXPECT_EQ(hours_[3].start_time, AnalysisWindow::interval_start(3));
  EXPECT_EQ(capture_.stats().hours_rotated, 4);
}

TEST_F(CaptureTest, FinishIsIdempotentAndIngestAfterFinishThrows) {
  capture_.ingest(net::make_tcp_syn(AnalysisWindow::start(), src_, dark_, 1, 23));
  capture_.finish();
  capture_.finish();
  EXPECT_EQ(hours_.size(), 1u);
  EXPECT_THROW(capture_.ingest(net::make_tcp_syn(AnalysisWindow::start(),
                                                 src_, dark_, 1, 23)),
               std::logic_error);
}

TEST(Capture, EmptySinkRejected) {
  EXPECT_THROW(TelescopeCapture(DarknetSpace(), nullptr),
               std::invalid_argument);
}

TEST(Capture, PcapFedCaptureMatchesDirectFeed) {
  // Property: packets -> pcap -> read -> capture gives identical flows to
  // feeding the packets directly (the real-tap ingestion path).
  util::Rng rng(9);
  DarknetSpace space;
  std::vector<net::PacketRecord> packets;
  for (int i = 0; i < 300; ++i) {
    packets.push_back(net::make_tcp_syn(
        AnalysisWindow::start() + static_cast<long>(rng.uniform(0, 3599)),
        Ipv4Address(static_cast<std::uint32_t>(rng.next())),
        space.random_address(rng), static_cast<net::Port>(rng.uniform(1, 65535)),
        23));
  }
  std::sort(packets.begin(), packets.end(),
            [](const net::PacketRecord& a, const net::PacketRecord& b) {
              return a.timestamp < b.timestamp;
            });

  util::TempDir dir;
  net::write_pcap_file(dir.path() / "t.pcap", packets);
  const auto replayed = net::read_pcap_file(dir.path() / "t.pcap");

  auto run = [&space](const std::vector<net::PacketRecord>& input) {
    std::vector<net::FlowBatch> out;
    TelescopeCapture capture(space, [&out](net::FlowBatch&& batch) {
      out.push_back(std::move(batch));
    });
    for (const auto& p : input) capture.ingest(p);
    capture.finish();
    return out;
  };
  const auto direct = run(packets);
  const auto via_pcap = run(replayed);
  ASSERT_EQ(direct.size(), via_pcap.size());
  for (std::size_t h = 0; h < direct.size(); ++h) {
    EXPECT_EQ(direct[h].total_packets(), via_pcap[h].total_packets());
    EXPECT_EQ(direct[h].size(), via_pcap[h].size());
    // Identical ingest order must reproduce the exact emission, column
    // for column (the accumulator's iteration is deterministic).
    EXPECT_TRUE(direct[h].same_records(via_pcap[h]));
  }
}

TEST(FlowTupleStore, PutGetIterate) {
  util::TempDir dir;
  FlowTupleStore store(dir.path() / "flows");
  for (const int interval : {5, 1, 9}) {
    net::HourlyFlows flows;
    flows.interval = interval;
    flows.start_time = AnalysisWindow::interval_start(interval);
    net::FlowTuple t;
    t.src = Ipv4Address(interval);
    t.packet_count = static_cast<std::uint64_t>(interval) * 10;
    flows.records.push_back(t);
    store.put(flows);
  }
  EXPECT_EQ(store.intervals(), (std::vector<int>{1, 5, 9}));
  EXPECT_FALSE(store.get(2).has_value());
  EXPECT_FALSE(store.get_batch(2).has_value());
  const auto five = store.get(5);
  ASSERT_TRUE(five.has_value());
  EXPECT_EQ(five->records[0].packet_count, 50u);
  // The columnar load sees the same file, record for record.
  const auto five_batch = store.get_batch(5);
  ASSERT_TRUE(five_batch.has_value());
  EXPECT_TRUE(five_batch->same_records(net::FlowBatch::from_rows(*five)));

  std::vector<int> visited;
  store.for_each([&visited](const net::FlowBatch& batch) {
    visited.push_back(batch.interval);
  });
  EXPECT_EQ(visited, (std::vector<int>{1, 5, 9}));
}

TEST(FlowTupleStore, IntervalsSkipStrayAndMalformedFileNames) {
  util::TempDir dir;
  FlowTupleStore store(dir.path() / "flows");
  net::HourlyFlows flows;
  flows.interval = 3;
  store.put(flows);
  // Stray files in the store directory must be ignored, not crash
  // interval discovery. "flowtuple-abcd.ift" in particular has the right
  // shape but non-digit interval characters — std::stoi used to throw
  // std::invalid_argument out of intervals() on it.
  for (const char* stray :
       {"flowtuple-abcd.ift", "flowtuple-00a1.ift", "flowtuple-....ift",
        "flowtuple-12345.ift", "flowtuple-001.ift", "notes.txt",
        "flowtuple-0042.bak"}) {
    util::write_file((dir.path() / "flows") / stray, "junk");
  }
  EXPECT_EQ(store.intervals(), (std::vector<int>{3}));
}

TEST(FlowTupleStore, PrefetchingIterationMatchesSerialOrder) {
  util::TempDir dir;
  FlowTupleStore store(dir.path() / "flows");
  for (int interval = 0; interval < 12; ++interval) {
    net::HourlyFlows flows;
    flows.interval = interval;
    flows.start_time = AnalysisWindow::interval_start(interval);
    net::FlowTuple t;
    t.src = Ipv4Address(static_cast<std::uint32_t>(interval));
    t.packet_count = static_cast<std::uint64_t>(interval) + 1;
    flows.records.push_back(t);
    store.put(flows);
  }
  for (const std::size_t prefetch : {std::size_t{0}, std::size_t{1},
                                     std::size_t{2}, std::size_t{32}}) {
    std::vector<int> visited;
    store.for_each(
        [&visited](const net::FlowBatch& batch) {
          visited.push_back(batch.interval);
        },
        prefetch);
    std::vector<int> expected(12);
    for (int i = 0; i < 12; ++i) expected[static_cast<std::size_t>(i)] = i;
    EXPECT_EQ(visited, expected) << "prefetch=" << prefetch;
  }
}

TEST(FlowTupleStore, PrefetchingIterationPropagatesVisitorException) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  for (int interval = 0; interval < 6; ++interval) {
    net::HourlyFlows flows;
    flows.interval = interval;
    store.put(flows);
  }
  int seen = 0;
  EXPECT_THROW(store.for_each(
                   [&seen](const net::FlowBatch&) {
                     if (++seen == 3) throw std::runtime_error("boom");
                   },
                   2),
               std::runtime_error);
  EXPECT_EQ(seen, 3);
}

TEST(FlowTupleStore, PrefetchingIterationPropagatesDecodeError) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  net::HourlyFlows flows;
  flows.interval = 4;
  store.put(flows);
  // Corrupt the stored file's magic: the background reader's decode
  // failure must surface on the calling thread.
  util::write_file(dir.path() / net::FlowTupleCodec::file_name(4),
                   "not a flowtuple file");
  EXPECT_THROW(store.for_each([](const net::FlowBatch&) {}, 2),
               util::IoError);
}

TEST(FlowTupleStore, OverwritesExistingHour) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  net::HourlyFlows flows;
  flows.interval = 3;
  store.put(flows);
  net::FlowTuple t;
  t.packet_count = 7;
  flows.records.push_back(t);
  store.put(flows);
  EXPECT_EQ(store.get(3)->records.size(), 1u);
}

TEST(FlowTupleStore, BatchPutWritesIdenticalBytesToRowPut) {
  // put(FlowBatch) and put(HourlyFlows) must produce the same file for
  // the same records — the on-disk format is layout-agnostic.
  util::TempDir dir;
  util::Rng rng(11);
  net::HourlyFlows flows;
  flows.interval = 7;
  flows.start_time = AnalysisWindow::interval_start(7);
  for (int i = 0; i < 200; ++i) {
    net::FlowTuple t;
    t.src = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    t.dst = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    t.src_port = static_cast<net::Port>(rng.uniform(0, 65535));
    t.dst_port = static_cast<net::Port>(rng.uniform(0, 65535));
    t.protocol = i % 2 ? net::Protocol::Tcp : net::Protocol::Udp;
    t.ttl = static_cast<std::uint8_t>(rng.uniform(1, 255));
    t.tcp_flags = static_cast<std::uint8_t>(rng.uniform(0, 255));
    t.ip_length = static_cast<std::uint16_t>(rng.uniform(20, 1500));
    t.packet_count = rng.uniform(1, 1000);
    flows.records.push_back(t);
  }
  FlowTupleStore rows_store(dir.path() / "rows");
  FlowTupleStore batch_store(dir.path() / "batch");
  rows_store.put(flows);
  batch_store.put(net::FlowBatch::from_rows(flows));
  const auto name = net::FlowTupleCodec::file_name(7);
  EXPECT_EQ(util::read_file(dir.path() / "rows" / name),
            util::read_file(dir.path() / "batch" / name));
}

TEST(FlowTupleStore, AtomicPublishLeavesNoTempResidue) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  net::HourlyFlows flows;
  flows.interval = 11;
  store.put(flows);
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(),
              net::FlowTupleCodec::file_name(11));
  }
  EXPECT_EQ(entries, 1u);
}

TEST(FlowTupleStore, ConcurrentPutNeverExposesATornFile) {
  // Rotation safety for the streaming study: while a writer repeatedly
  // rewrites an hour (growing it each time), a reader polling get_batch
  // must always decode a complete file — some full version of the hour,
  // never a torn prefix (which would surface as an IoError from the
  // codec, or as a record count no complete version ever had).
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  constexpr int kVersions = 60;
  constexpr std::size_t kRecordsPerVersion = 400;

  std::atomic<bool> done{false};
  std::thread writer([&] {
    net::HourlyFlows flows;
    flows.interval = 7;
    flows.start_time = AnalysisWindow::interval_start(7);
    for (int v = 1; v <= kVersions; ++v) {
      for (std::size_t r = 0; r < kRecordsPerVersion; ++r) {
        net::FlowTuple t;
        t.src = Ipv4Address(static_cast<std::uint32_t>(v * 100000 + r));
        t.packet_count = static_cast<std::uint64_t>(v);
        flows.records.push_back(t);
      }
      store.put(flows);
    }
    done.store(true);
  });

  std::size_t reads = 0;
  while (!done.load()) {
    std::optional<net::FlowBatch> batch;
    ASSERT_NO_THROW(batch = store.get_batch(7)) << "torn file decoded";
    if (!batch) continue;  // not yet published
    // Every complete version holds a multiple of kRecordsPerVersion
    // records; a torn read would land in between.
    EXPECT_EQ(batch->size() % kRecordsPerVersion, 0u);
    EXPECT_GT(batch->size(), 0u);
    ++reads;
  }
  writer.join();
  EXPECT_GT(reads, 0u);
  const auto final_batch = store.get_batch(7);
  ASSERT_TRUE(final_batch.has_value());
  EXPECT_EQ(final_batch->size(),
            static_cast<std::size_t>(kVersions) * kRecordsPerVersion);
}

TEST(MemoryFlowStore, KeepsHoursSortedAndCounts) {
  MemoryFlowStore store;
  for (const int interval : {7, 2, 4}) {
    net::HourlyFlows flows;
    flows.interval = interval;
    net::FlowTuple t;
    t.packet_count = 3;
    flows.records.push_back(t);
    store.put(std::move(flows));
  }
  ASSERT_EQ(store.hours().size(), 3u);
  EXPECT_EQ(store.hours()[0].interval, 2);
  EXPECT_EQ(store.hours()[2].interval, 7);
  EXPECT_EQ(store.total_packets(), 9u);
}

}  // namespace
}  // namespace iotscope::telescope
