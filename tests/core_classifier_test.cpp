// Exhaustive tests of the darknet traffic taxonomy.
#include "core/classifier.hpp"

#include <gtest/gtest.h>

namespace iotscope::core {
namespace {

net::FlowTuple tcp_flow(std::uint8_t flags) {
  net::FlowTuple t;
  t.protocol = net::Protocol::Tcp;
  t.tcp_flags = flags;
  return t;
}

net::FlowTuple icmp_flow(net::IcmpType type) {
  net::FlowTuple t;
  t.protocol = net::Protocol::Icmp;
  t.src_port = static_cast<net::Port>(type);
  return t;
}

struct TcpCase {
  std::uint8_t flags;
  FlowClass expected;
};

class TcpTaxonomyTest : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpTaxonomyTest, ClassifiesFlagCombination) {
  const auto& param = GetParam();
  EXPECT_EQ(classify(tcp_flow(param.flags)), param.expected)
      << net::tcp_flags_to_string(param.flags);
}

INSTANTIATE_TEST_SUITE_P(
    FlagCombos, TcpTaxonomyTest,
    ::testing::Values(
        TcpCase{net::kSyn, FlowClass::TcpScan},
        TcpCase{net::kSyn | net::kPsh, FlowClass::TcpScan},
        TcpCase{net::kSyn | net::kUrg, FlowClass::TcpScan},
        TcpCase{net::kSyn | net::kAck, FlowClass::TcpBackscatter},
        TcpCase{net::kRst, FlowClass::TcpBackscatter},
        TcpCase{net::kRst | net::kAck, FlowClass::TcpBackscatter},
        TcpCase{net::kSyn | net::kRst, FlowClass::TcpBackscatter},
        TcpCase{net::kAck, FlowClass::TcpOther},
        TcpCase{net::kAck | net::kPsh, FlowClass::TcpOther},
        TcpCase{net::kFin | net::kAck, FlowClass::TcpOther},
        TcpCase{net::kSyn | net::kFin, FlowClass::TcpOther},  // anomalous
        TcpCase{0, FlowClass::TcpOther}));

TEST(Taxonomy, UdpAlwaysUdp) {
  net::FlowTuple t;
  t.protocol = net::Protocol::Udp;
  t.dst_port = 37547;
  EXPECT_EQ(classify(t), FlowClass::Udp);
}

struct IcmpCase {
  net::IcmpType type;
  FlowClass expected;
};

class IcmpTaxonomyTest : public ::testing::TestWithParam<IcmpCase> {};

TEST_P(IcmpTaxonomyTest, ClassifiesIcmpType) {
  const auto& param = GetParam();
  EXPECT_EQ(classify(icmp_flow(param.type)), param.expected)
      << net::to_string(param.type);
}

INSTANTIATE_TEST_SUITE_P(
    Types, IcmpTaxonomyTest,
    ::testing::Values(
        IcmpCase{net::IcmpType::EchoRequest, FlowClass::IcmpScan},
        IcmpCase{net::IcmpType::EchoReply, FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::DestinationUnreachable,
                 FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::SourceQuench, FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::Redirect, FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::TimeExceeded, FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::ParameterProblem, FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::TimestampReply, FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::InformationReply, FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::AddressMaskReply, FlowClass::IcmpBackscatter},
        IcmpCase{net::IcmpType::TimestampRequest, FlowClass::IcmpOther},
        IcmpCase{net::IcmpType::InformationRequest, FlowClass::IcmpOther},
        IcmpCase{net::IcmpType::AddressMaskRequest, FlowClass::IcmpOther}));

TEST(Taxonomy, StrictOptionsNarrowBackscatter) {
  TaxonomyOptions strict;
  strict.full_icmp_reply_family = false;
  strict.rst_counts_as_backscatter = false;

  EXPECT_EQ(classify(tcp_flow(net::kRst), strict), FlowClass::TcpOther);
  EXPECT_EQ(classify(tcp_flow(net::kSyn | net::kAck), strict),
            FlowClass::TcpBackscatter);  // SYN-ACK always backscatter
  EXPECT_EQ(classify(icmp_flow(net::IcmpType::EchoReply), strict),
            FlowClass::IcmpBackscatter);
  EXPECT_EQ(classify(icmp_flow(net::IcmpType::TimeExceeded), strict),
            FlowClass::IcmpOther);  // outside the strict pair
}

TEST(Taxonomy, ClassPredicatesAndNames) {
  EXPECT_TRUE(is_scanning(FlowClass::TcpScan));
  EXPECT_TRUE(is_scanning(FlowClass::IcmpScan));
  EXPECT_FALSE(is_scanning(FlowClass::Udp));
  EXPECT_TRUE(is_backscatter(FlowClass::TcpBackscatter));
  EXPECT_TRUE(is_backscatter(FlowClass::IcmpBackscatter));
  EXPECT_FALSE(is_backscatter(FlowClass::TcpScan));
  EXPECT_STREQ(to_string(FlowClass::TcpScan), "TCP scanning");
  EXPECT_STREQ(to_string(FlowClass::Udp), "UDP");
}

}  // namespace
}  // namespace iotscope::core
