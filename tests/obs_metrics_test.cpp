// Unit and concurrency coverage for the obs metrics registry, plus the
// end-to-end observability guarantees: the metrics JSON parses and
// covers every pipeline stage, stage times reconcile with wall time,
// and enabling metrics never changes a pipeline report.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "core/iotscope.hpp"
#include "core/report_text.hpp"
#include "obs/metrics.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "workload/synth.hpp"

namespace iotscope::obs {
namespace {

// ------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker: enough to assert the
// --metrics-out document is well-formed without an external dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_lit();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------- basics

TEST(ObsMetricsTest, CounterAggregatesStripesAtReadTime) {
  auto& counter = Registry::instance().counter("test.counter.basic");
  const auto before = counter.value();
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), before + 42);
}

TEST(ObsMetricsTest, GaugeTracksValueAndHighWaterMark) {
  auto& gauge = Registry::instance().gauge("test.gauge.basic");
  gauge.reset();
  gauge.set(3);
  gauge.set(7);
  gauge.set(2);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max(), 7);
}

TEST(ObsMetricsTest, StageRecordsCallsTotalsAndHistogram) {
  auto& stage = Registry::instance().stage("test.stage.basic");
  stage.reset();
  stage.record_ns(100);
  stage.record_ns(1000);
  stage.record_ns(1000000);
  EXPECT_EQ(stage.calls(), 3u);
  EXPECT_EQ(stage.total_ns(), 1001100u);
  EXPECT_EQ(stage.max_ns(), 1000000u);
  // p50 bucket upper bound must cover the median sample (1000ns) without
  // reaching the max sample.
  EXPECT_GE(stage.percentile_ns(0.50), 1000u);
  EXPECT_LT(stage.percentile_ns(0.50), 1000000u);
  EXPECT_GE(stage.percentile_ns(0.99), 1000000u);
}

TEST(ObsMetricsTest, ScopedTimerRecordsElapsedTime) {
  auto& stage = Registry::instance().stage("test.stage.timer");
  stage.reset();
  {
    ScopedTimer timer(stage);
  }
  EXPECT_EQ(stage.calls(), 1u);
}

TEST(ObsMetricsTest, DisabledCollectionDropsWritesAndReenables) {
  auto& counter = Registry::instance().counter("test.counter.disabled");
  auto& stage = Registry::instance().stage("test.stage.disabled");
  counter.reset();
  stage.reset();
  set_enabled(false);
  counter.add(100);
  stage.record_ns(5);
  {
    ScopedTimer timer(stage);
  }
  set_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(stage.calls(), 0u);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
}

TEST(ObsMetricsTest, RegistryReturnsStableHandles) {
  auto& a = Registry::instance().counter("test.counter.stable");
  auto& b = Registry::instance().counter("test.counter.stable");
  EXPECT_EQ(&a, &b);
}

// -------------------------------------------------------- concurrency

TEST(ObsMetricsTest, ConcurrentWritersWithSnapshotsStayExact) {
  // N writer threads hammer a shared counter, gauge, and stage while a
  // reader snapshots in a loop — the TSan target for the registry. The
  // final aggregate must be exact.
  auto& counter = Registry::instance().counter("test.counter.concurrent");
  auto& gauge = Registry::instance().gauge("test.gauge.concurrent");
  auto& stage = Registry::instance().stage("test.stage.concurrent");
  counter.reset();
  gauge.reset();
  stage.reset();

  constexpr int kWriters = 8;
  constexpr std::uint64_t kPerWriter = 50000;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!done.load()) {
      const auto snap = Registry::instance().snapshot();
      const auto* sample = snap.counter("test.counter.concurrent");
      ASSERT_NE(sample, nullptr);
      // Monotone non-decreasing while writers only add.
      EXPECT_GE(sample->value, last);
      last = sample->value;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        counter.add(1);
        if (i % 1024 == 0) {
          gauge.set(static_cast<std::int64_t>(i));
          stage.record_ns(i + static_cast<std::uint64_t>(w));
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  reader.join();

  EXPECT_EQ(counter.value(), kWriters * kPerWriter);
  // Each writer records on i % 1024 == 0, i.e. ceil(kPerWriter/1024) times.
  EXPECT_EQ(stage.calls(), kWriters * ((kPerWriter + 1023) / 1024));
}

// ------------------------------------------------- end-to-end pipeline

workload::ScenarioConfig tiny_config() {
  workload::ScenarioConfig config;
  config.inventory_scale = 0.004;
  config.traffic_scale = 0.0008;
  config.noise_ratio = 0.05;
  return config;
}

const workload::Scenario& tiny_scenario() {
  static const workload::Scenario instance =
      workload::build_scenario(tiny_config());
  return instance;
}

const std::vector<net::FlowBatch>& tiny_hours() {
  static const std::vector<net::FlowBatch> instance = [] {
    std::vector<net::FlowBatch> out;
    telescope::TelescopeCapture capture(
        telescope::DarknetSpace(tiny_config().darknet),
        [&out](net::FlowBatch&& batch) { out.push_back(std::move(batch)); });
    workload::synthesize_into(tiny_scenario(), tiny_config(), capture);
    return out;
  }();
  return instance;
}

std::string run_and_render(unsigned threads) {
  core::PipelineOptions options;
  options.threads = threads;
  core::AnalysisPipeline pipeline(tiny_scenario().inventory, options);
  for (const auto& h : tiny_hours()) pipeline.observe(h);
  const auto report = pipeline.finalize();
  const auto character = core::characterize(report, tiny_scenario().inventory);
  return core::render_inference_report(report, character,
                                       tiny_scenario().inventory) +
         core::render_traffic_report(report, tiny_scenario().inventory);
}

TEST(ObsMetricsTest, MetricsCollectionNeverChangesTheReport) {
  // The acceptance bar: reports are byte-identical with metrics enabled
  // vs disabled, at several thread counts.
  set_enabled(false);
  const std::string off_1 = run_and_render(1);
  const std::string off_4 = run_and_render(4);
  set_enabled(true);
  const std::string on_1 = run_and_render(1);
  const std::string on_4 = run_and_render(4);
  EXPECT_EQ(on_1, off_1);
  EXPECT_EQ(on_4, off_4);
  EXPECT_EQ(on_1, on_4);
}

TEST(ObsMetricsTest, PipelineRunCoversAllStagesAndReconcilesWallTime) {
  Registry::instance().reset();

  // Disk round-trip through the prefetching store so decode, observe,
  // fan-in, and finalize all run.
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  for (const auto& h : tiny_hours()) store.put(h);

  core::PipelineOptions options;
  options.threads = 2;
  core::AnalysisPipeline pipeline(tiny_scenario().inventory, options);
  const auto wall_start = now_ns();
  store.for_each(
      [&pipeline](const net::FlowBatch& batch) { pipeline.observe(batch); },
      /*prefetch=*/2);
  pipeline.finalize();
  const auto wall_ns = now_ns() - wall_start;

  const auto snap = Registry::instance().snapshot();
  const std::size_t hour_count = tiny_hours().size();
  for (const char* name :
       {"store.decode", "pipeline.observe", "pipeline.classify",
        "pipeline.observe.shard", "pipeline.partition", "pipeline.fanin",
        "pipeline.finalize", "pipeline.merge", "threadpool.run_morsels"}) {
    SCOPED_TRACE(name);
    const auto* stage = snap.stage(name);
    ASSERT_NE(stage, nullptr);
    EXPECT_GT(stage->calls, 0u);
    EXPECT_GT(stage->total_ns, 0u);
  }
  EXPECT_EQ(snap.stage("pipeline.observe")->calls, hour_count);
  EXPECT_EQ(snap.stage("pipeline.finalize")->calls, 1u);
  EXPECT_EQ(snap.stage("store.decode")->calls, hour_count);

  // Stage times must reconcile with wall time: every coordinator-side
  // stage fits inside the wall clock, and the phases nested inside
  // observe() cannot exceed it.
  const auto total = [&](const char* name) {
    return snap.stage(name)->total_ns;
  };
  EXPECT_LE(total("pipeline.observe"), wall_ns);
  EXPECT_LE(total("pipeline.finalize"), wall_ns);
  EXPECT_LE(total("pipeline.partition") + total("pipeline.fanin"),
            total("pipeline.observe"));
  // The decode thread overlaps analysis but is itself bounded by wall.
  EXPECT_LE(total("store.decode"), wall_ns);
  // Shard tasks run on `threads` lanes at most.
  EXPECT_LE(total("pipeline.observe.shard"),
            wall_ns * static_cast<std::uint64_t>(options.threads));

  // Counters carried the volume. Every record arrived through the
  // columnar path, so the batch counters match the record counters and
  // the byte counter is exactly records x on-disk record size.
  EXPECT_EQ(snap.counter("pipeline.hours")->value, hour_count);
  EXPECT_GT(snap.counter("pipeline.records")->value, 0u);
  EXPECT_EQ(snap.counter("pipeline.batch.records")->value,
            snap.counter("pipeline.records")->value);
  EXPECT_EQ(snap.counter("pipeline.batch.bytes")->value,
            snap.counter("pipeline.records")->value *
                net::FlowTupleCodec::kRecordBytes);
  // Prefetch was on, so the resident-batch gauge saw a high-water mark.
  const auto* mem = snap.gauge("pipeline.batch.mem_peak");
  ASSERT_NE(mem, nullptr);
  EXPECT_GT(mem->max, 0);

  // The stealing scheduler (the default) accounted for every morsel it
  // dispatched, and the partition pass published a skew gauge: max/mean
  // bucket records x 100 is at least 100 (an even split) and at most
  // threads x 100 (everything in one bucket).
  const auto* claimed = snap.counter("pipeline.morsel.claimed");
  const auto* stolen = snap.counter("pipeline.morsel.stolen");
  ASSERT_NE(claimed, nullptr);
  ASSERT_NE(stolen, nullptr);
  EXPECT_GT(claimed->value + stolen->value, 0u);
  const auto* skew = snap.gauge("pipeline.shard.skew");
  ASSERT_NE(skew, nullptr);
  EXPECT_GE(skew->max, 100);
  EXPECT_LE(skew->max, static_cast<std::int64_t>(options.threads) * 100);
  EXPECT_EQ(snap.stage("pipeline.merge")->calls, 1u);
}

TEST(ObsMetricsTest, JsonSnapshotIsWellFormedAndCoversTheStages) {
  // Each gtest case may run in its own process (ctest discovery), so
  // produce the full stage set here: disk store -> pipeline -> finalize.
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  for (const auto& h : tiny_hours()) store.put(h);
  core::AnalysisPipeline pipeline(tiny_scenario().inventory);
  store.for_each(
      [&pipeline](const net::FlowBatch& batch) { pipeline.observe(batch); });
  pipeline.finalize();

  const auto snap = Registry::instance().snapshot();
  const std::string json = render_json(snap);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  for (const char* key :
       {"\"counters\"", "\"gauges\"", "\"stages\"", "\"pipeline.observe\"",
        "\"pipeline.fanin\"", "\"pipeline.finalize\"", "\"store.decode\"",
        "\"calls\"", "\"total_ns\"", "\"p99_ns\"", "\"buckets\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  // The human rendering exists and mentions the stages too.
  const std::string text = render_text(snap);
  EXPECT_NE(text.find("pipeline.observe"), std::string::npos);
  EXPECT_NE(text.find("stages:"), std::string::npos);
}

TEST(ObsMetricsTest, RenderedJsonEscapesStrings) {
  Snapshot snap;
  snap.counters.push_back({"weird\"name\\with\nescapes", 1});
  const std::string json = render_json(snap);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\\\"name\\\\"), std::string::npos);
}

}  // namespace
}  // namespace iotscope::obs
