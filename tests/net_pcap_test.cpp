#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/checksum.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace iotscope::net {
namespace {

PacketRecord random_packet(util::Rng& rng) {
  const auto src = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  const auto dst = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  const auto ts = static_cast<util::UnixTime>(rng.uniform(0, 1u << 30));
  switch (rng.uniform(0, 3)) {
    case 0:
      return make_tcp_syn(ts, src, dst,
                          static_cast<Port>(rng.uniform(1024, 65535)),
                          static_cast<Port>(rng.uniform(1, 65535)),
                          static_cast<std::uint8_t>(rng.uniform(1, 255)));
    case 1:
      return make_tcp_syn_ack(ts, src, dst,
                              static_cast<Port>(rng.uniform(1, 65535)),
                              static_cast<Port>(rng.uniform(1024, 65535)));
    case 2:
      return make_udp(ts, src, dst, static_cast<Port>(rng.uniform(1, 65535)),
                      static_cast<Port>(rng.uniform(1, 65535)),
                      static_cast<std::uint16_t>(rng.uniform(0, 512)));
    default:
      return make_icmp(ts, src, dst,
                       rng.chance(0.5) ? IcmpType::EchoRequest
                                       : IcmpType::EchoReply,
                       static_cast<std::uint8_t>(rng.uniform(0, 3)));
  }
}

/// Emits a capture containing one hand-crafted LINKTYPE_RAW frame so tests
/// can produce shapes the writer itself refuses to (bad lengths, short
/// transport headers). Only the fields the reader inspects are populated.
std::string capture_with_raw_frame(std::uint8_t proto,
                                   std::uint16_t frame_len,
                                   std::uint16_t ip_length_field,
                                   std::uint8_t version_ihl = 0x45) {
  std::stringstream ss;
  PcapWriter writer(ss);  // global header
  util::write_u32(ss, 100);        // ts_sec
  util::write_u32(ss, 0);          // ts_usec
  util::write_u32(ss, frame_len);  // incl_len
  util::write_u32(ss, frame_len);  // orig_len
  std::vector<std::uint8_t> buf(frame_len, 0);
  buf[0] = version_ihl;
  buf[2] = static_cast<std::uint8_t>(ip_length_field >> 8);
  buf[3] = static_cast<std::uint8_t>(ip_length_field);
  buf[9] = proto;
  ss.write(reinterpret_cast<const char*>(buf.data()), frame_len);
  return ss.str();
}

void expect_frame_rejected(const std::string& blob) {
  std::istringstream is(blob);
  PcapReader reader(is);
  PacketRecord p;
  EXPECT_THROW(reader.next(p), util::IoError);
}

TEST(Pcap, RoundTripProperty) {
  util::Rng rng(7);
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 500; ++i) packets.push_back(random_packet(rng));

  std::stringstream ss;
  PcapWriter writer(ss);
  for (const auto& p : packets) writer.write(p);
  EXPECT_EQ(writer.packets_written(), packets.size());

  PcapReader reader(ss);
  PacketRecord decoded;
  std::size_t i = 0;
  while (reader.next(decoded)) {
    ASSERT_LT(i, packets.size());
    const auto& original = packets[i++];
    EXPECT_EQ(decoded.src, original.src);
    EXPECT_EQ(decoded.dst, original.dst);
    EXPECT_EQ(decoded.protocol, original.protocol);
    EXPECT_EQ(decoded.ttl, original.ttl);
    EXPECT_EQ(decoded.timestamp, original.timestamp);
    if (original.is_icmp()) {
      EXPECT_EQ(decoded.icmp_type, original.icmp_type);
      EXPECT_EQ(decoded.icmp_code, original.icmp_code);
    } else {
      EXPECT_EQ(decoded.src_port, original.src_port);
      EXPECT_EQ(decoded.dst_port, original.dst_port);
    }
    if (original.is_tcp()) {
      EXPECT_EQ(decoded.tcp_flags, original.tcp_flags);
    }
  }
  EXPECT_EQ(i, packets.size());
}

TEST(Pcap, GlobalHeaderIsStandardLibpcap) {
  std::stringstream ss;
  PcapWriter writer(ss);
  const std::string header = ss.str();
  ASSERT_EQ(header.size(), 24u);  // classic pcap global header
  EXPECT_EQ(static_cast<unsigned char>(header[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(header[1]), 0xc3);
  EXPECT_EQ(static_cast<unsigned char>(header[2]), 0xb2);
  EXPECT_EQ(static_cast<unsigned char>(header[3]), 0xa1);
  EXPECT_EQ(static_cast<unsigned char>(header[20]), 101);  // LINKTYPE_RAW
}

TEST(Pcap, EmittedIpv4HeaderChecksumIsValid) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write(make_tcp_syn(1000, Ipv4Address::from_octets(1, 2, 3, 4),
                            Ipv4Address::from_octets(10, 9, 8, 7), 40000, 23));
  const std::string blob = ss.str();
  // Frame starts after 24-byte global header + 16-byte record header.
  const auto* frame =
      reinterpret_cast<const std::uint8_t*>(blob.data()) + 24 + 16;
  EXPECT_EQ(internet_checksum({frame, 20}), 0)
      << "IPv4 header checksum must verify to zero";
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream ss;
  util::write_u32(ss, 0x12345678);
  EXPECT_THROW(PcapReader reader(ss), util::IoError);
}

TEST(Pcap, RejectsNonRawLinkType) {
  std::stringstream ss;
  util::write_u32(ss, PcapWriter::kMagic);
  util::write_u16(ss, 2);
  util::write_u16(ss, 4);
  util::write_u32(ss, 0);
  util::write_u32(ss, 0);
  util::write_u32(ss, 65535);
  util::write_u32(ss, 1);  // LINKTYPE_ETHERNET
  EXPECT_THROW(PcapReader reader(ss), util::IoError);
}

TEST(Pcap, RejectsTruncatedFrame) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write(make_udp(0, Ipv4Address(1), Ipv4Address(2), 1, 2));
  std::string blob = ss.str();
  blob.resize(blob.size() - 5);
  std::istringstream truncated(blob);
  PcapReader reader(truncated);
  PacketRecord p;
  EXPECT_THROW(reader.next(p), util::IoError);
}

TEST(Pcap, CleanEofReturnsFalse) {
  std::stringstream ss;
  PcapWriter writer(ss);
  PcapReader reader(ss);
  PacketRecord p;
  EXPECT_FALSE(reader.next(p));
  EXPECT_FALSE(reader.next(p));  // repeated calls stay false
}

TEST(Pcap, Post2038TimestampRoundTrips) {
  // Regression: write() used to static_cast the 64-bit timestamp to
  // uint32 with no range check. Timestamps past 2038-01-19 (signed
  // 32-bit rollover) are legal pcap and must survive a round trip.
  std::stringstream ss;
  PcapWriter writer(ss);
  const util::UnixTime post2038 = 4000000000;  // 2096-10-02
  const util::UnixTime last_representable = 0xFFFFFFFF;  // 2106-02-07
  writer.write(make_udp(post2038, Ipv4Address(1), Ipv4Address(2), 53, 53));
  writer.write(
      make_icmp(last_representable, Ipv4Address(3), Ipv4Address(4),
                IcmpType::EchoRequest, 0));
  PcapReader reader(ss);
  PacketRecord p;
  ASSERT_TRUE(reader.next(p));
  EXPECT_EQ(p.timestamp, post2038);
  ASSERT_TRUE(reader.next(p));
  EXPECT_EQ(p.timestamp, last_representable);
  EXPECT_FALSE(reader.next(p));
}

TEST(Pcap, TimestampOutside32BitRangeThrowsInsteadOfWrapping) {
  std::stringstream ss;
  PcapWriter writer(ss);
  auto packet = make_udp(0, Ipv4Address(1), Ipv4Address(2), 1, 2);
  packet.timestamp = static_cast<util::UnixTime>(0xFFFFFFFF) + 1;  // 2106+
  EXPECT_THROW(writer.write(packet), util::IoError);
  packet.timestamp = -1;
  EXPECT_THROW(writer.write(packet), util::IoError);
  // Nothing but the global header may have been emitted for the
  // rejected packets.
  EXPECT_EQ(writer.packets_written(), 0u);
  EXPECT_EQ(ss.str().size(), 24u);
}

TEST(Pcap, RejectsIpLengthLargerThanCapturedFrame) {
  // The datagram claims 100 bytes but only 28 were captured; trusting
  // ip_length would read past the frame.
  expect_frame_rejected(capture_with_raw_frame(
      static_cast<std::uint8_t>(Protocol::Udp), /*frame_len=*/28,
      /*ip_length_field=*/100));
}

TEST(Pcap, RejectsIpLengthSmallerThanIpHeader) {
  expect_frame_rejected(capture_with_raw_frame(
      static_cast<std::uint8_t>(Protocol::Udp), /*frame_len=*/28,
      /*ip_length_field=*/8));
}

TEST(Pcap, RejectsIhlPastEndOfFrame) {
  // IHL of 15 words (60 bytes) in a 28-byte frame.
  expect_frame_rejected(capture_with_raw_frame(
      static_cast<std::uint8_t>(Protocol::Udp), /*frame_len=*/28,
      /*ip_length_field=*/28, /*version_ihl=*/0x4F));
}

TEST(Pcap, RejectsTcpFrameWithoutFullTcpHeader) {
  // 28 bytes holds the IP header plus only 8 of TCP's fixed 20: reading
  // flags at ihl+13 or checksum at ihl+16 would index off the end.
  expect_frame_rejected(capture_with_raw_frame(
      static_cast<std::uint8_t>(Protocol::Tcp), /*frame_len=*/28,
      /*ip_length_field=*/28));
}

TEST(Pcap, RejectsUdpFrameWithoutFullUdpHeader) {
  expect_frame_rejected(capture_with_raw_frame(
      static_cast<std::uint8_t>(Protocol::Udp), /*frame_len=*/24,
      /*ip_length_field=*/24));
}

TEST(Pcap, RejectsIcmpFrameWithoutTypeCodeChecksum) {
  expect_frame_rejected(capture_with_raw_frame(
      static_cast<std::uint8_t>(Protocol::Icmp), /*frame_len=*/22,
      /*ip_length_field=*/22));
}

TEST(Pcap, RejectsTransportTruncatedByIpLengthClaim) {
  // Frame buffer is long enough, but the datagram's own length claim
  // says the transport header isn't all datagram payload.
  expect_frame_rejected(capture_with_raw_frame(
      static_cast<std::uint8_t>(Protocol::Tcp), /*frame_len=*/40,
      /*ip_length_field=*/30));
}

TEST(Pcap, MinimalValidFramesOfEachProtocolStillParse) {
  // Guard against over-tightening: exactly ihl + minimum transport
  // header must be accepted for each protocol.
  struct Shape {
    std::uint8_t proto;
    std::uint16_t len;
  };
  for (const auto& s :
       {Shape{static_cast<std::uint8_t>(Protocol::Tcp), 40},
        Shape{static_cast<std::uint8_t>(Protocol::Udp), 28},
        Shape{static_cast<std::uint8_t>(Protocol::Icmp), 24}}) {
    std::istringstream is(capture_with_raw_frame(s.proto, s.len, s.len));
    PcapReader reader(is);
    PacketRecord p;
    ASSERT_TRUE(reader.next(p));
    EXPECT_EQ(static_cast<std::uint8_t>(p.protocol), s.proto);
    EXPECT_EQ(p.ip_length, s.len);
    EXPECT_FALSE(reader.next(p));
  }
}

TEST(Pcap, FileHelpersRoundTrip) {
  util::TempDir dir;
  util::Rng rng(8);
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 100; ++i) packets.push_back(random_packet(rng));
  const auto path = dir.path() / "capture.pcap";
  write_pcap_file(path, packets);
  const auto loaded = read_pcap_file(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].src, packets[i].src);
    EXPECT_EQ(loaded[i].protocol, packets[i].protocol);
  }
}

}  // namespace
}  // namespace iotscope::net
