#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/checksum.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace iotscope::net {
namespace {

PacketRecord random_packet(util::Rng& rng) {
  const auto src = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  const auto dst = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  const auto ts = static_cast<util::UnixTime>(rng.uniform(0, 1u << 30));
  switch (rng.uniform(0, 3)) {
    case 0:
      return make_tcp_syn(ts, src, dst,
                          static_cast<Port>(rng.uniform(1024, 65535)),
                          static_cast<Port>(rng.uniform(1, 65535)),
                          static_cast<std::uint8_t>(rng.uniform(1, 255)));
    case 1:
      return make_tcp_syn_ack(ts, src, dst,
                              static_cast<Port>(rng.uniform(1, 65535)),
                              static_cast<Port>(rng.uniform(1024, 65535)));
    case 2:
      return make_udp(ts, src, dst, static_cast<Port>(rng.uniform(1, 65535)),
                      static_cast<Port>(rng.uniform(1, 65535)),
                      static_cast<std::uint16_t>(rng.uniform(0, 512)));
    default:
      return make_icmp(ts, src, dst,
                       rng.chance(0.5) ? IcmpType::EchoRequest
                                       : IcmpType::EchoReply,
                       static_cast<std::uint8_t>(rng.uniform(0, 3)));
  }
}

TEST(Pcap, RoundTripProperty) {
  util::Rng rng(7);
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 500; ++i) packets.push_back(random_packet(rng));

  std::stringstream ss;
  PcapWriter writer(ss);
  for (const auto& p : packets) writer.write(p);
  EXPECT_EQ(writer.packets_written(), packets.size());

  PcapReader reader(ss);
  PacketRecord decoded;
  std::size_t i = 0;
  while (reader.next(decoded)) {
    ASSERT_LT(i, packets.size());
    const auto& original = packets[i++];
    EXPECT_EQ(decoded.src, original.src);
    EXPECT_EQ(decoded.dst, original.dst);
    EXPECT_EQ(decoded.protocol, original.protocol);
    EXPECT_EQ(decoded.ttl, original.ttl);
    EXPECT_EQ(decoded.timestamp, original.timestamp);
    if (original.is_icmp()) {
      EXPECT_EQ(decoded.icmp_type, original.icmp_type);
      EXPECT_EQ(decoded.icmp_code, original.icmp_code);
    } else {
      EXPECT_EQ(decoded.src_port, original.src_port);
      EXPECT_EQ(decoded.dst_port, original.dst_port);
    }
    if (original.is_tcp()) EXPECT_EQ(decoded.tcp_flags, original.tcp_flags);
  }
  EXPECT_EQ(i, packets.size());
}

TEST(Pcap, GlobalHeaderIsStandardLibpcap) {
  std::stringstream ss;
  PcapWriter writer(ss);
  const std::string header = ss.str();
  ASSERT_EQ(header.size(), 24u);  // classic pcap global header
  EXPECT_EQ(static_cast<unsigned char>(header[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(header[1]), 0xc3);
  EXPECT_EQ(static_cast<unsigned char>(header[2]), 0xb2);
  EXPECT_EQ(static_cast<unsigned char>(header[3]), 0xa1);
  EXPECT_EQ(static_cast<unsigned char>(header[20]), 101);  // LINKTYPE_RAW
}

TEST(Pcap, EmittedIpv4HeaderChecksumIsValid) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write(make_tcp_syn(1000, Ipv4Address::from_octets(1, 2, 3, 4),
                            Ipv4Address::from_octets(10, 9, 8, 7), 40000, 23));
  const std::string blob = ss.str();
  // Frame starts after 24-byte global header + 16-byte record header.
  const auto* frame =
      reinterpret_cast<const std::uint8_t*>(blob.data()) + 24 + 16;
  EXPECT_EQ(internet_checksum({frame, 20}), 0)
      << "IPv4 header checksum must verify to zero";
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream ss;
  util::write_u32(ss, 0x12345678);
  EXPECT_THROW(PcapReader reader(ss), util::IoError);
}

TEST(Pcap, RejectsNonRawLinkType) {
  std::stringstream ss;
  util::write_u32(ss, PcapWriter::kMagic);
  util::write_u16(ss, 2);
  util::write_u16(ss, 4);
  util::write_u32(ss, 0);
  util::write_u32(ss, 0);
  util::write_u32(ss, 65535);
  util::write_u32(ss, 1);  // LINKTYPE_ETHERNET
  EXPECT_THROW(PcapReader reader(ss), util::IoError);
}

TEST(Pcap, RejectsTruncatedFrame) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write(make_udp(0, Ipv4Address(1), Ipv4Address(2), 1, 2));
  std::string blob = ss.str();
  blob.resize(blob.size() - 5);
  std::istringstream truncated(blob);
  PcapReader reader(truncated);
  PacketRecord p;
  EXPECT_THROW(reader.next(p), util::IoError);
}

TEST(Pcap, CleanEofReturnsFalse) {
  std::stringstream ss;
  PcapWriter writer(ss);
  PcapReader reader(ss);
  PacketRecord p;
  EXPECT_FALSE(reader.next(p));
  EXPECT_FALSE(reader.next(p));  // repeated calls stay false
}

TEST(Pcap, FileHelpersRoundTrip) {
  util::TempDir dir;
  util::Rng rng(8);
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 100; ++i) packets.push_back(random_packet(rng));
  const auto path = dir.path() / "capture.pcap";
  write_pcap_file(path, packets);
  const auto loaded = read_pcap_file(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].src, packets[i].src);
    EXPECT_EQ(loaded[i].protocol, packets[i].protocol);
  }
}

}  // namespace
}  // namespace iotscope::net
