// Property tests pinning the columnar classifier (classify_tag /
// classify_batch) to the per-record reference implementation
// (classify()). The two are written independently; these sweeps are the
// only thing keeping them equal, so they cover the full TCP flag space,
// every ICMP type value (including ones outside the named enum), and
// both taxonomy-option variants.
#include "core/classifier.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/flow_batch.hpp"
#include "util/rng.hpp"

namespace iotscope::core {
namespace {

using net::Protocol;

/// The FlowTuple whose column projection is (proto, flags, type_port).
net::FlowTuple make_flow(Protocol proto, std::uint8_t tcp_flags,
                         net::Port src_port) {
  net::FlowTuple t;
  t.src = net::Ipv4Address(0x0A000001);
  t.dst = net::Ipv4Address(0x0A000002);
  t.src_port = src_port;  // carries the ICMP type (corsaro convention)
  t.dst_port = 23;
  t.protocol = proto;
  t.tcp_flags = tcp_flags;
  t.ttl = 64;
  t.ip_length = 40;
  t.packet_count = 1;
  return t;
}

const std::vector<TaxonomyOptions>& taxonomy_variants() {
  static const std::vector<TaxonomyOptions> variants = [] {
    std::vector<TaxonomyOptions> out;
    for (const bool full_family : {true, false}) {
      for (const bool rst_backscatter : {true, false}) {
        TaxonomyOptions o;
        o.full_icmp_reply_family = full_family;
        o.rst_counts_as_backscatter = rst_backscatter;
        out.push_back(o);
      }
    }
    return out;
  }();
  return variants;
}

TEST(ClassifierBatch, TagClassMatchesReferenceOverFullTcpFlagSpace) {
  for (const auto& options : taxonomy_variants()) {
    for (int flags = 0; flags < 256; ++flags) {
      const auto f = static_cast<std::uint8_t>(flags);
      const ClassTag tag = classify_tag(Protocol::Tcp, f, 0, options);
      EXPECT_EQ(tag_class(tag), classify(make_flow(Protocol::Tcp, f, 0), options))
          << "flags " << flags;
      // SYN subtag: exactly the SYN bit, independent of the class.
      EXPECT_EQ((tag & kTagTcpSyn) != 0, (f & net::kSyn) != 0)
          << "flags " << flags;
      EXPECT_EQ(tag & kTagIcmpEcho, 0) << "flags " << flags;
    }
  }
}

TEST(ClassifierBatch, TagClassMatchesReferenceOverAllIcmpTypes) {
  // Sweep every possible type byte, not just the named enum values —
  // the reply-family edge cases (Timestamp/Information/AddressMask
  // replies) flip class with full_icmp_reply_family, and unnamed types
  // must land in IcmpOther under both.
  for (const auto& options : taxonomy_variants()) {
    for (int type = 0; type < 256; ++type) {
      const auto port = static_cast<net::Port>(type);
      const ClassTag tag = classify_tag(Protocol::Icmp, 0, port, options);
      EXPECT_EQ(tag_class(tag),
                classify(make_flow(Protocol::Icmp, 0, port), options))
          << "icmp type " << type;
      const bool echo_family =
          type == static_cast<int>(net::IcmpType::EchoRequest) ||
          type == static_cast<int>(net::IcmpType::EchoReply);
      EXPECT_EQ((tag & kTagIcmpEcho) != 0, echo_family) << "icmp type " << type;
      EXPECT_EQ(tag & kTagTcpSyn, 0) << "icmp type " << type;
    }
  }
}

TEST(ClassifierBatch, UdpIsAlwaysUdpWithNoSubtags) {
  for (const auto& options : taxonomy_variants()) {
    for (int flags = 0; flags < 256; flags += 17) {
      const ClassTag tag = classify_tag(
          Protocol::Udp, static_cast<std::uint8_t>(flags), 53, options);
      EXPECT_EQ(tag_class(tag), FlowClass::Udp);
      EXPECT_EQ(tag & ~kTagClassMask, 0);
    }
  }
}

TEST(ClassifierBatch, RandomizedSweepMatchesReferenceRecordByRecord) {
  util::Rng rng(42);
  for (const auto& options : taxonomy_variants()) {
    for (int i = 0; i < 20000; ++i) {
      const auto r = rng.uniform(0, 2);
      const Protocol proto =
          r == 0 ? Protocol::Tcp : (r == 1 ? Protocol::Udp : Protocol::Icmp);
      const auto flags = static_cast<std::uint8_t>(rng.uniform(0, 255));
      const auto port = static_cast<net::Port>(rng.uniform(0, 65535));
      const ClassTag tag = classify_tag(proto, flags, port, options);
      EXPECT_EQ(tag_class(tag), classify(make_flow(proto, flags, port), options));
    }
  }
}

TEST(ClassifierBatch, ClassifyBatchEqualsPerRecordClassify) {
  // End-to-end column form: a randomized batch tagged in one pass must
  // agree with classify() applied to each reconstructed row.
  util::Rng rng(7);
  net::FlowBatch batch;
  batch.interval = 3;
  batch.start_time = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto r = rng.uniform(0, 2);
    net::FlowTuple t = make_flow(
        r == 0 ? Protocol::Tcp : (r == 1 ? Protocol::Udp : Protocol::Icmp),
        static_cast<std::uint8_t>(rng.uniform(0, 255)),
        static_cast<net::Port>(rng.uniform(0, 65535)));
    t.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    t.dst = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    t.dst_port = static_cast<net::Port>(rng.uniform(0, 65535));
    t.packet_count = rng.uniform(1, 1000);
    batch.push_back(t);
  }

  for (const auto& options : taxonomy_variants()) {
    std::vector<ClassTag> tags;
    classify_batch(batch, options, tags);
    ASSERT_EQ(tags.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(tag_class(tags[i]), classify(batch.row(i), options)) << i;
    }
  }

  // The in-place convenience writes the same tags into the column.
  classify_batch(batch);
  std::vector<ClassTag> expected;
  classify_batch(batch, TaxonomyOptions{}, expected);
  EXPECT_EQ(batch.class_tag, expected);
}

}  // namespace
}  // namespace iotscope::core
