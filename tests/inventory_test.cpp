// Tests for the catalogs, the device database, and the Shodan-style
// inventory synthesizer.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <unordered_map>

#include "inventory/catalog.hpp"
#include "inventory/database.hpp"
#include "inventory/generator.hpp"
#include "util/io.hpp"

namespace iotscope::inventory {
namespace {

// ---------------- catalog ----------------

TEST(Catalog, HasThirtyOneCpsProtocols) {
  EXPECT_EQ(Catalog::standard().cps_protocols().size(), 31u);
}

TEST(Catalog, CountryWeightsCoverFullMass) {
  double total = 0;
  for (const auto& c : Catalog::standard().countries()) {
    EXPECT_GE(c.deploy_weight, 0.0);
    EXPECT_GT(c.consumer_share, 0.0);
    EXPECT_LT(c.consumer_share, 1.0);
    total += c.deploy_weight;
  }
  EXPECT_NEAR(total, 100.0, 0.5);
}

TEST(Catalog, TopDeploymentCountriesMatchFig1a) {
  const auto& countries = Catalog::standard().countries();
  EXPECT_EQ(countries[0].name, "United States");
  EXPECT_NEAR(countries[0].deploy_weight, 25.0, 0.01);
  EXPECT_EQ(countries[1].name, "United Kingdom");
  EXPECT_EQ(countries[2].name, "Russian Federation");
  EXPECT_EQ(countries[3].name, "China");
}

TEST(Catalog, ConsumerMixesSumToOne) {
  const auto& catalog = Catalog::standard();
  double mix = 0;
  for (const double m : catalog.consumer_type_mix()) mix += m;
  EXPECT_NEAR(mix, 1.0, 1e-9);
  ASSERT_EQ(catalog.consumer_type_mix().size(),
            static_cast<std::size_t>(kConsumerTypeCount));
  ASSERT_EQ(catalog.consumer_type_propensity().size(),
            static_cast<std::size_t>(kConsumerTypeCount));
}

TEST(Catalog, LookupsRoundTripAndThrowOnUnknown) {
  const auto& catalog = Catalog::standard();
  const auto ru = catalog.country_id("Russian Federation");
  EXPECT_EQ(catalog.country_name(ru), "Russian Federation");
  const auto telvent = catalog.cps_protocol_id("Telvent OASyS DNA");
  EXPECT_EQ(catalog.cps_protocol_name(telvent), "Telvent OASyS DNA");
  EXPECT_THROW(catalog.country_id("Atlantis"), std::out_of_range);
  EXPECT_THROW(catalog.cps_protocol_id("NotAProtocol"), std::out_of_range);
}

TEST(Catalog, NamedIspsReferenceRealCountries) {
  const auto& catalog = Catalog::standard();
  for (const auto& isp : catalog.named_isps()) {
    EXPECT_NO_THROW(catalog.country_id(isp.country)) << isp.name;
    EXPECT_LE(isp.consumer_share, 1.0);
    EXPECT_LE(isp.cps_share, 1.0);
  }
}

TEST(Catalog, Table3ProtocolWeightsDescendForTop10) {
  const auto& protocols = Catalog::standard().cps_protocols();
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_GE(protocols[i - 1].weight, protocols[i].weight) << i;
  }
  EXPECT_NEAR(protocols[0].weight, 20.0, 0.01);  // Telvent OASyS DNA
}

// ---------------- database ----------------

TEST(Database, AddFindAndDuplicateRejection) {
  IoTDeviceDatabase db;
  DeviceRecord d;
  d.ip = net::Ipv4Address::from_octets(1, 2, 3, 4);
  d.category = DeviceCategory::Consumer;
  EXPECT_TRUE(db.add_device(d));
  EXPECT_FALSE(db.add_device(d));  // duplicate IP
  EXPECT_EQ(db.size(), 1u);
  ASSERT_NE(db.find(d.ip), nullptr);
  EXPECT_EQ(db.find(net::Ipv4Address::from_octets(4, 3, 2, 1)), nullptr);
}

TEST(Database, RealmCountsTrackAdds) {
  IoTDeviceDatabase db;
  for (int i = 0; i < 10; ++i) {
    DeviceRecord d;
    d.ip = net::Ipv4Address(static_cast<std::uint32_t>(100 + i));
    d.category = i < 4 ? DeviceCategory::Consumer : DeviceCategory::Cps;
    db.add_device(d);
  }
  EXPECT_EQ(db.consumer_count(), 4u);
  EXPECT_EQ(db.cps_count(), 6u);
}

TEST(Database, IspDeduplication) {
  IoTDeviceDatabase db;
  const auto a = db.add_isp("Rostelecom", 2);
  const auto b = db.add_isp("Rostelecom", 2);
  const auto c = db.add_isp("Rostelecom", 3);  // same name, other country
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(db.isps().size(), 2u);
}

TEST(Database, CsvRoundTrip) {
  util::TempDir dir;
  IoTDeviceDatabase db;
  const auto isp = db.add_isp("Test ISP", 5);
  DeviceRecord consumer;
  consumer.ip = net::Ipv4Address::from_octets(9, 8, 7, 6);
  consumer.category = DeviceCategory::Consumer;
  consumer.consumer_type = ConsumerType::IpCamera;
  consumer.country = 5;
  consumer.isp = isp;
  db.add_device(consumer);
  DeviceRecord cps;
  cps.ip = net::Ipv4Address::from_octets(9, 8, 7, 7);
  cps.category = DeviceCategory::Cps;
  cps.services = {0, 4, 7};
  cps.country = 5;
  cps.isp = isp;
  db.add_device(cps);

  const auto path = dir.path() / "inventory.csv";
  db.save_csv(path);
  const auto loaded = IoTDeviceDatabase::load_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  const auto* c = loaded.find(consumer.ip);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->consumer_type, ConsumerType::IpCamera);
  const auto* p = loaded.find(cps.ip);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->is_cps());
  EXPECT_EQ(p->services, (std::vector<CpsProtocolId>{0, 4, 7}));
  EXPECT_TRUE(p->supports(4));
  EXPECT_FALSE(p->supports(5));
  EXPECT_EQ(loaded.isp_name(p->isp), "Test ISP");
}

TEST(Database, LoadRejectsMalformedCsv) {
  util::TempDir dir;
  const auto path = dir.path() / "bad.csv";
  util::write_file(path, "not_a_header,zzz\n");
  EXPECT_THROW(IoTDeviceDatabase::load_csv(path), util::IoError);
  util::write_file(path, "isp_count,1\n");  // truncated
  EXPECT_THROW(IoTDeviceDatabase::load_csv(path), util::IoError);
}

TEST(Database, LoadRejectsBadNumericFieldsWithIoErrorNotStdExceptions) {
  // Every malformed numeric field must surface as util::IoError carrying
  // the line number and field name — raw std::stoul would instead leak
  // std::invalid_argument / std::out_of_range to the caller.
  util::TempDir dir;
  const auto path = dir.path() / "bad.csv";
  const auto expect_io_error = [&](const std::string& csv,
                                   const std::string& needle) {
    util::write_file(path, csv);
    try {
      IoTDeviceDatabase::load_csv(path);
      FAIL() << "expected util::IoError for: " << csv;
    } catch (const util::IoError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    } catch (const std::exception& e) {
      FAIL() << "non-IoError escaped (" << typeid(e).name()
             << "): " << e.what();
    }
  };
  // Non-numeric header count.
  expect_io_error("isp_count,abc\n", "isp_count");
  // Non-numeric ISP country (line 2).
  expect_io_error("isp_count,1\nAcme,xy\ndevice_count,0\n", "line 2");
  // Out-of-range consumer type (line 4).
  expect_io_error(
      "isp_count,1\nAcme,0\ndevice_count,1\n1.2.3.4,consumer,999,,0,0\n",
      "out-of-range");
  // Non-numeric service id.
  expect_io_error(
      "isp_count,1\nAcme,0\ndevice_count,1\n1.2.3.4,cps,0,3;x;7,0,0\n",
      "service id");
  // Overlong digit string (would overflow u64 silently in naive parsers).
  expect_io_error(
      "isp_count,1\nAcme,0\ndevice_count,1\n"
      "1.2.3.4,consumer,0,,0,999999999999999999999999\n",
      "isp id");
}

TEST(Database, FlatIndexMatchesUnorderedMapReference) {
  // Property test for the open-addressing flat index behind find():
  // randomized inventories of varying sizes, compared against a plain
  // std::unordered_map built from the same devices — identical hit set,
  // identical looked-up record, miss parity on perturbed keys.
  std::mt19937_64 rng(20260806);
  for (const std::size_t count : {0u, 1u, 2u, 15u, 16u, 17u, 1000u, 4096u}) {
    IoTDeviceDatabase db;
    std::unordered_map<std::uint32_t, std::size_t> reference;
    while (reference.size() < count) {
      const auto ip = static_cast<std::uint32_t>(rng());
      DeviceRecord d;
      d.ip = net::Ipv4Address(ip);
      d.country = static_cast<CountryId>(rng() % 50);
      if (db.add_device(d)) {
        reference.emplace(ip, db.size() - 1);
      } else {
        ASSERT_TRUE(reference.count(ip));
      }
    }
    ASSERT_EQ(db.size(), reference.size());
    for (const auto& [ip, index] : reference) {
      const auto* found = db.find(net::Ipv4Address(ip));
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found, &db.devices()[index]);
      // Perturbed keys must miss unless they collide with a real device.
      const std::uint32_t miss = ip ^ 0x80000001u;
      EXPECT_EQ(db.find(net::Ipv4Address(miss)) != nullptr,
                reference.count(miss) != 0);
    }
  }
}

TEST(Database, CountryCountMatchesSetReference) {
  std::mt19937_64 rng(42);
  IoTDeviceDatabase db;
  std::set<CountryId> reference;
  EXPECT_EQ(db.country_count(), 0u);
  for (int i = 0; i < 500; ++i) {
    DeviceRecord d;
    d.ip = net::Ipv4Address(static_cast<std::uint32_t>(i + 1));
    d.country = static_cast<CountryId>(rng() % 60);
    ASSERT_TRUE(db.add_device(d));
    reference.insert(d.country);
    ASSERT_EQ(db.country_count(), reference.size());
  }
}

// ---------------- generator ----------------

class GeneratorTest : public ::testing::Test {
 protected:
  static const IoTDeviceDatabase& db() {
    static const IoTDeviceDatabase instance = [] {
      SynthesisConfig config;
      config.device_count = 20000;
      config.seed = 1234;
      return synthesize_inventory(config);
    }();
    return instance;
  }
};

TEST_F(GeneratorTest, GeneratesRequestedCountWithUniqueIps) {
  EXPECT_EQ(db().size(), 20000u);
  std::set<std::uint32_t> ips;
  for (const auto& d : db().devices()) ips.insert(d.ip.value());
  EXPECT_EQ(ips.size(), db().size());
}

TEST_F(GeneratorTest, NoDeviceInsideDarknetOrReservedSpace) {
  for (const auto& d : db().devices()) {
    const auto o0 = d.ip.octet(0);
    EXPECT_NE(o0, 10) << d.ip.to_string();
    EXPECT_NE(o0, 0);
    EXPECT_NE(o0, 127);
    EXPECT_LT(o0, 224);
    EXPECT_FALSE(o0 == 192 && d.ip.octet(1) == 168) << d.ip.to_string();
  }
}

TEST_F(GeneratorTest, ConsumerShareNearPaperSplit) {
  // Paper: 181k consumer of 331k (54.7%).
  const double share = static_cast<double>(db().consumer_count()) /
                       static_cast<double>(db().size());
  EXPECT_NEAR(share, 0.55, 0.03);
}

TEST_F(GeneratorTest, UsMostDeployedAndNearQuarter) {
  const auto& catalog = db().catalog();
  std::vector<std::size_t> counts(catalog.countries().size(), 0);
  for (const auto& d : db().devices()) ++counts[d.country];
  const auto us = catalog.country_id("United States");
  const double us_share = static_cast<double>(counts[us]) /
                          static_cast<double>(db().size());
  EXPECT_NEAR(us_share, 0.25, 0.02);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (c != us) EXPECT_LE(counts[c], counts[us]);
  }
}

TEST_F(GeneratorTest, ConsumerTypeMixMatchesCatalog) {
  std::vector<std::size_t> counts(kConsumerTypeCount, 0);
  std::size_t consumer = 0;
  for (const auto& d : db().devices()) {
    if (!d.is_consumer()) continue;
    ++consumer;
    ++counts[static_cast<std::size_t>(d.consumer_type)];
  }
  const auto& mix = db().catalog().consumer_type_mix();
  for (int t = 0; t < kConsumerTypeCount; ++t) {
    const double measured = static_cast<double>(counts[static_cast<std::size_t>(t)]) /
                            static_cast<double>(consumer);
    EXPECT_NEAR(measured, mix[static_cast<std::size_t>(t)], 0.02) << t;
  }
}

TEST_F(GeneratorTest, CpsDevicesHaveSortedUniqueServices) {
  for (const auto& d : db().devices()) {
    if (d.is_consumer()) {
      EXPECT_TRUE(d.services.empty());
      continue;
    }
    ASSERT_GE(d.services.size(), 1u);
    for (std::size_t i = 1; i < d.services.size(); ++i) {
      EXPECT_LT(d.services[i - 1], d.services[i]);
    }
    for (const auto s : d.services) EXPECT_LT(s, 31);
  }
}

TEST_F(GeneratorTest, TelventIsMostSupportedProtocol) {
  std::vector<std::size_t> counts(31, 0);
  for (const auto& d : db().devices()) {
    for (const auto s : d.services) ++counts[s];
  }
  const auto telvent = db().catalog().cps_protocol_id("Telvent OASyS DNA");
  for (std::size_t p = 0; p < counts.size(); ++p) {
    EXPECT_LE(counts[p], counts[telvent]) << p;
  }
}

TEST(Generator, DeterministicInSeed) {
  SynthesisConfig config;
  config.device_count = 500;
  config.seed = 77;
  const auto a = synthesize_inventory(config);
  const auto b = synthesize_inventory(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.devices()[i].ip, b.devices()[i].ip);
    EXPECT_EQ(a.devices()[i].country, b.devices()[i].country);
    EXPECT_EQ(a.devices()[i].isp, b.devices()[i].isp);
  }
  config.seed = 78;
  const auto c = synthesize_inventory(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= !(a.devices()[i].ip == c.devices()[i].ip);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, RespectsCustomDarknetPrefix) {
  SynthesisConfig config;
  config.device_count = 2000;
  config.darknet =
      net::Ipv4Prefix(net::Ipv4Address::from_octets(44, 0, 0, 0), 8);
  const auto db = synthesize_inventory(config);
  for (const auto& d : db.devices()) {
    EXPECT_FALSE(config.darknet.contains(d.ip)) << d.ip.to_string();
  }
}

}  // namespace
}  // namespace iotscope::inventory
