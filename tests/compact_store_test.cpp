// FlowTupleStore over the compressed format: in-place compaction with
// round-trip verification, mixed ".ift"/".iftc" stores behaving
// identically through every read API, the predicated parallel scan(),
// rotation watching across formats, and the store.* obs counters.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "net/block_codec.hpp"
#include "net/flow_batch.hpp"
#include "net/flowtuple.hpp"
#include "obs/metrics.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace iotscope {
namespace {

namespace fs = std::filesystem;
using telescope::CompactOptions;
using telescope::FlowTupleStore;
using telescope::ScanOptions;
using telescope::StoreFormat;

net::FlowBatch make_batch(util::Rng& rng, int interval, std::size_t n = 700) {
  net::FlowBatch b;
  b.interval = interval;
  b.start_time = 1491955200 + interval * 3600;
  const std::size_t pool = std::max<std::size_t>(1, n / 10);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src_id = static_cast<std::uint32_t>(rng.uniform(0, pool - 1));
    b.src.push_back(net::Ipv4Address(0xC6120000u + src_id));
    b.dst.push_back(net::Ipv4Address(
        0x0A000000u | static_cast<std::uint32_t>(rng.next() & 0xFFFFFF)));
    b.src_port.push_back(static_cast<net::Port>(1024 + (rng.next() % 60000)));
    b.dst_port.push_back(static_cast<net::Port>(23 + (src_id % 4)));
    b.proto.push_back(src_id % 2 ? net::Protocol::Udp : net::Protocol::Tcp);
    b.ttl.push_back(static_cast<std::uint8_t>(64 + (src_id % 3)));
    b.tcp_flags.push_back(src_id % 2 ? std::uint8_t{0} : std::uint8_t{2});
    b.ip_len.push_back(static_cast<std::uint16_t>(40 + (src_id % 4)));
    b.pkt_count.push_back(1);
  }
  return b;
}

fs::path raw_file(const FlowTupleStore& s, int interval) {
  return s.directory() / net::FlowTupleCodec::file_name(interval);
}
fs::path compressed_file(const FlowTupleStore& s, int interval) {
  return s.directory() / net::CompressedFlowCodec::file_name(interval);
}

TEST(CompactStore, CompactConvertsVerifiesAndRemovesOriginals) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  util::Rng rng(1);
  std::vector<net::FlowBatch> batches;
  std::uint64_t records = 0;
  for (int h = 0; h < 4; ++h) {
    batches.push_back(make_batch(rng, h));
    store.put(batches.back());
    records += batches.back().size();
  }

  const auto stats = store.compact();
  EXPECT_EQ(stats.hours, 4u);
  EXPECT_EQ(stats.records, records);
  EXPECT_GT(stats.bytes_raw, stats.bytes_compressed);

  for (int h = 0; h < 4; ++h) {
    EXPECT_FALSE(fs::exists(raw_file(store, h)));
    EXPECT_TRUE(fs::exists(compressed_file(store, h)));
    const auto batch = store.get_batch(h);
    ASSERT_TRUE(batch.has_value());
    EXPECT_TRUE(batch->same_records(batches[static_cast<std::size_t>(h)]));
  }
  EXPECT_EQ(store.intervals(), (std::vector<int>{0, 1, 2, 3}));

  // A second compact finds nothing raw left to convert.
  EXPECT_EQ(store.compact().hours, 0u);
}

TEST(CompactStore, KeepUncompressedLeavesOriginalsBeside) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  util::Rng rng(2);
  const auto batch = make_batch(rng, 7);
  store.put(batch);

  CompactOptions options;
  options.keep_uncompressed = true;
  EXPECT_EQ(store.compact(options).hours, 1u);
  EXPECT_TRUE(fs::exists(raw_file(store, 7)));
  EXPECT_TRUE(fs::exists(compressed_file(store, 7)));
  // The hour appears once even though both formats hold it.
  EXPECT_EQ(store.intervals(), (std::vector<int>{7}));
  EXPECT_TRUE(store.get_batch(7)->same_records(batch));
}

TEST(CompactStore, CompactOnCorruptRawHourThrowsAndPreservesOriginal) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  util::Rng rng(3);
  store.put(make_batch(rng, 0));
  {
    std::ofstream out(raw_file(store, 0), std::ios::binary | std::ios::trunc);
    out << "not a flowtuple file";
  }
  EXPECT_THROW(store.compact(), util::IoError);
  EXPECT_TRUE(fs::exists(raw_file(store, 0)));
  EXPECT_FALSE(fs::exists(compressed_file(store, 0)));
}

TEST(CompactStore, CompressedWriteFormatWritesIftcDirectly) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  store.set_write_format(StoreFormat::Compressed, 256);
  util::Rng rng(4);
  const auto batch = make_batch(rng, 11);
  store.put(batch);

  EXPECT_TRUE(fs::exists(compressed_file(store, 11)));
  EXPECT_FALSE(fs::exists(raw_file(store, 11)));
  EXPECT_TRUE(store.get_batch(11)->same_records(batch));
  // Row-level get() decodes through the compressed file too.
  const auto hour = store.get(11);
  ASSERT_TRUE(hour.has_value());
  EXPECT_EQ(hour->records.size(), batch.size());
}

TEST(CompactStore, MixedStoreReadsBothFormatsInIntervalOrder) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  util::Rng rng(5);
  std::vector<net::FlowBatch> batches;
  for (int h = 0; h < 6; ++h) {
    if (h % 2 == 1) store.set_write_format(StoreFormat::Compressed);
    else store.set_write_format(StoreFormat::Raw);
    batches.push_back(make_batch(rng, h));
    store.put(batches.back());
  }
  EXPECT_EQ(store.intervals(), (std::vector<int>{0, 1, 2, 3, 4, 5}));

  std::vector<int> seen;
  store.for_each([&](const net::FlowBatch& b) {
    EXPECT_TRUE(b.same_records(batches[static_cast<std::size_t>(b.interval)]));
    seen.push_back(b.interval);
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(CompactStore, RotationWatcherAdmitsBothFormats) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  telescope::RotationWatcher watcher(store);
  EXPECT_TRUE(watcher.poll().empty());

  util::Rng rng(6);
  store.put(make_batch(rng, 0));  // raw
  store.set_write_format(StoreFormat::Compressed);
  store.put(make_batch(rng, 1));  // compressed
  EXPECT_EQ(watcher.poll(), (std::vector<int>{0, 1}));
  EXPECT_TRUE(watcher.poll().empty());

  store.put(make_batch(rng, 2));
  EXPECT_EQ(watcher.poll(), (std::vector<int>{2}));
}

TEST(CompactStore, ScanParallelReadersPreserveIntervalOrder) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  store.set_write_format(StoreFormat::Compressed);
  util::Rng rng(7);
  std::vector<net::FlowBatch> batches;
  for (int h = 0; h < 9; ++h) {
    batches.push_back(make_batch(rng, h, 400));
    store.put(batches.back());
  }
  for (const std::size_t readers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    std::vector<int> seen;
    ScanOptions options;
    options.readers = readers;
    options.prefetch = 2;
    store.scan(
        [&](const net::FlowBatch& b) {
          EXPECT_TRUE(
              b.same_records(batches[static_cast<std::size_t>(b.interval)]));
          seen.push_back(b.interval);
        },
        options);
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}))
        << "readers=" << readers;
  }
}

TEST(CompactStore, PredicatedScanEqualsRowFilterOnMixedStore) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  util::Rng rng(8);
  std::vector<net::FlowBatch> batches;
  for (int h = 0; h < 6; ++h) {
    store.set_write_format(h % 2 ? StoreFormat::Compressed : StoreFormat::Raw);
    batches.push_back(make_batch(rng, h, 500));
    store.put(batches.back());
  }

  net::BlockPredicate p;
  p.hour_min = 1;
  p.hour_max = 4;
  p.proto_mask = net::BlockPredicate::proto_bit(net::Protocol::Tcp);
  p.dst_port_min = 23;
  p.dst_port_max = 24;

  for (const std::size_t readers : {std::size_t{1}, std::size_t{3}}) {
    std::vector<int> seen;
    ScanOptions options;
    options.predicate = p;
    options.readers = readers;
    store.scan(
        [&](const net::FlowBatch& b) {
          net::FlowBatch expected;
          net::filter_batch(batches[static_cast<std::size_t>(b.interval)], p,
                            expected);
          EXPECT_TRUE(b.same_records(expected)) << "hour " << b.interval;
          seen.push_back(b.interval);
        },
        options);
    // Hours outside the window never surface (raw or compressed).
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4})) << "readers=" << readers;
  }
}

TEST(CompactStore, ScanPropagatesVisitorException) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  store.set_write_format(StoreFormat::Compressed);
  util::Rng rng(9);
  for (int h = 0; h < 6; ++h) store.put(make_batch(rng, h, 200));

  ScanOptions options;
  options.readers = 3;
  std::atomic<int> visited{0};
  EXPECT_THROW(store.scan(
                   [&](const net::FlowBatch&) {
                     if (++visited == 2) throw std::runtime_error("boom");
                   },
                   options),
               std::runtime_error);
  // The store is untouched; a fresh scan still works end to end.
  int count = 0;
  store.scan([&](const net::FlowBatch&) { ++count; }, options);
  EXPECT_EQ(count, 6);
}

TEST(CompactStore, ScanPropagatesDecodeErrorFromParallelReader) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  store.set_write_format(StoreFormat::Compressed);
  util::Rng rng(10);
  for (int h = 0; h < 5; ++h) store.put(make_batch(rng, h, 200));

  // Corrupt hour 3's payload; the CRC catches it in the reader thread.
  const auto path = compressed_file(store, 3);
  auto blob = util::read_file(path.string());
  blob[blob.size() - 3] = static_cast<char>(blob[blob.size() - 3] ^ 0x10);
  util::write_file(path.string(), blob);

  ScanOptions options;
  options.readers = 3;
  EXPECT_THROW(store.scan([](const net::FlowBatch&) {}, options),
               util::IoError);
}

TEST(CompactStore, HourLevelSkipAndObsCounters) {
  util::TempDir dir;
  FlowTupleStore store(dir.path());
  store.set_write_format(StoreFormat::Compressed, 64);
  util::Rng rng(11);
  for (int h = 0; h < 4; ++h) store.put(make_batch(rng, h, 256));

  auto& registry = obs::Registry::instance();
  registry.reset();

  net::BlockPredicate p;
  p.hour_min = 2;
  p.hour_max = 2;
  ScanOptions options;
  options.predicate = p;
  int visited = 0;
  store.scan([&](const net::FlowBatch& b) {
    EXPECT_EQ(b.interval, 2);
    ++visited;
  }, options);
  EXPECT_EQ(visited, 1);

  const auto snapshot = registry.snapshot();
  std::uint64_t decoded = 0, skipped = 0;
  std::int64_t ratio = 0;
  for (const auto& c : snapshot.counters) {
    if (c.name == "store.blocks.decoded") decoded = c.value;
    if (c.name == "store.blocks.skipped") skipped = c.value;
  }
  for (const auto& g : snapshot.gauges) {
    if (g.name == "store.compression.ratio_permille") ratio = g.value;
  }
  // Hour 2 is 256 records at 64/block = 4 decoded; the three skipped
  // hours account 4 blocks each without decoding.
  EXPECT_EQ(decoded, 4u);
  EXPECT_EQ(skipped, 12u);
  EXPECT_GT(ratio, 1000) << "compression ratio gauge should exceed 1.0x";
}

}  // namespace
}  // namespace iotscope
