// Cross-path equivalence properties: the analysis result must be
// identical whether hourly flows reach the pipeline directly from the
// capture engine, from an on-disk flowtuple store, or from a pcap replay
// — independent of hour processing order, and byte-for-byte independent
// of the worker-thread count.
#include <gtest/gtest.h>

#include <fstream>
#include <tuple>
#include <vector>

#include "core/iotscope.hpp"
#include "core/report_text.hpp"
#include "net/pcap.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "workload/synth.hpp"

namespace iotscope::core {
namespace {

workload::ScenarioConfig tiny_config() {
  workload::ScenarioConfig config;
  config.inventory_scale = 0.005;
  config.traffic_scale = 0.001;
  config.noise_ratio = 0.05;
  return config;
}

void expect_reports_equal(const Report& a, const Report& b) {
  EXPECT_EQ(a.total_packets, b.total_packets);
  EXPECT_EQ(a.unattributed_packets, b.unattributed_packets);
  EXPECT_EQ(a.discovered_total(), b.discovered_total());
  EXPECT_EQ(a.discovered_consumer, b.discovered_consumer);
  EXPECT_EQ(a.tcp_scan_total, b.tcp_scan_total);
  EXPECT_EQ(a.udp_total_packets, b.udp_total_packets);
  EXPECT_EQ(a.backscatter_total, b.backscatter_total);
  EXPECT_EQ(a.dos_victims, b.dos_victims);
  EXPECT_EQ(a.scanner_devices, b.scanner_devices);
  EXPECT_EQ(a.udp_top_ports.size(), b.udp_top_ports.size());
  for (std::size_t i = 0; i < a.udp_top_ports.size(); ++i) {
    EXPECT_EQ(a.udp_top_ports[i].port, b.udp_top_ports[i].port);
    EXPECT_EQ(a.udp_top_ports[i].packets, b.udp_top_ports[i].packets);
    EXPECT_EQ(a.udp_top_ports[i].devices, b.udp_top_ports[i].devices);
  }
  // Per-device ledgers must agree exactly.
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (const auto& ledger : a.devices) {
    const auto* other = b.traffic_for(ledger.device);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(ledger.packets, other->packets);
    EXPECT_EQ(ledger.tcp_scan, other->tcp_scan);
    EXPECT_EQ(ledger.backscatter(), other->backscatter());
    EXPECT_EQ(ledger.first_interval, other->first_interval);
    EXPECT_EQ(ledger.last_interval, other->last_interval);
  }
  // Hourly series agree.
  for (int h = 0; h < util::AnalysisWindow::kHours; ++h) {
    ASSERT_DOUBLE_EQ(a.scan_series.consumer.packets.at(h),
                     b.scan_series.consumer.packets.at(h));
    ASSERT_DOUBLE_EQ(a.backscatter_series.cps.at(h),
                     b.backscatter_series.cps.at(h));
    ASSERT_DOUBLE_EQ(a.udp_series.consumer.dst_ports.at(h),
                     b.udp_series.consumer.dst_ports.at(h));
  }
}

class EquivalenceTest : public ::testing::Test {
 protected:
  static const workload::Scenario& scenario() {
    static const workload::Scenario instance =
        workload::build_scenario(tiny_config());
    return instance;
  }

  /// All hours of synthetic traffic, captured once as columnar batches.
  static const std::vector<net::FlowBatch>& batches() {
    static const std::vector<net::FlowBatch> instance = [] {
      std::vector<net::FlowBatch> out;
      telescope::TelescopeCapture capture(
          telescope::DarknetSpace(tiny_config().darknet),
          [&out](net::FlowBatch&& batch) { out.push_back(std::move(batch)); });
      workload::synthesize_into(scenario(), tiny_config(), capture);
      return out;
    }();
    return instance;
  }

  /// The same hours as AoS record vectors (for the row-oriented
  /// observe() overloads and the split-hour tests).
  static const std::vector<net::HourlyFlows>& hours() {
    static const std::vector<net::HourlyFlows> instance = [] {
      std::vector<net::HourlyFlows> out;
      out.reserve(batches().size());
      for (const auto& b : batches()) out.push_back(b.to_rows());
      return out;
    }();
    return instance;
  }

  static Report run_direct() {
    AnalysisPipeline pipeline(scenario().inventory);
    for (const auto& b : batches()) pipeline.observe(b);
    return pipeline.finalize();
  }

  static Report run_with_threads(
      unsigned threads, ShardScheduler scheduler = ShardScheduler::Stealing) {
    PipelineOptions options;
    options.threads = threads;
    options.scheduler = scheduler;
    AnalysisPipeline pipeline(scenario().inventory, options);
    for (const auto& b : batches()) pipeline.observe(b);
    return pipeline.finalize();
  }

  /// Full operator-facing rendering — the strongest equality oracle we
  /// have, since it serializes every derived statistic in the report.
  static std::string render_everything(const Report& report) {
    const auto character = characterize(report, scenario().inventory);
    return render_inference_report(report, character, scenario().inventory) +
           render_traffic_report(report, scenario().inventory);
  }
};

TEST_F(EquivalenceTest, DiskStoreRoundTripPreservesTheReport) {
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  for (const auto& h : hours()) store.put(h);
  AnalysisPipeline pipeline(scenario().inventory);
  store.for_each(
      [&pipeline](const net::FlowBatch& batch) { pipeline.observe(batch); });
  expect_reports_equal(run_direct(), pipeline.finalize());
}

TEST_F(EquivalenceTest, CompressedAndMixedStoresPreserveTheReportByteForByte) {
  // The PR8 tentpole guarantee: replaying from a compressed (".iftc")
  // store, a mixed-format store, or a store compacted in place must land
  // on the same rendered report bytes as the raw store — at every thread
  // count and reader count.
  util::TempDir dir;
  telescope::FlowTupleStore raw_store(dir.path() / "raw");
  telescope::FlowTupleStore compressed_store(dir.path() / "compressed");
  telescope::FlowTupleStore mixed_store(dir.path() / "mixed");
  for (const auto& b : batches()) {
    raw_store.put(b);
    compressed_store.set_write_format(telescope::StoreFormat::Compressed);
    compressed_store.put(b);
    mixed_store.set_write_format(b.interval % 2
                                     ? telescope::StoreFormat::Compressed
                                     : telescope::StoreFormat::Raw);
    mixed_store.put(b);
  }

  const auto replay = [this](const telescope::FlowTupleStore& store,
                             unsigned threads, std::size_t readers) {
    PipelineOptions options;
    options.threads = threads;
    AnalysisPipeline pipeline(scenario().inventory, options);
    telescope::ScanOptions scan;
    scan.readers = readers;
    scan.prefetch = 2;
    store.scan([&pipeline](const net::FlowBatch& b) { pipeline.observe(b); },
               scan);
    return render_everything(pipeline.finalize());
  };

  const std::string golden = replay(raw_store, 1, 1);
  for (const unsigned threads : {1u, 2u, 4u, 8u, 0u}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    EXPECT_EQ(replay(compressed_store, threads, 1), golden);
    EXPECT_EQ(replay(mixed_store, threads, 2), golden);
  }
  // Parallel decode readers stacked on parallel analysis shards.
  EXPECT_EQ(replay(compressed_store, 4, 4), golden);

  // Compacting the raw store in place (with verification) changes the
  // files but not one byte of the report.
  const auto stats = raw_store.compact();
  EXPECT_EQ(stats.hours, batches().size());
  EXPECT_GT(stats.bytes_raw, stats.bytes_compressed);
  EXPECT_EQ(replay(raw_store, 4, 2), golden);
}

TEST_F(EquivalenceTest, HourOrderDoesNotMatter) {
  // Process odd hours first, then even ones.
  AnalysisPipeline pipeline(scenario().inventory);
  for (const auto& h : hours()) {
    if (h.interval % 2 == 1) pipeline.observe(h);
  }
  for (const auto& h : hours()) {
    if (h.interval % 2 == 0) pipeline.observe(h);
  }
  expect_reports_equal(run_direct(), pipeline.finalize());
}

TEST_F(EquivalenceTest, PcapReplayPreservesTheReport) {
  // Re-derive the hours from a pcap round-trip of the raw packets and
  // compare the full report.
  util::TempDir dir;
  const auto pcap_path = dir.path() / "replay.pcap";
  {
    std::ofstream out(pcap_path, std::ios::binary);
    net::PcapWriter writer(out);
    workload::synthesize_traffic(
        scenario(), tiny_config(),
        [&writer](const net::PacketRecord& p) { writer.write(p); });
  }
  AnalysisPipeline pipeline(scenario().inventory);
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(tiny_config().darknet),
      [&pipeline](net::FlowBatch&& batch) { pipeline.observe(batch); });
  std::ifstream in(pcap_path, std::ios::binary);
  net::PcapReader reader(in);
  net::PacketRecord packet;
  while (reader.next(packet)) capture.ingest(packet);
  capture.finish();
  expect_reports_equal(run_direct(), pipeline.finalize());
}

TEST_F(EquivalenceTest, SplittingAnHourIntoTwoFilesIsEquivalent) {
  // An hour's records split across two observe() calls with the same
  // interval must accumulate identically (re-aggregation invariance).
  AnalysisPipeline split(scenario().inventory);
  for (const auto& h : hours()) {
    net::HourlyFlows first;
    net::HourlyFlows second;
    first.interval = second.interval = h.interval;
    first.start_time = second.start_time = h.start_time;
    for (std::size_t i = 0; i < h.records.size(); ++i) {
      (i % 2 ? first : second).records.push_back(h.records[i]);
    }
    split.observe(first);
    split.observe(second);
  }
  const auto split_report = split.finalize();
  const auto direct = run_direct();
  // Totals and ledgers must match exactly; per-hour distinct counts also
  // match because both halves of an hour share the distinct-set scope of
  // that hour only if processed together — so compare totals here.
  EXPECT_EQ(direct.total_packets, split_report.total_packets);
  EXPECT_EQ(direct.discovered_total(), split_report.discovered_total());
  EXPECT_EQ(direct.tcp_scan_total, split_report.tcp_scan_total);
  EXPECT_EQ(direct.backscatter_total, split_report.backscatter_total);
  EXPECT_EQ(direct.udp_total_packets, split_report.udp_total_packets);
}

TEST_F(EquivalenceTest, AosPathMatchesBatchPathByteForByte) {
  // The retained AoS record walk (classify at point of use, no shared
  // tag column) and the columnar batch path must produce the same
  // Report down to the rendered byte — sequentially and sharded.
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    PipelineOptions options;
    options.threads = threads;
    AnalysisPipeline aos(scenario().inventory, options);
    for (const auto& h : hours()) aos.observe_aos(h);
    AnalysisPipeline batch(scenario().inventory, options);
    for (const auto& b : batches()) batch.observe(b);
    const Report aos_report = aos.finalize();
    const Report batch_report = batch.finalize();
    expect_reports_equal(aos_report, batch_report);
    EXPECT_EQ(render_everything(aos_report),
              render_everything(batch_report));
  }
}

TEST_F(EquivalenceTest, RowObserveMatchesBatchObserve) {
  // The AoS convenience overload converts into a scratch batch; its
  // result is the batch path's result.
  AnalysisPipeline rows(scenario().inventory);
  for (const auto& h : hours()) rows.observe(h);
  expect_reports_equal(run_direct(), rows.finalize());
}

TEST_F(EquivalenceTest, PreTaggedBatchesDoNotChangeTheReport) {
  // Tags computed under *different* taxonomy options must be rejected
  // (recipe mismatch -> the pipeline re-classifies with its own
  // options), and tags computed under *matching* options must be
  // consumed as-is — the report is identical either way.
  TaxonomyOptions strict;
  strict.full_icmp_reply_family = false;
  strict.rst_counts_as_backscatter = false;
  ASSERT_NE(tag_recipe_for(strict), tag_recipe_for(TaxonomyOptions{}));

  AnalysisPipeline mismatched(scenario().inventory);
  AnalysisPipeline matching(scenario().inventory);
  for (const auto& b : batches()) {
    net::FlowBatch tagged = b;
    classify_batch(tagged, strict);
    mismatched.observe(tagged);
    classify_batch(tagged, TaxonomyOptions{});
    matching.observe(tagged);
  }
  const Report direct = run_direct();
  expect_reports_equal(direct, mismatched.finalize());
  expect_reports_equal(direct, matching.finalize());
}

TEST_F(EquivalenceTest, ThreadCountDoesNotChangeTheReportByteForByte) {
  // The tentpole guarantee: the sharded pipeline's Report is
  // byte-identical to the sequential one at any thread count. Structural
  // comparison first, then the rendered report text as a whole-surface
  // oracle (it serializes every derived statistic, including tie-broken
  // orderings like unknown-source rankings and DoS top victims).
  const Report sequential = run_with_threads(1);
  const std::string golden = render_everything(sequential);
  for (const unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    const Report parallel = run_with_threads(threads);
    expect_reports_equal(sequential, parallel);
    EXPECT_EQ(render_everything(parallel), golden);
  }
  // threads = 0 resolves to the hardware concurrency — whatever that is
  // on the host, the bytes must not move.
  EXPECT_EQ(render_everything(run_with_threads(0)), golden);
}

TEST_F(EquivalenceTest, DiscoverySinkOrderIsThreadCountInvariant) {
  // First-sighting notifications must arrive in record order regardless
  // of which shard observed the device.
  const auto discoveries_at = [](unsigned threads) {
    PipelineOptions options;
    options.threads = threads;
    AnalysisPipeline pipeline(scenario().inventory, options);
    std::vector<std::tuple<std::uint32_t, int, std::uint64_t>> seen;
    pipeline.set_discovery_sink([&seen](const Discovery& d) {
      seen.emplace_back(d.device, d.interval, d.packets);
    });
    for (const auto& h : hours()) pipeline.observe(h);
    pipeline.finalize();
    return seen;
  };
  const auto sequential = discoveries_at(1);
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(discoveries_at(2), sequential);
  EXPECT_EQ(discoveries_at(8), sequential);
}

TEST_F(EquivalenceTest, SchedulerChoiceDoesNotChangeTheReportByteForByte) {
  // Static bucket-per-worker scheduling and morsel-driven work stealing
  // must land on the same bytes as the sequential walk at every thread
  // count — the stealing partials are nondeterministic in content, so
  // only the deterministic reduction can make this hold.
  const std::string golden = render_everything(run_with_threads(1));
  for (const unsigned threads : {2u, 4u, 8u, 0u}) {
    for (const auto scheduler : {ShardScheduler::Static,
                                 ShardScheduler::Stealing,
                                 ShardScheduler::Graph}) {
      SCOPED_TRACE(testing::Message()
                   << threads << " threads, scheduler "
                   << static_cast<int>(scheduler));
      EXPECT_EQ(render_everything(run_with_threads(threads, scheduler)),
                golden);
    }
  }
}

/// The skewed fixture: one heavy-hitter source emits ~80 % of every
/// hour's records, so its partition bucket dwarfs the rest — exactly the
/// load shape where the static schedule serializes. Determinism must
/// survive maximal stealing.
class SkewedEquivalenceTest : public ::testing::Test {
 protected:
  static workload::ScenarioConfig skewed_config() {
    workload::ScenarioConfig config = tiny_config();
    config.heavy_hitter_share = 0.8;
    return config;
  }

  static const workload::Scenario& scenario() {
    static const workload::Scenario instance =
        workload::build_scenario(skewed_config());
    return instance;
  }

  static const std::vector<net::FlowBatch>& batches() {
    static const std::vector<net::FlowBatch> instance = [] {
      std::vector<net::FlowBatch> out;
      telescope::TelescopeCapture capture(
          telescope::DarknetSpace(skewed_config().darknet),
          [&out](net::FlowBatch&& batch) { out.push_back(std::move(batch)); });
      workload::synthesize_into(scenario(), skewed_config(), capture);
      return out;
    }();
    return instance;
  }

  static Report run(unsigned threads,
                    ShardScheduler scheduler = ShardScheduler::Stealing) {
    PipelineOptions options;
    options.threads = threads;
    options.scheduler = scheduler;
    AnalysisPipeline pipeline(scenario().inventory, options);
    for (const auto& b : batches()) pipeline.observe(b);
    return pipeline.finalize();
  }

  static std::string render_everything(const Report& report) {
    const auto character = characterize(report, scenario().inventory);
    return render_inference_report(report, character, scenario().inventory) +
           render_traffic_report(report, scenario().inventory);
  }
};

TEST_F(SkewedEquivalenceTest, HeavyHitterWorkloadStaysByteIdentical) {
  // The skew source is a non-inventory IP, so it also exercises the
  // cross-worker unknown-source tally merge and the hourly promotion
  // floor under stealing.
  const Report sequential = run(1);
  EXPECT_GT(sequential.unattributed_packets,
            sequential.total_packets);  // the hitter dominates
  const std::string golden = render_everything(sequential);
  for (const unsigned threads : {2u, 4u, 8u, 0u}) {
    for (const auto scheduler : {ShardScheduler::Static,
                                 ShardScheduler::Stealing,
                                 ShardScheduler::Graph}) {
      SCOPED_TRACE(testing::Message()
                   << threads << " threads, scheduler "
                   << static_cast<int>(scheduler));
      EXPECT_EQ(render_everything(run(threads, scheduler)), golden);
    }
  }
}

TEST_F(SkewedEquivalenceTest, DiscoveryOrderSurvivesMaximalStealing) {
  // Work stealing can create a device's ledger in several worker
  // partials; the sink must still see exactly the sequential first
  // sightings, in record order.
  const auto discoveries_at = [](unsigned threads, ShardScheduler scheduler) {
    PipelineOptions options;
    options.threads = threads;
    options.scheduler = scheduler;
    AnalysisPipeline pipeline(scenario().inventory, options);
    std::vector<std::tuple<std::uint32_t, int, std::uint64_t>> seen;
    pipeline.set_discovery_sink([&seen](const Discovery& d) {
      seen.emplace_back(d.device, d.interval, d.packets);
    });
    for (const auto& b : batches()) pipeline.observe(b);
    pipeline.finalize();
    return seen;
  };
  const auto sequential = discoveries_at(1, ShardScheduler::Stealing);
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(discoveries_at(4, ShardScheduler::Stealing), sequential);
  EXPECT_EQ(discoveries_at(8, ShardScheduler::Stealing), sequential);
  EXPECT_EQ(discoveries_at(4, ShardScheduler::Static), sequential);
}

TEST_F(EquivalenceTest, SplitHoursStayEquivalentUnderThreading) {
  // Re-aggregation invariance (two observe() calls per interval) must
  // survive the parallel path too.
  PipelineOptions options;
  options.threads = 4;
  AnalysisPipeline split(scenario().inventory, options);
  for (const auto& h : hours()) {
    net::HourlyFlows first;
    net::HourlyFlows second;
    first.interval = second.interval = h.interval;
    first.start_time = second.start_time = h.start_time;
    for (std::size_t i = 0; i < h.records.size(); ++i) {
      (i % 2 ? first : second).records.push_back(h.records[i]);
    }
    split.observe(first);
    split.observe(second);
  }
  const auto split_report = split.finalize();
  const auto direct = run_with_threads(1);
  EXPECT_EQ(direct.total_packets, split_report.total_packets);
  EXPECT_EQ(direct.discovered_total(), split_report.discovered_total());
  EXPECT_EQ(direct.tcp_scan_total, split_report.tcp_scan_total);
  EXPECT_EQ(direct.backscatter_total, split_report.backscatter_total);
  EXPECT_EQ(direct.udp_total_packets, split_report.udp_total_packets);
}

}  // namespace
}  // namespace iotscope::core
