// The morsel work-stealing primitive (util::ThreadPool::run_morsels):
// exactly-once execution, inline serial degeneration, forced steals,
// error propagation, and a stress shape for TSan — plus one end-to-end
// run of the stealing pipeline on a heavy-hitter workload, so the
// sanitizer job covers the full partition -> steal -> merge path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/iotscope.hpp"
#include "util/thread_pool.hpp"
#include "workload/synth.hpp"

namespace iotscope {
namespace {

TEST(MorselScheduler, EveryIndexRunsExactlyOnce) {
  util::ThreadPool pool(4);
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{5}, std::size_t{1000}}) {
    SCOPED_TRACE(testing::Message() << count << " morsels");
    std::vector<std::atomic<int>> hits(count);
    util::ThreadPool::MorselStats stats;
    pool.run_morsels(
        count,
        [&hits](unsigned lane, std::size_t i) {
          ASSERT_LT(lane, 4u);
          hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        &stats);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    EXPECT_EQ(stats.claimed + stats.stolen, count);
  }
}

TEST(MorselScheduler, SerialPoolRunsInlineOnLaneZero) {
  util::ThreadPool pool(1);
  std::size_t ran = 0;
  util::ThreadPool::MorselStats stats;
  pool.run_morsels(
      64,
      [&ran](unsigned lane, std::size_t i) {
        EXPECT_EQ(lane, 0u);
        EXPECT_EQ(i, ran);  // serial path preserves index order
        ++ran;
      },
      &stats);
  EXPECT_EQ(ran, 64u);
  EXPECT_EQ(stats.claimed, 64u);
  EXPECT_EQ(stats.stolen, 0u);
}

TEST(MorselScheduler, IdleLaneStealsFromAStalledOwner) {
  // Two lanes, three morsels: the initial split gives lane 0 (the
  // caller) {0} and lane 1 (the worker) {1, 2}. Morsel 1 blocks its lane
  // until morsel 2 has run — so morsel 2 can only ever run through a
  // steal by the idle lane. A static split would deadlock here.
  util::ThreadPool pool(2);
  std::atomic<bool> tail_done{false};
  util::ThreadPool::MorselStats stats;
  pool.run_morsels(
      3,
      [&tail_done](unsigned lane, std::size_t i) {
        (void)lane;
        if (i == 1) {
          while (!tail_done.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
        if (i == 2) tail_done.store(true, std::memory_order_release);
      },
      &stats);
  EXPECT_EQ(stats.claimed + stats.stolen, 3u);
  EXPECT_GE(stats.stolen, 1u);
}

TEST(MorselScheduler, ExceptionPropagatesAndPoolStaysUsable) {
  util::ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      pool.run_morsels(100,
                       [&ran](unsigned, std::size_t i) {
                         if (i == 37) throw std::runtime_error("morsel 37");
                         ran.fetch_add(1, std::memory_order_relaxed);
                       }),
      std::runtime_error);
  // Fail-fast: the failing index never counts, and unclaimed work may be
  // skipped — but the pool must run the next job normally.
  EXPECT_LT(ran.load(), 100u);
  std::atomic<std::size_t> after{0};
  pool.run_morsels(50, [&after](unsigned, std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 50u);
}

TEST(MorselScheduler, StressManyMorselsRepeatedRuns) {
  // The TSan shape: many lanes hammering the packed ranges across
  // repeated runs, with a spread of per-morsel costs so steals happen.
  util::ThreadPool pool(8);
  for (int round = 0; round < 4; ++round) {
    constexpr std::size_t kCount = 5000;
    std::vector<std::atomic<int>> hits(kCount);
    std::atomic<std::uint64_t> burn{0};
    util::ThreadPool::MorselStats stats;
    pool.run_morsels(
        kCount,
        [&](unsigned, std::size_t i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
          // Skew the cost: early indices are ~100x heavier, like a
          // heavy-hitter bucket at the front of the work list.
          const int spin = i < kCount / 16 ? 800 : 8;
          std::uint64_t acc = i;
          for (int s = 0; s < spin; ++s) acc = acc * 6364136223846793005ULL + 1;
          burn.fetch_add(acc, std::memory_order_relaxed);
        },
        &stats);
    EXPECT_EQ(stats.claimed + stats.stolen, kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(MorselScheduler, StealingPipelineMatchesSequentialOnHeavyHitter) {
  // End-to-end: a workload where one source emits ~80 % of every hour,
  // run through the stealing scheduler at 4 threads, must reproduce the
  // sequential report. This is the integration surface the TSan job
  // watches: partition, morsel deque, worker partials, ordered merge.
  workload::ScenarioConfig config;
  config.inventory_scale = 0.002;
  config.traffic_scale = 0.0005;
  config.noise_ratio = 0.05;
  config.heavy_hitter_share = 0.8;
  const workload::Scenario scenario = workload::build_scenario(config);
  std::vector<net::FlowBatch> batches;
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet),
      [&batches](net::FlowBatch&& batch) { batches.push_back(std::move(batch)); });
  workload::synthesize_into(scenario, config, capture);

  const auto run = [&](unsigned threads) {
    core::PipelineOptions options;
    options.threads = threads;
    options.scheduler = core::ShardScheduler::Stealing;
    core::AnalysisPipeline pipeline(scenario.inventory, options);
    for (const auto& b : batches) pipeline.observe(b);
    return pipeline.finalize();
  };
  const core::Report sequential = run(1);
  const core::Report stolen = run(4);
  EXPECT_EQ(sequential.total_packets, stolen.total_packets);
  EXPECT_EQ(sequential.unattributed_packets, stolen.unattributed_packets);
  EXPECT_EQ(sequential.discovered_total(), stolen.discovered_total());
  EXPECT_EQ(sequential.tcp_scan_total, stolen.tcp_scan_total);
  EXPECT_EQ(sequential.udp_total_packets, stolen.udp_total_packets);
  EXPECT_EQ(sequential.backscatter_total, stolen.backscatter_total);
  ASSERT_EQ(sequential.unknown_sources.size(), stolen.unknown_sources.size());
  for (std::size_t i = 0; i < sequential.unknown_sources.size(); ++i) {
    EXPECT_EQ(sequential.unknown_sources[i].ip.value(),
              stolen.unknown_sources[i].ip.value());
    EXPECT_EQ(sequential.unknown_sources[i].packets,
              stolen.unknown_sources[i].packets);
  }
}

}  // namespace
}  // namespace iotscope
