// Tests for the scenario spec tables, compromise/role assignment, and the
// traffic synthesizer.
#include <gtest/gtest.h>

#include <set>

#include "inventory/catalog.hpp"
#include "workload/scenario.hpp"
#include "workload/spec.hpp"
#include "workload/synth.hpp"

namespace iotscope::workload {
namespace {

// ---------------- spec tables ----------------

TEST(Spec, ScanServicesShareSumsNearHundred) {
  double total = 0;
  for (const auto& svc : scan_services()) total += svc.packet_share_pct;
  EXPECT_NEAR(total, 100.0, 0.5);
}

TEST(Spec, ScanServicePortWeightsMatchPortLists) {
  for (const auto& svc : scan_services()) {
    EXPECT_EQ(svc.ports.size(), svc.port_weights.size()) << svc.name;
    EXPECT_GE(svc.consumer_packet_share, 0.0);
    EXPECT_LE(svc.consumer_packet_share, 1.0);
  }
}

TEST(Spec, TelnetIsFirstWithPaperShare) {
  const auto& telnet = scan_services().front();
  EXPECT_EQ(telnet.name, "Telnet");
  EXPECT_NEAR(telnet.packet_share_pct, 50.2, 0.01);
  EXPECT_EQ(telnet.ports[0], 23);
}

TEST(Spec, ScanServiceIndexLookup) {
  EXPECT_EQ(scan_service_index("Telnet"), 0);
  EXPECT_GE(scan_service_index("CWMP"), 0);
  EXPECT_EQ(scan_service_index("NotAService"), -1);
}

TEST(Spec, UdpPortsMatchTable4) {
  const auto& ports = udp_ports();
  ASSERT_EQ(ports.size(), 10u);
  EXPECT_EQ(ports[0].port, 37547);
  EXPECT_NEAR(ports[0].packet_share_pct, 2.52, 0.001);
  EXPECT_EQ(ports[0].devices, 10115);
  EXPECT_EQ(ports[1].service, "NetBIOS");
  double named = 0;
  for (const auto& p : ports) named += p.packet_share_pct;
  EXPECT_NEAR(named, 10.7, 0.2);  // paper: top 10 take ~10.7% of UDP
}

TEST(Spec, DosEventsReferenceValidCatalogEntries) {
  const auto& catalog = inventory::Catalog::standard();
  for (const auto& event : dos_events()) {
    EXPECT_NO_THROW(catalog.country_id(event.country)) << event.label;
    if (!event.cps_protocol.empty()) {
      EXPECT_NO_THROW(catalog.cps_protocol_id(event.cps_protocol))
          << event.label;
    }
    EXPECT_GT(event.total_packets, 0.0);
    EXPECT_FALSE(event.intervals.empty());
    for (const int h : event.intervals) {
      EXPECT_GE(h, 0);
      EXPECT_LT(h, util::AnalysisWindow::kHours);
    }
  }
}

TEST(Spec, SevenScriptedVictimsAtOrAbove100K) {
  // The paper reports 7 devices with >= 100K backscatter packets, 5 CPS.
  int heavy = 0;
  int heavy_cps = 0;
  for (const auto& event : dos_events()) {
    if (event.total_packets >= 100000) {
      ++heavy;
      if (event.cps) ++heavy_cps;
    }
  }
  EXPECT_EQ(heavy, 8);  // 8 scripted; background adds none above the cap
  EXPECT_EQ(heavy_cps, 5);
}

TEST(Spec, ScanHeroesReferenceValidServicesAndCountries) {
  const auto& catalog = inventory::Catalog::standard();
  double telnet_share = 0;
  for (const auto& hero : scan_heroes()) {
    EXPECT_GE(scan_service_index(hero.service), 0) << hero.label;
    EXPECT_NO_THROW(catalog.country_id(hero.country)) << hero.label;
    if (hero.service == "Telnet") telnet_share += hero.packet_share;
  }
  EXPECT_NEAR(telnet_share, 0.55, 0.01);  // 7+1 heroes carry 55% of Telnet
}

TEST(Spec, DiscoveryWeightsMatchFig2) {
  const PopulationSpec pop;
  double total = 0;
  for (const double w : pop.discovery_day_weights) total += w;
  EXPECT_NEAR(total, 1.0, 0.01);
  EXPECT_NEAR(pop.discovery_day_weights[0], 0.46, 0.001);
}

// ---------------- scenario assignment ----------------

class ScenarioTest : public ::testing::Test {
 protected:
  static const Scenario& scenario() {
    static const Scenario instance = [] {
      ScenarioConfig config;
      config.inventory_scale = 0.02;
      config.traffic_scale = 0.004;
      return build_scenario(config);
    }();
    return instance;
  }
};

TEST_F(ScenarioTest, CompromisedCountsNearScaledTargets) {
  const auto& truth = scenario().truth;
  // Targets: 15,299 * 0.02 = 306 consumer; 11,582 * 0.02 = 232 CPS.
  EXPECT_NEAR(static_cast<double>(truth.compromised_consumer), 306.0, 60.0);
  EXPECT_NEAR(static_cast<double>(truth.compromised_cps), 232.0, 55.0);
}

TEST_F(ScenarioTest, PlanIndexIsConsistent) {
  const auto& truth = scenario().truth;
  for (std::uint32_t i = 0; i < truth.plans.size(); ++i) {
    const auto* plan = truth.plan_for(truth.plans[i].device);
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->device, truth.plans[i].device);
  }
  EXPECT_EQ(truth.by_device.size(), truth.plans.size());
}

TEST_F(ScenarioTest, EveryPlanHasPositiveExpectedEmission) {
  for (const auto& plan : scenario().truth.plans) {
    double expected = plan.scan.total_packets + plan.udp.trio_packets +
                      plan.udp.dedicated_packets + plan.udp.sweep_packets +
                      plan.misconfig_packets + plan.icmp_scan_packets;
    for (const auto& attack : plan.attacks) expected += attack.total_packets;
    EXPECT_GE(expected, 1.0) << "device " << plan.device;
  }
}

TEST_F(ScenarioTest, FirstIntervalWithinWindowAndBeforeAttacks) {
  for (const auto& plan : scenario().truth.plans) {
    EXPECT_GE(plan.first_interval, 0);
    EXPECT_LT(plan.first_interval, util::AnalysisWindow::kHours);
    for (const auto& attack : plan.attacks) {
      for (const int h : attack.intervals) {
        EXPECT_LE(plan.first_interval, h);
      }
    }
  }
}

TEST_F(ScenarioTest, ScriptedVictimsAllPresent) {
  const auto& truth = scenario().truth;
  std::set<int> seen_events;
  for (const auto& plan : truth.plans) {
    for (const auto& attack : plan.attacks) {
      if (attack.event >= 0) seen_events.insert(attack.event);
    }
  }
  EXPECT_EQ(seen_events.size(), dos_events().size());
}

TEST_F(ScenarioTest, HeroesAssignedWithMatchingAttributes) {
  const auto& truth = scenario().truth;
  const auto& db = scenario().inventory;
  std::set<int> seen;
  for (const auto& plan : truth.plans) {
    if (plan.scan.hero < 0) continue;
    seen.insert(plan.scan.hero);
    const auto& hero = scan_heroes()[static_cast<std::size_t>(plan.scan.hero)];
    const auto& device = db.devices()[plan.device];
    EXPECT_EQ(device.is_cps(), hero.cps) << hero.label;
    EXPECT_GT(plan.scan.total_packets, 0.0) << hero.label;
  }
  EXPECT_EQ(seen.size(), scan_heroes().size());
}

TEST_F(ScenarioTest, RolesRoughlyMatchQuotas) {
  const auto& truth = scenario().truth;
  std::size_t scanners = 0;
  std::size_t udp = 0;
  std::size_t victims = 0;
  for (const auto& plan : truth.plans) {
    if (plan.has(kRoleScanner)) ++scanners;
    if (plan.has(kRoleUdp)) ++udp;
    if (!plan.attacks.empty()) ++victims;
  }
  // Quotas at 0.02: scanners ~247, UDP ~505, victims ~30 (scripted add 8).
  EXPECT_NEAR(static_cast<double>(scanners), 247.0, 80.0);
  EXPECT_NEAR(static_cast<double>(udp), 505.0, 120.0);
  EXPECT_GE(victims, dos_events().size());
  EXPECT_EQ(truth.dos_victims, victims);
}

TEST_F(ScenarioTest, DutyCyclesWithinBounds) {
  for (const auto& plan : scenario().truth.plans) {
    EXPECT_GT(plan.duty, 0.0);
    EXPECT_LE(plan.duty, 1.0);
  }
}

TEST(Scenario, DeterministicInSeed) {
  ScenarioConfig config;
  config.inventory_scale = 0.005;
  config.traffic_scale = 0.001;
  const auto a = build_scenario(config);
  const auto b = build_scenario(config);
  ASSERT_EQ(a.truth.plans.size(), b.truth.plans.size());
  for (std::size_t i = 0; i < a.truth.plans.size(); ++i) {
    EXPECT_EQ(a.truth.plans[i].device, b.truth.plans[i].device);
    EXPECT_EQ(a.truth.plans[i].roles, b.truth.plans[i].roles);
    EXPECT_DOUBLE_EQ(a.truth.plans[i].scan.total_packets,
                     b.truth.plans[i].scan.total_packets);
  }
}

TEST(ScenarioConfig, ScalingHelpers) {
  ScenarioConfig config;
  config.inventory_scale = 0.1;
  config.traffic_scale = 0.5;
  EXPECT_EQ(config.scaled_count(1000), 100u);
  EXPECT_EQ(config.scaled_count(3), 1u);  // rounds to at least 1
  EXPECT_EQ(config.scaled_count(0), 0u);
  EXPECT_DOUBLE_EQ(config.scaled_packets(100.0), 50.0);
}

// ---------------- synthesizer ----------------

class SynthTest : public ::testing::Test {
 protected:
  static ScenarioConfig config() {
    ScenarioConfig c;
    c.inventory_scale = 0.01;
    c.traffic_scale = 0.002;
    c.noise_ratio = 0.05;
    return c;
  }
  static const Scenario& scenario() {
    static const Scenario instance = build_scenario(config());
    return instance;
  }
};

TEST_F(SynthTest, EmitsBudgetedVolumesWithinTolerance) {
  std::uint64_t count = 0;
  const auto stats = synthesize_traffic(
      scenario(), config(), [&count](const net::PacketRecord&) { ++count; });
  EXPECT_EQ(stats.total, count);
  const VolumeSpec vol;
  const double expected_scan = vol.tcp_scan_packets * 0.002;
  EXPECT_NEAR(static_cast<double>(stats.tcp_scan), expected_scan,
              expected_scan * 0.35);
  const double expected_udp = vol.udp_packets * 0.002;
  EXPECT_NEAR(static_cast<double>(stats.udp), expected_udp,
              expected_udp * 0.35);
  const double expected_bs = vol.backscatter_packets * 0.002;
  EXPECT_NEAR(static_cast<double>(stats.backscatter), expected_bs,
              expected_bs * 0.35);
  EXPECT_GT(stats.noise, 0u);
}

TEST_F(SynthTest, PacketsAreWellFormedAndOrdered) {
  util::UnixTime last_hour = 0;
  const telescope::DarknetSpace space(config().darknet);
  std::size_t checked = 0;
  synthesize_traffic(scenario(), config(), [&](const net::PacketRecord& p) {
    ASSERT_TRUE(util::AnalysisWindow::contains(p.timestamp));
    ASSERT_TRUE(space.observes(p.dst));
    const auto hour = util::AnalysisWindow::interval_of(p.timestamp);
    ASSERT_GE(hour, last_hour);
    last_hour = hour;
    ++checked;
  });
  EXPECT_GT(checked, 1000u);
}

TEST_F(SynthTest, DeterministicStream) {
  std::vector<std::uint64_t> digest_a;
  synthesize_traffic(scenario(), config(), [&](const net::PacketRecord& p) {
    if (digest_a.size() < 1000) {
      digest_a.push_back((static_cast<std::uint64_t>(p.src.value()) << 32) ^
                         p.dst.value() ^ p.dst_port);
    }
  });
  std::vector<std::uint64_t> digest_b;
  synthesize_traffic(scenario(), config(), [&](const net::PacketRecord& p) {
    if (digest_b.size() < 1000) {
      digest_b.push_back((static_cast<std::uint64_t>(p.src.value()) << 32) ^
                         p.dst.value() ^ p.dst_port);
    }
  });
  EXPECT_EQ(digest_a, digest_b);
}

TEST_F(SynthTest, ScanPacketsAreSynOnlyAndBackscatterMatchesTaxonomy) {
  std::uint64_t syn_only = 0;
  std::uint64_t scan_total = 0;
  synthesize_traffic(scenario(), config(), [&](const net::PacketRecord& p) {
    if (p.is_tcp() && p.tcp_syn_only()) ++syn_only;
    if (p.is_tcp()) ++scan_total;
  });
  // Most TCP should be SYN probes (scanning dominates the paper's mix).
  EXPECT_GT(syn_only, scan_total / 2);
}

TEST(Scenario, TinyScaleRoleQuotasClampToThePopulation) {
  // Regression: scaled_count's >=1 round-up let every role quota claim a
  // device even when the scaled inventory was smaller than the quota
  // sum; exhaustion then fell back to already-pinned devices, so
  // dos_victims over-counted real victim plans and single devices
  // carried duplicate attack roles.
  ScenarioConfig config;
  config.inventory_scale = 2e-5;  // ~7 devices against dozens of quotas
  config.traffic_scale = 0.001;
  const Scenario tiny = build_scenario(config);
  const std::size_t population = tiny.inventory.devices().size();
  ASSERT_GT(population, 0u);
  EXPECT_LE(tiny.truth.plans.size(), population);

  std::set<std::uint32_t> planned;
  std::size_t victim_plans = 0;
  for (const auto& plan : tiny.truth.plans) {
    EXPECT_TRUE(planned.insert(plan.device).second)
        << "device " << plan.device << " planned twice";
    if (!plan.attacks.empty()) ++victim_plans;
  }
  EXPECT_EQ(tiny.truth.dos_victims, victim_plans)
      << "victim counter must match actual victim plans";
  EXPECT_LE(tiny.truth.dos_victims, population);
  EXPECT_LE(tiny.truth.compromised_by_selection, tiny.truth.plans.size());
}

TEST(Synth, PickUnusedSourceStaysInsidePrefixUnderCollisions) {
  // Regression: the heavy hitter resolved inventory collisions by
  // incrementing the IP unboundedly, walking out of its reserved RFC
  // 2544 block. The probe must wrap within the prefix instead.
  inventory::IoTDeviceDatabase db;
  const net::Ipv4Prefix prefix(net::Ipv4Address::from_octets(198, 18, 0, 0),
                               15);
  // Occupy a run of addresses starting at the preferred offset.
  for (std::uint32_t i = 0; i < 300; ++i) {
    inventory::DeviceRecord device;
    device.ip = net::Ipv4Address(prefix.base().value() + 66 + i);
    ASSERT_TRUE(db.add_device(device));
  }
  const net::Ipv4Address picked = pick_unused_source(db, prefix, 66);
  EXPECT_TRUE(prefix.contains(picked));
  EXPECT_EQ(db.find(picked), nullptr);

  // Collisions at the top of the prefix must wrap to its base, not walk
  // past the broadcast edge into foreign space.
  inventory::IoTDeviceDatabase top;
  const auto last = static_cast<std::uint32_t>(prefix.size() - 1);
  for (std::uint32_t i = 0; i < 4; ++i) {
    inventory::DeviceRecord device;
    device.ip = net::Ipv4Address(prefix.base().value() + last - i);
    ASSERT_TRUE(top.add_device(device));
  }
  const net::Ipv4Address wrapped = pick_unused_source(db, prefix, last);
  EXPECT_TRUE(prefix.contains(wrapped));
  EXPECT_EQ(db.find(wrapped), nullptr);
  const net::Ipv4Address wrapped_top = pick_unused_source(top, prefix, last - 2);
  EXPECT_TRUE(prefix.contains(wrapped_top));
  EXPECT_EQ(top.find(wrapped_top), nullptr);
}

TEST(Synth, HeavyHitterSourceRespectsItsReservedBlock) {
  // Even when the synthetic inventory happens to index 198.18.0.66, the
  // skew source must stay inside 198.18.0.0/15 (and off an indexed IP).
  ScenarioConfig config;
  config.inventory_scale = 0.005;
  config.traffic_scale = 0.0005;
  config.noise_ratio = 0.0;
  config.heavy_hitter_share = 0.5;
  const Scenario scenario = build_scenario(config);
  const net::Ipv4Prefix prefix(net::Ipv4Address::from_octets(198, 18, 0, 0),
                               15);
  std::set<std::uint32_t> sources;
  synthesize_traffic(scenario, config, [&](const net::PacketRecord& p) {
    if (prefix.contains(p.src)) sources.insert(p.src.value());
  });
  ASSERT_FALSE(sources.empty()) << "heavy hitter never emitted";
  for (const std::uint32_t src : sources) {
    EXPECT_EQ(scenario.inventory.find(net::Ipv4Address(src)), nullptr)
        << "heavy hitter aliased an inventory device";
  }
}

TEST_F(SynthTest, HourHookRunsOncePerHourAfterBaseTraffic) {
  std::vector<int> hook_hours;
  std::uint64_t base_packets = 0;
  const auto stats = synthesize_traffic(
      scenario(), config(),
      [&](const net::PacketRecord&) { ++base_packets; },
      [&](int hour, const PacketSink& sink) {
        hook_hours.push_back(hour);
        // Hook emissions go to the sink but are not the synthesizer's to
        // count.
        sink(net::make_tcp_syn(util::AnalysisWindow::interval_start(hour),
                               net::Ipv4Address::from_octets(198, 19, 1, 1),
                               net::Ipv4Address::from_octets(10, 1, 2, 3),
                               40000, 23));
      });
  ASSERT_EQ(hook_hours.size(),
            static_cast<std::size_t>(util::AnalysisWindow::kHours));
  for (int h = 0; h < util::AnalysisWindow::kHours; ++h) {
    EXPECT_EQ(hook_hours[static_cast<std::size_t>(h)], h);
  }
  EXPECT_EQ(base_packets,
            stats.total + static_cast<std::uint64_t>(
                              util::AnalysisWindow::kHours))
      << "hook packets reach the sink but never the synth counters";
}

TEST_F(SynthTest, SynthesizeIntoCaptureProducesAllHours) {
  std::vector<int> intervals;
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config().darknet),
      [&intervals](net::FlowBatch&& batch) {
        intervals.push_back(batch.interval);
      });
  synthesize_into(scenario(), config(), capture);
  ASSERT_FALSE(intervals.empty());
  EXPECT_EQ(intervals.front(), 0);
  EXPECT_EQ(intervals.back(), util::AnalysisWindow::kHours - 1);
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_EQ(intervals[i], intervals[i - 1] + 1);
  }
}

}  // namespace
}  // namespace iotscope::workload
