// Tests for the statistics toolkit: descriptive stats, Pearson with
// p-values, Mann-Whitney U, ECDF, top-k counting, hourly series, tables.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ecdf.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "analysis/timeseries.hpp"
#include "analysis/topk.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace iotscope::analysis {
namespace {

// ---------------- descriptive ----------------

TEST(Describe, KnownSample) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  const auto d = describe(xs);
  EXPECT_EQ(d.n, 8u);
  EXPECT_DOUBLE_EQ(d.mean, 5.0);
  EXPECT_NEAR(d.stddev, 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(d.min, 2.0);
  EXPECT_DOUBLE_EQ(d.max, 9.0);
  EXPECT_DOUBLE_EQ(d.sum, 40.0);
}

TEST(Describe, EmptyAndSingle) {
  EXPECT_EQ(describe({}).n, 0u);
  const std::vector<double> one = {3.5};
  const auto d = describe(one);
  EXPECT_DOUBLE_EQ(d.mean, 3.5);
  EXPECT_DOUBLE_EQ(d.stddev, 0.0);
}

// ---------------- normal / beta ----------------

TEST(NormalCdf, KnownValuesAndSymmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  for (double z = -4; z <= 4; z += 0.37) {
    EXPECT_NEAR(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-12);
  }
}

TEST(IncompleteBeta, BoundaryAndComplementProperty) {
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2, 3, 1.0), 1.0);
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform_real(0.5, 10.0);
    const double b = rng.uniform_real(0.5, 10.0);
    const double x = rng.uniform_real(0.01, 0.99);
    const double lhs = regularized_incomplete_beta(a, b, x);
    const double rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
    EXPECT_NEAR(lhs, rhs, 1e-9);
    EXPECT_GE(lhs, 0.0);
    EXPECT_LE(lhs, 1.0);
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_NEAR(regularized_incomplete_beta(1, 1, x), x, 1e-10);
  }
}

TEST(StudentT, KnownTwoSidedPValues) {
  // df=10, t=2.228 -> p ~ 0.05.
  EXPECT_NEAR(student_t_two_sided_p(2.228, 10), 0.05, 0.002);
  // t=0 -> p = 1.
  EXPECT_NEAR(student_t_two_sided_p(0.0, 10), 1.0, 1e-12);
  // Large |t| -> p ~ 0; symmetric in sign.
  EXPECT_LT(student_t_two_sided_p(8.0, 20), 1e-6);
  EXPECT_NEAR(student_t_two_sided_p(-2.228, 10),
              student_t_two_sided_p(2.228, 10), 1e-12);
}

// ---------------- pearson ----------------

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const auto r = pearson(x, y);
  EXPECT_NEAR(r.r, 1.0, 1e-12);
  EXPECT_NEAR(r.p_value, 0.0, 1e-9);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y).r, -1.0, 1e-12);
}

TEST(Pearson, KnownModerateValue) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> y = {2, 1, 4, 3, 7, 5, 8, 6};
  const auto r = pearson(x, y);
  EXPECT_NEAR(r.r, 5.0 / 6.0, 1e-9);      // hand-computed for this sample
  EXPECT_NEAR(r.p_value, 0.0102, 0.002);  // two-sided t-test, df = 6
  EXPECT_GT(r.p_value, 0.0001);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> x = {5, 5, 5, 5};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(x, y).r, 0.0);
  EXPECT_DOUBLE_EQ(pearson(x, y).p_value, 1.0);
}

TEST(Pearson, IndependentNoiseNearZero) {
  util::Rng rng(11);
  std::vector<double> x(2000);
  std::vector<double> y(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform01();
    y[i] = rng.uniform01();
  }
  const auto r = pearson(x, y);
  EXPECT_LT(std::fabs(r.r), 0.06);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Pearson, MismatchedSizesThrow) {
  EXPECT_THROW(pearson(std::vector<double>{1, 2}, std::vector<double>{1}),
               std::invalid_argument);
}

// ---------------- mann-whitney ----------------

TEST(MannWhitney, HandComputedSmallExample) {
  // x = {1,2,3}, y = {4,5,6}: all of y exceed x, so U_x = 0.
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, 5, 6};
  const auto result = mann_whitney_u(x, y);
  EXPECT_DOUBLE_EQ(result.u, 0.0);
  EXPECT_LT(result.z, 0.0);
}

TEST(MannWhitney, SymmetricSwapFlipsU) {
  const std::vector<double> x = {1, 5, 9, 13};
  const std::vector<double> y = {2, 4, 8, 10};
  const auto xy = mann_whitney_u(x, y);
  const auto yx = mann_whitney_u(y, x);
  EXPECT_DOUBLE_EQ(xy.u + yx.u,
                   static_cast<double>(x.size() * y.size()));
  EXPECT_NEAR(xy.z, -yx.z, 1e-12);
  EXPECT_NEAR(xy.p_value, yx.p_value, 1e-12);
}

TEST(MannWhitney, IdenticalSamplesNotSignificant) {
  const std::vector<double> x = {3, 3, 3, 3, 3};
  const auto result = mann_whitney_u(x, x);
  EXPECT_DOUBLE_EQ(result.z, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(MannWhitney, TiesHandledWithMidranks) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {2, 3, 3, 4};
  const auto result = mann_whitney_u(x, y);
  // Midranks: 1->1; the 2s occupy ranks 2-4 (midrank 3); 3s ranks 5-7
  // (midrank 6); 4->8. R_x = 1+3+3+6 = 13, U_x = 13 - 10 = 3.
  EXPECT_DOUBLE_EQ(result.u, 3.0);
  EXPECT_GT(result.p_value, 0.05);  // tiny samples: not significant
}

TEST(MannWhitney, DetectsClearShiftInLargeSamples) {
  util::Rng rng(13);
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal(10.0, 2.0);
    y[i] = rng.normal(11.0, 2.0);
  }
  const auto result = mann_whitney_u(x, y);
  EXPECT_LT(result.p_value, 1e-4);
  EXPECT_LT(result.z, 0.0);  // x stochastically smaller
}

TEST(MannWhitney, EmptyInputSafe) {
  const auto result = mann_whitney_u({}, std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

// ---------------- ecdf ----------------

TEST(Ecdf, PointwiseValues) {
  Ecdf cdf({1, 2, 2, 3, 10});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1), 0.2);
  EXPECT_DOUBLE_EQ(cdf.at(2), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(9.99), 0.8);
  EXPECT_DOUBLE_EQ(cdf.at(10), 1.0);
  EXPECT_DOUBLE_EQ(cdf.tail_at_least(2), 0.8);
}

TEST(Ecdf, QuantilesNearestRank) {
  Ecdf cdf({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(Ecdf, EmptySampleIsZero) {
  Ecdf cdf;
  EXPECT_DOUBLE_EQ(cdf.at(100), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(Ecdf, MonotonicNondecreasingProperty) {
  util::Rng rng(17);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.pareto(1.0, 0.8);
  Ecdf cdf(std::move(xs));
  double prev = -1;
  for (double x = 0; x < 1000; x += 7.3) {
    const double f = cdf.at(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Ecdf, LogCurveCoversRangeAndIsMonotone) {
  Ecdf cdf({1, 10, 100, 1000});
  const auto curve = cdf.log_curve(1, 10000, 9);
  ASSERT_EQ(curve.size(), 9u);
  EXPECT_NEAR(curve.front().first, 1.0, 1e-9);
  EXPECT_NEAR(curve.back().first, 10000.0, 1e-6);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_TRUE(cdf.log_curve(0, 10, 5).empty());    // invalid lo
  EXPECT_TRUE(cdf.log_curve(10, 10, 5).empty());   // empty range
  EXPECT_TRUE(cdf.log_curve(1, 10, 1).empty());    // too few points
}

// ---------------- topk ----------------

TEST(Counter, CountsAndTopK) {
  Counter<std::string> counter;
  counter.add("telnet", 50);
  counter.add("http", 9);
  counter.add("ssh", 7);
  counter.add("telnet", 1);
  EXPECT_EQ(counter.count("telnet"), 51u);
  EXPECT_EQ(counter.count("absent"), 0u);
  EXPECT_EQ(counter.total(), 67u);
  EXPECT_EQ(counter.distinct(), 3u);
  const auto top = counter.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "telnet");
  EXPECT_EQ(top[1].key, "http");
}

TEST(Counter, TopTieBrokenByKey) {
  Counter<int> counter;
  counter.add(9, 5);
  counter.add(3, 5);
  const auto top = counter.top(2);
  EXPECT_EQ(top[0].key, 3);
  EXPECT_EQ(top[1].key, 9);
}

TEST(Counter, RunningTotalMatchesSumOverRaw) {
  // total() is now a running sum maintained on add(); pin it to the old
  // definition (walk raw() and sum) over a mixed add pattern: fresh
  // keys, repeats, explicit counts, and zero-count adds.
  Counter<int> counter;
  EXPECT_EQ(counter.total(), 0u);
  for (int i = 0; i < 500; ++i) {
    counter.add(i % 37, static_cast<std::uint64_t>(i % 11));
    counter.add(i % 7);  // default count = 1
  }
  counter.add(1000, 0);  // zero-count add creates the key, adds nothing
  std::uint64_t recomputed = 0;
  for (const auto& [key, value] : counter.raw()) recomputed += value;
  EXPECT_EQ(counter.total(), recomputed);
  EXPECT_EQ(counter.count(1000), 0u);
  EXPECT_EQ(counter.distinct(), 38u);  // 37 mod keys + the zero-count key
}

// ---------------- hourly series ----------------

TEST(HourlySeries, AddAtAndBoundsIgnored) {
  HourlySeries s;
  s.add(0, 5);
  s.add(142, 7);
  s.add(-1, 100);   // ignored
  s.add(143, 100);  // ignored
  EXPECT_DOUBLE_EQ(s.at(0), 5);
  EXPECT_DOUBLE_EQ(s.at(142), 7);
  EXPECT_DOUBLE_EQ(s.total(), 12);
  EXPECT_DOUBLE_EQ(s.at(-5), 0);
  EXPECT_DOUBLE_EQ(s.max(), 7);
  EXPECT_EQ(s.argmax(), 142);
}

TEST(HourlySeries, DailyTotalsSplitAtMidnights) {
  HourlySeries s;
  for (int h = 0; h < 143; ++h) s.add(h, 1);
  const auto days = s.daily_totals();
  ASSERT_EQ(days.size(), 6u);
  for (int d = 0; d < 5; ++d) EXPECT_DOUBLE_EQ(days[static_cast<std::size_t>(d)], 24);
  EXPECT_DOUBLE_EQ(days[5], 23);  // final day has 23 hours
}

TEST(HourlySeries, SpikesAboveMultipleOfMean) {
  HourlySeries s;
  for (int h = 0; h < 143; ++h) s.add(h, 10);
  s.add(50, 200);
  s.add(100, 500);
  const auto spikes = s.spikes(3.0);
  EXPECT_EQ(spikes, (std::vector<int>{50, 100}));
}

// ---------------- text table ----------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"A", "Bcd"});
  table.add_row({"xx", "1"});
  table.add_row({"y", "22"});
  const auto out = table.render();
  EXPECT_NE(out.find("A   Bcd"), std::string::npos);
  EXPECT_NE(out.find("xx  1"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscapesCommas) {
  util::TempDir dir;
  TextTable table({"name", "value"});
  table.add_row({"a,b", "3"});
  const auto path = dir.path() / "t.csv";
  table.write_csv(path);
  const auto content = util::read_file(path);
  EXPECT_NE(content.find("\"a,b\",3"), std::string::npos);
}

}  // namespace
}  // namespace iotscope::analysis
