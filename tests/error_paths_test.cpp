// Regression tests for the error paths of the concurrent machinery:
// a throwing shard task must surface from ThreadPool::run_indexed, a
// throwing analysis consumer must not deadlock run_study's bounded
// queue, and the prefetching store must join its reader on both visitor
// and decode errors. Every test here used to be a hang or a
// std::terminate. Run them under TSan (preset `tsan`) for full value.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/stream.hpp"
#include "core/study.hpp"
#include "net/block_codec.hpp"
#include "net/flowtuple.hpp"
#include "obs/metrics.hpp"
#include "telescope/store.hpp"
#include "util/bounded_queue.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace iotscope {
namespace {

// ------------------------------------------------------ parse_decimal

TEST(ParseDecimalTest, AcceptsPlainNonNegativeIntegers) {
  EXPECT_EQ(util::parse_decimal("0"), 0u);
  EXPECT_EQ(util::parse_decimal("7"), 7u);
  EXPECT_EQ(util::parse_decimal("65535"), 65535u);
  EXPECT_EQ(util::parse_decimal("18446744073709551615"),
            18446744073709551615ULL);
}

TEST(ParseDecimalTest, RejectsWhatStrtoulSilentlyCoerced) {
  // Every one of these used to slip through the CLI's strtoul/atof
  // paths as 0, a huge wrapped value, or a truncated prefix.
  EXPECT_FALSE(util::parse_decimal(""));
  EXPECT_FALSE(util::parse_decimal("abc"));
  EXPECT_FALSE(util::parse_decimal("-3"));     // strtoul wrapped this
  EXPECT_FALSE(util::parse_decimal("+3"));
  EXPECT_FALSE(util::parse_decimal("1e3"));    // atof read 1000
  EXPECT_FALSE(util::parse_decimal("2.5"));    // atof truncated to 2
  EXPECT_FALSE(util::parse_decimal("12x"));    // strtoul read 12
  EXPECT_FALSE(util::parse_decimal(" 5"));     // no whitespace skipping
  EXPECT_FALSE(util::parse_decimal("5 "));
  EXPECT_FALSE(util::parse_decimal("0x10"));
}

TEST(ParseDecimalTest, RejectsOverflowInsteadOfWrapping) {
  EXPECT_FALSE(util::parse_decimal("18446744073709551616"));  // 2^64
  EXPECT_FALSE(util::parse_decimal("99999999999999999999999"));
  // Leading zeros are fine; they don't overflow the accumulator.
  EXPECT_EQ(util::parse_decimal("000000000000000000000042"), 42u);
}

// ------------------------------------------------------- BoundedQueue

TEST(BoundedQueueTest, FifoHandOff) {
  util::BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueueTest, CloseDrainsBacklogThenEnds) {
  util::BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));  // rejected after close
  EXPECT_EQ(queue.pop(), 1);    // backlog still drains
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseUnblocksAProducerStuckOnAFullQueue) {
  // The run_study deadlock shape: producer blocked at the capacity cap,
  // consumer dies. close() must wake the producer with push == false.
  util::BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));  // now full

  std::atomic<bool> push_returned{false};
  bool push_result = true;
  std::thread producer([&] {
    push_result = queue.push(1);  // blocks until close()
    push_returned.store(true);
  });

  // Give the producer time to block, then poison the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result);
}

TEST(BoundedQueueTest, CloseUnblocksAConsumerStuckOnAnEmptyQueue) {
  util::BoundedQueue<int> queue(1);
  std::optional<int> popped = 99;
  std::thread consumer([&] { popped = queue.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_EQ(popped, std::nullopt);
}

// --------------------------------------------------------- ThreadPool

TEST(ThreadPoolErrorTest, WorkerExceptionPropagatesToTheCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_indexed(64,
                       [](std::size_t i) {
                         if (i == 13) {
                           throw std::runtime_error("shard task failed");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolErrorTest, ExceptionMessageSurvivesTheChannel) {
  util::ThreadPool pool(3);
  try {
    pool.run_indexed(32, [](std::size_t i) {
      if (i == 7) throw std::runtime_error("boom at 7");
    });
    FAIL() << "expected the worker exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 7");
  }
}

TEST(ThreadPoolErrorTest, PoolStaysUsableAfterAThrowingJob) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.run_indexed(
                   16, [](std::size_t) { throw std::runtime_error("dead"); }),
               std::runtime_error);

  // The next job must run every index exactly once.
  constexpr std::size_t kCount = 100;
  std::vector<std::atomic<int>> hits(kCount);
  pool.run_indexed(kCount, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolErrorTest, FailFastSkipsIndicesAfterAnError) {
  // With a failing first index and many slow followers, fail-fast must
  // leave some indices unvisited (at most one in-flight task per thread
  // finishes after the error is recorded).
  util::ThreadPool pool(2);
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(pool.run_indexed(10000,
                                [&executed](std::size_t i) {
                                  if (i == 0) {
                                    throw std::runtime_error("poison");
                                  }
                                  executed.fetch_add(1);
                                }),
               std::runtime_error);
  EXPECT_LT(executed.load(), 10000u);
}

TEST(ThreadPoolErrorTest, SerialPoolPropagatesDirectly) {
  util::ThreadPool pool(1);
  EXPECT_THROW(pool.run_indexed(
                   4, [](std::size_t) { throw std::runtime_error("serial"); }),
               std::runtime_error);
}

// ------------------------------------------------- run_study consumer

core::StudyConfig tiny_study_config(unsigned threads) {
  auto config = core::StudyConfig::test_default();
  config.scenario.inventory_scale = 0.005;
  config.scenario.traffic_scale = 0.001;
  config.pipeline.threads = threads;
  return config;
}

TEST(StudyErrorPathTest, ConsumerThrowDoesNotDeadlockTheBoundedQueue) {
  // The PR-2 headline bug: the analysis consumer throwing used to leave
  // the synthesis producer blocked forever on the full hand-off queue.
  // A throwing DiscoverySink makes pipeline.observe() throw on the
  // consumer thread; run_study must unwind and rethrow, not hang.
  auto config = tiny_study_config(/*threads=*/2);
  config.discovery_sink = [](const core::Discovery&) {
    throw std::runtime_error("sink rejected the discovery");
  };
  try {
    core::run_study(config);
    FAIL() << "expected the consumer exception to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sink rejected the discovery");
  }
}

TEST(StudyErrorPathTest, SequentialPathPropagatesTheSameError) {
  auto config = tiny_study_config(/*threads=*/1);
  config.discovery_sink = [](const core::Discovery&) {
    throw std::runtime_error("sink rejected the discovery");
  };
  EXPECT_THROW(core::run_study(config), std::runtime_error);
}

TEST(StudyErrorPathTest, LateConsumerThrowStillUnwinds) {
  // Throw only after the queue has had a chance to fill (producer ahead
  // of consumer), exercising the close-while-producer-blocked path.
  auto config = tiny_study_config(/*threads=*/2);
  auto count = std::make_shared<std::atomic<int>>(0);
  config.discovery_sink = [count](const core::Discovery&) {
    if (count->fetch_add(1) >= 50) {
      throw std::runtime_error("late failure");
    }
  };
  EXPECT_THROW(core::run_study(config), std::runtime_error);
}

TEST(StudyErrorPathTest, ConsumerDeathReleasesQueuedBatchBytes) {
  // When the analyst dies mid-run, hours already sitting in the hand-off
  // queue are destroyed without ever being observed. Their bytes were
  // added to pipeline.batch.mem_peak at enqueue time and used to leak —
  // the gauge stayed permanently high after the unwind. The join guard
  // must drain the backlog and give the bytes back.
  auto& gauge = obs::Registry::instance().gauge("pipeline.batch.mem_peak");
  const std::int64_t before = gauge.value();

  auto config = tiny_study_config(/*threads=*/2);
  auto count = std::make_shared<std::atomic<int>>(0);
  config.discovery_sink = [count](const core::Discovery&) {
    if (count->fetch_add(1) >= 50) {
      throw std::runtime_error("late failure");
    }
  };
  EXPECT_THROW(core::run_study(config), std::runtime_error);
  EXPECT_EQ(gauge.value(), before)
      << "queued-but-unobserved batches must decrement the mem gauge";
}

TEST(StudyErrorPathTest, CloseMidPushReleasesTheBlockedBatchBytes) {
  // The audited close-mid-push shape, pinned deterministically: the
  // producer accounted an hour's bytes into pipeline.batch.mem_peak and
  // then blocked inside push() on a full queue; the analyst died and
  // closed the queue underneath it. push() returns false and the
  // producer's `if (!queue.push(...)) mem_gauge.add(-bytes)` must give
  // exactly those bytes back — the batch was destroyed unobserved, so
  // nobody else ever will. (The run_study tests above cover this shape
  // probabilistically; this one forces the blocked-mid-push interleaving
  // every run.)
  auto& gauge = obs::Registry::instance().gauge("pipeline.batch.mem_peak");
  const std::int64_t before = gauge.value();

  util::BoundedQueue<net::FlowBatch> queue(1, "study.queue");
  net::FlowBatch filler;
  filler.reserve(8);
  const auto filler_bytes = static_cast<std::int64_t>(filler.resident_bytes());
  gauge.add(filler_bytes);
  ASSERT_TRUE(queue.push(std::move(filler)));  // queue now full

  std::atomic<bool> push_returned{false};
  std::thread producer([&] {
    net::FlowBatch blocked;
    blocked.reserve(64);
    const auto bytes = static_cast<std::int64_t>(blocked.resident_bytes());
    gauge.add(bytes);
    if (!queue.push(std::move(blocked))) gauge.add(-bytes);
    push_returned.store(true);
  });
  // Let the producer block at the capacity cap, then kill the queue the
  // way a dead analyst does.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  // Drain the backlog the way run_study's join guard does.
  while (auto batch = queue.pop()) {
    gauge.add(-static_cast<std::int64_t>(batch->resident_bytes()));
  }
  EXPECT_EQ(gauge.value(), before)
      << "a batch dropped by close-mid-push must release its gauge bytes";
}

TEST(StudyErrorPathTest, GraphSchedulerFailureRestoresTheMemGauge) {
  // Graph-mode run_study: hours are submitted as task subgraphs and the
  // mem gauge is released by the per-hour after-hook, which runs even
  // for hours aborted by fail-fast (the fan-in's finally executes on
  // skipped tasks). A discovery sink throwing mid-stream must surface
  // with its message intact and leave no gauge residual from the hours
  // that were in flight or submitted-but-never-run.
  auto& gauge = obs::Registry::instance().gauge("pipeline.batch.mem_peak");
  const std::int64_t before = gauge.value();

  auto config = tiny_study_config(/*threads=*/4);
  config.pipeline.scheduler = core::ShardScheduler::Graph;
  auto count = std::make_shared<std::atomic<int>>(0);
  config.discovery_sink = [count](const core::Discovery&) {
    if (count->fetch_add(1) >= 50) {
      throw std::runtime_error("sink rejected the discovery");
    }
  };
  try {
    core::run_study(config);
    FAIL() << "expected the fan-in exception to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sink rejected the discovery");
  }
  EXPECT_EQ(gauge.value(), before)
      << "aborted in-flight hours must release their gauge bytes";
}

// -------------------------------------------- FlowTupleStore prefetch

net::HourlyFlows make_hour(int interval) {
  net::HourlyFlows flows;
  flows.interval = interval;
  flows.start_time = util::AnalysisWindow::interval_start(interval);
  net::FlowTuple t;
  t.src = net::Ipv4Address::from_octets(192, 0, 2, 1);
  t.dst = net::Ipv4Address::from_octets(10, 0, 0, 1);
  t.src_port = 1024;
  t.dst_port = 23;
  t.protocol = net::Protocol::Tcp;
  t.tcp_flags = net::kSyn;
  t.ttl = 64;
  t.ip_length = 44;
  t.packet_count = 3;
  flows.records.push_back(t);
  return flows;
}

TEST(StorePrefetchErrorTest, VisitorExceptionJoinsTheReaderAndRethrows) {
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  for (int h = 0; h < 12; ++h) store.put(make_hour(h));

  int visited = 0;
  EXPECT_THROW(store.for_each(
                   [&visited](const net::FlowBatch&) {
                     if (++visited == 3) {
                       throw std::runtime_error("visitor failed");
                     }
                   },
                   /*prefetch=*/2),
               std::runtime_error);
  EXPECT_EQ(visited, 3);
}

TEST(StorePrefetchErrorTest, ThrowingVisitorLeavesNoMemGaugeResidual) {
  // Regression for the documented pipeline.batch.mem_peak residual: the
  // in-flight batch's bytes (and any batches stranded in the prefetch
  // queue) were added at enqueue time but never released when the
  // visitor threw, permanently inflating the surfaced gauge value. The
  // RAII release guard plus the unwind-path drain must return the gauge
  // exactly to its pre-iteration value.
  auto& gauge = obs::Registry::instance().gauge("pipeline.batch.mem_peak");
  const std::int64_t before = gauge.value();

  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  for (int h = 0; h < 12; ++h) store.put(make_hour(h));
  int visited = 0;
  EXPECT_THROW(store.for_each(
                   [&visited](const net::FlowBatch&) {
                     if (++visited == 2) {
                       throw std::runtime_error("visitor failed");
                     }
                   },
                   /*prefetch=*/4),
               std::runtime_error);
  EXPECT_EQ(gauge.value(), before)
      << "an unwound for_each must release every accounted batch byte";
}

TEST(StorePrefetchErrorTest, DecodeErrorSurfacesOnTheCallingThread) {
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  for (int h = 0; h < 4; ++h) store.put(make_hour(h));
  // Corrupt hour 2 in place: bad magic/truncation must throw from the
  // background reader and be rethrown here after the join.
  util::write_file(dir.path() / "flowtuple-0002.ift", "not a flowtuple file");

  std::vector<int> seen;
  EXPECT_THROW(store.for_each(
                   [&seen](const net::FlowBatch& batch) {
                     seen.push_back(batch.interval);
                   },
                   /*prefetch=*/2),
               std::exception);
  // Hours before the corrupt one were still delivered in order.
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0);
  EXPECT_EQ(seen[1], 1);
}

// ------------------------------------------ stream corrupt-hour quarantine

// A corrupt published hour used to propagate its util::IoError out of
// poll_once and kill the follow daemon. It must instead be quarantined:
// counted, skipped, and stepped over by the watermark, with the final
// report equal to a run over the surviving hours only.

TEST(StreamQuarantineTest, CorruptHourIsSkippedAndCounted) {
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  for (int h = 0; h < 6; ++h) store.put(make_hour(h));
  util::write_file(dir.path() / net::FlowTupleCodec::file_name(2),
                   "not a flowtuple file");

  inventory::IoTDeviceDatabase db;
  core::PipelineOptions popts;
  popts.threads = 1;
  popts.unknown_profile_hourly_floor = 1;
  core::StreamingStudy study(db, store, popts);
  study.follow([] { return true; });

  EXPECT_EQ(study.stats().hours_admitted, 6u)
      << "the quarantined hour still counts into the admission cadence";
  EXPECT_EQ(study.stats().hours_corrupt, 1u);
  EXPECT_EQ(study.watermark(), 6) << "the watermark must step past the hour";
  const core::Report report = study.finalize();
  // make_hour carries 3 packets; the corrupt hour contributes nothing.
  EXPECT_EQ(report.total_packets + report.unattributed_packets, 5u * 3u);
}

TEST(StreamQuarantineTest, GraphSchedulerQuarantinesOnItsLanes) {
  // Under the Graph scheduler the decode runs as a scheduler task; a
  // throwing task would fail the whole graph at the next drain. The
  // guarded loader must flag the hour instead and fold it empty.
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  for (int h = 0; h < 6; ++h) store.put(make_hour(h));
  util::write_file(dir.path() / net::FlowTupleCodec::file_name(3),
                   "still not a flowtuple file");

  inventory::IoTDeviceDatabase db;
  core::PipelineOptions popts;
  popts.scheduler = core::ShardScheduler::Graph;
  popts.threads = 2;
  popts.unknown_profile_hourly_floor = 1;
  core::StreamingStudy study(db, store, popts);
  study.follow([] { return true; });

  EXPECT_EQ(study.stats().hours_admitted, 6u);
  EXPECT_EQ(study.stats().hours_corrupt, 1u);
  EXPECT_EQ(study.watermark(), 6);
  const core::Report report = study.finalize();
  EXPECT_EQ(report.total_packets + report.unattributed_packets, 5u * 3u);
}

TEST(StreamQuarantineTest, TornCompressedHourQuarantines) {
  // Same discipline for the compressed format: a block torn mid-payload
  // (CRC/short-read territory) must quarantine, not kill the daemon.
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  store.set_write_format(telescope::StoreFormat::Compressed);
  for (int h = 0; h < 4; ++h) store.put(make_hour(h));
  const auto torn_path = dir.path() / net::CompressedFlowCodec::file_name(1);
  const std::string intact = util::read_file(torn_path);
  util::write_file(torn_path, intact.substr(0, intact.size() * 2 / 3));

  inventory::IoTDeviceDatabase db;
  core::PipelineOptions popts;
  popts.threads = 1;
  popts.unknown_profile_hourly_floor = 1;
  core::StreamingStudy study(db, store, popts);
  study.follow([] { return true; });

  EXPECT_EQ(study.stats().hours_corrupt, 1u);
  EXPECT_EQ(study.watermark(), 4);
  const core::Report report = study.finalize();
  EXPECT_EQ(report.total_packets + report.unattributed_packets, 3u * 3u);
}

}  // namespace
}  // namespace iotscope
