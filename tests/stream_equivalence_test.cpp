// Streaming-vs-batch equivalence: a StreamingStudy following a store
// while the rotating writer publishes hourly files from another thread
// must end on a report byte-identical to the batch pipeline over the
// same files — at every thread count, with eviction enabled, on both a
// normal and a heavy-hitter-dominated workload. Mid-stream snapshots
// must grow monotonically, and below-watermark arrivals must be dropped
// as late rather than admitted out of order. The concurrent tests pit
// the writer's atomic rename publication against the reader's directory
// polls; run under TSan (ctest label `tsan`) for full value.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/iotscope.hpp"
#include "core/report_text.hpp"
#include "core/stream.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "workload/engine.hpp"
#include "workload/rotating_writer.hpp"
#include "workload/synth.hpp"

namespace iotscope::core {
namespace {

workload::ScenarioConfig stream_config(double heavy_hitter_share = 0.0) {
  workload::ScenarioConfig config;
  config.inventory_scale = 0.005;
  config.traffic_scale = 0.001;
  config.noise_ratio = 0.05;
  config.heavy_hitter_share = heavy_hitter_share;
  return config;
}

PipelineOptions stream_pipeline_options(unsigned threads) {
  PipelineOptions options;
  options.threads = threads;
  // Floor 1 promotes even one-shot noise sources into unknown-source
  // profiles. Noise IPs are drawn fresh per packet, so most profiles go
  // idle immediately — the eviction path is guaranteed to run (asserted
  // below) while byte-identity must still hold.
  options.unknown_profile_hourly_floor = 1;
  return options;
}

StreamOptions tight_stream_options() {
  StreamOptions options;
  options.snapshot_every = 10;
  options.evict_after_hours = 2;
  options.poll_interval = std::chrono::milliseconds(1);
  return options;
}

std::string render_everything(const Report& report,
                              const inventory::IoTDeviceDatabase& inventory) {
  const auto character = characterize(report, inventory);
  return render_inference_report(report, character, inventory) +
         render_traffic_report(report, inventory);
}

/// The batch golden over an already-written store: plain for_each into a
/// sequential pipeline with the same promotion floor.
std::string batch_golden(const workload::Scenario& scenario,
                         const telescope::FlowTupleStore& store) {
  AnalysisPipeline pipeline(scenario.inventory, stream_pipeline_options(1));
  store.for_each(
      [&pipeline](const net::FlowBatch& batch) { pipeline.observe(batch); });
  return render_everything(pipeline.finalize(), scenario.inventory);
}

struct StreamRun {
  Report report;
  StreamStats stats;
  std::string final_snapshot_render;  ///< latest_snapshot() after finalize
};

/// Follows `store` on the calling thread while a writer thread rotates
/// the scenario's hours in, then finalizes. The stop predicate fires
/// only once the writer is done AND a poll found nothing, so every
/// published hour is admitted.
StreamRun stream_concurrently(const workload::Scenario& scenario,
                              const workload::ScenarioConfig& config,
                              const telescope::FlowTupleStore& store,
                              unsigned threads) {
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    workload::write_rotating(scenario, config, store);
    writer_done.store(true, std::memory_order_release);
  });

  StreamingStudy stream(scenario.inventory, store,
                        stream_pipeline_options(threads),
                        tight_stream_options());
  stream.follow(
      [&writer_done] { return writer_done.load(std::memory_order_acquire); });
  writer.join();

  StreamRun run;
  run.stats = stream.stats();
  run.report = stream.finalize();
  const auto latest = stream.latest_snapshot();
  run.final_snapshot_render =
      latest ? render_everything(*latest, scenario.inventory) : std::string();
  return run;
}

TEST(StreamEquivalenceTest, FinalSnapshotMatchesBatchAtEveryThreadCount) {
  const auto config = stream_config();
  const auto scenario = workload::build_scenario(config);

  // Golden from a dedicated pre-written store; the rotating writer is
  // deterministic in the seed, so every concurrent run below publishes
  // the identical file set.
  util::TempDir golden_dir;
  telescope::FlowTupleStore golden_store(golden_dir.path());
  workload::write_rotating(scenario, config, golden_store);
  const std::string golden = batch_golden(scenario, golden_store);
  const std::size_t hour_count = golden_store.intervals().size();

  for (const unsigned threads : {1u, 2u, 4u, 0u}) {
    SCOPED_TRACE(threads);
    util::TempDir dir;
    telescope::FlowTupleStore store(dir.path());
    const auto run = stream_concurrently(scenario, config, store, threads);
    EXPECT_EQ(render_everything(run.report, scenario.inventory), golden);
    EXPECT_EQ(run.final_snapshot_render, golden);
    EXPECT_EQ(run.stats.hours_admitted, hour_count);
    EXPECT_EQ(run.stats.hours_late, 0u);
    EXPECT_GT(run.stats.profiles_evicted, 0u)
        << "the floor-1 noise profiles must exercise eviction";
  }
}

TEST(StreamEquivalenceTest, HeavyHitterWorkloadStreamsIdentically) {
  // 80 % of every hour from one aggressive non-inventory source: the
  // partition skew that used to collapse static scheduling, now also
  // streamed with eviction on.
  const auto config = stream_config(/*heavy_hitter_share=*/0.8);
  const auto scenario = workload::build_scenario(config);

  util::TempDir golden_dir;
  telescope::FlowTupleStore golden_store(golden_dir.path());
  workload::write_rotating(scenario, config, golden_store);
  const std::string golden = batch_golden(scenario, golden_store);
  const std::size_t hour_count = golden_store.intervals().size();

  for (const unsigned threads : {2u, 0u}) {
    SCOPED_TRACE(threads);
    util::TempDir dir;
    telescope::FlowTupleStore store(dir.path());
    const auto run = stream_concurrently(scenario, config, store, threads);
    EXPECT_EQ(render_everything(run.report, scenario.inventory), golden);
    EXPECT_EQ(run.stats.hours_admitted, hour_count);
    EXPECT_EQ(run.stats.hours_late, 0u);
  }
}

TEST(StreamEquivalenceTest, CompressedRotatingStoreStreamsIdentically) {
  // The rotating writer publishing compressed ".iftc" hours must be
  // invisible to the follower: same watcher admission, same report
  // bytes as the raw-format batch golden.
  const auto config = stream_config();
  const auto scenario = workload::build_scenario(config);

  util::TempDir golden_dir;
  telescope::FlowTupleStore golden_store(golden_dir.path());
  workload::write_rotating(scenario, config, golden_store);
  const std::string golden = batch_golden(scenario, golden_store);
  const std::size_t hour_count = golden_store.intervals().size();

  for (const unsigned threads : {1u, 0u}) {
    SCOPED_TRACE(threads);
    util::TempDir dir;
    telescope::FlowTupleStore store(dir.path());
    store.set_write_format(telescope::StoreFormat::Compressed,
                           /*block_records=*/512);
    const auto run = stream_concurrently(scenario, config, store, threads);
    EXPECT_EQ(render_everything(run.report, scenario.inventory), golden);
    EXPECT_EQ(run.final_snapshot_render, golden);
    EXPECT_EQ(run.stats.hours_admitted, hour_count);
    EXPECT_EQ(run.stats.hours_late, 0u);

    // The writer really did publish columnar files, not raw ones.
    std::size_t iftc = 0, ift = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
      const auto ext = entry.path().extension();
      if (ext == ".iftc") ++iftc;
      if (ext == ".ift") ++ift;
    }
    EXPECT_EQ(iftc, hour_count);
    EXPECT_EQ(ift, 0u);
  }
}

TEST(StreamEquivalenceTest, EvictionIsInvisibleInTheFinalReport) {
  // Aggressive eviction (idle for one hour) against no eviction at all,
  // over the same files: the frozen-archive fold must reproduce the
  // unevicted report bytes exactly.
  const auto config = stream_config();
  const auto scenario = workload::build_scenario(config);
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  workload::write_rotating(scenario, config, store);

  auto run_with_evict_after = [&](int evict_after_hours) {
    auto options = tight_stream_options();
    options.evict_after_hours = evict_after_hours;
    StreamingStudy stream(scenario.inventory, store,
                          stream_pipeline_options(1), options);
    stream.poll_once();
    const Report report = stream.finalize();
    return std::make_pair(render_everything(report, scenario.inventory),
                          stream.stats().profiles_evicted);
  };

  const auto [evicted_render, evicted_count] = run_with_evict_after(1);
  const auto [unevicted_render, unevicted_count] = run_with_evict_after(0);
  EXPECT_GT(evicted_count, 0u);
  EXPECT_EQ(unevicted_count, 0u);
  EXPECT_EQ(evicted_render, unevicted_render);
}

TEST(StreamEquivalenceTest, CorruptMidStreamHoursQuarantineByteIdentically) {
  // The malformed built-in publishes three hostile hours (torn block,
  // truncated record, hostile header) with the same atomic rename as
  // real hours, so a concurrent follower hits them mid-stream at full
  // speed. It must quarantine all three and still end byte-identical to
  // a batch run that skipped the same hours.
  const auto script = workload::builtin_scenario("malformed");
  ASSERT_TRUE(script.has_value());
  const workload::ScenarioEngine engine(*script);
  const auto& inventory = engine.scenario().inventory;

  util::TempDir golden_dir;
  telescope::FlowTupleStore golden_store(golden_dir.path());
  engine.write_to_store(golden_store);
  AnalysisPipeline pipeline(inventory, stream_pipeline_options(1));
  std::size_t skipped = 0;
  for (const int interval : golden_store.intervals()) {
    try {
      if (auto batch = golden_store.get_batch(interval)) {
        pipeline.observe(*batch);
      }
    } catch (const util::IoError&) {
      ++skipped;
    }
  }
  ASSERT_EQ(skipped, 3u);
  const std::string golden =
      render_everything(pipeline.finalize(), inventory);

  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    util::TempDir dir;
    telescope::FlowTupleStore store(dir.path());
    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      engine.write_to_store(store);
      writer_done.store(true, std::memory_order_release);
    });
    StreamingStudy stream(inventory, store, stream_pipeline_options(threads),
                          tight_stream_options());
    stream.follow([&writer_done] {
      return writer_done.load(std::memory_order_acquire);
    });
    writer.join();
    EXPECT_EQ(stream.stats().hours_corrupt, 3u);
    EXPECT_EQ(stream.stats().hours_late, 0u);
    EXPECT_EQ(stream.stats().hours_admitted,
              static_cast<std::uint64_t>(util::AnalysisWindow::kHours));
    EXPECT_EQ(render_everything(stream.finalize(), inventory), golden);
  }
}

TEST(StreamSnapshotTest, MidStreamSnapshotsGrowMonotonically) {
  // Deterministic pacing: capture all hours first, publish them into the
  // store one at a time, and poll after each publication — every
  // periodic snapshot boundary is observed exactly once.
  const auto config = stream_config();
  const auto scenario = workload::build_scenario(config);
  std::vector<net::FlowBatch> batches;
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet),
      [&batches](net::FlowBatch&& batch) {
        batches.push_back(std::move(batch));
      });
  workload::synthesize_into(scenario, config, capture);
  ASSERT_GT(batches.size(), 20u);

  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  StreamingStudy stream(scenario.inventory, store, stream_pipeline_options(1),
                        tight_stream_options());

  std::shared_ptr<const Report> previous;
  int previous_watermark = 0;
  std::size_t snapshots_seen = 0;
  for (const auto& batch : batches) {
    store.put(batch);
    ASSERT_EQ(stream.poll_once(), 1u);
    EXPECT_EQ(stream.watermark(), batch.interval + 1);
    EXPECT_GT(stream.watermark(), previous_watermark);
    previous_watermark = stream.watermark();

    const auto snapshot = stream.latest_snapshot();
    if (snapshot && snapshot != previous) {
      ++snapshots_seen;
      if (previous) {
        // Cumulative quantities never move backwards between snapshots.
        EXPECT_GE(snapshot->total_packets, previous->total_packets);
        EXPECT_GE(snapshot->discovered_total(), previous->discovered_total());
        EXPECT_GE(snapshot->devices.size(), previous->devices.size());
        EXPECT_GE(snapshot->tcp_scan_total, previous->tcp_scan_total);
        EXPECT_GE(snapshot->backscatter_total, previous->backscatter_total);
      }
      previous = snapshot;
    }
  }
  EXPECT_EQ(snapshots_seen,
            batches.size() / static_cast<std::size_t>(
                                 tight_stream_options().snapshot_every));
  EXPECT_EQ(stream.stats().snapshots_published, snapshots_seen);

  // The stream's end state is the batch report.
  const std::string golden = batch_golden(scenario, store);
  EXPECT_EQ(render_everything(stream.finalize(), scenario.inventory), golden);
}

TEST(StreamSnapshotTest, LatestSnapshotIsSafeToReadDuringFollow) {
  // The publication race this pins down: follow()'s snapshot publication
  // on the streaming thread vs latest_snapshot()/latest_published() on
  // dashboard/server threads. Publication must be a single atomic store
  // of an epoch+report bundle, so a reader can only ever observe a
  // fully-built report whose epoch and packet totals never move
  // backwards. Run under TSan (ctest label `tsan`) for full value —
  // a plain shared_ptr store here is a data race TSan flags instantly.
  const auto config = stream_config();
  const auto scenario = workload::build_scenario(config);
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    workload::write_rotating(scenario, config, store);
    writer_done.store(true, std::memory_order_release);
  });

  auto options = tight_stream_options();
  options.snapshot_every = 2;  // many publications → many racing reads
  StreamingStudy stream(scenario.inventory, store, stream_pipeline_options(2),
                        options);

  // Violations are tallied instead of EXPECTed inside the reader threads
  // (gtest assertions are not thread-safe).
  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> epoch_regressions{0};
  std::atomic<std::uint64_t> packet_regressions{0};
  std::atomic<std::uint64_t> bundle_mismatches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      std::uint64_t last_packets = 0;
      while (!stop_readers.load(std::memory_order_acquire)) {
        if (const auto published = stream.latest_published()) {
          if (published->epoch < last_epoch) ++epoch_regressions;
          if (published->report.total_packets < last_packets) {
            ++packet_regressions;
          }
          last_epoch = published->epoch;
          last_packets = published->report.total_packets;
          // The aliasing accessor must hand out a report at least as new
          // as the bundle we just saw (totals are cumulative).
          const auto aliased = stream.latest_snapshot();
          if (!aliased || aliased->total_packets <
                              published->report.total_packets) {
            ++bundle_mismatches;
          }
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  stream.follow(
      [&writer_done] { return writer_done.load(std::memory_order_acquire); });
  writer.join();
  const Report final_report = stream.finalize();
  stop_readers.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_EQ(packet_regressions.load(), 0u);
  EXPECT_EQ(bundle_mismatches.load(), 0u);
  EXPECT_GT(stream.stats().snapshots_published, 0u);

  // finalize() published the end state as the newest epoch: the epoch
  // accessor and the published bundle agree, and the bundle's report is
  // the finalized one.
  EXPECT_EQ(stream.epoch(), stream.stats().snapshots_published);
  const auto published = stream.latest_published();
  ASSERT_TRUE(published);
  EXPECT_EQ(published->epoch, stream.epoch());
  EXPECT_EQ(render_everything(published->report, scenario.inventory),
            render_everything(final_report, scenario.inventory));
}

TEST(StreamWatermarkTest, BelowWatermarkArrivalsAreDroppedAsLate) {
  const auto config = stream_config();
  const auto scenario = workload::build_scenario(config);
  std::vector<net::FlowBatch> batches;
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet),
      [&batches](net::FlowBatch&& batch) {
        batches.push_back(std::move(batch));
      });
  workload::synthesize_into(scenario, config, capture);
  ASSERT_GT(batches.size(), 8u);

  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  StreamingStudy stream(scenario.inventory, store, stream_pipeline_options(1),
                        tight_stream_options());

  // Hour 5 lands first: watermark jumps past the earlier hours.
  store.put(batches[5]);
  EXPECT_EQ(stream.poll_once(), 1u);
  EXPECT_EQ(stream.watermark(), batches[5].interval + 1);

  // Hour 3 surfaces afterwards — below the watermark, dropped as late.
  store.put(batches[3]);
  EXPECT_EQ(stream.poll_once(), 0u);
  EXPECT_EQ(stream.stats().hours_late, 1u);
  EXPECT_EQ(stream.watermark(), batches[5].interval + 1);

  // Hour 7 is above the watermark and admits normally.
  store.put(batches[7]);
  EXPECT_EQ(stream.poll_once(), 1u);
  EXPECT_EQ(stream.stats().hours_admitted, 2u);
  EXPECT_EQ(stream.stats().hours_late, 1u);
  EXPECT_EQ(stream.watermark(), batches[7].interval + 1);

  // The late hour's packets are genuinely absent from the report.
  const auto report = stream.finalize();
  EXPECT_EQ(report.total_packets + report.unattributed_packets,
            batches[5].total_packets() + batches[7].total_packets());
}

}  // namespace
}  // namespace iotscope::core
