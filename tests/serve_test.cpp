// The embedded query server, bottom-up: HTTP parsing and response
// framing (pure, no sockets), the epoch-keyed sharded LRU cache,
// endpoint routing through ReportServer::handle() against a real
// pipeline report, JSON escaping of hostile operator-supplied inventory
// strings, and finally the full socket path — concurrent clients
// querying an ephemeral-port server while a StreamingStudy ingests a
// rotating store underneath it. The concurrent test races snapshot
// publication against query-side snapshot loads and the shared cache;
// run under TSan (ctest label `tsan`) for full value.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/iotscope.hpp"
#include "core/stream.hpp"
#include "inventory/database.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"
#include "serve/report_json.hpp"
#include "serve/server.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "workload/rotating_writer.hpp"
#include "workload/synth.hpp"

namespace iotscope::serve {
namespace {

// ------------------------------------------------------------ helpers

/// Minimal recursive-descent JSON validator (same idiom as the obs
/// metrics test): enough to prove a response body is a well-formed
/// document, which is exactly what the escaping bugs break.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_lit();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++pos_;
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(text_[pos_])) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character: invalid JSON
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool valid_json(const std::string& text) { return JsonChecker(text).valid(); }

/// "…"epoch": 42…" -> 42; 0 if the field is absent.
std::uint64_t extract_u64(const std::string& body, std::string_view field) {
  std::string needle = "\"";
  needle += field;
  needle += "\": ";
  const auto pos = body.find(needle);
  if (pos == std::string::npos) return 0;
  const auto parsed = util::parse_decimal(std::string_view(body).substr(
      pos + needle.size(),
      body.find_first_not_of("0123456789", pos + needle.size()) - pos -
          needle.size()));
  return parsed.value_or(0);
}

workload::ScenarioConfig tiny_config() {
  workload::ScenarioConfig config;
  config.inventory_scale = 0.005;
  config.traffic_scale = 0.001;
  config.noise_ratio = 0.05;
  return config;
}

/// A real report out of the batch pipeline, shared by the routing tests.
struct Fixture {
  workload::Scenario scenario;
  std::shared_ptr<const core::Report> report;

  explicit Fixture(const workload::ScenarioConfig& config = tiny_config())
      : scenario(workload::build_scenario(config)) {
    util::TempDir dir;
    telescope::FlowTupleStore store(dir.path());
    workload::write_rotating(scenario, config, store);
    core::AnalysisPipeline pipeline(scenario.inventory, {});
    store.for_each(
        [&pipeline](const net::FlowBatch& batch) { pipeline.observe(batch); });
    report = std::make_shared<const core::Report>(pipeline.finalize());
  }
};

const Fixture& fixture() {
  static const Fixture shared;
  return shared;
}

// --------------------------------------------------------- HTTP units

TEST(HttpParseTest, ParsesRequestLineAndQuery) {
  const auto request = parse_request(
      "GET /report/ports/top?k=5&unused=x%20y HTTP/1.1\r\n"
      "Host: localhost\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(request);
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->target, "/report/ports/top?k=5&unused=x%20y");
  EXPECT_EQ(request->path, "/report/ports/top");
  ASSERT_TRUE(request->param("k"));
  EXPECT_EQ(*request->param("k"), "5");
  ASSERT_TRUE(request->param("unused"));
  EXPECT_EQ(*request->param("unused"), "x y");
  EXPECT_FALSE(request->param("absent"));
  EXPECT_TRUE(request->keep_alive);
}

TEST(HttpParseTest, PercentDecodesThePath) {
  const auto request =
      parse_request("GET /report/isp/Deutsche%20Telekom HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request);
  EXPECT_EQ(request->path, "/report/isp/Deutsche Telekom");
}

TEST(HttpParseTest, ConnectionCloseAndHttp10DisableKeepAlive) {
  const auto explicit_close =
      parse_request("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(explicit_close);
  EXPECT_FALSE(explicit_close->keep_alive);

  const auto http10 = parse_request("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(http10);
  EXPECT_FALSE(http10->keep_alive);
}

TEST(HttpParseTest, RejectsMalformedRequestLines) {
  EXPECT_FALSE(parse_request(""));
  EXPECT_FALSE(parse_request("\r\n\r\n"));
  EXPECT_FALSE(parse_request("GET\r\n\r\n"));
  EXPECT_FALSE(parse_request("GET /\r\n\r\n"));          // no version
  EXPECT_FALSE(parse_request("GET / SPDY/3\r\n\r\n"));   // wrong protocol
  EXPECT_FALSE(parse_request("GET no-slash HTTP/1.1\r\n\r\n"));
}

TEST(HttpParseTest, UrlDecodeHandlesEscapesAndGarbage) {
  EXPECT_EQ(url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(url_decode("%2Fetc%2fpasswd"), "/etc/passwd");
  EXPECT_EQ(url_decode("100%"), "100%");     // truncated escape: literal
  EXPECT_EQ(url_decode("%zz"), "%zz");       // non-hex escape: literal
  EXPECT_EQ(url_decode(""), "");
}

TEST(HttpRenderTest, FramesWithContentLength) {
  const std::string response = render_response(200, "{\"x\": 1}\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 200 OK\r\n"));
  EXPECT_NE(response.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_TRUE(response.ends_with("\r\n\r\n{\"x\": 1}\n"));

  const std::string closing = render_response(404, "{}", "application/json",
                                              /*keep_alive=*/false);
  EXPECT_TRUE(closing.starts_with("HTTP/1.1 404 Not Found\r\n"));
  EXPECT_NE(closing.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpRenderTest, ErrorBodyEscapesTheMessage) {
  const std::string body = error_body("bad \"value\" \\ here");
  EXPECT_TRUE(valid_json(body));
  EXPECT_NE(body.find("\\\"value\\\""), std::string::npos);
}

// --------------------------------------------------------- cache units

TEST(ResponseCacheTest, HitsAfterPutAndCountsStats) {
  ResponseCache cache(/*shards=*/2, /*capacity_per_shard=*/4);
  EXPECT_EQ(cache.get(1, "/a"), nullptr);
  cache.put(1, "/a", std::make_shared<const std::string>("body-a"));
  const auto hit = cache.get(1, "/a");
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, "body-a");

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResponseCacheTest, EpochMismatchInvalidatesLazily) {
  ResponseCache cache(1, 4);
  cache.put(1, "/a", std::make_shared<const std::string>("epoch-1"));
  ASSERT_TRUE(cache.get(1, "/a"));

  // Snapshot swap: same key under the new epoch misses and drops the
  // stale entry.
  EXPECT_EQ(cache.get(2, "/a"), nullptr);
  EXPECT_EQ(cache.stats().invalidated, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // Refill under the new epoch; the old epoch must not resurrect it.
  cache.put(2, "/a", std::make_shared<const std::string>("epoch-2"));
  const auto hit = cache.get(2, "/a");
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, "epoch-2");
  EXPECT_EQ(cache.get(1, "/a"), nullptr);
}

TEST(ResponseCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  ResponseCache cache(1, 2);
  cache.put(1, "/a", std::make_shared<const std::string>("a"));
  cache.put(1, "/b", std::make_shared<const std::string>("b"));
  ASSERT_TRUE(cache.get(1, "/a"));  // /a is now MRU, /b is LRU

  cache.put(1, "/c", std::make_shared<const std::string>("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.get(1, "/a"));
  EXPECT_FALSE(cache.get(1, "/b"));  // the LRU victim
  EXPECT_TRUE(cache.get(1, "/c"));
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResponseCacheTest, PutReplacesInPlace) {
  ResponseCache cache(1, 2);
  cache.put(1, "/a", std::make_shared<const std::string>("old"));
  cache.put(2, "/a", std::make_shared<const std::string>("new"));
  EXPECT_EQ(cache.stats().entries, 1u);
  const auto hit = cache.get(2, "/a");
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, "new");
}

// ------------------------------------------------------ routing units

ServerOptions no_socket_options() {
  ServerOptions options;
  options.threads = 1;
  return options;
}

TEST(ServeRoutingTest, AnswersEveryEndpointWithValidJson) {
  const auto& fx = fixture();
  ReportServer server(
      fx.scenario.inventory, [&fx] { return Snapshot{7, fx.report}; },
      no_socket_options());

  const auto check_ok = [&](const std::string& target) {
    const auto response = server.handle("GET", target);
    EXPECT_EQ(response.status, 200) << target << ": " << *response.body;
    EXPECT_TRUE(valid_json(*response.body)) << target << ": "
                                            << *response.body;
    EXPECT_EQ(extract_u64(*response.body, "epoch"), 7u) << target;
    return *response.body;
  };

  const auto summary = check_ok("/report/summary");
  EXPECT_EQ(extract_u64(summary, "total_packets"), fx.report->total_packets);
  EXPECT_EQ(extract_u64(summary, "compromised_devices"),
            fx.report->discovered_total());

  // Every country/ISP/type that actually hosts devices must resolve.
  const auto& db = fx.scenario.inventory;
  ASSERT_FALSE(fx.report->devices.empty());
  const auto& device = db.devices()[fx.report->devices.front().device];
  check_ok("/report/country/" + db.country_name(device.country));
  check_ok("/report/isp/" + db.isp_name(device.isp));
  check_ok("/report/type/Router");

  const auto ports = check_ok("/report/ports/top?k=3");
  EXPECT_LE(extract_u64(ports, "k"), 3u);
  check_ok("/report/ports/top");  // default k

  const auto timeline =
      check_ok("/report/device/" + device.ip.to_string() + "/timeline");
  EXPECT_NE(timeline.find("\"classes\""), std::string::npos);

  // Case-insensitive name matching.
  check_ok("/report/type/router");

  // /healthz and /metrics are always on.
  EXPECT_EQ(server.handle("GET", "/healthz").status, 200);
  const auto metrics = server.handle("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(valid_json(*metrics.body));
}

TEST(ServeRoutingTest, ErrorsArePointedAndJson) {
  const auto& fx = fixture();
  ReportServer server(
      fx.scenario.inventory, [&fx] { return Snapshot{1, fx.report}; },
      no_socket_options());

  const auto expect_status = [&](const std::string& target, int status) {
    const auto response = server.handle("GET", target);
    EXPECT_EQ(response.status, status) << target;
    EXPECT_TRUE(valid_json(*response.body)) << target;
  };

  expect_status("/nope", 404);
  expect_status("/report/unknown", 404);
  expect_status("/report/country/Atlantis", 404);
  expect_status("/report/isp/No Such ISP", 404);
  expect_status("/report/type/Toaster", 404);
  expect_status("/report/ports/top?k=0", 400);
  expect_status("/report/ports/top?k=banana", 400);
  expect_status("/report/device/not-an-ip/timeline", 400);
  expect_status("/report/device/203.0.113.250/timeline", 404);  // unobserved
  EXPECT_EQ(server.handle("POST", "/report/summary").status, 405);
}

TEST(ServeRoutingTest, Answers503UntilTheFirstSnapshot) {
  const auto& fx = fixture();
  std::atomic<bool> published{false};
  ReportServer server(
      fx.scenario.inventory,
      [&]() -> Snapshot {
        if (!published.load()) return {};
        return Snapshot{1, fx.report};
      },
      no_socket_options());

  EXPECT_EQ(server.handle("GET", "/report/summary").status, 503);
  EXPECT_EQ(server.handle("GET", "/healthz").status, 200);  // still alive
  published.store(true);
  EXPECT_EQ(server.handle("GET", "/report/summary").status, 200);
}

TEST(ServeRoutingTest, CacheHitsWithinAnEpochInvalidateAcrossEpochs) {
  const auto& fx = fixture();
  std::atomic<std::uint64_t> epoch{1};
  ReportServer server(
      fx.scenario.inventory,
      [&] { return Snapshot{epoch.load(), fx.report}; }, no_socket_options());

  const auto first = server.handle("GET", "/report/summary");
  const auto second = server.handle("GET", "/report/summary");
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(second.status, 200);
  // Second answer is the same cached object, not a re-render.
  EXPECT_EQ(first.body.get(), second.body.get());
  EXPECT_EQ(server.cache_stats().hits, 1u);

  // Epoch bump = snapshot swap: the cached body must not be served.
  epoch.store(2);
  const auto third = server.handle("GET", "/report/summary");
  EXPECT_EQ(third.status, 200);
  EXPECT_NE(third.body.get(), first.body.get());
  EXPECT_EQ(extract_u64(*third.body, "epoch"), 2u);
  EXPECT_EQ(server.cache_stats().invalidated, 1u);

  // Distinct parameters are distinct cache keys.
  const auto k2 = server.handle("GET", "/report/ports/top?k=2");
  const auto k3 = server.handle("GET", "/report/ports/top?k=3");
  EXPECT_NE(k2.body.get(), k3.body.get());
}

// ---------------------------------------------- hostile-string escaping

TEST(ServeEscapingTest, HostileIspNameSurvivesEveryJsonPath) {
  // The inventory CSV is operator input: a vendor/ISP name with quotes,
  // backslashes, and control characters must never corrupt a JSON
  // document. This used to break --metrics-out too; both paths now go
  // through util::json_escape.
  const std::string hostile = "Evil \"ISP\" \\ Corp\nLine2\tEnd";
  inventory::IoTDeviceDatabase db;
  const auto isp = db.add_isp(hostile, /*country=*/0);
  inventory::DeviceRecord device;
  device.ip = *net::Ipv4Address::parse("198.51.100.7");
  device.country = 0;
  device.isp = isp;
  ASSERT_TRUE(db.add_device(device));

  const core::Report empty_report;
  const auto isp_body = render_isp(1, empty_report, db, hostile);
  ASSERT_TRUE(isp_body);
  EXPECT_TRUE(valid_json(*isp_body)) << *isp_body;
  EXPECT_NE(isp_body->find("Evil \\\"ISP\\\" \\\\ Corp\\nLine2\\tEnd"),
            std::string::npos)
      << *isp_body;

  // An inventory device renders even unobserved ("deployed but quiet"),
  // and its hostile ISP name must come out escaped there too.
  const auto timeline_body = render_device_timeline(
      1, empty_report, db, *net::Ipv4Address::parse("198.51.100.7"));
  ASSERT_TRUE(timeline_body);
  EXPECT_TRUE(valid_json(*timeline_body)) << *timeline_body;
  EXPECT_NE(timeline_body->find("\\\"ISP\\\""), std::string::npos);

  // Outside the inventory and never profiled: genuinely unknown.
  EXPECT_FALSE(render_device_timeline(
      1, empty_report, db, *net::Ipv4Address::parse("203.0.113.199")));

  // The shared escaper itself, exhaustively over the control range.
  std::string control;
  for (char c = 1; c < 0x20; ++c) control += c;
  const std::string quoted = util::json_quote(control);
  EXPECT_TRUE(valid_json(quoted)) << quoted;
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_quote("a\"b"), "\"a\\\"b\"");
}

TEST(ServeEscapingTest, HostileNameThroughTheFullServer) {
  const std::string hostile = "Quote\"Back\\slash";
  inventory::IoTDeviceDatabase db;
  const auto isp = db.add_isp(hostile, /*country=*/0);
  inventory::DeviceRecord device;
  device.ip = *net::Ipv4Address::parse("198.51.100.9");
  device.isp = isp;
  ASSERT_TRUE(db.add_device(device));

  auto report = std::make_shared<const core::Report>();
  ReportServer server(
      db, [report] { return Snapshot{1, report}; }, no_socket_options());
  const auto response =
      server.handle("GET", "/report/isp/Quote%22Back%5Cslash");
  EXPECT_EQ(response.status, 200) << *response.body;
  EXPECT_TRUE(valid_json(*response.body)) << *response.body;
}

// ------------------------------------------------------- socket e2e

TEST(ServeE2eTest, ServesOverRealSocketsWithKeepAlive) {
  const auto& fx = fixture();
  ServerOptions options;
  options.threads = 2;
  ReportServer server(
      fx.scenario.inventory, [&fx] { return Snapshot{3, fx.report}; },
      options);
  server.start();
  ASSERT_GT(server.port(), 0);

  HttpClient client(server.port());
  // Several requests over one keep-alive connection.
  for (const char* target :
       {"/healthz", "/report/summary", "/report/summary", "/metrics"}) {
    const auto response = client.get(target);
    ASSERT_TRUE(response) << target;
    EXPECT_EQ(response->status, 200) << target;
    EXPECT_TRUE(valid_json(response->body)) << target;
  }
  const auto missing = client.get("/report/country/Atlantis");
  ASSERT_TRUE(missing);
  EXPECT_EQ(missing->status, 404);

  // One-shot convenience path.
  const auto oneshot = http_get(server.port(), "/report/summary");
  ASSERT_TRUE(oneshot);
  EXPECT_EQ(oneshot->status, 200);
  EXPECT_EQ(extract_u64(oneshot->body, "total_packets"),
            fx.report->total_packets);

  server.stop();
  EXPECT_FALSE(server.running());
  // A stopped server refuses connections.
  EXPECT_FALSE(http_get(server.port(), "/healthz"));
}

TEST(ServeE2eTest, ConcurrentQueriesDuringStreamingIngest) {
  // The acceptance scenario: an ephemeral-port server fronting a
  // StreamingStudy while the rotating writer lands hours underneath it.
  // Client threads hammer every endpoint throughout; every response must
  // parse, and the epochs observed by any one client must never move
  // backwards.
  const auto config = tiny_config();
  const auto scenario = workload::build_scenario(config);
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());

  core::StreamOptions stream_options;
  stream_options.snapshot_every = 2;  // many epochs while we query
  stream_options.poll_interval = std::chrono::milliseconds(1);
  core::PipelineOptions pipeline_options;
  pipeline_options.threads = 2;
  core::StreamingStudy stream(scenario.inventory, store, pipeline_options,
                              stream_options);

  // One more worker than concurrent keep-alive clients: a long-lived
  // connection pins its worker for its whole lifetime, so the final
  // one-shot verification below needs a free slot of its own.
  ServerOptions server_options;
  server_options.threads = 3;
  ReportServer server(
      scenario.inventory,
      [&stream]() -> Snapshot {
        auto published = stream.latest_published();
        if (!published) return {};
        return Snapshot{published->epoch,
                        std::shared_ptr<const core::Report>(
                            published, &published->report)};
      },
      server_options);
  server.start();

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    workload::write_rotating(scenario, config, store);
    writer_done.store(true, std::memory_order_release);
  });

  std::atomic<bool> stop_clients{false};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> ok_responses{0};
  std::atomic<std::uint64_t> parse_failures{0};
  std::atomic<std::uint64_t> epoch_regressions{0};
  const std::vector<std::string> targets = {
      "/healthz",
      "/report/summary",
      "/report/ports/top?k=5",
      "/report/type/Router",
      "/metrics",
  };
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client(server.port());
      std::uint64_t last_epoch = 0;
      std::size_t i = static_cast<std::size_t>(c);
      while (!stop_clients.load(std::memory_order_acquire)) {
        const auto& target = targets[i++ % targets.size()];
        auto response = client.get(target);
        if (!response) {  // broken pipe or idle close: reconnect
          try {
            client = HttpClient(server.port());
          } catch (const util::IoError&) {
          }
          continue;
        }
        responses.fetch_add(1, std::memory_order_relaxed);
        if (response->status == 200) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
          if (!valid_json(response->body)) {
            parse_failures.fetch_add(1, std::memory_order_relaxed);
          }
          const auto epoch = extract_u64(response->body, "epoch");
          if (epoch != 0) {
            if (epoch < last_epoch) {
              epoch_regressions.fetch_add(1, std::memory_order_relaxed);
            }
            last_epoch = epoch;
          }
        }
      }
    });
  }

  stream.follow(
      [&writer_done] { return writer_done.load(std::memory_order_acquire); });
  writer.join();
  const core::Report final_report = stream.finalize();

  // Release the keep-alive connections (each pins a worker) before the
  // one-shot verification connection needs to be served.
  stop_clients.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  // Post-finalize: the served snapshot is the final report.
  const auto final_summary = http_get(server.port(), "/report/summary");
  ASSERT_TRUE(final_summary);
  EXPECT_EQ(final_summary->status, 200);
  EXPECT_EQ(extract_u64(final_summary->body, "total_packets"),
            final_report.total_packets);
  EXPECT_EQ(extract_u64(final_summary->body, "epoch"), stream.epoch());

  server.stop();

  EXPECT_GT(responses.load(), 0u);
  EXPECT_GT(ok_responses.load(), 0u);
  EXPECT_EQ(parse_failures.load(), 0u);
  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_GT(stream.stats().snapshots_published, 0u);

  const auto cache = server.cache_stats();
  EXPECT_GT(cache.hits + cache.misses, 0u);
}

}  // namespace
}  // namespace iotscope::serve
