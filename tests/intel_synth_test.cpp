// Tests for the scenario-correlated intelligence synthesizers (threat
// repository and malware corpus) and the resolver persistence.
#include <gtest/gtest.h>

#include <set>

#include "intel/synth.hpp"
#include "util/io.hpp"

namespace iotscope::intel {
namespace {

workload::ScenarioConfig small_config() {
  workload::ScenarioConfig config;
  config.inventory_scale = 0.02;
  config.traffic_scale = 0.004;
  return config;
}

class IntelSynthTest : public ::testing::Test {
 protected:
  static const workload::Scenario& scenario() {
    static const workload::Scenario instance =
        workload::build_scenario(small_config());
    return instance;
  }
};

TEST_F(IntelSynthTest, ThreatRepositoryIsDeterministic) {
  const auto a = synthesize_threat_repository(scenario(), small_config());
  const auto b = synthesize_threat_repository(scenario(), small_config());
  EXPECT_EQ(a.event_count(), b.event_count());
  EXPECT_EQ(a.flagged_ips(), b.flagged_ips());
}

TEST_F(IntelSynthTest, FlagsOnlyCompromisedDeviceIps) {
  const auto repo = synthesize_threat_repository(scenario(), small_config());
  std::set<std::uint32_t> compromised_ips;
  for (const auto& plan : scenario().truth.plans) {
    compromised_ips.insert(
        scenario().inventory.devices()[plan.device].ip.value());
  }
  // Every flagged IP must belong to a ground-truth compromised device.
  std::size_t checked = 0;
  for (const auto& plan : scenario().truth.plans) {
    const auto ip = scenario().inventory.devices()[plan.device].ip;
    if (repo.flagged(ip)) ++checked;
  }
  EXPECT_EQ(checked, repo.flagged_ips());
  EXPECT_GT(checked, 0u);
}

TEST_F(IntelSynthTest, ScriptedHeroesAreFlaggedForScanning) {
  const auto repo = synthesize_threat_repository(scenario(), small_config());
  std::size_t heroes_flagged = 0;
  std::size_t heroes_total = 0;
  for (const auto& plan : scenario().truth.plans) {
    if (plan.scan.hero < 0) continue;
    ++heroes_total;
    const auto ip = scenario().inventory.devices()[plan.device].ip;
    if (repo.has_category(ip, ThreatCategory::Scanning)) ++heroes_flagged;
  }
  // "All but two" of the CWMP CPS heroes are confirmed; everything else is.
  EXPECT_GE(heroes_flagged + 2, heroes_total);
  EXPECT_GT(heroes_flagged, 0u);
}

TEST_F(IntelSynthTest, SshHeroesCarryBruteForceCategory) {
  const auto repo = synthesize_threat_repository(scenario(), small_config());
  for (const auto& plan : scenario().truth.plans) {
    if (plan.scan.hero < 0) continue;
    const auto& hero =
        workload::scan_heroes()[static_cast<std::size_t>(plan.scan.hero)];
    if (hero.service != "SSH") continue;
    const auto ip = scenario().inventory.devices()[plan.device].ip;
    EXPECT_TRUE(repo.has_category(ip, ThreatCategory::BruteForce))
        << hero.label;
  }
}

TEST_F(IntelSynthTest, ScriptedDosVictimsAreMalwareLinked) {
  const auto repo = synthesize_threat_repository(scenario(), small_config());
  for (const auto& plan : scenario().truth.plans) {
    for (const auto& attack : plan.attacks) {
      if (attack.event < 0) continue;
      const auto ip = scenario().inventory.devices()[plan.device].ip;
      EXPECT_TRUE(repo.has_category(ip, ThreatCategory::Malware))
          << "scripted victim event " << attack.event;
    }
  }
}

TEST_F(IntelSynthTest, MalwareCorpusLinksOnlyPlannedDevices) {
  MalwareSynthConfig config;
  config.corpus_size = 100;
  const auto corpus =
      synthesize_malware_corpus(scenario(), small_config(), config);
  EXPECT_EQ(corpus.database.size(), 100u);

  std::set<std::uint32_t> compromised_ips;
  for (const auto& plan : scenario().truth.plans) {
    compromised_ips.insert(
        scenario().inventory.devices()[plan.device].ip.value());
  }
  // Reports resolving to a Table VII family must contact >= 1 compromised
  // device; decoys ("Generic.Trojan") must contact none.
  const auto& families = iot_malware_families();
  std::size_t iot_linked = 0;
  for (std::uint32_t value : compromised_ips) {
    for (const auto* report :
         corpus.database.reports_contacting(net::Ipv4Address(value))) {
      const auto verdict = corpus.resolver.lookup(report->sha256);
      ASSERT_TRUE(verdict.has_value());
      EXPECT_NE(std::find(families.begin(), families.end(), verdict->family),
                families.end())
          << verdict->family;
      ++iot_linked;
    }
  }
  EXPECT_GT(iot_linked, 0u);
}

TEST_F(IntelSynthTest, EveryTable7FamilyIsRepresented) {
  const auto corpus = synthesize_malware_corpus(scenario(), small_config());
  std::set<std::string> seen;
  for (const auto& plan : scenario().truth.plans) {
    const auto ip = scenario().inventory.devices()[plan.device].ip;
    for (const auto* report : corpus.database.reports_contacting(ip)) {
      if (const auto verdict = corpus.resolver.lookup(report->sha256)) {
        seen.insert(verdict->family);
      }
    }
  }
  for (const auto& family : iot_malware_families()) {
    EXPECT_TRUE(seen.count(family)) << family;
  }
}

TEST_F(IntelSynthTest, SandboxReportsHaveSystemLevelActivity) {
  const auto corpus = synthesize_malware_corpus(scenario(), small_config());
  // The paper's reports carry DLLs, registry keys, and memory usage;
  // spot-check via export/import round-trip of one report.
  util::TempDir dir;
  corpus.database.export_xml(dir.path());
  const auto reloaded = MalwareDatabase::import_xml(dir.path());
  ASSERT_EQ(reloaded.size(), corpus.database.size());
  std::size_t with_system = 0;
  for (const auto& plan : scenario().truth.plans) {
    const auto ip = scenario().inventory.devices()[plan.device].ip;
    for (const auto* report : reloaded.reports_contacting(ip)) {
      if (!report->dlls.empty() && !report->registry_keys.empty() &&
          report->memory_peak_kb > 0) {
        ++with_system;
      }
    }
  }
  EXPECT_GT(with_system, 0u);
}

TEST(FamilyResolverPersistence, CsvRoundTrip) {
  util::TempDir dir;
  FamilyResolver resolver;
  resolver.register_sample("aa11", {"Ramnit", 42, 60});
  resolver.register_sample("bb22", {"Generic.Trojan", 7, 60});
  const auto path = dir.path() / "verdicts.csv";
  resolver.save_csv(path);
  const auto loaded = FamilyResolver::load_csv(path);
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_TRUE(loaded.lookup("aa11").has_value());
  EXPECT_EQ(loaded.lookup("aa11")->family, "Ramnit");
  EXPECT_EQ(loaded.lookup("aa11")->positives, 42);
  EXPECT_EQ(loaded.lookup("bb22")->family, "Generic.Trojan");
  util::write_file(path, "only-two-fields,x\n");
  EXPECT_THROW(FamilyResolver::load_csv(path), util::IoError);
}

}  // namespace
}  // namespace iotscope::intel
