#include "net/flowtuple.hpp"

#include <gtest/gtest.h>

#include "net/flow_batch.hpp"

#include <sstream>

#include "util/io.hpp"
#include "util/rng.hpp"

namespace iotscope::net {
namespace {

FlowTuple random_tuple(util::Rng& rng) {
  FlowTuple t;
  t.src = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  t.dst = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  t.src_port = static_cast<Port>(rng.uniform(0, 65535));
  t.dst_port = static_cast<Port>(rng.uniform(0, 65535));
  const auto r = rng.uniform(0, 2);
  t.protocol = r == 0 ? Protocol::Tcp : (r == 1 ? Protocol::Udp : Protocol::Icmp);
  t.ttl = static_cast<std::uint8_t>(rng.uniform(0, 255));
  t.tcp_flags = static_cast<std::uint8_t>(rng.uniform(0, 63));
  t.ip_length = static_cast<std::uint16_t>(rng.uniform(20, 1500));
  t.packet_count = rng.uniform(1, 1 << 20);
  return t;
}

TEST(FlowTuple, FromPacketCopiesHeaderFields) {
  const auto p = make_tcp_syn(123, Ipv4Address(1), Ipv4Address(2), 4444, 23, 77);
  const auto t = FlowTuple::from_packet(p);
  EXPECT_EQ(t.src, p.src);
  EXPECT_EQ(t.dst, p.dst);
  EXPECT_EQ(t.src_port, 4444);
  EXPECT_EQ(t.dst_port, 23);
  EXPECT_EQ(t.protocol, Protocol::Tcp);
  EXPECT_EQ(t.ttl, 77);
  EXPECT_EQ(t.tcp_flags, kSyn);
  EXPECT_EQ(t.packet_count, 1u);
}

TEST(FlowTuple, IcmpTypeCodeRideInPortFields) {
  const auto p = make_icmp(0, Ipv4Address(1), Ipv4Address(2),
                           IcmpType::DestinationUnreachable, 3);
  const auto t = FlowTuple::from_packet(p);
  EXPECT_EQ(t.src_port,
            static_cast<Port>(IcmpType::DestinationUnreachable));
  EXPECT_EQ(t.dst_port, 3);
  EXPECT_EQ(t.icmp_type(), IcmpType::DestinationUnreachable);
}

TEST(FlowTuple, SameKeyIgnoresPacketCount) {
  util::Rng rng(1);
  auto a = random_tuple(rng);
  auto b = a;
  b.packet_count += 5;
  EXPECT_TRUE(a.same_key(b));
  EXPECT_FALSE(a == b);
  b.dst_port ^= 1;
  EXPECT_FALSE(a.same_key(b));
}

TEST(FlowTuple, HashConsistentWithKeyEqualityProperty) {
  util::Rng rng(2);
  FlowTupleKeyHash hash;
  FlowTupleKeyEq eq;
  for (int i = 0; i < 2000; ++i) {
    auto a = random_tuple(rng);
    auto b = a;
    b.packet_count = a.packet_count + 1;
    ASSERT_TRUE(eq(a, b));
    ASSERT_EQ(hash(a), hash(b));
    auto c = a;
    c.ttl ^= 0x5A;
    ASSERT_FALSE(eq(a, c));
  }
}

TEST(HourlyFlows, TotalPackets) {
  HourlyFlows flows;
  util::Rng rng(3);
  std::uint64_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    auto t = random_tuple(rng);
    expected += t.packet_count;
    flows.records.push_back(t);
  }
  EXPECT_EQ(flows.total_packets(), expected);
}

TEST(FlowTupleCodec, StreamRoundTripProperty) {
  util::Rng rng(4);
  for (int round = 0; round < 20; ++round) {
    HourlyFlows flows;
    flows.interval = static_cast<int>(rng.uniform(0, 142));
    flows.start_time = static_cast<std::int64_t>(rng.uniform(0, 1u << 30));
    const auto n = rng.uniform(0, 500);
    for (std::uint64_t i = 0; i < n; ++i) {
      flows.records.push_back(random_tuple(rng));
    }
    std::stringstream ss;
    FlowTupleCodec::write(ss, flows);
    const auto decoded = FlowTupleCodec::read(ss);
    EXPECT_EQ(decoded.interval, flows.interval);
    EXPECT_EQ(decoded.start_time, flows.start_time);
    ASSERT_EQ(decoded.records.size(), flows.records.size());
    for (std::size_t i = 0; i < flows.records.size(); ++i) {
      EXPECT_EQ(decoded.records[i], flows.records[i]);
    }
  }
}

TEST(FlowTupleCodec, RejectsBadMagic) {
  std::stringstream ss;
  util::write_u32(ss, 0xBADC0DE);
  EXPECT_THROW(FlowTupleCodec::read(ss), util::IoError);
}

TEST(FlowTupleCodec, RejectsWrongVersion) {
  std::stringstream ss;
  util::write_u32(ss, FlowTupleCodec::kMagic);
  util::write_u16(ss, 99);
  EXPECT_THROW(FlowTupleCodec::read(ss), util::IoError);
}

TEST(FlowTupleCodec, RejectsUnknownProtocol) {
  HourlyFlows flows;
  FlowTuple t;
  t.protocol = Protocol::Tcp;
  flows.records.push_back(t);
  std::stringstream ss;
  FlowTupleCodec::write(ss, flows);
  std::string blob = ss.str();
  // Protocol byte offset: 4 magic + 2 version + 4 interval + 8 time +
  // 8 count + (4 + 4 + 2 + 2) record prefix = 38.
  blob[38] = 99;
  std::istringstream corrupted(blob);
  EXPECT_THROW(FlowTupleCodec::read(corrupted), util::IoError);
}

TEST(FlowTupleCodec, RejectsTruncatedStream) {
  HourlyFlows flows;
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) flows.records.push_back(random_tuple(rng));
  std::stringstream ss;
  FlowTupleCodec::write(ss, flows);
  const std::string blob = ss.str();
  std::istringstream truncated(blob.substr(0, blob.size() - 7));
  EXPECT_THROW(FlowTupleCodec::read(truncated), util::IoError);
}

TEST(FlowTupleCodec, RejectsImplausibleRecordCount) {
  std::stringstream ss;
  util::write_u32(ss, FlowTupleCodec::kMagic);
  util::write_u16(ss, FlowTupleCodec::kVersion);
  util::write_u32(ss, 0);
  util::write_u64(ss, 0);
  util::write_u64(ss, 1ULL << 40);  // absurd record count
  EXPECT_THROW(FlowTupleCodec::read(ss), util::IoError);
}

TEST(FlowTupleCodec, HugeClaimedCountWithNoBodyFailsWithoutHugeReserve) {
  // Regression: a corrupt 14-byte header used to drive
  // records.reserve(count) for any count up to 2^30 (~32 GB of FlowTuples)
  // before the first short read threw. The reserve must now be clamped so
  // this rejects quickly and cheaply.
  for (const std::uint64_t count :
       {std::uint64_t{1} << 30, (std::uint64_t{1} << 30) - 1,
        std::uint64_t{1} << 24}) {
    std::stringstream ss;
    util::write_u32(ss, FlowTupleCodec::kMagic);
    util::write_u16(ss, FlowTupleCodec::kVersion);
    util::write_u32(ss, 7);
    util::write_u64(ss, 1491955200);
    util::write_u64(ss, count);  // header claims records that never follow
    EXPECT_THROW(FlowTupleCodec::read(ss), util::IoError);
  }
}

TEST(FlowTupleCodec, TruncatedCountFieldItselfThrows) {
  // Header cut inside the u64 count field.
  std::stringstream ss;
  util::write_u32(ss, FlowTupleCodec::kMagic);
  util::write_u16(ss, FlowTupleCodec::kVersion);
  util::write_u32(ss, 7);
  util::write_u64(ss, 1491955200);
  util::write_u16(ss, 0xFFFF);  // 2 of the count's 8 bytes
  EXPECT_THROW(FlowTupleCodec::read(ss), util::IoError);
}

TEST(FlowTupleCodec, CountLargerThanBodyThrowsNotSilentlyShortReads) {
  // A file with N records but a header claiming N + 1 must throw, never
  // return a short vector as if it parsed cleanly.
  HourlyFlows flows;
  util::Rng rng(9);
  for (int i = 0; i < 10; ++i) flows.records.push_back(random_tuple(rng));
  std::stringstream ss;
  FlowTupleCodec::write(ss, flows);
  std::string blob = ss.str();
  // Count field lives at offset 4 (magic) + 2 (version) + 4 (interval) +
  // 8 (start_time) = 18, little-endian u64.
  blob[18] = 11;
  std::istringstream overdrawn(blob);
  EXPECT_THROW(FlowTupleCodec::read(overdrawn), util::IoError);
}

// --- Block codec vs reference istream decoder parity -------------------
//
// The block path (encode/decode over a contiguous buffer) replaced the
// per-field istream path. read_unbuffered() keeps the old decoder
// verbatim; these tests pin that the two implementations agree on every
// byte produced and on every accept/reject decision.

TEST(FlowTupleCodec, BlockAndStreamPathsProduceIdenticalBytes) {
  util::Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    HourlyFlows flows;
    flows.interval = static_cast<int>(rng.uniform(0, 142));
    flows.start_time = static_cast<std::int64_t>(rng.uniform(0, 1u << 30));
    const auto n = rng.uniform(0, 300);
    for (std::uint64_t i = 0; i < n; ++i) {
      flows.records.push_back(random_tuple(rng));
    }

    std::string encoded;
    FlowTupleCodec::encode(encoded, flows);
    std::ostringstream os;
    FlowTupleCodec::write(os, flows);
    ASSERT_EQ(encoded, os.str());
    ASSERT_EQ(encoded.size(), 26 + n * FlowTupleCodec::kRecordBytes);

    const auto block = FlowTupleCodec::decode(encoded);
    std::istringstream is(encoded);
    const auto reference = FlowTupleCodec::read_unbuffered(is);
    ASSERT_EQ(block.interval, reference.interval);
    ASSERT_EQ(block.start_time, reference.start_time);
    ASSERT_EQ(block.records.size(), reference.records.size());
    for (std::size_t i = 0; i < block.records.size(); ++i) {
      ASSERT_EQ(block.records[i], reference.records[i]);
    }
  }
}

TEST(FlowTupleCodec, TruncationParityAtEveryPrefix) {
  HourlyFlows flows;
  util::Rng rng(12);
  flows.interval = 7;
  flows.start_time = 1491955200;
  for (int i = 0; i < 5; ++i) flows.records.push_back(random_tuple(rng));
  std::string blob;
  FlowTupleCodec::encode(blob, flows);

  // Every proper prefix must make the block and istream decoders reach
  // the same verdict: identical records on accept, util::IoError on
  // reject — never a std exception, never a silent short read.
  for (std::size_t len = 0; len <= blob.size(); ++len) {
    const std::string prefix = blob.substr(0, len);
    HourlyFlows block, reference;
    bool block_ok = true, reference_ok = true;
    try {
      block = FlowTupleCodec::decode(prefix);
    } catch (const util::IoError&) {
      block_ok = false;
    }
    try {
      std::istringstream is(prefix);
      reference = FlowTupleCodec::read_unbuffered(is);
    } catch (const util::IoError&) {
      reference_ok = false;
    }
    ASSERT_EQ(block_ok, reference_ok) << "prefix length " << len;
    if (block_ok) {
      ASSERT_EQ(block.records.size(), reference.records.size());
      for (std::size_t i = 0; i < block.records.size(); ++i) {
        ASSERT_EQ(block.records[i], reference.records[i]) << "prefix " << len;
      }
    }
  }
}

TEST(FlowTupleCodec, ProtocolCorruptionParity) {
  HourlyFlows flows;
  util::Rng rng(13);
  for (int i = 0; i < 3; ++i) flows.records.push_back(random_tuple(rng));
  std::string blob;
  FlowTupleCodec::encode(blob, flows);
  // Corrupt the protocol byte of each record in turn (offset 26 + 25*i +
  // 12) and require both decoders to reject with util::IoError.
  for (std::size_t rec = 0; rec < flows.records.size(); ++rec) {
    std::string corrupt = blob;
    corrupt[26 + FlowTupleCodec::kRecordBytes * rec + 12] = 99;
    EXPECT_THROW(FlowTupleCodec::decode(corrupt), util::IoError);
    std::istringstream is(corrupt);
    EXPECT_THROW(FlowTupleCodec::read_unbuffered(is), util::IoError);
  }
}

// --- Columnar (FlowBatch) codec vs row codec parity --------------------
//
// The SoA encode/decode pair must be indistinguishable from the AoS pair
// on the wire: identical bytes out, identical accept/reject verdicts in.

TEST(FlowTupleCodec, ColumnarEncodeMatchesRowEncodeByteForByte) {
  util::Rng rng(21);
  for (int round = 0; round < 10; ++round) {
    HourlyFlows flows;
    flows.interval = static_cast<int>(rng.uniform(0, 142));
    flows.start_time = static_cast<std::int64_t>(rng.uniform(0, 1u << 30));
    const auto n = rng.uniform(0, 300);
    for (std::uint64_t i = 0; i < n; ++i) {
      flows.records.push_back(random_tuple(rng));
    }
    std::string rows_bytes;
    FlowTupleCodec::encode(rows_bytes, flows);
    std::string batch_bytes;
    FlowTupleCodec::encode(batch_bytes, FlowBatch::from_rows(flows));
    ASSERT_EQ(batch_bytes, rows_bytes) << "round " << round;
  }
}

TEST(FlowTupleCodec, DecodeColumnsMatchesDecodeRows) {
  util::Rng rng(22);
  HourlyFlows flows;
  flows.interval = 55;
  flows.start_time = 1491955200;
  for (int i = 0; i < 200; ++i) flows.records.push_back(random_tuple(rng));
  std::string blob;
  FlowTupleCodec::encode(blob, flows);

  const FlowBatch batch = FlowTupleCodec::decode_columns(blob);
  const HourlyFlows rows = FlowTupleCodec::decode(blob);
  EXPECT_EQ(batch.interval, rows.interval);
  EXPECT_EQ(batch.start_time, rows.start_time);
  EXPECT_TRUE(batch.same_records(FlowBatch::from_rows(rows)));
  // And the batch converts back to the exact original records.
  const HourlyFlows back = batch.to_rows();
  ASSERT_EQ(back.records.size(), flows.records.size());
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    ASSERT_EQ(back.records[i], flows.records[i]);
  }
}

TEST(FlowTupleCodec, DecodeColumnsTruncationParity) {
  HourlyFlows flows;
  util::Rng rng(23);
  flows.interval = 7;
  flows.start_time = 1491955200;
  for (int i = 0; i < 5; ++i) flows.records.push_back(random_tuple(rng));
  std::string blob;
  FlowTupleCodec::encode(blob, flows);

  for (std::size_t len = 0; len <= blob.size(); ++len) {
    const std::string prefix = blob.substr(0, len);
    FlowBatch batch;
    HourlyFlows rows;
    bool batch_ok = true, rows_ok = true;
    try {
      batch = FlowTupleCodec::decode_columns(prefix);
    } catch (const util::IoError&) {
      batch_ok = false;
    }
    try {
      rows = FlowTupleCodec::decode(prefix);
    } catch (const util::IoError&) {
      rows_ok = false;
    }
    ASSERT_EQ(batch_ok, rows_ok) << "prefix length " << len;
    if (batch_ok) {
      ASSERT_TRUE(batch.same_records(FlowBatch::from_rows(rows)))
          << "prefix " << len;
    }
  }
}

TEST(FlowTupleCodec, DecodeColumnsRejectsCorruptHeadersAndProtocols) {
  HourlyFlows flows;
  util::Rng rng(24);
  for (int i = 0; i < 3; ++i) flows.records.push_back(random_tuple(rng));
  std::string blob;
  FlowTupleCodec::encode(blob, flows);

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW(FlowTupleCodec::decode_columns(bad_magic), util::IoError);

  std::string bad_version = blob;
  bad_version[4] = 9;
  EXPECT_THROW(FlowTupleCodec::decode_columns(bad_version), util::IoError);

  for (std::size_t rec = 0; rec < flows.records.size(); ++rec) {
    std::string corrupt = blob;
    corrupt[26 + FlowTupleCodec::kRecordBytes * rec + 12] = 99;
    EXPECT_THROW(FlowTupleCodec::decode_columns(corrupt), util::IoError);
  }
}

TEST(FlowTupleCodec, FileRoundTripAndName) {
  util::TempDir dir;
  HourlyFlows flows;
  flows.interval = 42;
  flows.start_time = 1234;
  util::Rng rng(6);
  for (int i = 0; i < 50; ++i) flows.records.push_back(random_tuple(rng));
  const auto path = dir.path() / FlowTupleCodec::file_name(flows.interval);
  EXPECT_EQ(path.filename().string(), "flowtuple-0042.ift");
  FlowTupleCodec::write_file(path, flows);
  const auto loaded = FlowTupleCodec::read_file(path);
  EXPECT_EQ(loaded.records.size(), flows.records.size());
  EXPECT_EQ(loaded.total_packets(), flows.total_packets());
  EXPECT_THROW(FlowTupleCodec::read_file(dir.path() / "nope.ift"),
               util::IoError);
}

}  // namespace
}  // namespace iotscope::net
