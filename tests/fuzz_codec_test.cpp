// Robustness ("fuzz-lite") tests: the binary codecs must never crash,
// hang, or silently mis-parse on malformed input — every failure mode is
// a clean util::IoError. Random mutations of valid blobs and fully random
// garbage both get swept with parameterized seeds.
#include <gtest/gtest.h>

#include <sstream>

#include "intel/malware.hpp"
#include "inventory/database.hpp"
#include "net/flowtuple.hpp"
#include "net/pcap.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace iotscope {
namespace {

std::string valid_flowtuple_blob(util::Rng& rng) {
  net::HourlyFlows flows;
  flows.interval = static_cast<int>(rng.uniform(0, 142));
  flows.start_time = 1491955200;
  for (int i = 0; i < 20; ++i) {
    net::FlowTuple t;
    t.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    t.dst = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    t.protocol = net::Protocol::Tcp;
    t.packet_count = rng.uniform(1, 100);
    flows.records.push_back(t);
  }
  std::ostringstream os;
  net::FlowTupleCodec::write(os, flows);
  return os.str();
}

std::string valid_pcap_blob(util::Rng& rng) {
  std::ostringstream os;
  net::PcapWriter writer(os);
  for (int i = 0; i < 10; ++i) {
    writer.write(net::make_udp(
        1491955200 + i, net::Ipv4Address(static_cast<std::uint32_t>(rng.next())),
        net::Ipv4Address::from_octets(10, 0, 0, 1), 1000, 53));
  }
  return os.str();
}

class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, FlowtupleDecoderSurvivesRandomMutations) {
  util::Rng rng(GetParam());
  const std::string valid = valid_flowtuple_blob(rng);
  for (int round = 0; round < 200; ++round) {
    std::string blob = valid;
    const std::size_t flips = rng.uniform(1, 8);
    for (std::size_t f = 0; f < flips; ++f) {
      blob[rng.uniform(0, blob.size() - 1)] ^=
          static_cast<char>(rng.uniform(1, 255));
    }
    // Random truncation half the time.
    if (rng.chance(0.5)) blob.resize(rng.uniform(0, blob.size()));
    std::istringstream is(blob);
    try {
      const auto decoded = net::FlowTupleCodec::read(is);
      // If it parsed, the structure must be internally sane.
      EXPECT_LE(decoded.records.size(), 1u << 30);
      for (const auto& r : decoded.records) {
        const auto proto = static_cast<std::uint8_t>(r.protocol);
        EXPECT_TRUE(proto == 1 || proto == 6 || proto == 17);
      }
    } catch (const util::IoError&) {
      // Expected rejection path.
    }
  }
}

TEST_P(CodecFuzzTest, FlowtupleDecoderSurvivesPureGarbage) {
  util::Rng rng(GetParam() ^ 0x6A5B4C3DULL);
  for (int round = 0; round < 200; ++round) {
    std::string garbage(rng.uniform(0, 512), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.uniform(0, 255));
    std::istringstream is(garbage);
    EXPECT_THROW(net::FlowTupleCodec::read(is), util::IoError);
  }
}

TEST_P(CodecFuzzTest, PcapReaderSurvivesRandomMutations) {
  util::Rng rng(GetParam() ^ 0x11223344ULL);
  const std::string valid = valid_pcap_blob(rng);
  for (int round = 0; round < 200; ++round) {
    std::string blob = valid;
    const std::size_t flips = rng.uniform(1, 8);
    for (std::size_t f = 0; f < flips; ++f) {
      blob[rng.uniform(0, blob.size() - 1)] ^=
          static_cast<char>(rng.uniform(1, 255));
    }
    if (rng.chance(0.5)) blob.resize(rng.uniform(0, blob.size()));
    std::istringstream is(blob);
    try {
      net::PcapReader reader(is);
      net::PacketRecord packet;
      int frames = 0;
      while (reader.next(packet) && frames < 1000) ++frames;
    } catch (const util::IoError&) {
      // Expected rejection path.
    }
  }
}

TEST_P(CodecFuzzTest, FlowtupleEveryPrefixTruncationFailsCleanly) {
  // Systematic sweep, not random: cutting a valid blob at EVERY byte
  // boundary must raise IoError (only the full blob and the empty-records
  // header boundary parse). This catches "partial record silently
  // accepted" regressions that random truncation can miss.
  util::Rng rng(GetParam() ^ 0xA0B1C2D3ULL);
  const std::string valid = valid_flowtuple_blob(rng);
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    std::istringstream is(valid.substr(0, cut));
    EXPECT_THROW(net::FlowTupleCodec::read(is), util::IoError)
        << "prefix of " << cut << " bytes must not parse";
  }
  std::istringstream whole(valid);
  EXPECT_NO_THROW(net::FlowTupleCodec::read(whole));
}

TEST_P(CodecFuzzTest, PcapEveryRecordTruncationFailsCleanly) {
  // Any cut inside a record (past the global header, not on a record
  // boundary) must throw; cuts on record boundaries are clean EOF.
  util::Rng rng(GetParam() ^ 0xB1C2D3E4ULL);
  const std::string valid = valid_pcap_blob(rng);
  constexpr std::size_t kGlobalHeader = 24;
  // Record header + UDP frame (20 IP + 8 UDP + default 32-byte payload).
  constexpr std::size_t kRecord = 16 + 60;
  ASSERT_EQ((valid.size() - kGlobalHeader) % kRecord, 0u);
  for (std::size_t cut = kGlobalHeader; cut < valid.size(); ++cut) {
    std::istringstream is(valid.substr(0, cut));
    net::PcapReader reader(is);
    net::PacketRecord packet;
    const bool on_boundary = (cut - kGlobalHeader) % kRecord == 0;
    if (on_boundary) {
      const std::size_t whole_records = (cut - kGlobalHeader) / kRecord;
      std::size_t frames = 0;
      while (reader.next(packet)) ++frames;
      EXPECT_EQ(frames, whole_records);
    } else {
      EXPECT_THROW(
          {
            while (reader.next(packet)) {
            }
          },
          util::IoError)
          << "cut at " << cut << " must not read to clean EOF";
    }
  }
}

TEST_P(CodecFuzzTest, FlowtupleHugeCountHeadersNeverAllocateHuge) {
  // Corrupt headers claiming up to the 2^30 sanity cap must throw on the
  // missing body without attempting a records.reserve() of gigabytes.
  // (The address-sanitizer build turns an over-allocation into a hard
  // failure; in plain builds this still bounds the test's RSS.)
  util::Rng rng(GetParam() ^ 0xC2D3E4F5ULL);
  for (int round = 0; round < 50; ++round) {
    std::ostringstream os;
    util::write_u32(os, net::FlowTupleCodec::kMagic);
    util::write_u16(os, net::FlowTupleCodec::kVersion);
    util::write_u32(os, static_cast<std::uint32_t>(rng.uniform(0, 142)));
    util::write_u64(os, 1491955200);
    util::write_u64(os, rng.uniform((1u << 21), (1u << 30)));
    // A few stray body bytes — not enough for even one record.
    const auto stray = rng.uniform(0, 24);
    for (std::uint64_t i = 0; i < stray; ++i) {
      util::write_u8(os, static_cast<std::uint8_t>(rng.uniform(0, 255)));
    }
    std::istringstream is(os.str());
    EXPECT_THROW(net::FlowTupleCodec::read(is), util::IoError);
  }
}

TEST_P(CodecFuzzTest, PcapGarbageAfterValidHeaderFailsCleanly) {
  // A well-formed global header followed by random bytes: next() must
  // either throw IoError or report clean EOF, never crash or spin.
  util::Rng rng(GetParam() ^ 0xD3E4F506ULL);
  for (int round = 0; round < 200; ++round) {
    std::ostringstream os;
    net::PcapWriter writer(os);  // just the global header
    std::string garbage(rng.uniform(0, 256), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.uniform(0, 255));
    os.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
    std::istringstream is(os.str());
    net::PcapReader reader(is);
    net::PacketRecord packet;
    try {
      int frames = 0;
      while (reader.next(packet) && frames < 1000) ++frames;
      // Reaching here means clean EOF — only possible with no garbage.
      EXPECT_TRUE(garbage.empty());
    } catch (const util::IoError&) {
      // Expected rejection path.
    }
  }
}

TEST_P(CodecFuzzTest, SandboxXmlParserSurvivesMutations) {
  util::Rng rng(GetParam() ^ 0x99AA77EEULL);
  intel::MalwareReport report;
  report.sha256 = "abcd1234";
  report.contacted_ips = {net::Ipv4Address::from_octets(1, 2, 3, 4)};
  report.domains = {"x.example"};
  report.dlls = {"ws2_32.dll"};
  const std::string valid = intel::SandboxXmlCodec::write(report);
  for (int round = 0; round < 300; ++round) {
    std::string xml = valid;
    const std::size_t flips = rng.uniform(1, 5);
    for (std::size_t f = 0; f < flips; ++f) {
      xml[rng.uniform(0, xml.size() - 1)] =
          static_cast<char>(rng.uniform(32, 126));
    }
    if (rng.chance(0.3)) xml.resize(rng.uniform(0, xml.size()));
    try {
      const auto parsed = intel::SandboxXmlCodec::parse(xml);
      EXPECT_LE(parsed.contacted_ips.size(), 64u);
    } catch (const util::IoError&) {
    } catch (const std::invalid_argument&) {
      // std::stoull on mutated memory_peak_kb digits.
    } catch (const std::out_of_range&) {
    }
  }
}

TEST_P(CodecFuzzTest, InventoryCsvLoaderSurvivesMutations) {
  util::Rng rng(GetParam() ^ 0x0F1E2D3CULL);
  util::TempDir dir;
  inventory::IoTDeviceDatabase db;
  const auto isp = db.add_isp("ISP", 1);
  for (int i = 0; i < 5; ++i) {
    inventory::DeviceRecord d;
    d.ip = net::Ipv4Address(static_cast<std::uint32_t>(0x01010101 + i));
    d.country = 1;
    d.isp = isp;
    db.add_device(d);
  }
  const auto path = dir.path() / "inv.csv";
  db.save_csv(path);
  const std::string valid = util::read_file(path);
  for (int round = 0; round < 100; ++round) {
    std::string csv = valid;
    const std::size_t flips = rng.uniform(1, 6);
    for (std::size_t f = 0; f < flips; ++f) {
      csv[rng.uniform(0, csv.size() - 1)] =
          static_cast<char>(rng.uniform(32, 126));
    }
    util::write_file(path, csv);
    // Every rejection must be a util::IoError with field/line context —
    // the strict field parser means no raw std::invalid_argument /
    // std::out_of_range can escape std::stoul-style conversions anymore.
    try {
      const auto loaded = inventory::IoTDeviceDatabase::load_csv(path);
      EXPECT_LE(loaded.size(), 5u);
    } catch (const util::IoError&) {
    }
  }
}

TEST_P(CodecFuzzTest, FlowtupleBlockDecoderParityUnderMutation) {
  // The block decoder (decode over an in-memory blob) and the reference
  // per-field istream decoder (read_unbuffered) must reach the same
  // verdict on every mutated/truncated input: both accept with identical
  // records, or both throw util::IoError.
  util::Rng rng(GetParam() ^ 0x5566AABBULL);
  const std::string valid = valid_flowtuple_blob(rng);
  for (int round = 0; round < 200; ++round) {
    std::string blob = valid;
    const std::size_t flips = rng.uniform(1, 8);
    for (std::size_t f = 0; f < flips; ++f) {
      blob[rng.uniform(0, blob.size() - 1)] ^=
          static_cast<char>(rng.uniform(1, 255));
    }
    if (rng.chance(0.5)) blob.resize(rng.uniform(0, blob.size()));

    net::HourlyFlows block, reference;
    bool block_ok = true, reference_ok = true;
    try {
      block = net::FlowTupleCodec::decode(blob);
    } catch (const util::IoError&) {
      block_ok = false;
    }
    try {
      std::istringstream is(blob);
      reference = net::FlowTupleCodec::read_unbuffered(is);
    } catch (const util::IoError&) {
      reference_ok = false;
    }
    ASSERT_EQ(block_ok, reference_ok) << "round " << round;
    if (block_ok) {
      ASSERT_EQ(block.interval, reference.interval);
      ASSERT_EQ(block.start_time, reference.start_time);
      ASSERT_EQ(block.records.size(), reference.records.size());
      for (std::size_t i = 0; i < block.records.size(); ++i) {
        ASSERT_EQ(block.records[i], reference.records[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1337ULL,
                                           0xDEADBEEFULL));

}  // namespace
}  // namespace iotscope
