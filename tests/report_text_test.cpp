// Tests for the plain-text report renderer.
#include "core/report_text.hpp"

#include <gtest/gtest.h>

#include "core/iotscope.hpp"

namespace iotscope::core {
namespace {

class ReportTextTest : public ::testing::Test {
 protected:
  static const StudyResult& result() {
    static const StudyResult instance =
        run_study(StudyConfig::test_default());
    return instance;
  }
};

TEST_F(ReportTextTest, InferenceReportContainsAllSections) {
  const auto text = render_inference_report(
      result().report, result().character, result().scenario.inventory);
  EXPECT_NE(text.find("Inference: compromised IoT devices"), std::string::npos);
  EXPECT_NE(text.find("discovery curve"), std::string::npos);
  EXPECT_NE(text.find("APR-12"), std::string::npos);
  EXPECT_NE(text.find("APR-17"), std::string::npos);
  EXPECT_NE(text.find("Russian Federation"), std::string::npos);
  EXPECT_NE(text.find("top ISPs"), std::string::npos);
  EXPECT_NE(text.find("Router"), std::string::npos);
  EXPECT_NE(text.find("Telvent OASyS DNA"), std::string::npos);
}

TEST_F(ReportTextTest, TrafficReportContainsKeyFindings) {
  const auto text =
      render_traffic_report(result().report, result().scenario.inventory);
  EXPECT_NE(text.find("protocol mix by realm"), std::string::npos);
  EXPECT_NE(text.find("37547"), std::string::npos);
  EXPECT_NE(text.find("Telnet"), std::string::npos);
  EXPECT_NE(text.find("DoS victims:"), std::string::npos);
  EXPECT_NE(text.find("inferred DoS attack intervals"), std::string::npos);
}

TEST_F(ReportTextTest, TrafficReportCanOmitDosNarrative) {
  ReportTextOptions options;
  options.include_dos_narrative = false;
  const auto text = render_traffic_report(result().report,
                                          result().scenario.inventory, options);
  EXPECT_EQ(text.find("inferred DoS attack intervals"), std::string::npos);
}

TEST_F(ReportTextTest, MaliciousnessReportListsFamiliesAndCategories) {
  const auto text = render_maliciousness_report(result().malicious);
  EXPECT_NE(text.find("Scanning"), std::string::npos);
  EXPECT_NE(text.find("Brute force"), std::string::npos);
  EXPECT_NE(text.find("Ramnit"), std::string::npos);
  EXPECT_NE(text.find("Zusy"), std::string::npos);
  EXPECT_NE(text.find("hashes"), std::string::npos);
}

TEST_F(ReportTextTest, TopCountsRespectOptions) {
  ReportTextOptions options;
  options.top_countries = 3;
  const auto text = render_inference_report(
      result().report, result().character, result().scenario.inventory,
      options);
  // Counting data rows in the country table: headers + rule + 3 rows before
  // the next blank line.
  const auto pos = text.find("top countries by compromised devices");
  ASSERT_NE(pos, std::string::npos);
  const auto section = text.substr(pos, text.find("\n\n", pos) - pos);
  int lines = 0;
  for (const char c : section) lines += c == '\n';
  EXPECT_LE(lines, 7);  // title + header + rule + 3 rows (+ trailing)
}

}  // namespace
}  // namespace iotscope::core
