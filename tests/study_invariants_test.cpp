// Cross-component consistency invariants over a full study run: every
// roll-up must agree with the sum of its parts, regardless of scenario
// randomness. These hold for ANY seed, so they sweep several.
#include <gtest/gtest.h>

#include <numeric>

#include "core/iotscope.hpp"

namespace iotscope::core {
namespace {

class StudyInvariantsTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static StudyResult run_for_seed(std::uint64_t seed) {
    StudyConfig config = StudyConfig::test_default();
    config.scenario.seed = seed;
    return run_study(config);
  }
};

TEST_P(StudyInvariantsTest, LedgerSumsMatchGlobalCounters) {
  const auto result = run_for_seed(GetParam());
  const auto& report = result.report;

  std::uint64_t packets = 0;
  std::uint64_t tcp_scan = 0;
  std::uint64_t udp = 0;
  std::uint64_t backscatter = 0;
  std::uint64_t icmp_scan = 0;
  std::size_t consumer = 0;
  for (const auto& ledger : report.devices) {
    packets += ledger.packets;
    tcp_scan += ledger.tcp_scan;
    udp += ledger.udp;
    backscatter += ledger.backscatter();
    icmp_scan += ledger.icmp_scan;
    if (result.scenario.inventory.devices()[ledger.device].is_consumer()) {
      ++consumer;
    }
    // Per-ledger class split must cover the ledger's packets exactly.
    EXPECT_EQ(ledger.packets,
              ledger.tcp() + ledger.udp + ledger.icmp());
  }
  EXPECT_EQ(packets, report.total_packets);
  EXPECT_EQ(tcp_scan, report.tcp_scan_total);
  EXPECT_EQ(udp, report.udp_total_packets);
  EXPECT_EQ(backscatter, report.backscatter_total);
  EXPECT_EQ(icmp_scan, report.icmp_scan_total);
  EXPECT_EQ(consumer, report.discovered_consumer);
}

TEST_P(StudyInvariantsTest, RealmProtocolMixCoversAllTraffic) {
  const auto& report = run_for_seed(GetParam()).report;
  const std::uint64_t split =
      report.tcp_packets.consumer + report.tcp_packets.cps +
      report.udp_packets.consumer + report.udp_packets.cps +
      report.icmp_packets.consumer + report.icmp_packets.cps;
  EXPECT_EQ(split, report.total_packets);
}

TEST_P(StudyInvariantsTest, HourlySeriesSumToTotals) {
  const auto& report = run_for_seed(GetParam()).report;
  const double scan_series =
      report.scan_series.consumer.packets.total() +
      report.scan_series.cps.packets.total();
  EXPECT_DOUBLE_EQ(scan_series, static_cast<double>(report.tcp_scan_total));
  const double udp_series = report.udp_series.consumer.packets.total() +
                            report.udp_series.cps.packets.total();
  EXPECT_DOUBLE_EQ(udp_series, static_cast<double>(report.udp_total_packets));
  const double bs_series = report.backscatter_series.consumer.total() +
                           report.backscatter_series.cps.total();
  EXPECT_DOUBLE_EQ(bs_series, static_cast<double>(report.backscatter_total));
}

TEST_P(StudyInvariantsTest, ServiceTableSumsToScanTotal) {
  const auto& report = run_for_seed(GetParam()).report;
  std::uint64_t by_service = 0;
  for (std::size_t s = 0; s < report.scan_services.size(); ++s) {
    by_service += report.scan_services[s].packets;
    // Series and table agree per service.
    EXPECT_DOUBLE_EQ(report.scan_service_series[s].total(),
                     static_cast<double>(report.scan_services[s].packets));
    // Consumer packets never exceed the service total.
    EXPECT_LE(report.scan_services[s].consumer_packets,
              report.scan_services[s].packets);
  }
  EXPECT_EQ(by_service, report.tcp_scan_total);
}

TEST_P(StudyInvariantsTest, CharacterizationJoinsMatchDiscovery) {
  const auto result = run_for_seed(GetParam());
  const auto& character = result.character;
  const auto& report = result.report;

  std::size_t by_country = 0;
  for (const auto& row : character.by_country_compromised) {
    by_country += row.compromised();
  }
  EXPECT_EQ(by_country, report.discovered_total());

  std::size_t consumer_isps = 0;
  for (const auto& row : character.consumer_isps) consumer_isps += row.devices;
  EXPECT_EQ(consumer_isps, report.discovered_consumer);
  std::size_t cps_isps = 0;
  for (const auto& row : character.cps_isps) cps_isps += row.devices;
  EXPECT_EQ(cps_isps, report.discovered_cps);

  const std::size_t by_type = std::accumulate(
      character.consumer_types.begin(), character.consumer_types.end(),
      std::size_t{0});
  EXPECT_EQ(by_type, report.discovered_consumer);
}

TEST_P(StudyInvariantsTest, CumulativeDiscoveryIsMonotoneAndComplete) {
  const auto& report = run_for_seed(GetParam()).report;
  std::size_t prev = 0;
  for (int d = 0; d < 6; ++d) {
    const std::size_t cum =
        report.cumulative_by_day_consumer[static_cast<std::size_t>(d)] +
        report.cumulative_by_day_cps[static_cast<std::size_t>(d)];
    EXPECT_GE(cum, prev);
    prev = cum;
  }
  EXPECT_EQ(prev, report.discovered_total());
}

TEST_P(StudyInvariantsTest, VictimCountsConsistent) {
  const auto& report = run_for_seed(GetParam()).report;
  std::size_t victims = 0;
  std::size_t cps = 0;
  for (const auto& ledger : report.devices) {
    if (ledger.backscatter() == 0) continue;
    ++victims;
  }
  EXPECT_EQ(victims, report.dos_victims);
  EXPECT_LE(report.dos_victims_cps, report.dos_victims);
  (void)cps;
  EXPECT_EQ(report.backscatter_total,
            report.backscatter_packets.consumer + report.backscatter_packets.cps);
}

TEST_P(StudyInvariantsTest, UdpPortTableBoundedByTotals) {
  const auto& report = run_for_seed(GetParam()).report;
  std::uint64_t top_packets = 0;
  for (const auto& row : report.udp_top_ports) {
    EXPECT_GT(row.packets, 0u);
    EXPECT_GE(row.devices, 1u);
    top_packets += row.packets;
  }
  EXPECT_LE(top_packets, report.udp_total_packets);
  // Table is sorted descending.
  for (std::size_t i = 1; i < report.udp_top_ports.size(); ++i) {
    EXPECT_GE(report.udp_top_ports[i - 1].packets,
              report.udp_top_ports[i].packets);
  }
}

TEST_P(StudyInvariantsTest, ExploredSupersetOfFlaggedAndVictims) {
  const auto result = run_for_seed(GetParam());
  EXPECT_LE(result.malicious.flagged_devices,
            result.malicious.explored_devices);
  EXPECT_GE(result.malicious.explored_devices, result.report.dos_victims);
  EXPECT_EQ(result.malicious.explored_packets.size(),
            result.malicious.explored_devices);
  EXPECT_EQ(result.malicious.flagged_packets.size(),
            result.malicious.flagged_devices);
  for (std::size_t c = 0; c < result.malicious.category_devices.size(); ++c) {
    EXPECT_LE(result.malicious.category_devices[c],
              result.malicious.flagged_devices);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StudyInvariantsTest,
                         ::testing::Values(20170412ULL, 1ULL, 777ULL));

}  // namespace
}  // namespace iotscope::core
