// End-to-end integration: runs the full study at test scale and checks
// (a) paper-shape invariants with tolerances and (b) ground-truth
// validation the paper itself could never do — discovered devices must be
// exactly the planned compromised devices that emitted traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/ecdf.hpp"
#include "core/iotscope.hpp"

namespace iotscope::core {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  static const StudyResult& result() {
    static const StudyResult instance =
        run_study(StudyConfig::test_default());
    return instance;
  }
};

TEST_F(StudyTest, DiscoveredDevicesAreExactlyEmittingPlannedDevices) {
  const auto& truth = result().scenario.truth;
  std::set<std::uint32_t> planned;
  for (const auto& plan : truth.plans) planned.insert(plan.device);
  // Soundness: every discovered device was planned (no false positives —
  // noise sources are not inventory IPs and clean devices stay silent).
  for (const auto& ledger : result().report.devices) {
    EXPECT_TRUE(planned.count(ledger.device))
        << "device " << ledger.device << " discovered but never planned";
  }
  // Completeness: nearly every planned device is discovered (Poisson
  // emission can drop a silent tail of tiny-budget devices).
  const double recall = static_cast<double>(result().report.devices.size()) /
                        static_cast<double>(planned.size());
  EXPECT_GT(recall, 0.95);
}

TEST_F(StudyTest, ConsumerShareMatchesPaperSplit) {
  const auto& report = result().report;
  const double consumer_share =
      static_cast<double>(report.discovered_consumer) /
      static_cast<double>(report.discovered_total());
  EXPECT_NEAR(consumer_share, 0.57, 0.06);  // paper: 57% consumer
}

TEST_F(StudyTest, RussiaHostsMostCompromisedDevices) {
  const auto& rows = result().character.by_country_compromised;
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(result().scenario.inventory.country_name(rows[0].country),
            "Russian Federation");
  const double share =
      static_cast<double>(rows[0].compromised()) /
      static_cast<double>(result().report.discovered_total());
  EXPECT_NEAR(share, 0.245, 0.08);  // paper: 24.5%
}

TEST_F(StudyTest, RouterIsTopCompromisedConsumerType) {
  const auto& types = result().character.consumer_types;
  const auto router = types[static_cast<std::size_t>(
      inventory::ConsumerType::Router)];
  for (int t = 1; t < inventory::kConsumerTypeCount; ++t) {
    EXPECT_GE(router, types[static_cast<std::size_t>(t)]);
  }
}

TEST_F(StudyTest, TelventAndSncGeneLeadTheCpsProtocolTable) {
  // Telvent (20.0%) and SNC GENe (18.3%) sit close together; at the tiny
  // test scale their ranks wobble within the top three. Assert both are
  // top-3 and Telvent's device share lands near its 20% weight.
  const auto& protocols = result().character.cps_protocols;
  ASSERT_GE(protocols.size(), 3u);
  const auto& catalog = result().scenario.inventory.catalog();
  std::set<std::string> top3;
  for (int i = 0; i < 3; ++i) {
    top3.insert(catalog.cps_protocol_name(protocols[static_cast<std::size_t>(i)].first));
  }
  EXPECT_TRUE(top3.count("Telvent OASyS DNA"));
  EXPECT_TRUE(top3.count("SNC GENe"));
  const auto telvent_id = catalog.cps_protocol_id("Telvent OASyS DNA");
  for (const auto& [proto, count] : protocols) {
    if (proto != telvent_id) continue;
    const double share = static_cast<double>(count) /
                         static_cast<double>(result().report.discovered_cps);
    EXPECT_NEAR(share, 0.20, 0.07);
  }
}

TEST_F(StudyTest, Day1DiscoveryShareNearFortySixPercent) {
  const auto& report = result().report;
  const double day1 =
      static_cast<double>(report.cumulative_by_day_consumer[0] +
                          report.cumulative_by_day_cps[0]);
  EXPECT_NEAR(day1 / static_cast<double>(report.discovered_total()), 0.46,
              0.08);
}

TEST_F(StudyTest, TelnetTakesAboutHalfOfScanning) {
  const auto& report = result().report;
  const auto telnet = static_cast<std::size_t>(
      workload::scan_service_index("Telnet"));
  const double share = static_cast<double>(
                           report.scan_services[telnet].packets) /
                       static_cast<double>(report.tcp_scan_total);
  EXPECT_NEAR(share, 0.502, 0.08);  // paper: 50.2%
}

TEST_F(StudyTest, UdpShareNearTenPercent) {
  const auto& report = result().report;
  const double share = static_cast<double>(report.udp_total_packets) /
                       static_cast<double>(report.total_packets);
  EXPECT_NEAR(share, 0.10, 0.05);  // paper: 10.4%
}

TEST_F(StudyTest, BackscatterShareNearEightPercent) {
  const auto& report = result().report;
  const double share = static_cast<double>(report.backscatter_total) /
                       static_cast<double>(report.total_packets);
  EXPECT_NEAR(share, 0.082, 0.04);  // paper: 8.2%
  EXPECT_GT(static_cast<double>(report.backscatter_packets.cps),
            static_cast<double>(report.backscatter_packets.consumer));
}

TEST_F(StudyTest, Port37547LeadsTheUdpTable) {
  // Paper's top three UDP ports (37547 at 2.52%, 137 at 2.06%, 53413 at
  // 2.05%) are close enough that tiny-scale sampling can reorder them;
  // assert 37547 sits in the top three and the top three are paper ports.
  const auto& ports = result().report.udp_top_ports;
  ASSERT_GE(ports.size(), 5u);
  std::set<net::Port> top3 = {ports[0].port, ports[1].port, ports[2].port};
  EXPECT_TRUE(top3.count(37547));
  // Most of the measured top-12 ports must come from the paper's Table IV
  // set (individual heavy devices can push a stray port up at tiny scale).
  std::set<net::Port> paper_ports;
  for (const auto& spec : workload::udp_ports()) paper_ports.insert(spec.port);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < ports.size() && i < 12; ++i) {
    if (paper_ports.count(ports[i].port)) ++hits;
  }
  EXPECT_GE(hits, 6u);
}

TEST_F(StudyTest, ScriptedDosSpikesAreDetectedWithDominantVictims) {
  const auto& report = result().report;
  ASSERT_FALSE(report.dos_spikes.empty());
  // Interval 6 (0-based 5) belongs to the first Chinese PLC attack.
  const auto spike = std::find_if(
      report.dos_spikes.begin(), report.dos_spikes.end(),
      [](const DosSpike& s) { return s.interval >= 5 && s.interval <= 7; });
  ASSERT_NE(spike, report.dos_spikes.end());
  EXPECT_GT(spike->top_victim_share, 0.85);
  const auto& victim =
      result().scenario.inventory.devices()[spike->top_victim];
  EXPECT_TRUE(victim.is_cps());
  EXPECT_EQ(result().scenario.inventory.country_name(victim.country),
            "China");
}

TEST_F(StudyTest, BackroomNetStartsNearInterval113) {
  const auto& report = result().report;
  const auto idx = static_cast<std::size_t>(
      workload::scan_service_index("BackroomNet"));
  const auto& series = report.scan_service_series[idx];
  // First hour of *sustained* volume — stray random-port probes can graze
  // port 3387 before the scripted window.
  int first = -1;
  for (int h = 0; h < series.size(); ++h) {
    if (series.at(h) > 0.2 * series.max()) {
      first = h;
      break;
    }
  }
  ASSERT_GE(first, 0);
  EXPECT_NEAR(first, 112, 2);
  EXPECT_GT(series.at(130), 0.0);  // sustained through the tail window
}

TEST_F(StudyTest, ConsumerUdpPortIpCorrelationIsStrong) {
  const auto& r = result().report.udp_consumer_port_ip_correlation;
  EXPECT_GT(r.r, 0.7);  // paper: 0.95
  EXPECT_LT(r.p_value, 1e-4);
}

TEST_F(StudyTest, PerDeviceVolumeIsHeavyTailed) {
  std::vector<double> volumes;
  for (const auto& ledger : result().report.devices) {
    volumes.push_back(static_cast<double>(ledger.packets));
  }
  analysis::Ecdf cdf(std::move(volumes));
  // Median far below mean: heavy tail.
  const auto stats = analysis::describe(cdf.sorted());
  EXPECT_LT(cdf.quantile(0.5), stats.mean * 0.5);
}

TEST_F(StudyTest, ThreatFlaggingNearPaperRate) {
  const auto& mal = result().malicious;
  const double rate = static_cast<double>(mal.flagged_devices) /
                      static_cast<double>(mal.explored_devices);
  // Paper: 9.2%. The deterministically-flagged scripted heroes put a floor
  // on the rate that dominates at the tiny test scale; bound loosely here
  // (the bench-scale run lands at ~8-9%).
  EXPECT_GT(rate, 0.04);
  EXPECT_LT(rate, 0.20);
  // Scanning dominates the flagged categories (paper: 96.3%).
  const double scan_share =
      static_cast<double>(mal.category_devices[static_cast<std::size_t>(
          intel::ThreatCategory::Scanning)]) /
      static_cast<double>(mal.flagged_devices);
  EXPECT_GT(scan_share, 0.8);
}

TEST_F(StudyTest, AllElevenFamiliesRecovered) {
  const auto& families = result().malicious.families;
  for (const auto& family : intel::iot_malware_families()) {
    EXPECT_TRUE(std::find(families.begin(), families.end(), family) !=
                families.end())
        << family;
  }
  // No decoy family leaks in: decoys never contact inventory IPs.
  for (const auto& family : families) {
    const auto& known = intel::iot_malware_families();
    EXPECT_TRUE(std::find(known.begin(), known.end(), family) != known.end())
        << family;
  }
}

TEST_F(StudyTest, SynthStatsAndPipelineAgreeOnVolume) {
  const auto& stats = result().synth_stats;
  const auto& report = result().report;
  // Pipeline sees IoT packets = total emitted minus the unattributable
  // traffic (background noise + unindexed IoT scanning).
  EXPECT_EQ(report.total_packets + report.unattributed_packets, stats.total);
  EXPECT_EQ(report.unattributed_packets, stats.noise + stats.unindexed);
}

TEST_F(StudyTest, StudyIsDeterministic) {
  const auto second = run_study(StudyConfig::test_default());
  EXPECT_EQ(second.report.total_packets, result().report.total_packets);
  EXPECT_EQ(second.report.discovered_total(),
            result().report.discovered_total());
  EXPECT_EQ(second.malicious.flagged_devices,
            result().malicious.flagged_devices);
}

TEST_F(StudyTest, ThreadedStudyMatchesSequential) {
  // Forcing threads > 1 drives both the sharded pipeline AND the
  // synthesis/analysis overlap queue in run_study, regardless of the
  // host's core count; the result must not move.
  auto config = StudyConfig::test_default();
  config.pipeline.threads = 4;
  const auto threaded = run_study(config);
  EXPECT_EQ(threaded.report.total_packets, result().report.total_packets);
  EXPECT_EQ(threaded.report.discovered_total(),
            result().report.discovered_total());
  EXPECT_EQ(threaded.report.tcp_scan_total, result().report.tcp_scan_total);
  EXPECT_EQ(threaded.report.backscatter_total,
            result().report.backscatter_total);
  EXPECT_EQ(threaded.report.dos_victims, result().report.dos_victims);
  EXPECT_EQ(threaded.malicious.flagged_devices,
            result().malicious.flagged_devices);
}

TEST_F(StudyTest, MannWhitneyDirectionMatchesPaper) {
  // Paper: CPS hourly backscatter significantly exceeds consumer.
  const auto& mwu = result().report.backscatter_mwu;
  EXPECT_GT(mwu.u, 0.0);
  // Direction: the CPS sample (first argument) is stochastically larger,
  // i.e. U above its mean -> positive z.
  EXPECT_GT(mwu.z, 0.0);
}

}  // namespace
}  // namespace iotscope::core
