// Compressed block codec (".iftc") tests: round-trip fidelity, the
// hostile-input sweeps the PR3 codec suite runs for ".ift" (every-prefix
// truncation, per-byte mutation, CRC context), hand-built malformed
// blocks for the decoder's structural checks, and the pushdown property
// decode_filtered == filter(decode).
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "net/block_codec.hpp"
#include "net/flow_batch.hpp"
#include "net/flowtuple.hpp"
#include "util/bitpack.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace iotscope {
namespace {

using net::BlockPredicate;
using net::BlockScanStats;
using net::CompressedFlowCodec;
using net::FlowBatch;
using util::IoError;

// A batch with telescope-shaped structure: a bounded src pool whose
// members keep a fixed ttl / near-fixed dport / proto, random dst and
// sport — so every column mode (constant, minmax, dict, varint,
// src-keyed with and without exceptions) gets exercised.
FlowBatch make_batch(util::Rng& rng, std::size_t n, int interval = 42) {
  FlowBatch b;
  b.interval = interval;
  b.start_time = 1491955200 + interval * 3600;
  const std::size_t pool = std::max<std::size_t>(1, n / 8);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t src_id =
        static_cast<std::uint32_t>(rng.uniform(0, pool - 1));
    b.src.push_back(net::Ipv4Address(0xC0000000u + src_id * 7));
    b.dst.push_back(net::Ipv4Address(
        0x0A000000u | static_cast<std::uint32_t>(rng.next() & 0xFFFFFF)));
    b.src_port.push_back(static_cast<net::Port>(1024 + (rng.next() % 60000)));
    // dport: a function of src with ~10% exceptions.
    b.dst_port.push_back(rng.chance(0.1)
                             ? static_cast<net::Port>(rng.uniform(1, 65535))
                             : static_cast<net::Port>(23 + (src_id % 5)));
    const int p = static_cast<int>(src_id % 3);
    b.proto.push_back(p == 0   ? net::Protocol::Tcp
                      : p == 1 ? net::Protocol::Udp
                               : net::Protocol::Icmp);
    b.ttl.push_back(static_cast<std::uint8_t>(32 + (src_id % 4) * 32));
    b.tcp_flags.push_back(p == 0 ? std::uint8_t{0x02} : std::uint8_t{0});
    b.ip_len.push_back(static_cast<std::uint16_t>(40 + (src_id % 8)));
    b.pkt_count.push_back(rng.chance(0.05) ? rng.uniform(2, 90) : 1);
  }
  return b;
}

std::string encode(const FlowBatch& b, std::size_t block_records =
                                           CompressedFlowCodec::kDefaultBlockRecords) {
  std::string out;
  CompressedFlowCodec::encode(out, b, block_records);
  return out;
}

class BlockCodecSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockCodecSeeded, RoundTripPreservesRecordsAndOrder) {
  util::Rng rng(GetParam());
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{100},
                              std::size_t{8192}, std::size_t{8193},
                              std::size_t{20000}}) {
    const FlowBatch batch = make_batch(rng, n);
    const std::string blob = encode(batch);
    BlockScanStats stats;
    const FlowBatch round = CompressedFlowCodec::decode(blob, &stats);
    EXPECT_EQ(round.interval, batch.interval);
    EXPECT_EQ(round.start_time, batch.start_time);
    EXPECT_TRUE(round.same_records(batch)) << "n=" << n;
    EXPECT_EQ(stats.records_decoded, n);
    EXPECT_EQ(stats.bytes_raw, n * net::FlowTupleCodec::kRecordBytes);
    EXPECT_EQ(stats.blocks_skipped, 0u);
  }
}

TEST_P(BlockCodecSeeded, SmallBlocksRoundTrip) {
  util::Rng rng(GetParam());
  const FlowBatch batch = make_batch(rng, 1000);
  for (const std::size_t br : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                               std::size_t{999}, std::size_t{1000}}) {
    const FlowBatch round = CompressedFlowCodec::decode(encode(batch, br));
    EXPECT_TRUE(round.same_records(batch)) << "block_records=" << br;
  }
}

TEST_P(BlockCodecSeeded, PushdownEqualsDecodeThenFilter) {
  util::Rng rng(GetParam());
  const FlowBatch batch = make_batch(rng, 4000, 17);
  const std::string blob = encode(batch, 256);
  for (int round = 0; round < 40; ++round) {
    BlockPredicate p;
    if (rng.chance(0.5)) {
      p.hour_min = static_cast<int>(rng.uniform(0, 20));
      p.hour_max = p.hour_min + static_cast<int>(rng.uniform(0, 10));
    }
    if (rng.chance(0.7)) {
      p.proto_mask = static_cast<std::uint8_t>(rng.uniform(1, 7));
    }
    if (rng.chance(0.7)) {
      p.dst_port_min = static_cast<std::uint16_t>(rng.uniform(0, 100));
      p.dst_port_max =
          static_cast<std::uint16_t>(p.dst_port_min + rng.uniform(0, 200));
    }
    FlowBatch expected;
    net::filter_batch(batch, p, expected);
    expected.interval = batch.interval;
    expected.start_time = batch.start_time;
    BlockScanStats stats;
    const FlowBatch got = CompressedFlowCodec::decode_filtered(blob, p, &stats);
    EXPECT_TRUE(got.same_records(expected));
    EXPECT_EQ(got.interval, batch.interval);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockCodecSeeded,
                         ::testing::Values(1u, 2u, 99u, 20170412u));

TEST(BlockCodec, EmptyBatchRoundTrips) {
  FlowBatch b;
  b.interval = 3;
  b.start_time = 100;
  const std::string blob = encode(b);
  EXPECT_EQ(blob.size(), CompressedFlowCodec::kFileHeaderBytes);
  const FlowBatch round = CompressedFlowCodec::decode(blob);
  EXPECT_EQ(round.size(), 0u);
  EXPECT_EQ(round.interval, 3);
  EXPECT_EQ(CompressedFlowCodec::peek_block_count(blob), 0u);
}

TEST(BlockCodec, EncodeRejectsOutOfRangeInterval) {
  FlowBatch b;
  b.interval = -1;
  std::string out;
  EXPECT_THROW(CompressedFlowCodec::encode(out, b), IoError);
  b.interval = 0x10000;
  EXPECT_THROW(CompressedFlowCodec::encode(out, b), IoError);
}

TEST(BlockCodec, TruncationAtEveryPrefixThrows) {
  util::Rng rng(7);
  const FlowBatch batch = make_batch(rng, 600);
  const std::string blob = encode(batch, 512);  // two blocks
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(CompressedFlowCodec::decode(blob.substr(0, len)), IoError)
        << "prefix length " << len;
  }
}

TEST(BlockCodec, TrailingBytesAfterLastBlockAreIgnored) {
  util::Rng rng(8);
  const FlowBatch batch = make_batch(rng, 100);
  std::string blob = encode(batch);
  blob += "junk after the declared blocks";
  EXPECT_TRUE(CompressedFlowCodec::decode(blob).same_records(batch));
}

// Every single-byte mutation must be rejected, except within the file
// header's start_time field — the one field no validation can
// cross-check (the ".ift" codec accepts those too). Block bytes are all
// CRC-sealed; file-header fields are each caught by a structural check.
TEST(BlockCodec, MutationSweepEveryByteIsDetected) {
  util::Rng rng(9);
  const FlowBatch batch = make_batch(rng, 300);
  const std::string blob = encode(batch, 256);  // two blocks
  for (std::size_t i = 0; i < blob.size(); ++i) {
    const bool start_time_byte = i >= 10 && i < 18;
    for (const unsigned char flip : {0x01, 0x80, 0xFF}) {
      std::string mutated = blob;
      mutated[i] = static_cast<char>(mutated[i] ^ flip);
      if (start_time_byte) {
        // Decodes fine; only the (unvalidatable) start_time differs.
        FlowBatch got = CompressedFlowCodec::decode(mutated);
        EXPECT_NE(got.start_time, batch.start_time);
        got.start_time = batch.start_time;
        EXPECT_TRUE(got.same_records(batch));
      } else {
        EXPECT_THROW(CompressedFlowCodec::decode(mutated), IoError)
            << "byte " << i << " flip " << int(flip);
      }
    }
  }
}

TEST(BlockCodec, CrcMismatchReportsBlockIndexAndOffset) {
  util::Rng rng(10);
  const FlowBatch batch = make_batch(rng, 600);
  std::string blob = encode(batch, 512);
  // Corrupt the last payload byte — that lands in block 1.
  blob.back() = static_cast<char>(blob.back() ^ 0x40);
  try {
    CompressedFlowCodec::decode(blob);
    FAIL() << "mutated block decoded";
  } catch (const IoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("block 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset"), std::string::npos) << msg;
    EXPECT_NE(msg.find("crc mismatch"), std::string::npos) << msg;
  }
}

// --- Hand-built malformed blocks ------------------------------------
//
// The CRC catches mutations of well-formed files; these tests build
// structurally invalid blocks with VALID CRCs, so the decoder's own
// checks are what must fire.

void append_constant_column(std::string& payload, std::uint64_t v) {
  payload.push_back('\x00');  // kModeConstant
  util::put_varint(payload, v);
}

// Assembles a one-block file around a hand-written payload.
std::string build_file(std::uint32_t records, const std::string& payload,
                       std::uint8_t proto_mask = 0x1) {
  std::string out;
  util::ByteWriter w(out);
  w.u32(CompressedFlowCodec::kMagic);
  w.u16(CompressedFlowCodec::kVersion);
  w.u32(5);           // interval
  w.u64(1000);        // start_time
  w.u64(records);     // record_count
  w.u32(1);           // block_count
  unsigned char h[CompressedFlowCodec::kBlockHeaderBytes] = {};
  util::store_le32(h, records);
  util::store_le32(h + 4, records * net::FlowTupleCodec::kRecordBytes);
  util::store_le32(h + 8, static_cast<std::uint32_t>(payload.size()));
  util::store_le16(h + 16, 5);
  h[18] = proto_mask;
  util::store_le16(h + 20, 10);
  util::store_le16(h + 22, 10);
  util::store_le16(h + 24, 23);
  util::store_le16(h + 26, 23);
  std::uint32_t crc = util::crc32(h, sizeof(h));
  crc = util::crc32(payload.data(), payload.size(), crc);
  util::store_le32(h + 12, crc);
  w.bytes(h, sizeof(h));
  w.bytes(payload.data(), payload.size());
  return out;
}

TEST(BlockCodec, DictionaryIndexOutOfRangeThrowsWithContext) {
  // src column: dict with dc=3 over 4 records, one packed index == 3.
  std::string payload;
  payload.push_back('\x02');  // kModeDict
  util::put_varint(payload, 3);
  util::put_varint(payload, 10);  // dict {10, 11, 12}
  util::put_varint(payload, 1);
  util::put_varint(payload, 1);
  payload.push_back('\x02');  // idx_width = bit_width(2) = 2
  // LSB-first 2-bit indexes {0, 1, 3, 2}: 0b10'11'01'00.
  payload.push_back(static_cast<char>(0xB4));
  append_constant_column(payload, 7);     // dst
  append_constant_column(payload, 10);    // src_port
  append_constant_column(payload, 23);    // dst_port
  append_constant_column(payload, 6);     // proto = Tcp
  append_constant_column(payload, 64);    // ttl
  append_constant_column(payload, 2);     // tcp_flags
  append_constant_column(payload, 40);    // ip_len
  append_constant_column(payload, 1);     // pkt_count
  const std::string blob = build_file(4, payload);
  try {
    CompressedFlowCodec::decode(blob);
    FAIL() << "out-of-range dictionary index decoded";
  } catch (const IoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dictionary index out of range"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("block 0"), std::string::npos) << msg;
  }
}

TEST(BlockCodec, SrcKeyedModeWithoutDictCodedSrcThrows) {
  // src column constant, then ttl claims src-keyed mode 4.
  std::string payload;
  append_constant_column(payload, 100);  // src (constant, not dict)
  append_constant_column(payload, 7);    // dst
  append_constant_column(payload, 10);   // src_port
  append_constant_column(payload, 23);   // dst_port
  append_constant_column(payload, 6);    // proto
  payload.push_back('\x04');             // ttl: kModeSrcKeyed
  const std::string blob = build_file(2, payload);
  try {
    CompressedFlowCodec::decode(blob);
    FAIL() << "src-keyed column without dict src decoded";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what())
                  .find("src-keyed column without dictionary-coded src"),
              std::string::npos)
        << e.what();
  }
}

TEST(BlockCodec, UnknownColumnModeThrows) {
  std::string payload;
  payload.push_back('\x09');  // no such mode
  const std::string blob = build_file(2, payload);
  EXPECT_THROW(CompressedFlowCodec::decode(blob), IoError);
}

TEST(BlockCodec, ProtocolOutsideSummaryMaskThrows) {
  // proto column says Udp (17) but the header mask only admits Tcp.
  std::string payload;
  append_constant_column(payload, 100);  // src
  append_constant_column(payload, 7);    // dst
  append_constant_column(payload, 10);   // src_port
  append_constant_column(payload, 23);   // dst_port
  append_constant_column(payload, 17);   // proto = Udp
  append_constant_column(payload, 64);   // ttl
  append_constant_column(payload, 0);    // tcp_flags
  append_constant_column(payload, 40);   // ip_len
  append_constant_column(payload, 1);    // pkt_count
  const std::string blob = build_file(2, payload, /*proto_mask=*/0x1);
  EXPECT_THROW(CompressedFlowCodec::decode(blob), IoError);
}

// --- Pushdown skipping ----------------------------------------------

TEST(BlockCodec, HourOutsideWindowSkipsEveryBlockUndecoded) {
  util::Rng rng(11);
  const FlowBatch batch = make_batch(rng, 1000, 10);
  const std::string blob = encode(batch, 128);
  BlockPredicate p;
  p.hour_min = 0;
  p.hour_max = 5;  // file is hour 10
  BlockScanStats stats;
  const FlowBatch got = CompressedFlowCodec::decode_filtered(blob, p, &stats);
  EXPECT_EQ(got.size(), 0u);
  EXPECT_EQ(got.interval, 10);
  EXPECT_EQ(stats.blocks_decoded, 0u);
  EXPECT_EQ(stats.blocks_skipped, CompressedFlowCodec::peek_block_count(blob));
  EXPECT_EQ(stats.bytes_raw, 0u);
}

TEST(BlockCodec, PortRangeSkipsNonMatchingBlocks) {
  // Two blocks with disjoint dst-port ranges; a predicate selecting one
  // range must skip the other block entirely.
  FlowBatch b;
  b.interval = 1;
  b.start_time = 0;
  for (int i = 0; i < 512; ++i) {
    const bool first = i < 256;
    b.src.push_back(net::Ipv4Address(0xC0A80001u));
    b.dst.push_back(net::Ipv4Address(0x0A000001u + i));
    b.src_port.push_back(4000);
    b.dst_port.push_back(first ? 23 : 8080);
    b.proto.push_back(net::Protocol::Tcp);
    b.ttl.push_back(64);
    b.tcp_flags.push_back(2);
    b.ip_len.push_back(40);
    b.pkt_count.push_back(1);
  }
  const std::string blob = encode(b, 256);
  BlockPredicate p;
  p.dst_port_min = 23;
  p.dst_port_max = 23;
  BlockScanStats stats;
  const FlowBatch got = CompressedFlowCodec::decode_filtered(blob, p, &stats);
  EXPECT_EQ(got.size(), 256u);
  EXPECT_EQ(stats.blocks_decoded, 1u);
  EXPECT_EQ(stats.blocks_skipped, 1u);
}

TEST(BlockCodec, MatchAllPredicateTakesFullDecodePath) {
  util::Rng rng(12);
  const FlowBatch batch = make_batch(rng, 500);
  const std::string blob = encode(batch);
  BlockScanStats stats;
  const FlowBatch got =
      CompressedFlowCodec::decode_filtered(blob, BlockPredicate{}, &stats);
  EXPECT_TRUE(got.same_records(batch));
  EXPECT_EQ(stats.blocks_skipped, 0u);
}

TEST(BlockCodec, CompressionBeatsRawOnStructuredData) {
  util::Rng rng(13);
  const FlowBatch batch = make_batch(rng, 20000);
  const std::string blob = encode(batch);
  EXPECT_LT(blob.size() * 2,
            batch.size() * net::FlowTupleCodec::kRecordBytes)
      << "expected at least 2x compression on telescope-shaped data";
}

TEST(BlockPredicateTest, ProtoBitsAndRowMatching) {
  EXPECT_EQ(BlockPredicate::proto_bit(net::Protocol::Tcp), 0x1);
  EXPECT_EQ(BlockPredicate::proto_bit(net::Protocol::Udp), 0x2);
  EXPECT_EQ(BlockPredicate::proto_bit(net::Protocol::Icmp), 0x4);
  BlockPredicate p;
  EXPECT_TRUE(p.matches_all());
  p.proto_mask = 0x2;
  EXPECT_FALSE(p.matches_all());
  EXPECT_TRUE(p.matches_row(net::Protocol::Udp, 23));
  EXPECT_FALSE(p.matches_row(net::Protocol::Tcp, 23));
  p.dst_port_min = 100;
  EXPECT_FALSE(p.matches_row(net::Protocol::Udp, 23));
  net::BlockSummary s;
  s.interval = 4;
  s.proto_mask = 0x1;  // Tcp only
  s.dst_port_min = 20;
  s.dst_port_max = 25;
  EXPECT_FALSE(p.may_match(s));  // mask disjoint and port range below
  p.proto_mask = 0x1;
  p.dst_port_min = 0;
  p.dst_port_max = 0xFFFF;
  EXPECT_TRUE(p.may_match(s));
  p.hour_max = 3;
  EXPECT_FALSE(p.may_match(s));
}

TEST(BlockCodec, FileNameMatchesConvention) {
  EXPECT_EQ(CompressedFlowCodec::file_name(42), "flowtuple-0042.iftc");
  EXPECT_EQ(CompressedFlowCodec::file_name(0), "flowtuple-0000.iftc");
}

}  // namespace
}  // namespace iotscope
