// Deterministic tests of the Section V maliciousness analysis over
// crafted threat/malware intel.
#include "core/malicious.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace iotscope::core {
namespace {

using inventory::DeviceCategory;
using inventory::DeviceRecord;
using inventory::IoTDeviceDatabase;
using net::Ipv4Address;

class MaliciousTest : public ::testing::Test {
 protected:
  MaliciousTest() {
    // Five devices: three consumer scanners, one CPS scanner, one CPS
    // backscatter victim.
    for (int i = 0; i < 5; ++i) {
      DeviceRecord d;
      d.ip = Ipv4Address::from_octets(77, 0, 0, static_cast<std::uint8_t>(i + 1));
      d.category = i < 3 ? DeviceCategory::Consumer : DeviceCategory::Cps;
      if (d.is_cps()) d.services = {0};
      db_.add_device(d);
    }

    AnalysisPipeline pipeline(db_);
    net::HourlyFlows flows;
    flows.interval = 0;
    auto add = [&flows](Ipv4Address src, std::uint8_t flags, std::uint64_t n) {
      net::FlowTuple t;
      t.src = src;
      t.dst = Ipv4Address::from_octets(10, 0, 0, 1);
      t.protocol = net::Protocol::Tcp;
      t.tcp_flags = flags;
      t.dst_port = 23;
      t.packet_count = n;
      flows.records.push_back(t);
    };
    add(ip(0), net::kSyn, 1000);  // heavy consumer scanner
    add(ip(1), net::kSyn, 100);
    add(ip(2), net::kSyn, 10);
    add(ip(3), net::kSyn, 500);             // CPS scanner
    add(ip(4), net::kSyn | net::kAck, 50);  // CPS victim (backscatter only)
    pipeline.observe(flows);
    report_ = pipeline.finalize();
  }

  Ipv4Address ip(int i) const {
    return Ipv4Address::from_octets(77, 0, 0, static_cast<std::uint8_t>(i + 1));
  }

  IoTDeviceDatabase db_;
  Report report_;
};

TEST_F(MaliciousTest, ExploredSetIsVictimsPlusTopPerRealm) {
  MaliciousnessOptions options;
  options.top_per_realm = 2;
  intel::ThreatRepository empty_threats;
  intel::MalwareDatabase empty_malware;
  intel::FamilyResolver resolver;
  const auto result = analyze_maliciousness(report_, db_, empty_threats,
                                            empty_malware, resolver, options);
  // Victims: device 4. Top-2 consumer: devices 0, 1. Top-2 (only 1) CPS
  // scanner: device 3. Device 2 is cut by the top-N limit.
  EXPECT_EQ(result.explored_devices, 4u);
  EXPECT_EQ(result.flagged_devices, 0u);
  EXPECT_EQ(result.explored_packets.size(), 4u);
}

TEST_F(MaliciousTest, ThreatCorrelationCountsCategories) {
  intel::ThreatRepository threats;
  threats.add({ip(0), intel::ThreatCategory::Scanning, "f", 1, ""});
  threats.add({ip(0), intel::ThreatCategory::Malware, "f", 1, ""});
  threats.add({ip(3), intel::ThreatCategory::Scanning, "f", 1, ""});
  threats.add({ip(3), intel::ThreatCategory::Malware, "f", 1, ""});
  threats.add({ip(4), intel::ThreatCategory::Spam, "f", 1, ""});
  // Unrelated IP must not leak into the result.
  threats.add({Ipv4Address::from_octets(200, 1, 1, 1),
               intel::ThreatCategory::Phishing, "f", 1, ""});

  intel::MalwareDatabase empty_malware;
  intel::FamilyResolver resolver;
  const auto result = analyze_maliciousness(report_, db_, threats,
                                            empty_malware, resolver, {});
  EXPECT_EQ(result.flagged_devices, 3u);
  EXPECT_EQ(result.category_devices[static_cast<std::size_t>(
                intel::ThreatCategory::Scanning)], 2u);
  EXPECT_EQ(result.category_devices[static_cast<std::size_t>(
                intel::ThreatCategory::Spam)], 1u);
  EXPECT_EQ(result.category_devices[static_cast<std::size_t>(
                intel::ThreatCategory::Phishing)], 0u);
  // Malware split: device 0 is consumer+scanning, device 3 CPS+scanning.
  EXPECT_EQ(result.malware_consumer, 1u);
  EXPECT_EQ(result.malware_scanning_consumer, 1u);
  EXPECT_EQ(result.malware_cps, 1u);
  EXPECT_EQ(result.malware_scanning_cps, 1u);
  EXPECT_EQ(result.flagged_packets.size(), 3u);
}

TEST_F(MaliciousTest, MalwareCorrelationResolvesFamilies) {
  intel::MalwareDatabase malware;
  intel::MalwareReport r1;
  r1.sha256 = "hash1";
  r1.contacted_ips = {ip(0), ip(3)};
  r1.domains = {"c2-a.example", "c2-b.example"};
  malware.add(r1);
  intel::MalwareReport r2;
  r2.sha256 = "hash2";
  r2.contacted_ips = {ip(3)};
  r2.domains = {"c2-b.example"};
  malware.add(r2);
  intel::MalwareReport decoy;
  decoy.sha256 = "hash3";
  decoy.contacted_ips = {Ipv4Address::from_octets(203, 0, 113, 9)};
  malware.add(decoy);

  intel::FamilyResolver resolver;
  resolver.register_sample("hash1", {"Ramnit", 40, 60});
  resolver.register_sample("hash2", {"Zusy", 30, 60});
  resolver.register_sample("hash3", {"ShouldNotAppear", 30, 60});

  intel::ThreatRepository empty_threats;
  const auto result = analyze_maliciousness(report_, db_, empty_threats,
                                            malware, resolver, {});
  EXPECT_EQ(result.devices_in_reports, 2u);
  EXPECT_EQ(result.unique_hashes, 2u);
  EXPECT_EQ(result.domains, 2u);
  ASSERT_EQ(result.families.size(), 2u);
  EXPECT_EQ(result.families[0], "Ramnit");
  EXPECT_EQ(result.families[1], "Zusy");
}

TEST_F(MaliciousTest, UnresolvedHashesStillCountAsVariants) {
  intel::MalwareDatabase malware;
  intel::MalwareReport r;
  r.sha256 = "unresolved";
  r.contacted_ips = {ip(1)};
  malware.add(r);
  intel::FamilyResolver resolver;  // empty: VT knows nothing
  intel::ThreatRepository empty_threats;
  const auto result = analyze_maliciousness(report_, db_, empty_threats,
                                            malware, resolver, {});
  EXPECT_EQ(result.unique_hashes, 1u);
  EXPECT_TRUE(result.families.empty());
}

}  // namespace
}  // namespace iotscope::core
