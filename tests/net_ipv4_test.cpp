#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.hpp"

namespace iotscope::net {
namespace {

TEST(Ipv4Address, OctetConstructionAndAccess) {
  const auto addr = Ipv4Address::from_octets(192, 0, 2, 1);
  EXPECT_EQ(addr.value(), 0xC0000201u);
  EXPECT_EQ(addr.octet(0), 192);
  EXPECT_EQ(addr.octet(1), 0);
  EXPECT_EQ(addr.octet(2), 2);
  EXPECT_EQ(addr.octet(3), 1);
}

TEST(Ipv4Address, ToStringKnownValues) {
  EXPECT_EQ(Ipv4Address(0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Address(0xFFFFFFFF).to_string(), "255.255.255.255");
  EXPECT_EQ(Ipv4Address::from_octets(10, 1, 2, 3).to_string(), "10.1.2.3");
}

TEST(Ipv4Address, ParseValid) {
  const auto addr = Ipv4Address::parse("172.16.254.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, Ipv4Address::from_octets(172, 16, 254, 1));
}

class Ipv4ParseRejectTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4ParseRejectTest, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Address::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, Ipv4ParseRejectTest,
    ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.999",
                      "a.b.c.d", "1..2.3", "1.2.3.4 ", " 1.2.3.4", "1,2,3,4",
                      "-1.2.3.4", "1.2.3.4x"));

TEST(Ipv4Address, ParseFormatsRoundTripProperty) {
  util::Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const Ipv4Address addr(static_cast<std::uint32_t>(rng.next()));
    const auto parsed = Ipv4Address::parse(addr.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, addr);
  }
}

TEST(Ipv4Address, OrderingMatchesNumericValue) {
  EXPECT_LT(Ipv4Address(1), Ipv4Address(2));
  EXPECT_LT(Ipv4Address::from_octets(9, 255, 255, 255),
            Ipv4Address::from_octets(10, 0, 0, 0));
}

TEST(Ipv4Address, HashSpreadsClusteredAddresses) {
  std::hash<Ipv4Address> hasher;
  std::unordered_set<std::size_t> buckets;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    buckets.insert(hasher(Ipv4Address(0x0A000000u + i)) % 1024);
  }
  // Sequential addresses should not collapse into few buckets.
  EXPECT_GT(buckets.size(), 500u);
}

TEST(Ipv4Prefix, MaskSizeContains) {
  const Ipv4Prefix slash8(Ipv4Address::from_octets(10, 0, 0, 0), 8);
  EXPECT_EQ(slash8.mask(), 0xFF000000u);
  EXPECT_EQ(slash8.size(), 1ULL << 24);
  EXPECT_TRUE(slash8.contains(Ipv4Address::from_octets(10, 255, 0, 1)));
  EXPECT_FALSE(slash8.contains(Ipv4Address::from_octets(11, 0, 0, 0)));
}

TEST(Ipv4Prefix, HostBitsAreMaskedOff) {
  const Ipv4Prefix p(Ipv4Address::from_octets(10, 20, 30, 40), 16);
  EXPECT_EQ(p.base(), Ipv4Address::from_octets(10, 20, 0, 0));
}

TEST(Ipv4Prefix, LengthClamped) {
  const Ipv4Prefix neg(Ipv4Address(0), -5);
  EXPECT_EQ(neg.length(), 0);
  EXPECT_EQ(neg.size(), 1ULL << 32);
  const Ipv4Prefix big(Ipv4Address(42), 99);
  EXPECT_EQ(big.length(), 32);
  EXPECT_EQ(big.size(), 1u);
  EXPECT_TRUE(big.contains(Ipv4Address(42)));
  EXPECT_FALSE(big.contains(Ipv4Address(43)));
}

TEST(Ipv4Prefix, ZeroLengthContainsEverything) {
  const Ipv4Prefix all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.contains(Ipv4Address(0xFFFFFFFF)));
  EXPECT_TRUE(all.contains(Ipv4Address(0)));
}

TEST(Ipv4Prefix, AtEnumeratesAddresses) {
  const Ipv4Prefix p(Ipv4Address::from_octets(192, 168, 1, 0), 30);
  EXPECT_EQ(p.at(0), Ipv4Address::from_octets(192, 168, 1, 0));
  EXPECT_EQ(p.at(3), Ipv4Address::from_octets(192, 168, 1, 3));
}

TEST(Ipv4Prefix, ParseAndToString) {
  const auto p = Ipv4Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/8").has_value());
}

}  // namespace
}  // namespace iotscope::net
