// Property tests for util::TaskScheduler — the task-graph executor that
// replaced the hour-level stage barriers (DESIGN.md §16) — plus report
// byte-identity across {Static, Stealing, Graph} × thread counts ×
// {batch, --follow} ingestion. The ordering tests are deliberately
// adversarial about successor-release races (many tasks finishing at
// once all decrementing one fan-in's pending count); run under TSan
// (preset `tsan`) for full value.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "core/stream.hpp"
#include "core/study.hpp"
#include "obs/metrics.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "util/task_scheduler.hpp"
#include "workload/rotating_writer.hpp"
#include "workload/synth.hpp"

namespace iotscope {
namespace {

using util::TaskOptions;
using util::TaskScheduler;

// ----------------------------------------------------- ordering basics

TEST(TaskSchedulerTest, DiamondRunsInDependencyOrder) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    TaskScheduler sched(threads);
    std::atomic<int> a_done{0}, b_done{0}, c_done{0};
    std::atomic<bool> order_ok{true};
    const auto a = sched.submit([&](unsigned) { a_done.store(1); });
    const auto b = sched.submit([&](unsigned) {
      if (a_done.load() != 1) order_ok.store(false);
      b_done.store(1);
    }, {a});
    const auto c = sched.submit([&](unsigned) {
      if (a_done.load() != 1) order_ok.store(false);
      c_done.store(1);
    }, {a});
    sched.submit([&](unsigned) {
      if (b_done.load() != 1 || c_done.load() != 1) order_ok.store(false);
    }, {b, c});
    sched.wait_idle();
    EXPECT_TRUE(order_ok.load()) << "threads=" << threads;
  }
}

TEST(TaskSchedulerTest, WideFanOutFanInReleaseRace) {
  // 256 siblings all decrement one fan-in's pending count as they
  // finish — the successor-release race the graph mutex must serialize.
  constexpr int kWidth = 256;
  for (unsigned threads : {2u, 4u, 8u, 0u}) {
    TaskScheduler sched(threads);
    std::atomic<int> done{0};
    std::atomic<int> fanin_saw{-1};
    const auto root = sched.submit([](unsigned) {});
    std::vector<TaskScheduler::TaskId> mids;
    mids.reserve(kWidth);
    for (int i = 0; i < kWidth; ++i) {
      mids.push_back(sched.submit(
          [&](unsigned) { done.fetch_add(1, std::memory_order_relaxed); },
          {root}));
    }
    sched.submit([&](unsigned) { fanin_saw.store(done.load()); },
                 mids.data(), mids.size());
    sched.wait_idle();
    EXPECT_EQ(fanin_saw.load(), kWidth) << "threads=" << threads;
  }
}

TEST(TaskSchedulerTest, TasksCanSubmitTasksDynamically) {
  // The pipeline's plan task submits the hour's morsel tasks from
  // inside a task; the count is not known at graph-construction time.
  for (unsigned threads : {1u, 4u}) {
    TaskScheduler sched(threads);
    std::atomic<int> leaves{0};
    sched.submit([&](unsigned) {
      for (int i = 0; i < 64; ++i) {
        sched.submit([&](unsigned) {
          leaves.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
    sched.wait_idle();
    EXPECT_EQ(leaves.load(), 64) << "threads=" << threads;
  }
}

TEST(TaskSchedulerTest, CompletedDependenciesReadAsSatisfied) {
  TaskScheduler sched(2);
  std::atomic<int> ran{0};
  const auto a = sched.submit([&](unsigned) { ran.fetch_add(1); });
  sched.wait_idle();
  // `a` completed (and its slot may be recycled); depending on it must
  // not strand the new task.
  sched.submit([&](unsigned) { ran.fetch_add(1); }, {a});
  sched.wait_idle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(TaskSchedulerTest, ManualReleaseFencesChainSubgraphs) {
  // Fence pattern from the pipeline: hour N+1's head waits on a fence
  // task (manual_dependencies = 1) that hour N's tail releases.
  for (unsigned threads : {1u, 4u}) {
    TaskScheduler sched(threads);
    std::atomic<int> stage{0};
    TaskOptions fence_options;
    fence_options.manual_dependencies = 1;
    const auto fence =
        sched.submit([](unsigned) {}, {}, fence_options);
    std::atomic<bool> order_ok{true};
    sched.submit([&](unsigned) {
      if (stage.load() != 1) order_ok.store(false);
      stage.store(2);
    }, {fence});
    sched.submit([&](unsigned) {
      if (stage.load() != 0) order_ok.store(false);
      stage.store(1);
      sched.release(fence);
    });
    sched.wait_idle();
    EXPECT_TRUE(order_ok.load()) << "threads=" << threads;
    EXPECT_EQ(stage.load(), 2) << "threads=" << threads;
  }
}

// ------------------------------------------------ fail-fast semantics

TEST(TaskSchedulerTest, FailFastPropagatesFirstErrorAndDrains) {
  for (unsigned threads : {1u, 4u}) {
    TaskScheduler sched(threads);
    std::atomic<int> stranded_ran{0};
    std::atomic<int> finallys{0};
    const auto boom = sched.submit(
        [](unsigned) { throw std::runtime_error("boom"); });
    TaskOptions options;
    options.finally = [&] { finallys.fetch_add(1); };
    sched.submit([&](unsigned) { stranded_ran.fetch_add(1); }, {boom},
                 options);
    EXPECT_THROW(sched.wait_idle(), std::runtime_error)
        << "threads=" << threads;
    // The stranded successor was skipped, but its finally hook still
    // ran — that is what keeps credits/gauges balanced on failure.
    EXPECT_EQ(stranded_ran.load(), 0) << "threads=" << threads;
    EXPECT_EQ(finallys.load(), 1) << "threads=" << threads;
    // The scheduler is reusable after the rethrow.
    std::atomic<int> after{0};
    sched.submit([&](unsigned) { after.fetch_add(1); });
    sched.wait_idle();
    EXPECT_EQ(after.load(), 1) << "threads=" << threads;
    EXPECT_FALSE(sched.failed());
  }
}

TEST(TaskSchedulerTest, RunIndexedCoversEveryIndexOnce) {
  for (unsigned threads : {1u, 3u, 8u}) {
    TaskScheduler sched(threads);
    constexpr std::size_t kCount = 501;
    std::vector<std::atomic<int>> hits(kCount);
    sched.run_indexed(kCount, [&](unsigned lane, std::size_t i) {
      EXPECT_LT(lane, sched.lanes());
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(TaskSchedulerTest, OnLaneIdentifiesTaskContext) {
  TaskScheduler sched(2);
  EXPECT_FALSE(sched.on_lane());
  std::atomic<bool> inside{false};
  sched.submit([&](unsigned) { inside.store(sched.on_lane()); });
  sched.wait_idle();
  EXPECT_TRUE(inside.load());
  EXPECT_FALSE(sched.on_lane());
}

TEST(TaskSchedulerTest, StatsCountSpawnsAndSerialModeNeverSteals) {
  TaskScheduler sched(1);
  for (int i = 0; i < 10; ++i) sched.submit([](unsigned) {});
  sched.wait_idle();
  const auto stats = sched.stats();
  EXPECT_EQ(stats.spawned, 10u);
  EXPECT_EQ(stats.stolen, 0u);
}

// --------------------------------------------- report byte-identity
//
// The acceptance surface of the task-graph pipeline: the rendered
// report must not move by one byte across {Static, Stealing, Graph} ×
// {1, 2, 4, 8, auto} threads × {raw .ift, compressed .iftc} stores ×
// {batch, --follow} ingestion, on a normal and on a heavy-hitter
// workload. Out-of-order morsel folds are made exact by the pipeline's
// commutative-exact reduction; these tests pin that the overlapped
// hour window (decode of hour N+1 racing the observe/fan-in of hour N)
// introduces no new ordering dependence.

workload::ScenarioConfig graph_config(double heavy_hitter_share = 0.0) {
  workload::ScenarioConfig config;
  config.inventory_scale = 0.005;
  config.traffic_scale = 0.001;
  config.noise_ratio = 0.05;
  config.heavy_hitter_share = heavy_hitter_share;
  return config;
}

std::string render_everything(const core::Report& report,
                              const inventory::IoTDeviceDatabase& inventory) {
  const auto character = core::characterize(report, inventory);
  return core::render_inference_report(report, character, inventory) +
         core::render_traffic_report(report, inventory);
}

/// Replays `store` through observe_async(hour_loaders) — the task-graph
/// ingestion path; in the non-graph modes observe_async degenerates to
/// a synchronous splice + observe, so one driver covers the matrix.
std::string replay_async(const workload::Scenario& scenario,
                         const telescope::FlowTupleStore& store,
                         unsigned threads, core::ShardScheduler scheduler) {
  core::PipelineOptions options;
  options.threads = threads;
  options.scheduler = scheduler;
  core::AnalysisPipeline pipeline(scenario.inventory, options);
  std::atomic<std::size_t> hours_folded{0};
  for (const int interval : store.intervals()) {
    auto loaders = store.hour_loaders(interval, pipeline.threads());
    if (loaders.empty()) continue;
    pipeline.observe_async(std::move(loaders),
                           [&hours_folded](const net::FlowBatch&, bool ok) {
                             if (ok) hours_folded.fetch_add(1);
                           });
  }
  pipeline.drain();
  EXPECT_EQ(hours_folded.load(), store.intervals().size());
  return render_everything(pipeline.finalize(), scenario.inventory);
}

class GraphIdentityTest : public ::testing::Test {
 protected:
  static const workload::Scenario& scenario() {
    static const workload::Scenario instance =
        workload::build_scenario(graph_config());
    return instance;
  }
};

TEST_F(GraphIdentityTest, BatchReportsAreByteIdenticalAcrossTheMatrix) {
  util::TempDir dir;
  telescope::FlowTupleStore raw_store(dir.path() / "raw");
  telescope::FlowTupleStore compressed_store(dir.path() / "compressed");
  // Small blocks force multi-block hours, so graph mode actually splits
  // each compressed hour into several decode tasks.
  compressed_store.set_write_format(telescope::StoreFormat::Compressed, 256);
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(graph_config().darknet),
      [&](net::FlowBatch&& batch) {
        raw_store.put(batch);
        compressed_store.put(batch);
      });
  workload::synthesize_into(scenario(), graph_config(), capture);

  const std::string golden =
      replay_async(scenario(), raw_store, 1, core::ShardScheduler::Stealing);
  for (const unsigned threads : {1u, 2u, 4u, 8u, 0u}) {
    for (const auto scheduler : {core::ShardScheduler::Static,
                                 core::ShardScheduler::Stealing,
                                 core::ShardScheduler::Graph}) {
      SCOPED_TRACE(testing::Message()
                   << threads << " threads, scheduler "
                   << static_cast<int>(scheduler));
      EXPECT_EQ(replay_async(scenario(), compressed_store, threads, scheduler),
                golden);
    }
    SCOPED_TRACE(testing::Message() << threads << " threads, raw graph");
    EXPECT_EQ(replay_async(scenario(), raw_store, threads,
                           core::ShardScheduler::Graph),
              golden);
  }
  // The overlapped window was actually exercised: at some point at
  // least two hours were in flight at once (the gauge max is global to
  // the process, so this asserts over all runs above).
  const auto snapshot = obs::Registry::instance().snapshot();
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "pipeline.task.inflight_hours") {
      EXPECT_GE(gauge.max, 2) << "no hour overlap ever happened";
    }
  }
}

TEST_F(GraphIdentityTest, HourLoadersReassembleGetBatchExactly) {
  // Concatenating the per-part range decodes in order must reproduce
  // get_batch()'s record order byte for byte — for multi-block
  // compressed hours at several part counts, and for raw hours.
  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  store.set_write_format(telescope::StoreFormat::Compressed, 128);
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(graph_config().darknet),
      [&](net::FlowBatch&& batch) {
        if (batch.interval < 8) store.put(batch);
      });
  workload::synthesize_into(scenario(), graph_config(), capture);

  for (const int interval : store.intervals()) {
    const auto whole = store.get_batch(interval);
    ASSERT_TRUE(whole.has_value());
    for (const std::size_t parts : {1u, 2u, 3u, 7u, 64u}) {
      SCOPED_TRACE(testing::Message()
                   << "interval " << interval << ", " << parts << " parts");
      auto loaders = store.hour_loaders(interval, parts);
      ASSERT_FALSE(loaders.empty());
      EXPECT_LE(loaders.size(), parts);
      net::FlowBatch spliced = loaders.front()();
      for (std::size_t p = 1; p < loaders.size(); ++p) {
        spliced.append(loaders[p]());
      }
      EXPECT_TRUE(spliced.same_records(*whole));
    }
  }
  EXPECT_TRUE(store.hour_loaders(9999, 4).empty());
}

TEST_F(GraphIdentityTest, FollowMatchesBatchUnderGraphScheduler) {
  // A StreamingStudy in graph mode following a store while a rotating
  // writer lands hours from another thread: the final report must equal
  // the sequential batch golden, with every published hour admitted,
  // none late, and eviction exercised mid-stream (the eviction now runs
  // inside the fence-serialized fan-in hook).
  const auto config = graph_config();
  const auto& scn = scenario();
  const auto pipeline_options = [](unsigned threads) {
    core::PipelineOptions options;
    options.threads = threads;
    options.scheduler = core::ShardScheduler::Graph;
    options.unknown_profile_hourly_floor = 1;  // guarantees evictable state
    return options;
  };

  util::TempDir golden_dir;
  telescope::FlowTupleStore golden_store(golden_dir.path());
  workload::write_rotating(scn, config, golden_store);
  core::AnalysisPipeline golden_pipeline(scn.inventory, pipeline_options(1));
  golden_store.for_each([&golden_pipeline](const net::FlowBatch& batch) {
    golden_pipeline.observe(batch);
  });
  const std::string golden =
      render_everything(golden_pipeline.finalize(), scn.inventory);
  const std::size_t hour_count = golden_store.intervals().size();

  for (const unsigned threads : {1u, 2u, 4u, 0u}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    util::TempDir dir;
    telescope::FlowTupleStore store(dir.path());
    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      workload::write_rotating(scn, config, store);
      writer_done.store(true, std::memory_order_release);
    });
    core::StreamOptions stream_options;
    stream_options.snapshot_every = 10;
    stream_options.evict_after_hours = 2;
    stream_options.poll_interval = std::chrono::milliseconds(1);
    core::StreamingStudy stream(scn.inventory, store,
                                pipeline_options(threads), stream_options);
    stream.follow([&writer_done] {
      return writer_done.load(std::memory_order_acquire);
    });
    writer.join();
    const auto report = stream.finalize();
    EXPECT_EQ(render_everything(report, scn.inventory), golden);
    EXPECT_EQ(stream.stats().hours_admitted, hour_count);
    EXPECT_EQ(stream.stats().hours_late, 0u);
    EXPECT_GT(stream.stats().profiles_evicted, 0u);
    EXPECT_GT(stream.stats().snapshots_published, 1u);
    EXPECT_EQ(stream.watermark(), static_cast<int>(hour_count));
  }
}

TEST(GraphHeavyHitterTest, SkewedWorkloadStaysByteIdentical) {
  // One non-inventory source emits ~80 % of every hour: the partition
  // buckets are maximally skewed, so the graph's morsel tasks all fight
  // over one bucket while later hours' decode tasks race them. Batch
  // (observe_async) and --follow must both land on the sequential bytes.
  const auto config = graph_config(0.8);
  const auto scn = workload::build_scenario(config);

  util::TempDir dir;
  telescope::FlowTupleStore store(dir.path());
  store.set_write_format(telescope::StoreFormat::Compressed, 512);
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet),
      [&store](net::FlowBatch&& batch) { store.put(batch); });
  workload::synthesize_into(scn, config, capture);

  const std::string golden =
      replay_async(scn, store, 1, core::ShardScheduler::Stealing);
  for (const unsigned threads : {2u, 4u, 8u, 0u}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    EXPECT_EQ(replay_async(scn, store, threads, core::ShardScheduler::Graph),
              golden);
  }

  // Follow path on the pre-written store: the stream drains it in one
  // burst of polls, all through the task graph.
  core::PipelineOptions options;
  options.threads = 4;
  options.scheduler = core::ShardScheduler::Graph;
  core::StreamingStudy stream(scn.inventory, store, options);
  stream.follow([] { return true; });
  EXPECT_EQ(render_everything(stream.finalize(), scn.inventory), golden);
}

TEST(GraphStudyTest, RunStudyMatchesAcrossSchedulers) {
  // The end-to-end study driver (synthesis -> capture -> pipeline): the
  // graph path replaces the bounded-queue analyst thread, and must
  // reproduce its report bytes exactly.
  const auto run = [](unsigned threads, core::ShardScheduler scheduler) {
    core::StudyConfig config = core::StudyConfig::test_default();
    config.pipeline.threads = threads;
    config.pipeline.scheduler = scheduler;
    const auto result = core::run_study(config);
    return render_everything(result.report, result.scenario.inventory);
  };
  const std::string golden = run(1, core::ShardScheduler::Stealing);
  EXPECT_EQ(run(1, core::ShardScheduler::Graph), golden);
  EXPECT_EQ(run(4, core::ShardScheduler::Graph), golden);
  EXPECT_EQ(run(4, core::ShardScheduler::Stealing), golden);
}

}  // namespace
}  // namespace iotscope
