// Tests for the time base, string helpers, and binary I/O primitives.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/flat_hash.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"
#include "util/timebase.hpp"

namespace iotscope::util {
namespace {

// ---------------- timebase ----------------

TEST(AnalysisWindow, BoundsAndContainment) {
  EXPECT_EQ(AnalysisWindow::kHours, 143);
  EXPECT_EQ(AnalysisWindow::end() - AnalysisWindow::start(),
            143 * kSecondsPerHour);
  EXPECT_TRUE(AnalysisWindow::contains(AnalysisWindow::start()));
  EXPECT_TRUE(AnalysisWindow::contains(AnalysisWindow::end() - 1));
  EXPECT_FALSE(AnalysisWindow::contains(AnalysisWindow::end()));
  EXPECT_FALSE(AnalysisWindow::contains(AnalysisWindow::start() - 1));
}

TEST(AnalysisWindow, StartIsApril12_2017Utc) {
  EXPECT_EQ(format_utc(AnalysisWindow::start()), "2017-04-12 00:00:00");
}

TEST(AnalysisWindow, IntervalOfMapsHourBoundaries) {
  EXPECT_EQ(AnalysisWindow::interval_of(AnalysisWindow::start()), 0);
  EXPECT_EQ(AnalysisWindow::interval_of(AnalysisWindow::start() + 3599), 0);
  EXPECT_EQ(AnalysisWindow::interval_of(AnalysisWindow::start() + 3600), 1);
  EXPECT_EQ(AnalysisWindow::interval_of(AnalysisWindow::end() - 1), 142);
}

TEST(AnalysisWindow, IntervalOfRejectsOutOfWindowTimestamps) {
  // Regression: these used to clamp to hours 0/142, silently folding
  // stray records into the edge intervals of every hourly series.
  EXPECT_EQ(AnalysisWindow::interval_of(0), AnalysisWindow::kOutOfWindow);
  EXPECT_EQ(AnalysisWindow::interval_of(AnalysisWindow::start() - 1),
            AnalysisWindow::kOutOfWindow);
  EXPECT_EQ(AnalysisWindow::interval_of(AnalysisWindow::end()),
            AnalysisWindow::kOutOfWindow);
  EXPECT_EQ(AnalysisWindow::interval_of(AnalysisWindow::end() + 999999),
            AnalysisWindow::kOutOfWindow);
  EXPECT_LT(AnalysisWindow::kOutOfWindow, 0);
}

TEST(AnalysisWindow, IntervalStartInvertsIntervalOf) {
  for (int h = 0; h < AnalysisWindow::kHours; ++h) {
    EXPECT_EQ(AnalysisWindow::interval_of(AnalysisWindow::interval_start(h)),
              h);
  }
}

TEST(AnalysisWindow, DayOfInterval) {
  EXPECT_EQ(AnalysisWindow::day_of_interval(0), 0);
  EXPECT_EQ(AnalysisWindow::day_of_interval(23), 0);
  EXPECT_EQ(AnalysisWindow::day_of_interval(24), 1);
  EXPECT_EQ(AnalysisWindow::day_of_interval(142), 5);
  EXPECT_EQ(AnalysisWindow::day_of_interval(-3), 0);
}

TEST(Timebase, FormatWindowDay) {
  EXPECT_EQ(format_window_day(0), "APR-12");
  EXPECT_EQ(format_window_day(5), "APR-17");
  EXPECT_EQ(format_window_day(99), "APR-17");  // clamped
}

// ---------------- strings ----------------

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("TeLnEt/23"), "telnet/23");
  EXPECT_TRUE(starts_with("flowtuple-0042.ift", "flowtuple-"));
  EXPECT_FALSE(starts_with("flow", "flowtuple"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(26881), "26,881");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Strings, HumanCount) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(26881), "26.9K");
  EXPECT_EQ(human_count(141300000), "141.3M");
  EXPECT_EQ(human_count(2.5e9), "2.5B");
}

TEST(Strings, PercentAndFixed) {
  EXPECT_EQ(percent(26.881), "26.9%");
  EXPECT_EQ(percent(2.52, 2), "2.52%");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

// ---------------- binary io ----------------

TEST(Io, IntegerRoundTripAllWidths) {
  std::stringstream ss;
  write_u8(ss, 0xAB);
  write_u16(ss, 0xBEEF);
  write_u32(ss, 0xDEADBEEF);
  write_u64(ss, 0x0123456789ABCDEFULL);
  EXPECT_EQ(read_u8(ss), 0xAB);
  EXPECT_EQ(read_u16(ss), 0xBEEF);
  EXPECT_EQ(read_u32(ss), 0xDEADBEEFu);
  EXPECT_EQ(read_u64(ss), 0x0123456789ABCDEFULL);
}

TEST(Io, LittleEndianOnDisk) {
  std::stringstream ss;
  write_u32(ss, 0x01020304);
  const std::string bytes = ss.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(Io, ReadPastEndThrows) {
  std::stringstream ss;
  write_u16(ss, 7);
  read_u16(ss);
  EXPECT_THROW(read_u8(ss), IoError);
}

TEST(Io, StringRoundTripIncludingEmbeddedNulAndUnicode) {
  std::stringstream ss;
  const std::string original("a\0b\xc3\xa9", 4);
  write_string(ss, original);
  EXPECT_EQ(read_string(ss), original);
}

TEST(Io, StringSanityCapEnforced) {
  std::stringstream ss;
  write_string(ss, std::string(64, 'x'));
  EXPECT_THROW(read_string(ss, 10), IoError);
}

TEST(Io, TruncatedStringThrows) {
  std::stringstream ss;
  write_u32(ss, 100);  // claims 100 bytes, provides none
  EXPECT_THROW(read_string(ss), IoError);
}

TEST(Io, FileRoundTripAndMissingFile) {
  TempDir dir;
  const auto path = dir.path() / "blob.bin";
  write_file(path, "hello\0world");
  EXPECT_EQ(read_file(path), "hello");  // std::string ctor stops at NUL here
  write_file(path, std::string("a\0b", 3));
  EXPECT_EQ(read_file(path).size(), 3u);
  EXPECT_THROW(read_file(dir.path() / "absent"), IoError);
}

TEST(Io, TempDirCreatesAndCleansUp) {
  std::filesystem::path captured;
  {
    TempDir dir("iotscope-test");
    captured = dir.path();
    EXPECT_TRUE(std::filesystem::exists(captured));
    write_file(captured / "f.txt", "x");
  }
  EXPECT_FALSE(std::filesystem::exists(captured));
}

// ---------------- block codec cursor ----------------

TEST(ByteCursor, WriterReaderRoundTripAllWidths) {
  std::string buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  const unsigned char raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof raw);
  ASSERT_EQ(buf.size(), 1u + 2 + 4 + 8 + 3);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  const unsigned char* tail = r.bytes(3);
  EXPECT_EQ(tail[0], 1);
  EXPECT_EQ(tail[2], 3);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteCursor, WriterMatchesStreamPrimitivesByteForByte) {
  // The block writer must lay down exactly the bytes the stream
  // primitives do — the two codec paths share one on-disk format.
  std::string buf;
  ByteWriter w(buf);
  w.u16(0x1234);
  w.u32(0xCAFEBABE);
  w.u64(0x1122334455667788ULL);
  std::ostringstream os;
  write_u16(os, 0x1234);
  write_u32(os, 0xCAFEBABE);
  write_u64(os, 0x1122334455667788ULL);
  EXPECT_EQ(buf, os.str());
}

TEST(ByteCursor, ReaderThrowsOnOverrunWithoutAdvancing) {
  const std::string buf("\x01\x02\x03", 3);
  ByteReader r(buf);
  EXPECT_THROW(r.u32(), IoError);
  EXPECT_THROW(r.bytes(4), IoError);
  // A failed read must not consume input.
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_THROW(r.u16(), IoError);
  EXPECT_EQ(r.u8(), 0x03);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), IoError);
}

// ---------------- flat hash containers ----------------

TEST(FlatHash, SetInsertContainsAndDuplicates) {
  FlatSet<std::uint32_t> set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.insert(7));
  EXPECT_FALSE(set.insert(7));  // duplicate
  EXPECT_TRUE(set.insert(0));   // zero is a valid key (epoch marks empties)
  EXPECT_TRUE(set.contains(7));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlatHash, EpochClearForgetsEverythingWithoutShrinking) {
  FlatSet<std::uint32_t> set;
  for (std::uint32_t i = 0; i < 100; ++i) set.insert(i);
  EXPECT_EQ(set.size(), 100u);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_FALSE(set.contains(i));
  // Reuse after clear: stale slots must be treated as empty, and
  // re-inserting must report "fresh" again.
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_TRUE(set.insert(i));
  EXPECT_EQ(set.size(), 100u);
}

TEST(FlatHash, SetMatchesUnorderedReferenceUnderChurn) {
  std::mt19937_64 rng(99);
  FlatSet<std::uint64_t> set;
  std::unordered_set<std::uint64_t> reference;
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = rng() % 1500;  // force duplicates
      EXPECT_EQ(set.insert(key), reference.insert(key).second);
    }
    ASSERT_EQ(set.size(), reference.size());
    std::size_t visited = 0;
    set.for_each([&](std::uint64_t key) {
      ++visited;
      EXPECT_TRUE(reference.count(key));
    });
    EXPECT_EQ(visited, reference.size());
    for (std::uint64_t probe = 0; probe < 2000; ++probe) {
      ASSERT_EQ(set.contains(probe), reference.count(probe) != 0);
    }
    set.clear();
    reference.clear();
  }
}

TEST(FlatHash, MapOperatorBracketAndFind) {
  FlatMap<std::uint32_t, std::uint64_t> map;
  EXPECT_EQ(map.find(5), nullptr);
  map[5] = 50;
  map[5] += 1;
  map[9];  // value-initialized
  ASSERT_NE(map.find(5), nullptr);
  EXPECT_EQ(*map.find(5), 51u);
  ASSERT_NE(map.find(9), nullptr);
  EXPECT_EQ(*map.find(9), 0u);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.insert(7, 70));
  EXPECT_FALSE(map.insert(7, 71));  // already present, value untouched
  EXPECT_EQ(*map.find(7), 70u);
}

TEST(FlatHash, MapMatchesUnorderedReferenceUnderChurnAndGrowth) {
  std::mt19937_64 rng(123);
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t key = rng() % 3000;
      map[key] += 1;
      reference[key] += 1;
    }
    ASSERT_EQ(map.size(), reference.size());
    map.for_each([&](std::uint64_t key, const std::uint64_t& value) {
      auto it = reference.find(key);
      ASSERT_NE(it, reference.end());
      EXPECT_EQ(value, it->second);
    });
    map.clear();
    reference.clear();
  }
}

}  // namespace
}  // namespace iotscope::util
