// Tests for the future-work extensions: near-real-time discovery
// notifications, campaign clustering, and fuzzy fingerprinting of
// unindexed IoT devices.
#include <gtest/gtest.h>

#include <set>

#include "core/campaigns.hpp"
#include "core/fingerprint.hpp"
#include "core/pipeline.hpp"
#include "workload/spec.hpp"

namespace iotscope::core {
namespace {

using inventory::DeviceCategory;
using inventory::DeviceRecord;
using inventory::IoTDeviceDatabase;
using net::Ipv4Address;

IoTDeviceDatabase small_inventory(int n) {
  IoTDeviceDatabase db;
  for (int i = 0; i < n; ++i) {
    DeviceRecord d;
    d.ip = Ipv4Address::from_octets(60, 0, 0, static_cast<std::uint8_t>(i + 1));
    d.category = i % 2 ? DeviceCategory::Cps : DeviceCategory::Consumer;
    if (d.is_cps()) d.services = {0};
    db.add_device(d);
  }
  return db;
}

net::FlowTuple scan_flow(Ipv4Address src, net::Port port, std::uint64_t n) {
  net::FlowTuple t;
  t.src = src;
  t.dst = Ipv4Address::from_octets(10, 0, 0, 1);
  t.protocol = net::Protocol::Tcp;
  t.tcp_flags = net::kSyn;
  t.dst_port = port;
  t.packet_count = n;
  return t;
}

net::HourlyFlows hour(int interval, std::vector<net::FlowTuple> records) {
  net::HourlyFlows flows;
  flows.interval = interval;
  flows.start_time = util::AnalysisWindow::interval_start(interval);
  flows.records = std::move(records);
  return flows;
}

// ---------------- discovery notifications ----------------

TEST(Notify, SinkFiresOncePerDeviceWithFirstClass) {
  auto db = small_inventory(3);
  AnalysisPipeline pipeline(db);
  std::vector<Discovery> events;
  pipeline.set_discovery_sink(
      [&events](const Discovery& d) { events.push_back(d); });

  pipeline.observe(hour(0, {scan_flow(db.devices()[0].ip, 23, 5)}));
  pipeline.observe(hour(1, {scan_flow(db.devices()[0].ip, 23, 9),
                            scan_flow(db.devices()[1].ip, 7547, 2)}));
  pipeline.finalize();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].device, 0u);
  EXPECT_EQ(events[0].interval, 0);
  EXPECT_EQ(events[0].first_class, FlowClass::TcpScan);
  EXPECT_EQ(events[0].packets, 5u);
  EXPECT_EQ(events[1].device, 1u);
  EXPECT_EQ(events[1].interval, 1);
}

TEST(Notify, NoSinkNoCrashAndUnknownSourcesDoNotNotify) {
  auto db = small_inventory(1);
  AnalysisPipeline pipeline(db);
  std::size_t events = 0;
  pipeline.set_discovery_sink([&events](const Discovery&) { ++events; });
  pipeline.observe(hour(0, {scan_flow(Ipv4Address::from_octets(9, 9, 9, 9),
                                      23, 100)}));
  pipeline.finalize();
  EXPECT_EQ(events, 0u);
}

// ---------------- campaign clustering ----------------

class CampaignTest : public ::testing::Test {
 protected:
  IoTDeviceDatabase db_ = small_inventory(10);
};

TEST_F(CampaignTest, GroupsOverlappingSameServiceScanners) {
  AnalysisPipeline pipeline(db_);
  // Devices 0-3: Telnet from hour 0. Devices 4-5: Telnet much later
  // (separate campaign). Device 6: CWMP.
  for (int d = 0; d < 4; ++d) {
    pipeline.observe(hour(d, {scan_flow(db_.devices()[static_cast<std::size_t>(d)].ip, 23, 50)}));
  }
  pipeline.observe(hour(100, {scan_flow(db_.devices()[4].ip, 23, 40),
                              scan_flow(db_.devices()[6].ip, 7547, 60)}));
  pipeline.observe(hour(101, {scan_flow(db_.devices()[5].ip, 2323, 30)}));
  const auto report = pipeline.finalize();

  const auto campaigns = cluster_campaigns(report, db_);
  ASSERT_EQ(campaigns.campaigns.size(), 2u);  // CWMP solo device dropped
  // Heaviest first: the 4-device Telnet campaign (200 pkts).
  EXPECT_EQ(campaigns.campaigns[0].service_name, "Telnet");
  EXPECT_EQ(campaigns.campaigns[0].devices.size(), 4u);
  EXPECT_EQ(campaigns.campaigns[0].start_interval, 0);
  EXPECT_EQ(campaigns.campaigns[0].end_interval, 3);
  EXPECT_EQ(campaigns.campaigns[0].packets, 200u);
  // Second: the late 2-device Telnet campaign (23 + 2323 same service).
  EXPECT_EQ(campaigns.campaigns[1].service_name, "Telnet");
  EXPECT_EQ(campaigns.campaigns[1].devices.size(), 2u);
  EXPECT_EQ(campaigns.campaigns[1].start_interval, 100);
  EXPECT_EQ(campaigns.devices_clustered, 6u);
  EXPECT_EQ(campaigns.devices_unclustered, 1u);  // the lone CWMP device
}

TEST_F(CampaignTest, MinPacketFloorExcludesOneOffProbes) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {scan_flow(db_.devices()[0].ip, 23, 100),
                            scan_flow(db_.devices()[1].ip, 23, 100),
                            scan_flow(db_.devices()[2].ip, 23, 3)}));
  const auto report = pipeline.finalize();
  CampaignOptions options;
  options.min_device_packets = 10;
  const auto campaigns = cluster_campaigns(report, db_, options);
  ASSERT_EQ(campaigns.campaigns.size(), 1u);
  EXPECT_EQ(campaigns.campaigns[0].devices.size(), 2u);
}

TEST_F(CampaignTest, WindowGapOptionControlsMerging) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {scan_flow(db_.devices()[0].ip, 22, 50)}));
  pipeline.observe(hour(20, {scan_flow(db_.devices()[1].ip, 22, 50)}));
  const auto report = pipeline.finalize();

  CampaignOptions tight;
  tight.max_window_gap = 5;
  tight.min_campaign_devices = 1;
  EXPECT_EQ(cluster_campaigns(report, db_, tight).campaigns.size(), 2u);

  CampaignOptions loose;
  loose.max_window_gap = 30;
  loose.min_campaign_devices = 1;
  const auto merged = cluster_campaigns(report, db_, loose);
  ASSERT_EQ(merged.campaigns.size(), 1u);
  EXPECT_EQ(merged.campaigns[0].service_name, "SSH");
  EXPECT_EQ(merged.campaigns[0].duration_hours(), 21);
}

// ---------------- fingerprinting ----------------

TEST(Fingerprint, IotPortPredicateCoversStudyPorts) {
  for (const net::Port port : {23, 2323, 23231, 7547, 37547, 53413, 554}) {
    EXPECT_TRUE(is_iot_associated_port(port)) << port;
  }
  for (const net::Port port : {22, 80, 443, 445, 1433, 3389}) {
    EXPECT_FALSE(is_iot_associated_port(port)) << port;
  }
}

TEST(Fingerprint, SurfacesSustainedIotScannersAndIgnoresNoise) {
  auto db = small_inventory(2);
  AnalysisPipeline pipeline(db);

  const auto bot = Ipv4Address::from_octets(203, 0, 113, 7);     // unindexed bot
  const auto server = Ipv4Address::from_octets(198, 51, 100, 9); // web backscatterer
  for (int h = 0; h < 10; ++h) {
    std::vector<net::FlowTuple> records;
    records.push_back(scan_flow(bot, 23, 8));           // telnet SYN probes
    records.push_back(scan_flow(bot, 2323, 2));
    // A non-IoT unknown source: sustained SYNs to port 445 only.
    records.push_back(scan_flow(server, 445, 10));
    // One-packet background radiation (below the hourly floor).
    records.push_back(scan_flow(
        Ipv4Address(static_cast<std::uint32_t>(0x50000000 + h)), 23, 1));
    pipeline.observe(hour(h, std::move(records)));
  }
  const auto report = pipeline.finalize();

  // Profiles: only the two sustained sources were promoted.
  ASSERT_EQ(report.unknown_sources.size(), 2u);

  const auto fp = fingerprint_unindexed(report);
  ASSERT_EQ(fp.candidates.size(), 1u);
  EXPECT_EQ(fp.candidates[0].ip, bot);
  EXPECT_EQ(fp.candidates[0].packets, 100u);
  EXPECT_DOUBLE_EQ(fp.candidates[0].iot_port_share, 1.0);
  EXPECT_DOUBLE_EQ(fp.candidates[0].syn_share, 1.0);
  EXPECT_EQ(fp.candidates[0].first_interval, 0);
  EXPECT_EQ(fp.candidates[0].last_interval, 9);
}

TEST(Fingerprint, MinPacketOptionFiltersThinProfiles) {
  auto db = small_inventory(1);
  AnalysisPipeline pipeline(db);
  const auto bot = Ipv4Address::from_octets(203, 0, 113, 8);
  pipeline.observe(hour(0, {scan_flow(bot, 23, 6)}));  // promoted but thin
  const auto report = pipeline.finalize();
  FingerprintOptions strict;
  strict.min_packets = 50;
  const auto fp = fingerprint_unindexed(report, strict);
  EXPECT_TRUE(fp.candidates.empty());
  EXPECT_EQ(fp.profiles_below_min_packets, 1u);
  FingerprintOptions lax;
  lax.min_packets = 5;
  EXPECT_EQ(fingerprint_unindexed(report, lax).candidates.size(), 1u);
}

TEST(Fingerprint, BackscatterFromUnknownVictimIsNotIotScanner) {
  auto db = small_inventory(1);
  AnalysisPipeline pipeline(db);
  const auto victim = Ipv4Address::from_octets(203, 0, 113, 9);
  net::FlowTuple t;
  t.src = victim;
  t.dst = Ipv4Address::from_octets(10, 2, 3, 4);
  t.protocol = net::Protocol::Tcp;
  t.tcp_flags = net::kSyn | net::kAck;  // backscatter, not probing
  t.src_port = 80;
  t.dst_port = 23;  // toward an "IoT" port by chance
  t.packet_count = 500;
  pipeline.observe(hour(0, {t}));
  const auto report = pipeline.finalize();
  // Profiled (sustained) but rejected: SYN share is zero.
  ASSERT_EQ(report.unknown_sources.size(), 1u);
  EXPECT_TRUE(fingerprint_unindexed(report).candidates.empty());
}

// ---------------- per-device ledger extensions ----------------

TEST(Ledger, DominantServiceAndLastInterval) {
  auto db = small_inventory(1);
  AnalysisPipeline pipeline(db);
  pipeline.observe(hour(3, {scan_flow(db.devices()[0].ip, 23, 10),
                            scan_flow(db.devices()[0].ip, 22, 30)}));
  pipeline.observe(hour(7, {scan_flow(db.devices()[0].ip, 22, 5)}));
  const auto report = pipeline.finalize();
  const auto* ledger = report.traffic_for(0);
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->first_interval, 3);
  EXPECT_EQ(ledger->last_interval, 7);
  const int dominant = ledger->dominant_scan_service();
  EXPECT_EQ(workload::scan_services()[static_cast<std::size_t>(dominant)].name,
            "SSH");
}

}  // namespace
}  // namespace iotscope::core
