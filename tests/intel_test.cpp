// Tests for the threat repository, the sandbox XML codec, the malware
// database, and the family resolver.
#include <gtest/gtest.h>

#include "intel/malware.hpp"
#include "intel/threat.hpp"
#include "util/io.hpp"

namespace iotscope::intel {
namespace {

using net::Ipv4Address;

// ---------------- threat repository ----------------

TEST(ThreatRepository, AddFlagAndCategoryMask) {
  ThreatRepository repo;
  const auto ip = Ipv4Address::from_octets(5, 6, 7, 8);
  EXPECT_FALSE(repo.flagged(ip));
  repo.add({ip, ThreatCategory::Scanning, "feed-a", 100, "scan"});
  repo.add({ip, ThreatCategory::Malware, "feed-b", 200, "bot"});
  EXPECT_TRUE(repo.flagged(ip));
  EXPECT_TRUE(repo.has_category(ip, ThreatCategory::Scanning));
  EXPECT_TRUE(repo.has_category(ip, ThreatCategory::Malware));
  EXPECT_FALSE(repo.has_category(ip, ThreatCategory::Phishing));
  EXPECT_EQ(repo.events_for(ip).size(), 2u);
  EXPECT_EQ(repo.event_count(), 2u);
  EXPECT_EQ(repo.flagged_ips(), 1u);
  EXPECT_TRUE(repo.events_for(Ipv4Address(1)).empty());
}

TEST(ThreatRepository, CategoryNames) {
  EXPECT_STREQ(to_string(ThreatCategory::Scanning), "Scanning");
  EXPECT_STREQ(to_string(ThreatCategory::BruteForce), "Brute force (SSH)");
  EXPECT_EQ(kThreatCategoryCount, 6);
}

TEST(ThreatRepository, CsvRoundTrip) {
  util::TempDir dir;
  ThreatRepository repo;
  repo.add({Ipv4Address::from_octets(1, 1, 1, 1), ThreatCategory::Spam,
            "feed", 42, "note text"});
  repo.add({Ipv4Address::from_octets(2, 2, 2, 2), ThreatCategory::Phishing,
            "feed2", 43, "phish"});
  const auto path = dir.path() / "threats.csv";
  repo.save_csv(path);
  const auto loaded = ThreatRepository::load_csv(path);
  EXPECT_EQ(loaded.event_count(), 2u);
  EXPECT_TRUE(loaded.has_category(Ipv4Address::from_octets(1, 1, 1, 1),
                                  ThreatCategory::Spam));
  EXPECT_TRUE(loaded.has_category(Ipv4Address::from_octets(2, 2, 2, 2),
                                  ThreatCategory::Phishing));
}

TEST(ThreatRepository, LoadRejectsMalformedRows) {
  util::TempDir dir;
  const auto path = dir.path() / "bad.csv";
  util::write_file(path, "1.2.3.4,notanum\n");
  EXPECT_THROW(ThreatRepository::load_csv(path), util::IoError);
  util::write_file(path, "nonsense,0,src,1,note\n");
  EXPECT_THROW(ThreatRepository::load_csv(path), util::IoError);
  util::write_file(path, "1.2.3.4,99,src,1,note\n");
  EXPECT_THROW(ThreatRepository::load_csv(path), util::IoError);
}

// ---------------- sandbox XML ----------------

MalwareReport sample_report() {
  MalwareReport report;
  report.sha256 = "aabbccdd00112233";
  report.contacted_ips = {Ipv4Address::from_octets(41, 42, 43, 44),
                          Ipv4Address::from_octets(5, 5, 5, 5)};
  report.domains = {"c2.example.org", "pool-7.ddns.example"};
  report.urls = {"http://c2.example.org/gate.php?a=1&b=<x>"};
  report.dlls = {"ws2_32.dll", "kernel32.dll"};
  report.registry_keys = {"HKLM\\SOFTWARE\\Run\\\"quoted\""};
  report.memory_peak_kb = 32768;
  return report;
}

TEST(SandboxXml, RoundTripWithEscaping) {
  const auto original = sample_report();
  const auto xml = SandboxXmlCodec::write(original);
  EXPECT_NE(xml.find("&amp;"), std::string::npos);  // & in URL escaped
  EXPECT_NE(xml.find("&lt;x&gt;"), std::string::npos);
  const auto parsed = SandboxXmlCodec::parse(xml);
  EXPECT_EQ(parsed.sha256, original.sha256);
  EXPECT_EQ(parsed.contacted_ips, original.contacted_ips);
  EXPECT_EQ(parsed.domains, original.domains);
  EXPECT_EQ(parsed.urls, original.urls);
  EXPECT_EQ(parsed.dlls, original.dlls);
  EXPECT_EQ(parsed.registry_keys, original.registry_keys);
  EXPECT_EQ(parsed.memory_peak_kb, original.memory_peak_kb);
}

TEST(SandboxXml, EmptyListsRoundTrip) {
  MalwareReport report;
  report.sha256 = "00";
  const auto parsed = SandboxXmlCodec::parse(SandboxXmlCodec::write(report));
  EXPECT_TRUE(parsed.contacted_ips.empty());
  EXPECT_TRUE(parsed.domains.empty());
  EXPECT_EQ(parsed.memory_peak_kb, 0u);
}

TEST(SandboxXml, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(SandboxXmlCodec::parse(""), util::IoError);
  EXPECT_THROW(SandboxXmlCodec::parse("<notreport></notreport>"),
               util::IoError);
  EXPECT_THROW(SandboxXmlCodec::parse("<report><sha256>x</sha256>"),
               util::IoError);
  // Bad IP inside connections.
  const char* bad_ip =
      "<report><sha256>x</sha256><network><connections><ip>999.1.1.1</ip>"
      "</connections><domains></domains><urls></urls></network>"
      "<system><dlls></dlls><registry></registry></system></report>";
  EXPECT_THROW(SandboxXmlCodec::parse(bad_ip), util::IoError);
  EXPECT_THROW(SandboxXmlCodec::parse("<report><sha256>a&unknown;b</sha256>"),
               util::IoError);
}

// ---------------- malware database ----------------

TEST(MalwareDatabase, IndexesByIpDomainAndHash) {
  MalwareDatabase db;
  auto report = sample_report();
  db.add(report);
  MalwareReport other;
  other.sha256 = "ffee";
  other.contacted_ips = {Ipv4Address::from_octets(41, 42, 43, 44)};
  other.domains = {"other.example"};
  db.add(other);

  EXPECT_EQ(db.size(), 2u);
  const auto hits = db.reports_contacting(Ipv4Address::from_octets(41, 42, 43, 44));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_EQ(db.reports_contacting(Ipv4Address::from_octets(9, 9, 9, 9)).size(),
            0u);
  EXPECT_EQ(db.reports_for_domain("c2.example.org").size(), 1u);
  EXPECT_EQ(db.reports_for_domain("absent.example").size(), 0u);
  ASSERT_NE(db.by_hash("ffee"), nullptr);
  EXPECT_EQ(db.by_hash("ffee")->domains[0], "other.example");
  EXPECT_EQ(db.by_hash("nope"), nullptr);
}

TEST(MalwareDatabase, ReportContactedHelper) {
  const auto report = sample_report();
  EXPECT_TRUE(report.contacted(Ipv4Address::from_octets(5, 5, 5, 5)));
  EXPECT_FALSE(report.contacted(Ipv4Address::from_octets(5, 5, 5, 6)));
}

TEST(MalwareDatabase, XmlExportImportRoundTrip) {
  util::TempDir dir;
  MalwareDatabase db;
  db.add(sample_report());
  MalwareReport second;
  second.sha256 = "1234567890abcdef1234";
  second.contacted_ips = {Ipv4Address::from_octets(7, 7, 7, 7)};
  db.add(second);
  db.export_xml(dir.path() / "reports");
  const auto loaded = MalwareDatabase::import_xml(dir.path() / "reports");
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(
      loaded.reports_contacting(Ipv4Address::from_octets(7, 7, 7, 7)).size(),
      1u);
  ASSERT_NE(loaded.by_hash(sample_report().sha256), nullptr);
  EXPECT_EQ(loaded.by_hash(sample_report().sha256)->memory_peak_kb, 32768u);
}

// ---------------- family resolver ----------------

TEST(FamilyResolver, LookupAndOverwrite) {
  FamilyResolver resolver;
  EXPECT_FALSE(resolver.lookup("x").has_value());
  resolver.register_sample("x", {"Ramnit", 40, 60});
  auto verdict = resolver.lookup("x");
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->family, "Ramnit");
  EXPECT_EQ(verdict->positives, 40);
  resolver.register_sample("x", {"Zusy", 10, 60});
  EXPECT_EQ(resolver.lookup("x")->family, "Zusy");
  EXPECT_EQ(resolver.size(), 1u);
}

TEST(FamilyCatalog, ContainsTable7Families) {
  const auto& families = iot_malware_families();
  EXPECT_EQ(families.size(), 11u);
  EXPECT_EQ(families.front(), "Ramnit");
  EXPECT_EQ(families.back(), "Allaple");
}

}  // namespace
}  // namespace iotscope::intel
