#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace iotscope::util {
namespace {

TEST(SplitMix64, ProducesKnownNonZeroStream) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequencyTracksProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanMatches) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 1);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0, 50.0,
                                           100.0, 500.0));

TEST(Rng, PoissonZeroAndNegativeMeanGiveZero) {
  Rng rng(29);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-3.0), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ParetoRespectsScaleAndTail) {
  Rng rng(37);
  const int n = 100000;
  int above_double = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(5.0, 2.0);
    ASSERT_GE(x, 5.0);
    if (x > 10.0) ++above_double;
  }
  // P(X > 2*xm) = (1/2)^alpha = 0.25 for alpha = 2.
  EXPECT_NEAR(static_cast<double>(above_double) / n, 0.25, 0.01);
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(41);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> hits(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[rng.weighted_index(weights)];
  EXPECT_NEAR(static_cast<double>(hits[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[2]) / n, 0.6, 0.01);
}

TEST(Rng, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(43);
  const std::vector<double> weights = {-5.0, 0.0, 1.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 2u);
  }
}

TEST(Rng, WeightedIndexAllZeroReturnsFirst) {
  Rng rng(47);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleHandlesTinyContainers) {
  Rng rng(59);
  std::vector<int> empty;
  rng.shuffle(empty);
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one[0], 7);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(61);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next() == child_b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(StableHash, DeterministicAndSensitive) {
  EXPECT_EQ(stable_hash("telnet"), stable_hash("telnet"));
  EXPECT_NE(stable_hash("telnet"), stable_hash("telnet "));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, Uniform01StaysUnbiasedAcrossSeeds) {
  Rng rng(GetParam());
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 20170412ULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace iotscope::util
