// Deterministic pipeline tests over hand-crafted inventories and flows —
// exact expected ledgers, series, and roll-ups (no randomness).
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/characterize.hpp"
#include "workload/spec.hpp"

namespace iotscope::core {
namespace {

using inventory::ConsumerType;
using inventory::DeviceCategory;
using inventory::DeviceRecord;
using inventory::IoTDeviceDatabase;
using net::Ipv4Address;

/// Two consumer devices, one CPS device, known countries/ISPs.
IoTDeviceDatabase tiny_inventory() {
  IoTDeviceDatabase db;
  const auto& catalog = db.catalog();
  const auto ru = catalog.country_id("Russian Federation");
  const auto cn = catalog.country_id("China");
  const auto er = db.add_isp("JSC ER-Telecom", ru);
  const auto ct = db.add_isp("China Telecom", cn);

  DeviceRecord router;
  router.ip = Ipv4Address::from_octets(95, 1, 1, 1);
  router.category = DeviceCategory::Consumer;
  router.consumer_type = ConsumerType::Router;
  router.country = ru;
  router.isp = er;
  db.add_device(router);

  DeviceRecord camera;
  camera.ip = Ipv4Address::from_octets(95, 1, 1, 2);
  camera.category = DeviceCategory::Consumer;
  camera.consumer_type = ConsumerType::IpCamera;
  camera.country = ru;
  camera.isp = er;
  db.add_device(camera);

  DeviceRecord plc;
  plc.ip = Ipv4Address::from_octets(112, 2, 2, 2);
  plc.category = DeviceCategory::Cps;
  plc.services = {0, 4};  // Telvent + Ethernet/IP
  plc.country = cn;
  plc.isp = ct;
  db.add_device(plc);
  return db;
}

net::FlowTuple flow(Ipv4Address src, net::Protocol proto, std::uint8_t flags,
                    net::Port dst_port, std::uint64_t count,
                    std::uint32_t dst_low = 1) {
  net::FlowTuple t;
  t.src = src;
  t.dst = Ipv4Address(0x0A000000u + dst_low);
  t.protocol = proto;
  t.tcp_flags = flags;
  t.dst_port = dst_port;
  t.src_port = proto == net::Protocol::Icmp ? dst_port : net::Port{40000};
  t.packet_count = count;
  return t;
}

class PipelineTest : public ::testing::Test {
 protected:
  IoTDeviceDatabase db_ = tiny_inventory();
  const Ipv4Address router_ = Ipv4Address::from_octets(95, 1, 1, 1);
  const Ipv4Address camera_ = Ipv4Address::from_octets(95, 1, 1, 2);
  const Ipv4Address plc_ = Ipv4Address::from_octets(112, 2, 2, 2);
  const Ipv4Address unknown_ = Ipv4Address::from_octets(8, 8, 8, 8);

  net::HourlyFlows hour(int interval, std::vector<net::FlowTuple> records) {
    net::HourlyFlows flows;
    flows.interval = interval;
    flows.start_time = util::AnalysisWindow::interval_start(interval);
    flows.records = std::move(records);
    return flows;
  }
};

TEST_F(PipelineTest, CorrelationAttributesAndFiltersUnknownSources) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {
      flow(router_, net::Protocol::Tcp, net::kSyn, 23, 10),
      flow(unknown_, net::Protocol::Tcp, net::kSyn, 23, 99),
  }));
  const auto report = pipeline.finalize();
  EXPECT_EQ(report.total_packets, 10u);
  EXPECT_EQ(report.unattributed_packets, 99u);
  EXPECT_EQ(report.discovered_total(), 1u);
  EXPECT_EQ(report.discovered_consumer, 1u);
  const auto* ledger = report.traffic_for(0);
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->tcp_scan, 10u);
  EXPECT_EQ(ledger->first_interval, 0);
}

TEST_F(PipelineTest, ClassCountersPerLedger) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(2, {
      flow(plc_, net::Protocol::Tcp, net::kSyn, 22, 5),
      flow(plc_, net::Protocol::Tcp, net::kSyn | net::kAck, 1234, 7),
      flow(plc_, net::Protocol::Tcp, net::kRst, 1234, 3),
      flow(plc_, net::Protocol::Tcp, net::kAck, 80, 2),
      flow(plc_, net::Protocol::Udp, 0, 37547, 11),
      flow(plc_, net::Protocol::Icmp, 0,
           static_cast<net::Port>(net::IcmpType::EchoRequest), 4),
      flow(plc_, net::Protocol::Icmp, 0,
           static_cast<net::Port>(net::IcmpType::EchoReply), 6),
  }));
  const auto report = pipeline.finalize();
  const auto* ledger = report.traffic_for(2);
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->tcp_scan, 5u);
  EXPECT_EQ(ledger->tcp_backscatter, 10u);  // SYN-ACK + RST
  EXPECT_EQ(ledger->tcp_other, 2u);
  EXPECT_EQ(ledger->udp, 11u);
  EXPECT_EQ(ledger->icmp_scan, 4u);
  EXPECT_EQ(ledger->icmp_backscatter, 6u);
  EXPECT_EQ(ledger->backscatter(), 16u);
  EXPECT_EQ(ledger->packets, 38u);
  EXPECT_EQ(ledger->tcp(), 17u);
  EXPECT_EQ(ledger->icmp(), 10u);
  // Realm roll-ups (all CPS here).
  EXPECT_EQ(report.tcp_packets.cps, 17u);
  EXPECT_EQ(report.udp_packets.cps, 11u);
  EXPECT_EQ(report.icmp_packets.cps, 10u);
  EXPECT_EQ(report.tcp_packets.consumer, 0u);
}

TEST_F(PipelineTest, DiscoveryCurveUsesFirstInterval) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {flow(router_, net::Protocol::Tcp, net::kSyn, 23, 1)}));
  pipeline.observe(hour(30, {flow(camera_, net::Protocol::Udp, 0, 53, 1)}));
  pipeline.observe(
      hour(120, {flow(plc_, net::Protocol::Tcp, net::kSyn, 445, 1),
                 flow(router_, net::Protocol::Tcp, net::kSyn, 23, 1)}));
  const auto report = pipeline.finalize();
  // Day 0: router. Day 1 (hour 30): camera. Day 5 (hour 120): plc.
  EXPECT_EQ(report.cumulative_by_day_consumer[0], 1u);
  EXPECT_EQ(report.cumulative_by_day_consumer[1], 2u);
  EXPECT_EQ(report.cumulative_by_day_consumer[5], 2u);
  EXPECT_EQ(report.cumulative_by_day_cps[4], 0u);
  EXPECT_EQ(report.cumulative_by_day_cps[5], 1u);
  // Daily activity: router active on days 0 and 5.
  EXPECT_EQ(report.active_by_day_consumer[0], 1u);
  EXPECT_EQ(report.active_by_day_consumer[5], 1u);
  const auto* router_ledger = report.traffic_for(0);
  EXPECT_EQ(router_ledger->days_active(), 2);
}

TEST_F(PipelineTest, UdpPortTableAndDistinctDeviceCounts) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {
      flow(router_, net::Protocol::Udp, 0, 37547, 20),
      flow(camera_, net::Protocol::Udp, 0, 37547, 5),
      flow(camera_, net::Protocol::Udp, 0, 137, 8),
  }));
  // Same devices hit 37547 again next hour: device counts must not double.
  pipeline.observe(hour(1, {
      flow(router_, net::Protocol::Udp, 0, 37547, 2),
  }));
  const auto report = pipeline.finalize();
  ASSERT_GE(report.udp_top_ports.size(), 2u);
  EXPECT_EQ(report.udp_top_ports[0].port, 37547);
  EXPECT_EQ(report.udp_top_ports[0].packets, 27u);
  EXPECT_EQ(report.udp_top_ports[0].devices, 2u);
  EXPECT_EQ(report.udp_top_ports[1].port, 137);
  EXPECT_EQ(report.udp_top_ports[1].devices, 1u);
  EXPECT_EQ(report.udp_total_packets, 35u);
  EXPECT_EQ(report.udp_device_count, 2u);
  EXPECT_EQ(report.udp_consumer_devices, 2u);
  EXPECT_EQ(report.udp_distinct_ports, 2u);
}

TEST_F(PipelineTest, UdpSeriesCountsDistinctDestinationsPerHour) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {
      flow(router_, net::Protocol::Udp, 0, 100, 1, /*dst_low=*/1),
      flow(router_, net::Protocol::Udp, 0, 100, 1, /*dst_low=*/2),
      flow(router_, net::Protocol::Udp, 0, 200, 1, /*dst_low=*/2),
  }));
  const auto report = pipeline.finalize();
  EXPECT_DOUBLE_EQ(report.udp_series.consumer.packets.at(0), 3.0);
  EXPECT_DOUBLE_EQ(report.udp_series.consumer.dst_ips.at(0), 2.0);
  EXPECT_DOUBLE_EQ(report.udp_series.consumer.dst_ports.at(0), 2.0);
  EXPECT_DOUBLE_EQ(report.udp_series.cps.packets.at(0), 0.0);
}

TEST_F(PipelineTest, ScanServiceAttributionByPort) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {
      flow(router_, net::Protocol::Tcp, net::kSyn, 23, 100),
      flow(router_, net::Protocol::Tcp, net::kSyn, 2323, 10),
      flow(plc_, net::Protocol::Tcp, net::kSyn, 23, 40),
      flow(camera_, net::Protocol::Tcp, net::kSyn, 7547, 30),
      flow(camera_, net::Protocol::Tcp, net::kSyn, 12345, 7),  // "Other"
  }));
  const auto report = pipeline.finalize();
  const auto telnet = static_cast<std::size_t>(
      workload::scan_service_index("Telnet"));
  EXPECT_EQ(report.scan_services[telnet].packets, 150u);
  EXPECT_EQ(report.scan_services[telnet].consumer_packets, 110u);
  EXPECT_EQ(report.scan_services[telnet].consumer_devices, 1u);
  EXPECT_EQ(report.scan_services[telnet].cps_devices, 1u);
  const auto cwmp = static_cast<std::size_t>(
      workload::scan_service_index("CWMP"));
  EXPECT_EQ(report.scan_services[cwmp].packets, 30u);
  const auto other = static_cast<std::size_t>(
      workload::scan_service_index("Other"));
  EXPECT_EQ(report.scan_services[other].packets, 7u);
  EXPECT_EQ(report.tcp_scan_total, 187u);
  EXPECT_EQ(report.scanner_devices, 3u);
  EXPECT_EQ(report.scanner_consumer_devices, 2u);
  // Per-service hourly series align with totals.
  EXPECT_DOUBLE_EQ(report.scan_service_series[telnet].at(0), 150.0);
}

TEST_F(PipelineTest, DosSpikeDetectionFindsDominantVictim) {
  AnalysisPipeline pipeline(db_);
  // Low-level backscatter everywhere, a massive single-victim spike at 10.
  for (int h = 0; h < 20; ++h) {
    std::vector<net::FlowTuple> records = {
        flow(camera_, net::Protocol::Tcp, net::kSyn | net::kAck, 80, 5)};
    if (h == 10) {
      records.push_back(
          flow(plc_, net::Protocol::Tcp, net::kSyn | net::kAck, 44818, 5000));
    }
    pipeline.observe(hour(h, std::move(records)));
  }
  const auto report = pipeline.finalize();
  ASSERT_EQ(report.dos_spikes.size(), 1u);
  EXPECT_EQ(report.dos_spikes[0].interval, 10);
  EXPECT_EQ(report.dos_spikes[0].top_victim, 2u);  // the PLC's index
  EXPECT_GT(report.dos_spikes[0].top_victim_share, 0.99);
  EXPECT_EQ(report.dos_victims, 2u);
  EXPECT_EQ(report.dos_victims_cps, 1u);
  EXPECT_EQ(report.backscatter_packets.cps, 5000u);
  EXPECT_EQ(report.backscatter_packets.consumer, 100u);
}

TEST_F(PipelineTest, FinalizeIsIdempotent) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {flow(router_, net::Protocol::Tcp, net::kSyn, 23, 3)}));
  const auto a = pipeline.finalize();
  const auto b = pipeline.finalize();
  EXPECT_EQ(a.total_packets, b.total_packets);
  EXPECT_EQ(a.discovered_total(), b.discovered_total());
}

// ---------------- characterization over the same tiny inventory ----------

TEST_F(PipelineTest, CharacterizeJoinsCountryIspTypeProtocol) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {
      flow(router_, net::Protocol::Tcp, net::kSyn, 23, 1),
      flow(camera_, net::Protocol::Tcp, net::kSyn, 23, 1),
      flow(plc_, net::Protocol::Tcp, net::kSyn, 23, 1),
  }));
  const auto report = pipeline.finalize();
  const auto character = characterize(report, db_);

  EXPECT_EQ(character.countries_with_compromised, 2u);
  ASSERT_FALSE(character.by_country_compromised.empty());
  EXPECT_EQ(db_.country_name(character.by_country_compromised[0].country),
            "Russian Federation");
  EXPECT_EQ(character.by_country_compromised[0].compromised_consumer, 2u);
  EXPECT_DOUBLE_EQ(character.by_country_compromised[0].pct_compromised(),
                   100.0);

  ASSERT_EQ(character.consumer_isps.size(), 1u);
  EXPECT_EQ(db_.isp_name(character.consumer_isps[0].isp), "JSC ER-Telecom");
  EXPECT_EQ(character.consumer_isps[0].devices, 2u);
  ASSERT_EQ(character.cps_isps.size(), 1u);
  EXPECT_EQ(db_.isp_name(character.cps_isps[0].isp), "China Telecom");

  EXPECT_EQ(character.consumer_types[static_cast<std::size_t>(
                ConsumerType::Router)], 1u);
  EXPECT_EQ(character.consumer_types[static_cast<std::size_t>(
                ConsumerType::IpCamera)], 1u);

  // The PLC supports two protocols; both counted (non-exclusive).
  ASSERT_EQ(character.cps_protocols.size(), 2u);
  EXPECT_EQ(character.cps_protocols_in_use, 2u);
}

TEST_F(PipelineTest, DevicesWithNoTrafficAreNotDiscovered) {
  AnalysisPipeline pipeline(db_);
  pipeline.observe(hour(0, {flow(plc_, net::Protocol::Udp, 0, 53, 1)}));
  const auto report = pipeline.finalize();
  EXPECT_EQ(report.discovered_total(), 1u);
  EXPECT_EQ(report.traffic_for(0), nullptr);
  EXPECT_EQ(report.traffic_for(1), nullptr);
  EXPECT_NE(report.traffic_for(2), nullptr);
}

}  // namespace
}  // namespace iotscope::core
