#include "net/prefix_map.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace iotscope::net {
namespace {

Ipv4Prefix pfx(const char* text) {
  const auto parsed = Ipv4Prefix::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

Ipv4Address ip(const char* text) {
  const auto parsed = Ipv4Address::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

TEST(PrefixMap, LongestPrefixWins) {
  PrefixMap<std::string> map;
  map.insert(pfx("10.0.0.0/8"), "slash8");
  map.insert(pfx("10.1.0.0/16"), "slash16");
  map.insert(pfx("10.1.2.0/24"), "slash24");

  ASSERT_NE(map.lookup(ip("10.1.2.3")), nullptr);
  EXPECT_EQ(*map.lookup(ip("10.1.2.3")), "slash24");
  EXPECT_EQ(*map.lookup(ip("10.1.9.9")), "slash16");
  EXPECT_EQ(*map.lookup(ip("10.200.0.1")), "slash8");
  EXPECT_EQ(map.lookup(ip("11.0.0.1")), nullptr);
  EXPECT_EQ(map.size(), 3u);
}

TEST(PrefixMap, DefaultRouteCatchesEverything) {
  PrefixMap<int> map;
  map.insert(pfx("0.0.0.0/0"), 42);
  EXPECT_EQ(*map.lookup(ip("255.255.255.255")), 42);
  EXPECT_EQ(*map.lookup(ip("0.0.0.0")), 42);
  map.insert(pfx("192.168.0.0/16"), 7);
  EXPECT_EQ(*map.lookup(ip("192.168.3.4")), 7);
  EXPECT_EQ(*map.lookup(ip("8.8.8.8")), 42);
}

TEST(PrefixMap, HostRoutesAreMostSpecific) {
  PrefixMap<int> map;
  map.insert(pfx("1.2.3.0/24"), 1);
  map.insert(pfx("1.2.3.4/32"), 2);
  EXPECT_EQ(*map.lookup(ip("1.2.3.4")), 2);
  EXPECT_EQ(*map.lookup(ip("1.2.3.5")), 1);
}

TEST(PrefixMap, InsertReplacesExistingEntry) {
  PrefixMap<int> map;
  map.insert(pfx("10.0.0.0/8"), 1);
  map.insert(pfx("10.0.0.0/8"), 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.lookup(ip("10.1.1.1")), 2);
}

TEST(PrefixMap, InsertReplacementKeepsTheNewValueIntact) {
  // Regression: the old emplace-then-assign replacement path could move
  // the value into a discarded node when the key already existed, then
  // assign the moved-from husk — a long (heap-allocated) string came
  // back empty. The replacement must store the full new value.
  PrefixMap<std::string> map;
  const std::string first(128, 'a');
  const std::string second(128, 'b');
  map.insert(pfx("203.0.113.0/24"), std::string(first));
  map.insert(pfx("203.0.113.0/24"), std::string(second));
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.lookup(ip("203.0.113.7")), nullptr);
  EXPECT_EQ(*map.lookup(ip("203.0.113.7")), second);
}

TEST(PrefixMap, DefaultRouteMaskAndLifecycle) {
  // The /0 table uses an explicit zero mask (`~0u << 32` would be UB):
  // every address must probe slot 0. Cover the full lifecycle — insert,
  // replace, exact fetch, erase — at length 0.
  PrefixMap<int> map;
  map.insert(pfx("0.0.0.0/0"), 1);
  EXPECT_EQ(*map.lookup(ip("0.0.0.0")), 1);
  EXPECT_EQ(*map.lookup(ip("127.255.255.255")), 1);
  EXPECT_EQ(*map.lookup(ip("255.255.255.255")), 1);
  map.insert(pfx("0.0.0.0/0"), 2);  // replacement at length 0
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.lookup(ip("198.51.100.1")), 2);
  ASSERT_TRUE(map.exact(pfx("0.0.0.0/0")).has_value());
  EXPECT_EQ(*map.exact(pfx("0.0.0.0/0")), 2);
  EXPECT_TRUE(map.erase(pfx("0.0.0.0/0")));
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.lookup(ip("198.51.100.1")), nullptr);
}

TEST(PrefixMap, ExactFetchIgnoresCoveringPrefixes) {
  PrefixMap<int> map;
  map.insert(pfx("10.0.0.0/8"), 1);
  EXPECT_FALSE(map.exact(pfx("10.1.0.0/16")).has_value());
  EXPECT_TRUE(map.exact(pfx("10.0.0.0/8")).has_value());
  EXPECT_EQ(*map.exact(pfx("10.0.0.0/8")), 1);
}

TEST(PrefixMap, EraseRemovesOnlyTheExactPrefix) {
  PrefixMap<int> map;
  map.insert(pfx("10.0.0.0/8"), 1);
  map.insert(pfx("10.1.0.0/16"), 2);
  EXPECT_TRUE(map.erase(pfx("10.1.0.0/16")));
  EXPECT_FALSE(map.erase(pfx("10.1.0.0/16")));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.lookup(ip("10.1.2.3")), 1);  // falls back to /8
}

TEST(PrefixMap, HostBitsInInsertedPrefixAreMasked) {
  PrefixMap<int> map;
  // Ipv4Prefix masks host bits at construction; both spellings collide.
  map.insert(Ipv4Prefix(ip("10.1.2.3"), 16), 1);
  map.insert(Ipv4Prefix(ip("10.1.9.9"), 16), 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.lookup(ip("10.1.0.0")), 2);
}

TEST(PrefixMap, RandomizedAgainstLinearScanOracle) {
  util::Rng rng(2024);
  struct Entry {
    Ipv4Prefix prefix;
    int value;
  };
  std::vector<Entry> entries;
  PrefixMap<int> map;
  for (int i = 0; i < 300; ++i) {
    const int length = static_cast<int>(rng.uniform(4, 28));
    const Ipv4Prefix prefix(
        Ipv4Address(static_cast<std::uint32_t>(rng.next())), length);
    // Skip duplicates so the oracle stays unambiguous.
    bool duplicate = false;
    for (const auto& e : entries) duplicate |= e.prefix == prefix;
    if (duplicate) continue;
    entries.push_back({prefix, i});
    map.insert(prefix, i);
  }
  for (int round = 0; round < 5000; ++round) {
    const Ipv4Address addr(static_cast<std::uint32_t>(rng.next()));
    const Entry* best = nullptr;
    for (const auto& e : entries) {
      if (!e.prefix.contains(addr)) continue;
      if (best == nullptr || e.prefix.length() > best->prefix.length()) {
        best = &e;
      }
    }
    const int* found = map.lookup(addr);
    if (best == nullptr) {
      EXPECT_EQ(found, nullptr);
    } else {
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, best->value);
    }
  }
}

TEST(PrefixMap, EmptyMapLookupsAreNull) {
  PrefixMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.lookup(ip("1.2.3.4")), nullptr);
}

}  // namespace
}  // namespace iotscope::net
