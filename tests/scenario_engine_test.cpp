// Ground-truth tests for the phase-based adversarial scenario engine:
// every built-in scenario must pass its exact campaign assertions —
// recruit first-sightings, churned-lease splits, pulse-wave spike
// attribution, Zipf profiling-floor cuts, hostile-hour quarantine —
// through the batch driver AND the live --follow daemon, under all
// three shard schedulers, with byte-identical rendered reports across
// the whole matrix. The follow runs race a writer thread against the
// streaming study's directory polls; run under TSan for full value.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenario_run.hpp"
#include "util/io.hpp"
#include "util/timebase.hpp"
#include "workload/engine.hpp"

namespace iotscope::core {
namespace {

std::string join(const std::vector<std::string>& violations) {
  std::string out;
  for (const std::string& violation : violations) {
    out += violation;
    out += '\n';
  }
  return out;
}

struct Mode {
  bool follow;
  ShardScheduler scheduler;
  const char* label;
};

constexpr Mode kModes[] = {
    {false, ShardScheduler::Static, "batch/static"},
    {false, ShardScheduler::Graph, "batch/graph"},
    {true, ShardScheduler::Static, "follow/static"},
    {true, ShardScheduler::Stealing, "follow/stealing"},
    {true, ShardScheduler::Graph, "follow/graph"},
};

/// Runs one built-in through the full mode matrix: the batch/stealing
/// run is the golden; every other mode must produce zero ground-truth
/// violations and the byte-identical rendered report.
void run_builtin_matrix(const std::string& name) {
  const auto script = workload::builtin_scenario(name);
  ASSERT_TRUE(script.has_value()) << name;
  const workload::ScenarioEngine engine(*script);

  util::TempDir golden_dir;
  const ScenarioRunResult golden =
      run_scenario(engine, golden_dir.path(), ScenarioRunOptions{});
  EXPECT_EQ(join(check_scenario(engine, golden)), "") << "batch/stealing";

  for (const Mode& mode : kModes) {
    util::TempDir dir;
    ScenarioRunOptions options;
    options.follow = mode.follow;
    options.scheduler = mode.scheduler;
    const ScenarioRunResult run = run_scenario(engine, dir.path(), options);
    EXPECT_EQ(join(check_scenario(engine, run)), "") << mode.label;
    EXPECT_EQ(run.hours_corrupt, golden.hours_corrupt) << mode.label;
    EXPECT_EQ(run.rendered, golden.rendered)
        << mode.label << " diverged from batch/stealing";
  }
}

TEST(ScenarioEngineTest, BuiltinRegistry) {
  const auto& names = workload::builtin_scenario_names();
  ASSERT_EQ(names.size(), 5u);
  for (const std::string& name : names) {
    const auto script = workload::builtin_scenario(name);
    ASSERT_TRUE(script.has_value()) << name;
    EXPECT_EQ(script->name, name);
    EXPECT_FALSE(script->phases.empty()) << name;
  }
  EXPECT_FALSE(workload::builtin_scenario("no-such-scenario").has_value());
}

TEST(ScenarioEngineTest, PlannedTruthLedgersAreCoherent) {
  {
    const workload::ScenarioEngine engine(
        *workload::builtin_scenario("recruitment"));
    const auto& truth = engine.truth();
    ASSERT_EQ(truth.recruits.size(), 32u);
    int previous = -1;
    for (const auto& recruit : truth.recruits) {
      EXPECT_GE(recruit.infected_hour, 24);
      EXPECT_LT(recruit.infected_hour, 108);
      EXPECT_GE(recruit.infected_hour, previous)
          << "infections must ramp forward in time";
      previous = recruit.infected_hour;
      // Recruits come from the unplanned pool: campaign traffic is the
      // device's whole footprint.
      EXPECT_EQ(engine.scenario().truth.plan_for(recruit.device), nullptr);
    }
    EXPECT_TRUE(truth.hostile_hours.empty());
  }
  {
    const workload::ScenarioEngine engine(*workload::builtin_scenario("churn"));
    ASSERT_EQ(engine.truth().churned.size(), 6u);
    for (const auto& churned : engine.truth().churned) {
      EXPECT_LT(churned.begin_hour, churned.churn_hour);
      EXPECT_LT(churned.churn_hour, churned.end_hour);
      // The reassigned lease is a fresh non-inventory source.
      EXPECT_EQ(engine.scenario().inventory.find(churned.new_ip), nullptr);
      EXPECT_NE(churned.new_ip.value(), churned.device_ip.value());
    }
  }
  {
    const workload::ScenarioEngine engine(
        *workload::builtin_scenario("pulse-dos"));
    ASSERT_EQ(engine.truth().pulses.size(), 2u);
    for (const auto& pulse : engine.truth().pulses) {
      EXPECT_FALSE(pulse.on_intervals.empty());
      EXPECT_TRUE(std::is_sorted(pulse.on_intervals.begin(),
                                 pulse.on_intervals.end()));
    }
    // Staggered victims never pulse in the same hour.
    const auto& a = engine.truth().pulses[0].on_intervals;
    const auto& b = engine.truth().pulses[1].on_intervals;
    for (const int h : a) {
      EXPECT_FALSE(std::binary_search(b.begin(), b.end(), h));
    }
  }
  {
    const workload::ScenarioEngine engine(
        *workload::builtin_scenario("zipf-diurnal"));
    const auto& sources = engine.truth().zipf_sources;
    ASSERT_EQ(sources.size(), 20u);
    for (std::size_t i = 1; i < sources.size(); ++i) {
      EXPECT_LE(sources[i].total_packets, sources[i - 1].total_packets)
          << "Zipf totals must fall with rank";
    }
    // The head of the population clears the profiling floor every hour;
    // the tail does not — both sides of the floor are exercised.
    EXPECT_GE(sources.front().min_hour_packets, 4u);
    EXPECT_LT(sources.back().min_hour_packets, 4u);
  }
  {
    const workload::ScenarioEngine engine(
        *workload::builtin_scenario("malformed"));
    EXPECT_EQ(engine.truth().hostile_hours, (std::vector<int>{37, 71, 107}));
    EXPECT_EQ(engine.truth().campaign_packets, 0u);
  }
}

TEST(ScenarioEngineTest, RecruitmentGroundTruthAcrossModes) {
  run_builtin_matrix("recruitment");
}

TEST(ScenarioEngineTest, ChurnGroundTruthAcrossModes) {
  run_builtin_matrix("churn");
}

TEST(ScenarioEngineTest, PulseDosGroundTruthAcrossModes) {
  run_builtin_matrix("pulse-dos");
}

TEST(ScenarioEngineTest, ZipfDiurnalGroundTruthAcrossModes) {
  run_builtin_matrix("zipf-diurnal");
}

TEST(ScenarioEngineTest, MalformedStoreSurvivesEveryReader) {
  run_builtin_matrix("malformed");
}

}  // namespace
}  // namespace iotscope::core
