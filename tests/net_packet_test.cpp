// Tests for protocol enums, packet builders, and the internet checksum.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "net/protocol.hpp"

namespace iotscope::net {
namespace {

TEST(Protocol, Names) {
  EXPECT_STREQ(to_string(Protocol::Tcp), "TCP");
  EXPECT_STREQ(to_string(Protocol::Udp), "UDP");
  EXPECT_STREQ(to_string(Protocol::Icmp), "ICMP");
}

TEST(Protocol, TcpFlagRendering) {
  EXPECT_EQ(tcp_flags_to_string(kSyn), "SYN");
  EXPECT_EQ(tcp_flags_to_string(kSyn | kAck), "SYN|ACK");
  EXPECT_EQ(tcp_flags_to_string(0), "none");
  EXPECT_EQ(tcp_flags_to_string(kFin | kPsh | kUrg), "FIN|PSH|URG");
}

class IcmpBackscatterTest
    : public ::testing::TestWithParam<std::pair<IcmpType, bool>> {};

TEST_P(IcmpBackscatterTest, MatchesPaperTaxonomy) {
  const auto [type, expected] = GetParam();
  EXPECT_EQ(is_icmp_backscatter(type), expected) << to_string(type);
}

INSTANTIATE_TEST_SUITE_P(
    Taxonomy, IcmpBackscatterTest,
    ::testing::Values(
        std::make_pair(IcmpType::EchoReply, true),
        std::make_pair(IcmpType::DestinationUnreachable, true),
        std::make_pair(IcmpType::SourceQuench, true),
        std::make_pair(IcmpType::Redirect, true),
        std::make_pair(IcmpType::TimeExceeded, true),
        std::make_pair(IcmpType::ParameterProblem, true),
        std::make_pair(IcmpType::TimestampReply, true),
        std::make_pair(IcmpType::InformationReply, true),
        std::make_pair(IcmpType::AddressMaskReply, true),
        std::make_pair(IcmpType::EchoRequest, false),
        std::make_pair(IcmpType::TimestampRequest, false),
        std::make_pair(IcmpType::InformationRequest, false),
        std::make_pair(IcmpType::AddressMaskRequest, false)));

TEST(PacketBuilders, TcpSynShape) {
  const auto src = Ipv4Address::from_octets(1, 2, 3, 4);
  const auto dst = Ipv4Address::from_octets(10, 0, 0, 1);
  const auto p = make_tcp_syn(1000, src, dst, 40000, 23);
  EXPECT_TRUE(p.is_tcp());
  EXPECT_TRUE(p.tcp_syn_only());
  EXPECT_FALSE(p.tcp_syn_ack());
  EXPECT_FALSE(p.tcp_rst());
  EXPECT_EQ(p.src, src);
  EXPECT_EQ(p.dst, dst);
  EXPECT_EQ(p.dst_port, 23);
  EXPECT_GE(p.ip_length, 40);
}

TEST(PacketBuilders, SynAckAndRstShapes) {
  const auto p = make_tcp_syn_ack(0, Ipv4Address(1), Ipv4Address(2), 80, 999);
  EXPECT_TRUE(p.tcp_syn_ack());
  EXPECT_FALSE(p.tcp_syn_only());
  const auto r = make_tcp_rst(0, Ipv4Address(1), Ipv4Address(2), 80, 999);
  EXPECT_TRUE(r.tcp_rst());
  EXPECT_FALSE(r.tcp_syn_only());
}

TEST(PacketBuilders, UdpLengthIncludesHeaders) {
  const auto p = make_udp(0, Ipv4Address(1), Ipv4Address(2), 1234, 53, 100);
  EXPECT_TRUE(p.is_udp());
  EXPECT_EQ(p.ip_length, 128);  // 20 IP + 8 UDP + 100 payload
  EXPECT_EQ(p.tcp_flags, 0);
}

TEST(PacketBuilders, IcmpCarriesTypeAndCode) {
  const auto p = make_icmp(0, Ipv4Address(1), Ipv4Address(2),
                           IcmpType::DestinationUnreachable, 3);
  EXPECT_TRUE(p.is_icmp());
  EXPECT_EQ(p.icmp_type,
            static_cast<std::uint8_t>(IcmpType::DestinationUnreachable));
  EXPECT_EQ(p.icmp_code, 3);
  EXPECT_EQ(p.src_port, 0);
}

// ---------------- checksum ----------------

TEST(Checksum, KnownVector) {
  // Classic example: checksum of this IPv4 header equals 0xB861.
  const std::uint8_t header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                                 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
                                 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(header), 0xB861);
}

TEST(Checksum, VerifiesToZeroWhenIncluded) {
  std::uint8_t header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                           0x00, 0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8,
                           0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  // One's-complement sum over data including a correct checksum is 0xFFFF,
  // so the folded complement is 0.
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xFBFD.
  EXPECT_EQ(internet_checksum(data), 0xFBFD);
}

TEST(Checksum, AccumulatorMatchesOneShotAcrossSplits) {
  const std::uint8_t data[] = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45};
  const auto expected = internet_checksum(data);
  for (std::size_t split = 0; split <= sizeof(data); ++split) {
    ChecksumAccumulator acc;
    acc.feed({data, split});
    acc.feed({data + split, sizeof(data) - split});
    EXPECT_EQ(acc.finish(), expected) << "split=" << split;
  }
}

TEST(Checksum, FeedWordMatchesBytePair) {
  ChecksumAccumulator by_word;
  by_word.feed_word(0x1234);
  by_word.feed_word(0x5678);
  const std::uint8_t bytes[] = {0x12, 0x34, 0x56, 0x78};
  EXPECT_EQ(by_word.finish(), internet_checksum(bytes));
}

}  // namespace
}  // namespace iotscope::net
