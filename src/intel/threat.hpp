// Threat-intelligence repository modelled after the Cymon open threat
// aggregator the paper queries in Section V-A: IP-indexed malicious-
// activity events amalgamated into six illicit categories (Table VI).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "util/timebase.hpp"

namespace iotscope::intel {

/// The six amalgamated threat categories of Table VI.
enum class ThreatCategory : std::uint8_t {
  Scanning = 0,
  Miscellaneous,  ///< web/FTP attacks, DNSBL, malicious domains, VoIP
  BruteForce,     ///< SSH brute force
  Spam,           ///< mail/IMAP spam
  Malware,        ///< virus, worm, bot/botnet, trojan
  Phishing,
  kCount,
};

inline constexpr int kThreatCategoryCount =
    static_cast<int>(ThreatCategory::kCount);

const char* to_string(ThreatCategory c) noexcept;

/// One aggregated threat event for an IP.
struct ThreatEvent {
  net::Ipv4Address ip;
  ThreatCategory category = ThreatCategory::Scanning;
  std::string source;  ///< reporting feed, e.g. "blocklist.example"
  util::UnixTime reported = 0;
  std::string note;
};

/// IP-indexed store of threat events with category roll-ups.
class ThreatRepository {
 public:
  void add(ThreatEvent event);

  /// True if the IP has at least one event.
  bool flagged(net::Ipv4Address ip) const noexcept;

  /// Bitmask of categories seen for the IP (bit i = category i).
  std::uint32_t categories(net::Ipv4Address ip) const noexcept;

  bool has_category(net::Ipv4Address ip, ThreatCategory c) const noexcept {
    return (categories(ip) >> static_cast<int>(c)) & 1u;
  }

  /// All events recorded for an IP (empty if none).
  const std::vector<ThreatEvent>& events_for(net::Ipv4Address ip) const;

  std::size_t event_count() const noexcept { return event_count_; }
  std::size_t flagged_ips() const noexcept { return by_ip_.size(); }

  /// CSV persistence: ip,category,source,reported,note per line.
  void save_csv(const std::filesystem::path& path) const;
  static ThreatRepository load_csv(const std::filesystem::path& path);

 private:
  struct Entry {
    std::uint32_t category_mask = 0;
    std::vector<ThreatEvent> events;
  };
  std::unordered_map<net::Ipv4Address, Entry> by_ip_;
  std::size_t event_count_ = 0;
};

}  // namespace iotscope::intel
