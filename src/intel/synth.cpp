#include "intel/synth.hpp"

#include <algorithm>
#include <cstdio>

#include "util/rng.hpp"

namespace iotscope::intel {

namespace {

using workload::DevicePlan;
using workload::Scenario;

/// Expected emission volume of a plan — the activity bias for flagging.
double plan_volume(const DevicePlan& plan) {
  double v = plan.scan.total_packets + plan.udp.trio_packets +
             plan.udp.dedicated_packets + plan.udp.sweep_packets +
             plan.misconfig_packets + plan.icmp_scan_packets;
  for (const auto& attack : plan.attacks) v += attack.total_packets;
  return v;
}

std::string random_hex(util::Rng& rng, std::size_t chars) {
  static const char* kHex = "0123456789abcdef";
  std::string out(chars, '0');
  for (auto& c : out) c = kHex[rng.uniform(0, 15)];
  return out;
}

util::UnixTime random_window_time(util::Rng& rng) {
  return util::AnalysisWindow::start() +
         static_cast<util::UnixTime>(rng.uniform(
             0, static_cast<std::uint64_t>(util::AnalysisWindow::end() -
                                           util::AnalysisWindow::start() - 1)));
}

const char* kFeedNames[] = {"blocklist.ssh.net", "honeytrap.global",
                            "abuse-tracker.io",  "spamwatch.example",
                            "webattack.reports", "dnsbl.open.feed"};

}  // namespace

ThreatRepository synthesize_threat_repository(
    const Scenario& scenario, const workload::ScenarioConfig& config,
    const ThreatSynthConfig& tc) {
  util::Rng rng(tc.seed ^ config.seed);
  ThreatRepository repo;

  // Rank plans by ground-truth activity.
  std::vector<std::uint32_t> order(scenario.truth.plans.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return plan_volume(scenario.truth.plans[a]) >
           plan_volume(scenario.truth.plans[b]);
  });

  // The paper's explored set: all DoS victims + the top scanners/UDP
  // senders (8,839 devices); it flagged 9.2% of them. We flag among the
  // same activity-ranked top slice.
  const std::size_t explored = std::min<std::size_t>(
      config.scaled_count(8839), order.size());
  const std::size_t flag_target = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(explored) *
                                  tc.flag_fraction));

  std::vector<std::uint32_t> flagged;

  // Deterministically flag the scripted devices the paper cross-checked:
  // scan heroes (Telnet/SSH/BackroomNet/CWMP case studies, minus two CWMP
  // CPS devices the paper notes were NOT confirmed) and the DoS-peak
  // victims (found malware-related).
  std::size_t skipped_cwmp = 0;
  for (std::uint32_t p = 0; p < scenario.truth.plans.size(); ++p) {
    const DevicePlan& plan = scenario.truth.plans[p];
    bool pin = false;
    if (plan.scan.hero >= 0) {
      const auto& hero =
          workload::scan_heroes()[static_cast<std::size_t>(plan.scan.hero)];
      if (hero.service == "CWMP" && hero.cps && skipped_cwmp < 2) {
        ++skipped_cwmp;  // "all but two ... were confirmed"
      } else {
        pin = true;
      }
    }
    for (const auto& attack : plan.attacks) {
      if (attack.event >= 0) pin = true;  // scripted DoS peaks
    }
    if (pin) flagged.push_back(p);
  }

  // Fill the rest with an activity-biased draw over the explored slice.
  for (std::size_t i = 0; i < explored && flagged.size() < flag_target; ++i) {
    const std::uint32_t p = order[i];
    if (std::find(flagged.begin(), flagged.end(), p) != flagged.end()) {
      continue;
    }
    // Decreasing probability down the ranking keeps the bias mild.
    const double keep =
        tc.flag_fraction * 2.2 *
        (1.0 - 0.8 * static_cast<double>(i) / static_cast<double>(explored));
    if (rng.chance(keep)) flagged.push_back(p);
  }

  // Malware quotas by realm; scripted DoS victims are malware-linked (the
  // paper finds 9 DoS-peak devices related to malware).
  std::size_t malware_cps = config.scaled_count(tc.malware_cps_quota);
  std::size_t malware_consumer = config.scaled_count(tc.malware_consumer_quota);
  std::size_t phishing_left = config.scaled_count(5);

  for (const std::uint32_t p : flagged) {
    const DevicePlan& plan = scenario.truth.plans[p];
    const auto ip = scenario.inventory.devices()[plan.device].ip;
    const bool cps = scenario.inventory.devices()[plan.device].is_cps();
    const bool is_scanner = plan.has(workload::kRoleScanner);
    const bool is_ssh =
        is_scanner && plan.scan.service >= 0 &&
        workload::scan_services()[static_cast<std::size_t>(plan.scan.service)]
                .name == "SSH";
    bool scripted_victim = false;
    for (const auto& attack : plan.attacks) {
      if (attack.event >= 0) scripted_victim = true;
    }

    auto add = [&](ThreatCategory cat, const char* note) {
      ThreatEvent e;
      e.ip = ip;
      e.category = cat;
      e.source = kFeedNames[rng.uniform(0, 5)];
      e.reported = random_window_time(rng);
      e.note = note;
      repo.add(std::move(e));
    };

    if (is_scanner || rng.chance(tc.p_scanning)) {
      add(ThreatCategory::Scanning, "malicious scanning");
    }
    if (rng.chance(tc.p_misc)) add(ThreatCategory::Miscellaneous, "web attack");
    if (is_ssh || rng.chance(tc.p_bruteforce)) {
      add(ThreatCategory::BruteForce, "ssh brute force");
    }
    if (rng.chance(tc.p_spam)) add(ThreatCategory::Spam, "smtp spam source");
    bool malware = scripted_victim;
    if (!malware) {
      if (cps && malware_cps > 0 && (is_scanner || rng.chance(0.3)) &&
          rng.chance(0.35)) {
        malware = true;
      } else if (!cps && malware_consumer > 0 &&
                 (is_scanner || rng.chance(0.3)) && rng.chance(0.12)) {
        malware = true;
      }
    }
    if (malware) {
      add(ThreatCategory::Malware, "botnet node");
      if (cps) {
        if (malware_cps > 0) --malware_cps;
      } else if (malware_consumer > 0) {
        --malware_consumer;
      }
    }
    if (phishing_left > 0 && rng.chance(tc.p_phishing)) {
      add(ThreatCategory::Phishing, "phishing host");
      --phishing_left;
    }
  }
  return repo;
}

MalwareCorpus synthesize_malware_corpus(const Scenario& scenario,
                                        const workload::ScenarioConfig& config,
                                        const MalwareSynthConfig& mc) {
  util::Rng rng(mc.seed ^ config.seed);
  MalwareCorpus corpus;
  const auto& families = iot_malware_families();

  static const char* kDlls[] = {"kernel32.dll", "ws2_32.dll",  "wininet.dll",
                                "advapi32.dll", "ntdll.dll",   "urlmon.dll",
                                "crypt32.dll",  "shell32.dll"};
  static const char* kRegRoots[] = {
      "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run",
      "HKCU\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\RunOnce",
      "HKLM\\SYSTEM\\CurrentControlSet\\Services"};

  auto random_domain = [&rng](const char* tld) {
    static const char* kWords[] = {"update", "cdn",   "node",  "pool",
                                   "relay",  "stats", "sync",  "api",
                                   "edge",   "cache", "probe", "mesh"};
    std::string d = kWords[rng.uniform(0, 11)];
    d += "-";
    d += kWords[rng.uniform(0, 11)];
    d += std::to_string(rng.uniform(1, 99));
    d += tld;
    return d;
  };

  auto fill_system = [&](MalwareReport& report) {
    const std::size_t ndll = rng.uniform(2, 6);
    for (std::size_t i = 0; i < ndll; ++i) {
      report.dlls.push_back(kDlls[rng.uniform(0, 7)]);
    }
    report.registry_keys.push_back(std::string(kRegRoots[rng.uniform(0, 2)]) +
                                   "\\" + random_hex(rng, 8));
    report.memory_peak_kb = rng.uniform(2048, 65536);
  };

  // Compromised device IPs, activity-ranked, as IOC targets.
  std::vector<net::Ipv4Address> device_ips;
  device_ips.reserve(scenario.truth.plans.size());
  for (const auto& plan : scenario.truth.plans) {
    device_ips.push_back(scenario.inventory.devices()[plan.device].ip);
  }

  // IoT-linked domain pool (the paper finds 33 domains).
  const std::size_t domain_count = config.scaled_count(mc.iot_linked_domains);
  std::vector<std::string> iot_domains;
  for (std::size_t i = 0; i < domain_count; ++i) {
    iot_domains.push_back(random_domain(".ddns.example"));
  }

  // IoT-linked reports: 24 unique hashes across the 11 Table VII families.
  const std::size_t linked = std::max<std::size_t>(
      families.size(), config.scaled_count(mc.iot_linked_hashes));
  for (std::size_t i = 0; i < linked && !device_ips.empty(); ++i) {
    MalwareReport report;
    report.sha256 = random_hex(rng, 64);
    // Round-robin the first 11 so every family is represented, then random.
    const std::string& family =
        i < families.size() ? families[i]
                            : families[rng.uniform(0, families.size() - 1)];
    const std::size_t nips = rng.uniform(2, 8);
    for (std::size_t k = 0; k < nips; ++k) {
      report.contacted_ips.push_back(
          device_ips[rng.uniform(0, device_ips.size() - 1)]);
    }
    // A couple of non-IoT C2 addresses as decoys.
    report.contacted_ips.push_back(
        net::Ipv4Address(static_cast<std::uint32_t>(rng.next()) | 0x01000000u));
    const std::size_t ndom = rng.uniform(1, 3);
    for (std::size_t k = 0; k < ndom; ++k) {
      report.domains.push_back(
          iot_domains[rng.uniform(0, iot_domains.size() - 1)]);
    }
    report.urls.push_back("http://" + report.domains.front() + "/gate.php");
    fill_system(report);
    corpus.resolver.register_sample(
        report.sha256,
        {family, static_cast<int>(rng.uniform(20, 55)), 60});
    corpus.database.add(std::move(report));
  }

  // Decoy corpus: reports whose IOCs never touch inventory devices.
  while (corpus.database.size() < mc.corpus_size) {
    MalwareReport report;
    report.sha256 = random_hex(rng, 64);
    const std::size_t nips = rng.uniform(1, 4);
    for (std::size_t k = 0; k < nips; ++k) {
      net::Ipv4Address ip;
      do {
        ip = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
      } while (ip.octet(0) == 0 || ip.octet(0) == 10 || ip.octet(0) == 127 ||
               ip.octet(0) >= 224 || scenario.inventory.find(ip) != nullptr);
      report.contacted_ips.push_back(ip);
    }
    report.domains.push_back(random_domain(".example"));
    fill_system(report);
    corpus.resolver.register_sample(
        report.sha256,
        {"Generic.Trojan", static_cast<int>(rng.uniform(5, 40)), 60});
    corpus.database.add(std::move(report));
  }

  return corpus;
}

}  // namespace iotscope::intel
