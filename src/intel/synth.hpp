// Synthesizers for the third-party intelligence sources the paper
// correlates against: a Cymon-like threat repository and the in-house
// sandbox malware corpus. Both are generated *correlated with the
// scenario ground truth* — devices that actually scan are the ones public
// feeds would have flagged — which substitutes for the live services
// while exercising the identical correlation code paths.
#pragma once

#include <cstdint>

#include "intel/malware.hpp"
#include "intel/threat.hpp"
#include "workload/scenario.hpp"

namespace iotscope::intel {

/// Knobs for threat-repository synthesis (defaults mirror Section V-A).
struct ThreatSynthConfig {
  std::uint64_t seed = 0xC1'0D'2017ULL;
  /// Devices flagged among the paper's 8,839 explored: 816 (9.2%).
  double flag_fraction = 0.092;
  /// Table VI category incidences among flagged devices.
  double p_scanning = 0.963;
  double p_misc = 0.703;
  double p_bruteforce = 0.309;
  double p_spam = 0.278;
  double p_malware = 0.143;
  double p_phishing = 0.006;
  std::size_t malware_cps_quota = 91;      ///< CPS devices linked to malware
  std::size_t malware_consumer_quota = 26; ///< consumer devices "
};

/// Builds the threat repository for a scenario. Activity-biased: the most
/// active ground-truth devices are the likeliest to be flagged, and the
/// scripted heroes/SSH brute-forcers are flagged deterministically (the
/// paper confirms its case-study devices against Cymon).
ThreatRepository synthesize_threat_repository(
    const workload::Scenario& scenario, const workload::ScenarioConfig& config,
    const ThreatSynthConfig& threat_config = {});

/// Knobs for malware-corpus synthesis (defaults mirror Section V-B).
struct MalwareSynthConfig {
  std::uint64_t seed = 0x3A1'2017ULL;
  /// Total sandbox reports in the corpus (decoys included). The paper's
  /// daily feed is ~30k samples; we default to a smaller corpus whose
  /// IoT-relevant slice matches the findings.
  std::size_t corpus_size = 2000;
  /// Unique hashes whose network IOCs touch inferred IoT devices: 24.
  std::size_t iot_linked_hashes = 24;
  /// Domains associated with the identified IoT devices: 33.
  std::size_t iot_linked_domains = 33;
};

/// The synthesized malware corpus plus its VirusTotal-style resolver.
struct MalwareCorpus {
  MalwareDatabase database;
  FamilyResolver resolver;
};

/// Builds the sandbox-report corpus: `iot_linked_hashes` reports contact
/// IPs of ground-truth compromised devices and resolve to the 11 Table VII
/// families; the rest are decoys contacting unrelated addresses.
MalwareCorpus synthesize_malware_corpus(
    const workload::Scenario& scenario, const workload::ScenarioConfig& config,
    const MalwareSynthConfig& malware_config = {});

}  // namespace iotscope::intel
