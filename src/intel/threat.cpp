#include "intel/threat.hpp"

#include <fstream>

#include "util/io.hpp"
#include "util/strings.hpp"

namespace iotscope::intel {

const char* to_string(ThreatCategory c) noexcept {
  switch (c) {
    case ThreatCategory::Scanning:
      return "Scanning";
    case ThreatCategory::Miscellaneous:
      return "Miscellaneous";
    case ThreatCategory::BruteForce:
      return "Brute force (SSH)";
    case ThreatCategory::Spam:
      return "Spam (Mail, IMAP)";
    case ThreatCategory::Malware:
      return "Malware";
    case ThreatCategory::Phishing:
      return "Phishing";
    case ThreatCategory::kCount:
      break;
  }
  return "?";
}

void ThreatRepository::add(ThreatEvent event) {
  Entry& entry = by_ip_[event.ip];
  entry.category_mask |= 1u << static_cast<int>(event.category);
  entry.events.push_back(std::move(event));
  ++event_count_;
}

bool ThreatRepository::flagged(net::Ipv4Address ip) const noexcept {
  return by_ip_.count(ip) != 0;
}

std::uint32_t ThreatRepository::categories(net::Ipv4Address ip) const noexcept {
  const auto it = by_ip_.find(ip);
  return it == by_ip_.end() ? 0u : it->second.category_mask;
}

const std::vector<ThreatEvent>& ThreatRepository::events_for(
    net::Ipv4Address ip) const {
  static const std::vector<ThreatEvent> kEmpty;
  const auto it = by_ip_.find(ip);
  return it == by_ip_.end() ? kEmpty : it->second.events;
}

void ThreatRepository::save_csv(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw util::IoError("cannot create " + path.string());
  for (const auto& [ip, entry] : by_ip_) {
    for (const auto& e : entry.events) {
      out << e.ip.to_string() << ',' << static_cast<int>(e.category) << ','
          << e.source << ',' << e.reported << ',' << e.note << '\n';
    }
  }
}

ThreatRepository ThreatRepository::load_csv(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open " + path.string());
  ThreatRepository repo;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::split(line, ',');
    if (fields.size() < 5) throw util::IoError("malformed threat csv row");
    ThreatEvent e;
    const auto ip = net::Ipv4Address::parse(fields[0]);
    if (!ip) throw util::IoError("malformed threat ip: " + fields[0]);
    e.ip = *ip;
    const int cat = std::stoi(fields[1]);
    if (cat < 0 || cat >= kThreatCategoryCount) {
      throw util::IoError("unknown threat category id");
    }
    e.category = static_cast<ThreatCategory>(cat);
    e.source = fields[2];
    e.reported = std::stoll(fields[3]);
    e.note = fields[4];
    repo.add(std::move(e));
  }
  return repo;
}

}  // namespace iotscope::intel
