// Cache-resident open-addressing hash containers for the record hot path.
//
// The analysis pipeline touches a handful of small keyed accumulators for
// every flowtuple record (inventory join, per-hour distinct sets,
// (service, device) novelty pairs). Node-based std::unordered_* containers
// pay a heap allocation per insert and a pointer chase per probe; these
// flat variants keep all slots in one contiguous std::vector, index with a
// Fibonacci multiplicative hash, and probe linearly — so a steady-state
// probe is one or two cache lines and an insert never allocates once the
// table has reached its high-water capacity.
//
// clear() is O(1): each slot carries the epoch it was written in, and
// clearing just bumps the table epoch, invalidating every slot at once.
// The per-hour scratch sets in the pipeline are cleared 143 times per run;
// epoch clearing means their memory is written only when re-populated.
//
// Scope: unsigned integral keys, no erase, values live until the next
// clear()/insert that grows the table. That is exactly the accumulator
// access pattern; use std::unordered_map for anything richer.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace iotscope::util {

namespace detail {

/// Fibonacci multiplicative hash: multiply and keep the top bits. The
/// golden-ratio constant spreads sequential keys (IPs from one /24,
/// ascending port/device pairs) across the table.
inline std::size_t fib_index(std::uint64_t key, int shift) noexcept {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> shift);
}

inline constexpr std::size_t kMinCapacity = 16;

/// Smallest power-of-two capacity holding n entries below max load
/// (3/4 full).
inline std::size_t capacity_for(std::size_t n) noexcept {
  std::size_t cap = kMinCapacity;
  while (cap * 3 < n * 4) cap *= 2;
  return cap;
}

}  // namespace detail

/// Open-addressing flat hash set over an unsigned integral key.
template <typename Key>
class FlatSet {
  static_assert(std::is_unsigned_v<Key>,
                "FlatSet requires an unsigned integral key");

 public:
  FlatSet() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// O(1): invalidates every slot by bumping the table epoch.
  void clear() noexcept {
    size_ = 0;
    if (++epoch_ == 0) {
      // u32 epoch wrapped (once per 4B clears): physically reset so stale
      // slots from epoch 0 cannot resurrect.
      for (auto& slot : slots_) slot.epoch = 0;
      epoch_ = 1;
    }
  }

  void reserve(std::size_t n) {
    const std::size_t cap = detail::capacity_for(n);
    if (cap > slots_.size()) rehash(cap);
  }

  /// Inserts the key; returns true if it was not present.
  bool insert(Key key) {
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(grown_capacity());
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = detail::fib_index(key, shift_);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) {
        slot.key = key;
        slot.epoch = epoch_;
        ++size_;
        return true;
      }
      if (slot.key == key) return false;
      i = (i + 1) & mask;
    }
  }

  bool contains(Key key) const noexcept {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = detail::fib_index(key, shift_);
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.epoch != epoch_) return false;
      if (slot.key == key) return true;
      i = (i + 1) & mask;
    }
  }

  /// Visits every live key (slot order — not deterministic across
  /// capacities; callers must not depend on order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.epoch == epoch_) fn(slot.key);
    }
  }

 private:
  struct Slot {
    Key key;
    std::uint32_t epoch = 0;
  };

  std::size_t grown_capacity() const noexcept {
    return slots_.empty() ? detail::kMinCapacity : slots_.size() * 2;
  }

  void rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    const std::uint32_t old_epoch = epoch_;
    slots_.assign(cap, Slot{});
    shift_ = 64 - (std::bit_width(cap) - 1);
    epoch_ = 1;
    size_ = 0;
    const std::size_t mask = cap - 1;
    for (const auto& slot : old) {
      if (slot.epoch != old_epoch) continue;
      std::size_t i = detail::fib_index(slot.key, shift_);
      while (slots_[i].epoch == 1) i = (i + 1) & mask;
      slots_[i].key = slot.key;
      slots_[i].epoch = 1;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  int shift_ = 64;
  std::uint32_t epoch_ = 1;
};

/// Open-addressing flat hash map from an unsigned integral key to a
/// value. Values of slots invalidated by clear() are value-initialized
/// again when the slot is re-claimed.
template <typename Key, typename Value>
class FlatMap {
  static_assert(std::is_unsigned_v<Key>,
                "FlatMap requires an unsigned integral key");

 public:
  FlatMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// O(1): invalidates every slot by bumping the table epoch.
  void clear() noexcept {
    size_ = 0;
    if (++epoch_ == 0) {
      for (auto& slot : slots_) slot.epoch = 0;
      epoch_ = 1;
    }
  }

  void reserve(std::size_t n) {
    const std::size_t cap = detail::capacity_for(n);
    if (cap > slots_.size()) rehash(cap);
  }

  /// Pointer to the key's value, or nullptr. Valid until the next
  /// mutating call.
  Value* find(Key key) noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = detail::fib_index(key, shift_);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) return nullptr;
      if (slot.key == key) return &slot.value;
      i = (i + 1) & mask;
    }
  }

  /// Read-hints the key's home slot into cache. Streaming callers that
  /// know their keys a few iterations ahead (e.g. a columnar walk over a
  /// dense key vector) issue this to hide the find() probe's miss
  /// latency; a no-op on toolchains without the builtin.
  void prefetch(Key key) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (!slots_.empty()) {
      __builtin_prefetch(&slots_[detail::fib_index(key, shift_)], 0, 1);
    }
#else
    (void)key;
#endif
  }
  const Value* find(Key key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Inserts (key, value); returns false (leaving the existing value
  /// untouched) if the key is already present.
  bool insert(Key key, const Value& value) {
    bool inserted = false;
    Value& slot = find_or_insert(key, inserted);
    if (inserted) slot = value;
    return inserted;
  }

  /// The key's value, value-initialized on first access this epoch.
  Value& operator[](Key key) {
    bool inserted = false;
    return find_or_insert(key, inserted);
  }

  /// Visits every live (key, value) pair (slot order — callers must not
  /// depend on order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.epoch == epoch_) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    Key key;
    Value value;
    std::uint32_t epoch = 0;
  };

  Value& find_or_insert(Key key, bool& inserted) {
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(grown_capacity());
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = detail::fib_index(key, shift_);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) {
        slot.key = key;
        slot.value = Value{};
        slot.epoch = epoch_;
        ++size_;
        inserted = true;
        return slot.value;
      }
      if (slot.key == key) return slot.value;
      i = (i + 1) & mask;
    }
  }

  std::size_t grown_capacity() const noexcept {
    return slots_.empty() ? detail::kMinCapacity : slots_.size() * 2;
  }

  void rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    const std::uint32_t old_epoch = epoch_;
    slots_.assign(cap, Slot{});
    shift_ = 64 - (std::bit_width(cap) - 1);
    epoch_ = 1;
    size_ = 0;
    const std::size_t mask = cap - 1;
    for (auto& slot : old) {
      if (slot.epoch != old_epoch) continue;
      std::size_t i = detail::fib_index(slot.key, shift_);
      while (slots_[i].epoch == 1) i = (i + 1) & mask;
      slots_[i].key = slot.key;
      slots_[i].value = std::move(slot.value);
      slots_[i].epoch = 1;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  int shift_ = 64;
  std::uint32_t epoch_ = 1;
};

/// Open-addressing flat hash map over an arbitrary key type with a
/// caller-supplied hasher/equality — the generic sibling of FlatMap for
/// composite keys (e.g. the 17-byte flowtuple aggregation key in the
/// capture engine). Same contract: epoch clear() in O(1), no erase,
/// values live until the next clear() or growth.
template <typename Key, typename Value, typename Hash, typename Eq>
class FlatKeyMap {
 public:
  FlatKeyMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// O(1): invalidates every slot by bumping the table epoch.
  void clear() noexcept {
    size_ = 0;
    if (++epoch_ == 0) {
      for (auto& slot : slots_) slot.epoch = 0;
      epoch_ = 1;
    }
  }

  void reserve(std::size_t n) {
    const std::size_t cap = detail::capacity_for(n);
    if (cap > slots_.size()) rehash(cap);
  }

  /// Pointer to the key's value, or nullptr. Valid until the next
  /// mutating call.
  Value* find(const Key& key) noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = index_of(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) return nullptr;
      if (Eq{}(slot.key, key)) return &slot.value;
      i = (i + 1) & mask;
    }
  }
  const Value* find(const Key& key) const noexcept {
    return const_cast<FlatKeyMap*>(this)->find(key);
  }

  /// The key's value, value-initialized on first access this epoch.
  Value& operator[](const Key& key) {
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(grown_capacity());
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = index_of(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) {
        slot.key = key;
        slot.value = Value{};
        slot.epoch = epoch_;
        ++size_;
        return slot.value;
      }
      if (Eq{}(slot.key, key)) return slot.value;
      i = (i + 1) & mask;
    }
  }

  /// Visits every live (key, value) pair (slot order — callers must not
  /// depend on order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.epoch == epoch_) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    Key key;
    Value value;
    std::uint32_t epoch = 0;
  };

  /// The caller's hash may be weak in the low bits; remix through the
  /// Fibonacci constant like the integral-key tables.
  std::size_t index_of(const Key& key) const noexcept {
    return detail::fib_index(static_cast<std::uint64_t>(Hash{}(key)), shift_);
  }

  std::size_t grown_capacity() const noexcept {
    return slots_.empty() ? detail::kMinCapacity : slots_.size() * 2;
  }

  void rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    const std::uint32_t old_epoch = epoch_;
    slots_.assign(cap, Slot{});
    shift_ = 64 - (std::bit_width(cap) - 1);
    epoch_ = 1;
    size_ = 0;
    const std::size_t mask = cap - 1;
    for (auto& slot : old) {
      if (slot.epoch != old_epoch) continue;
      std::size_t i = index_of(slot.key);
      while (slots_[i].epoch == 1) i = (i + 1) & mask;
      slots_[i].key = std::move(slot.key);
      slots_[i].value = std::move(slot.value);
      slots_[i].epoch = 1;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  int shift_ = 64;
  std::uint32_t epoch_ = 1;
};

}  // namespace iotscope::util
