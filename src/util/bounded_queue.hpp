// A closeable bounded FIFO hand-off queue — the producer/consumer
// substrate of run_study's synthesis→analysis overlap and the flowtuple
// store's prefetching reader.
//
// Error-path semantics (DESIGN.md §8): either side may close() the queue
// at any time. A closed queue rejects new items (push returns false —
// the producer's signal to stop producing) while pop() still drains
// whatever was queued before the close and then returns nullopt. close()
// wakes every blocked producer and consumer, so no thread can be left
// waiting on a peer that has already died — the deadlock class this
// replaces (a consumer exception leaving the producer blocked on a full
// queue forever).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "obs/metrics.hpp"

namespace iotscope::util {

template <typename T>
class BoundedQueue {
 public:
  /// Capacity 0 is promoted to 1 (a zero-capacity queue could never
  /// accept an item). With a metrics_prefix, the queue registers
  /// `<prefix>.depth` (gauge with high-water mark) and
  /// `<prefix>.producer_stall_ns` / `<prefix>.consumer_stall_ns`
  /// counters in the global obs registry.
  explicit BoundedQueue(std::size_t capacity,
                        const char* metrics_prefix = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity) {
    if (metrics_prefix != nullptr) {
      auto& registry = obs::Registry::instance();
      const std::string prefix(metrics_prefix);
      depth_ = &registry.gauge(prefix + ".depth");
      producer_stall_ = &registry.counter(prefix + ".producer_stall_ns");
      consumer_stall_ = &registry.counter(prefix + ".consumer_stall_ns");
    }
  }

  /// Blocks while the queue is full. Returns true once the item is
  /// enqueued; false if the queue is (or becomes) closed — the item is
  /// dropped and the producer should stop.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.size() >= capacity_ && !closed_) {
      const auto t0 = obs::now_ns();
      not_full_.wait(lock,
                     [&] { return queue_.size() < capacity_ || closed_; });
      if (producer_stall_ != nullptr) {
        producer_stall_->add(obs::now_ns() - t0);
      }
    }
    if (closed_) return false;
    queue_.push_back(std::move(item));
    if (depth_ != nullptr) {
      depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns the next item, or
  /// nullopt once the queue is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty() && !closed_) {
      const auto t0 = obs::now_ns();
      not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
      if (consumer_stall_ != nullptr) {
        consumer_stall_->add(obs::now_ns() - t0);
      }
    }
    if (queue_.empty()) return std::nullopt;
    std::optional<T> item(std::move(queue_.front()));
    queue_.pop_front();
    if (depth_ != nullptr) {
      depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Poisons the queue: wakes all waiters, push() fails from now on,
  /// pop() drains the backlog then ends. Idempotent; callable from any
  /// thread (typically the side that hit an error, and the producer at
  /// normal end-of-stream).
  void close() noexcept {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;

  obs::Gauge* depth_ = nullptr;
  obs::Counter* producer_stall_ = nullptr;
  obs::Counter* consumer_stall_ = nullptr;
};

}  // namespace iotscope::util
