#include "util/io.hpp"

#include <fstream>
#include <random>

namespace iotscope::util {

namespace {
void write_bytes(std::ostream& os, const unsigned char* p, std::size_t n) {
  os.write(reinterpret_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void read_bytes(std::istream& is, unsigned char* p, std::size_t n) {
  is.read(reinterpret_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) {
    throw IoError("unexpected end of stream");
  }
}
}  // namespace

void write_u8(std::ostream& os, std::uint8_t v) { write_bytes(os, &v, 1); }

void write_u16(std::ostream& os, std::uint16_t v) {
  unsigned char b[2] = {static_cast<unsigned char>(v),
                        static_cast<unsigned char>(v >> 8)};
  write_bytes(os, b, 2);
}

void write_u32(std::ostream& os, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  write_bytes(os, b, 4);
}

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  write_bytes(os, b, 8);
}

std::uint8_t read_u8(std::istream& is) {
  unsigned char b;
  read_bytes(is, &b, 1);
  return b;
}

std::uint16_t read_u16(std::istream& is) {
  unsigned char b[2];
  read_bytes(is, b, 2);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char b[4];
  read_bytes(is, b, 4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char b[8];
  read_bytes(is, b, 8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is, std::uint32_t max_len) {
  const std::uint32_t len = read_u32(is);
  if (len > max_len) throw IoError("string length exceeds sanity cap");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (static_cast<std::uint32_t>(is.gcount()) != len) {
    throw IoError("unexpected end of stream in string");
  }
  return s;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file: " + path.string());
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void write_file(const std::filesystem::path& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create file: " + path.string());
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) throw IoError("write failed: " + path.string());
}

TempDir::TempDir(const std::string& prefix) {
  const auto root = std::filesystem::temp_directory_path();
  std::random_device rd;
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto candidate = root / (prefix + "-" + std::to_string(rd()));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw IoError("failed to create temporary directory");
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

}  // namespace iotscope::util
