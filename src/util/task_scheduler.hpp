// A task-graph executor generalizing ThreadPool's fork/join primitives
// (ROADMAP item 3, DESIGN.md §16): small task structs carrying a
// callable, a dependency count, successor edges, and an optional
// locality hint, scheduled over per-lane channel queues with CAS
// front-pop and half stealing.
//
// Where ThreadPool::run_morsels expresses ONE flat index space drained
// to a full barrier, a TaskScheduler holds an explicit dependency graph:
// submit() wires a task under the graph mutex with a pending count equal
// to its unfinished dependencies; completing a task decrements each
// successor's count and releases the ones that reach zero onto the
// finishing lane's queue (or the task's preferred lane), so independent
// subgraphs — the analysis pipeline's per-hour decode/classify/observe
// chains — overlap instead of synchronizing at stage barriers.
//
// The per-lane queue reuses the PR5 morsel discipline with one twist
// that closes the ABA door a dynamic queue would otherwise open: the
// packed atomic word holds MONOTONE 32-bit (head, tail) ring cursors
// instead of a [begin, end) slice of a fixed index space. PR5's packed
// ranges are ABA-safe only because a range never regrows within a run;
// a task queue is pushed to continually, so a word value could recur
// with different slot contents. Monotone cursors never repeat a value:
// a front-pop CASes head+1, a thief CASes head+k after copying the k =
// ceil(size/2) front ids (the ids it read are stable exactly when the
// CAS succeeds, because producers only ever write at tail positions),
// and producers publish a slot write with a tail+1 CAS under a per-lane
// producer lock (releases arrive from arbitrary finishing lanes, so the
// push side is multi-producer).
//
// Error semantics follow ThreadPool: the first exception is recorded,
// every not-yet-started task is skipped (fail-fast), but a skipped task
// still counts as completed for its successors — the graph always
// drains, wait_idle() rethrows, and the scheduler stays usable. A
// task's `finally` hook runs even when its callable was skipped, which
// is what lets callers attach resource accounting (credit release,
// memory-gauge decrements) that must survive failure.
//
// At one resolved thread the scheduler spawns no workers and
// degenerates to inline serial execution: submit() runs every ready
// task (and the successors its completion releases) on the calling
// thread before returning, in submission order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>

namespace iotscope::util {

/// Locality hints for TaskScheduler::submit. A preferred lane routes
/// the task to that lane's queue when it becomes ready (instead of the
/// finishing/submitting lane's); stealing can still move it. The
/// prefetch pointer is issued (read-prefetched) by the executing worker
/// immediately before the callable runs — the FlatMap::prefetch
/// pattern, but scheduler-driven: the submitter names the first cache
/// line the task will touch (e.g. a morsel's slice of the partition
/// index array) without the task knowing it is being warmed.
/// (Namespace-scope rather than nested so it can appear as a defaulted
/// argument of TaskScheduler members: a nested class's member
/// initializers are not usable in the enclosing class's default
/// arguments.)
struct TaskOptions {
  int preferred_lane = -1;          ///< -1: finishing/submitting lane
  const void* prefetch = nullptr;   ///< first line the task reads
  /// Runs after the callable finishes — or is skipped by fail-fast —
  /// and before successors are released. Must not throw.
  std::function<void()> finally;
  /// Extra unsatisfied dependencies released only by an explicit
  /// release() call. This is how a subgraph whose tail task does not
  /// exist yet is chained: hour N+1's head task depends on a fence
  /// submitted with manual_dependencies = 1 that hour N's fan-in
  /// releases when it completes.
  std::uint32_t manual_dependencies = 0;
};

class TaskScheduler {
 public:
  /// Opaque task handle: (generation << 32) | slot. Slots are recycled
  /// as tasks complete; the generation stamp makes a handle to a
  /// completed-and-recycled task read as "already satisfied" when named
  /// as a dependency, so a long-running submitter (the streaming study
  /// never quiesces between hours) keeps bounded task storage.
  using TaskId = std::uint64_t;
  static constexpr TaskId kNoTask = ~0ULL;

  using TaskOptions = iotscope::util::TaskOptions;

  /// Cumulative scheduling tallies (monotone over the scheduler's life).
  struct Stats {
    std::uint64_t spawned = 0;   ///< tasks submitted
    std::uint64_t stolen = 0;    ///< tasks executed on a thief lane
  };

  /// Resolves like ThreadPool: 0 = hardware concurrency. A resolved
  /// count of 1 spawns no workers (inline serial mode); otherwise
  /// `threads` workers are spawned — the submitting thread coordinates
  /// and does not execute tasks, mirroring the pipeline's producer/
  /// analyst split.
  explicit TaskScheduler(unsigned threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Number of execution lanes (== worker threads, or 1 when serial).
  /// Task callables receive their executing lane in [0, lanes()).
  unsigned lanes() const noexcept;

  /// Submits a task depending on `deps` (ids from earlier submit()
  /// calls; already-completed dependencies are satisfied). Thread-safe;
  /// tasks may submit further tasks. Returns the task's id.
  TaskId submit(std::function<void(unsigned lane)> fn,
                const TaskId* deps, std::size_t dep_count,
                TaskOptions options = {});
  TaskId submit(std::function<void(unsigned lane)> fn,
                std::initializer_list<TaskId> deps = {},
                TaskOptions options = {});

  /// Satisfies one manual dependency of `id` (see
  /// TaskOptions::manual_dependencies). Releasing more times than were
  /// reserved is a contract violation.
  void release(TaskId id);

  /// Blocks until every submitted task has completed (run or been
  /// skipped by fail-fast), then rethrows the first recorded exception,
  /// if any. The scheduler is reusable afterwards.
  void wait_idle();

  /// True once a task has thrown and fail-fast skipping is in effect
  /// (cleared by the wait_idle() that rethrows the error).
  bool failed() const noexcept;

  /// True when the calling thread is one of this scheduler's lanes —
  /// i.e. the caller is inside a task. A task must never wait_idle()
  /// (it would wait on itself); re-entrant callers use this to skip
  /// the drain they know the dependency chain already provides.
  bool on_lane() const noexcept;

  /// Cumulative tallies; callable any time (relaxed reads).
  Stats stats() const noexcept;

  /// ThreadPool adapter: runs fn(lane, i) exactly once for every i in
  /// [0, count) as independent tasks spread round-robin across the
  /// lanes, and blocks until all complete (full barrier, first error
  /// rethrown) — run_morsels semantics on the task substrate, for
  /// callers that still want a flat fork/join. Must not be called from
  /// inside a task, and the scheduler must be otherwise idle (the
  /// barrier is wait_idle()).
  void run_indexed(std::size_t count,
                   const std::function<void(unsigned, std::size_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace iotscope::util
