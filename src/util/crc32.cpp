#include "util/crc32.hpp"

#include <array>

#if defined(__x86_64__) || defined(_M_X64)
#include <nmmintrin.h>
#define IOTSCOPE_CRC32_HW 1
#endif

namespace iotscope::util {

namespace {

struct Crc32Tables {
  // tables[k][b]: CRC of byte b followed by k zero bytes — the standard
  // slice-by-8 construction, letting the hot loop fold 8 input bytes
  // with 8 independent lookups per iteration.
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Crc32Tables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c >> 1) ^ ((c & 1) ? 0x82F63B38u : 0);
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32Tables& tables() noexcept {
  static const Crc32Tables instance;
  return instance;
}

std::uint32_t crc32_sw(const unsigned char* p, std::size_t n,
                       std::uint32_t c) noexcept {
  const auto& t = tables().t;
  while (n >= 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  (static_cast<std::uint32_t>(p[1]) << 8) |
                                  (static_cast<std::uint32_t>(p[2]) << 16) |
                                  (static_cast<std::uint32_t>(p[3]) << 24));
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = (c >> 8) ^ t[0][(c ^ *p++) & 0xFF];
  }
  return c;
}

#ifdef IOTSCOPE_CRC32_HW
__attribute__((target("sse4.2"))) std::uint32_t crc32_hw(
    const unsigned char* p, std::size_t n, std::uint32_t c) noexcept {
  std::uint64_t c64 = c;
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    c64 = _mm_crc32_u64(c64, v);
    p += 8;
    n -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (n-- > 0) {
    c = _mm_crc32_u8(c, *p++);
  }
  return c;
}

bool have_sse42() noexcept {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t crc) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t c = ~crc;
#ifdef IOTSCOPE_CRC32_HW
  if (have_sse42()) return ~crc32_hw(p, n, c);
#endif
  return ~crc32_sw(p, n, c);
}

}  // namespace iotscope::util
