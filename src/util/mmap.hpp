// Read-only memory-mapped file view — the zero-copy read path under the
// compressed flowtuple store. Mapping a multi-gigabyte compacted file
// costs one syscall and no resident memory until pages are touched, so
// a predicate-pushdown scan that skips a block never faults that
// block's payload pages in at all.
//
// Lifetime rule (DESIGN.md §15): view() aliases the mapping and every
// pointer derived from it (ByteReader cursors, dictionary spans, decoded
// block views) dies with the MmapFile. Decoders must finish
// materializing FlowBatch columns before the MmapFile goes out of
// scope; nothing may retain a string_view into it.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>

namespace iotscope::util {

class MmapFile {
 public:
  /// Maps the whole file read-only; throws IoError if it cannot be
  /// opened or mapped. Platforms without mmap (and zero-length files,
  /// which mmap rejects) fall back to an owned in-memory copy — the
  /// view() contract is identical either way.
  explicit MmapFile(const std::filesystem::path& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::string_view view() const noexcept {
    return data_ != nullptr
               ? std::string_view(static_cast<const char*>(data_), size_)
               : std::string_view(fallback_);
  }
  std::size_t size() const noexcept { return view().size(); }

  /// Hints the kernel that the mapping will be read front to back
  /// (readahead-friendly); a no-op on the fallback path.
  void advise_sequential() noexcept;

 private:
  void unmap() noexcept;

  void* data_ = nullptr;  // nullptr when using the fallback buffer
  std::size_t size_ = 0;
  std::string fallback_;
};

}  // namespace iotscope::util
