#include "util/timebase.hpp"

#include <cstdio>
#include <ctime>

namespace iotscope::util {

std::string format_utc(UnixTime ts) {
  std::time_t t = static_cast<std::time_t>(ts);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[72];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

std::string format_window_day(int day) {
  if (day < 0) day = 0;
  if (day >= AnalysisWindow::kDays) day = AnalysisWindow::kDays - 1;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "APR-%02d", 12 + day);
  return buf;
}

}  // namespace iotscope::util
