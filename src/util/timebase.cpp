#include "util/timebase.hpp"

#include <cstdio>
#include <ctime>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace iotscope::util {

std::string format_utc(UnixTime ts) {
  std::time_t t = static_cast<std::time_t>(ts);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[72];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

std::string format_window_day(int day) {
  // Out-of-range days indicate an interval outside the 143-hour window
  // (e.g. a changed AnalysisWindow::kDays without matching callers).
  // Clamp so labels stay well-formed, but never silently: a mislabeled
  // hourly row is a data bug worth surfacing.
  if (day < 0 || day >= AnalysisWindow::kDays) {
    static obs::Counter& clamped =
        obs::Registry::instance().counter("time.window_day_out_of_range");
    clamped.add(1);
    IOTSCOPE_LOG_WARN(
        "format_window_day: day %d outside the analysis window [0, %d); "
        "clamping — hourly rows may be mislabeled",
        day, AnalysisWindow::kDays);
    day = day < 0 ? 0 : AnalysisWindow::kDays - 1;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "APR-%02d", 12 + day);
  return buf;
}

}  // namespace iotscope::util
