// Variable-length integers and dense bit packing — the primitives under
// the compressed flowtuple block format (net/block_codec.hpp). Varints
// are LEB128 (7 data bits per byte, little-endian groups); bit packing
// writes fixed-width values back to back with no per-value padding,
// byte-aligned only at stream boundaries.
//
// Both readers mirror util::ByteReader's error contract: overrunning the
// underlying buffer throws IoError, never reads out of bounds, and a
// malformed varint (more than 10 bytes, i.e. > 64 bits) is rejected
// rather than silently wrapped.
#pragma once

#include <cstdint>
#include <string>

#include "util/io.hpp"

namespace iotscope::util {

/// Appends v as a LEB128 varint (1..10 bytes).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(0x80 | (v & 0x7F)));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Encoded size of v as a varint, without writing it (cost models).
inline std::size_t varint_len(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Reads one varint; throws IoError on truncation or a > 10-byte group.
/// With 10+ readable bytes a varint cannot truncate, so the fast path
/// decodes with raw pointer reads — one branch for the ubiquitous
/// single-byte case — and pays no per-byte bounds check.
inline std::uint64_t get_varint(ByteReader& r) {
  if (r.remaining() >= 10) {
    const unsigned char* p = r.cursor();
    std::uint64_t v = *p & 0x7F;
    if ((*p & 0x80) == 0) {
      r.advance(1);
      return v;
    }
    unsigned shift = 7;
    for (std::size_t i = 1; i < 10; ++i, shift += 7) {
      const std::uint8_t byte = p[i];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        // The 10th byte may only contribute the single remaining bit.
        if (shift == 63 && byte > 1) {
          throw IoError("varint overflows 64 bits");
        }
        r.advance(i + 1);
        return v;
      }
    }
    throw IoError("varint longer than 10 bytes");
  }
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = r.u8();
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && byte > 1) {
        throw IoError("varint overflows 64 bits");
      }
      return v;
    }
  }
  throw IoError("varint longer than 10 bytes");
}

/// Appends fixed-width values (width in [0, 64] bits) to a byte buffer.
/// Values must fit their width (callers mask); width 0 writes nothing.
/// flush() pads the final partial byte with zero bits — call it exactly
/// once, after the last value of a packed stream.
class BitWriter {
 public:
  explicit BitWriter(std::string& out) noexcept : out_(&out) {}

  void put(std::uint64_t v, unsigned width) {
    acc_ |= v << nbits_;
    const unsigned fit = 64 - nbits_;
    if (width >= fit) {
      // acc_ is full (or exactly full): spill 8 bytes, keep the tail.
      spill64();
      if (width > fit) acc_ = v >> fit;
      nbits_ = width - fit;
    } else {
      nbits_ += width;
    }
  }

  void flush() {
    while (nbits_ > 0) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ >>= 8;
      nbits_ = nbits_ > 8 ? nbits_ - 8 : 0;
    }
    acc_ = 0;
  }

 private:
  void spill64() {
    unsigned char b[8];
    store_le64(b, acc_);
    out_->append(reinterpret_cast<const char*>(b), 8);
    acc_ = 0;
  }

  std::string* out_;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
};

/// Bytes needed for n values of the given bit width.
inline std::size_t packed_bytes(std::size_t n, unsigned width) noexcept {
  return (n * static_cast<std::size_t>(width) + 7) / 8;
}

/// Reads fixed-width values from a byte region. Bounds are validated at
/// construction (the caller hands the exact packed region), so get() is
/// unchecked-fast: while at least 8 readable bytes remain past the
/// cursor it decodes with one unaligned 64-bit load; the last few values
/// fall back to byte assembly.
class BitReader {
 public:
  BitReader(const unsigned char* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  /// Next value of `width` bits (width in [0, 57] for the fast path;
  /// widths up to 64 are composed by get64). Reading past the region
  /// throws IoError.
  std::uint64_t get(unsigned width) {
    if (width == 0) return 0;
    const std::size_t byte = bit_ >> 3;
    const unsigned shift = static_cast<unsigned>(bit_ & 7);
    if (bit_ + width > size_ * 8) {
      throw IoError("bit-packed column overruns its region");
    }
    bit_ += width;
    const std::uint64_t mask = width == 64 ? ~0ULL : (1ULL << width) - 1;
    if (byte + 8 <= size_) {
      return (load_le64(data_ + byte) >> shift) & mask;
    }
    // Tail: assemble from the remaining bytes (shift + width <= 64 is
    // guaranteed for width <= 57; the tail never needs a 9th byte
    // because the region bound above already held).
    std::uint64_t v = 0;
    unsigned got = 0;
    for (std::size_t i = byte; i < size_ && got < shift + width; ++i) {
      v |= static_cast<std::uint64_t>(data_[i]) << got;
      got += 8;
    }
    return (v >> shift) & mask;
  }

  /// Values up to 64 bits (two fast-path reads when width > 57).
  std::uint64_t get64(unsigned width) {
    if (width <= 57) return get(width);
    const std::uint64_t lo = get(32);
    return lo | (get(width - 32) << 32);
  }

  /// Bulk decode: feeds the next n values of `width` bits to fn(v), with
  /// one bounds check for the whole run and a branch-free single-load
  /// body while 8 readable bytes remain — the column-decode hot loop
  /// (per-value get() pays the bounds test, mask rebuild, and tail
  /// branch on every call).
  template <typename Fn>
  void run(std::size_t n, unsigned width, Fn&& fn) {
    if (width == 0 || width > 64) {
      throw IoError("bad bit width for packed run");
    }
    if (bit_ + n * static_cast<std::size_t>(width) > size_ * 8) {
      throw IoError("bit-packed column overruns its region");
    }
    std::size_t i = 0;
    if (width <= 57) {
      if (size_ >= 8) {
        const std::uint64_t mask = (1ULL << width) - 1;
        std::size_t bit = bit_;
        // The last value whose 8-byte load is fully in bounds starts
        // at bit 8*(size_-8)+7 or earlier; everything after takes the
        // checked tail path.
        const std::size_t fast_bits = (size_ - 8) * 8 + 7;
        for (; i < n && bit <= fast_bits; ++i, bit += width) {
          fn((load_le64(data_ + (bit >> 3)) >> (bit & 7)) & mask);
        }
        bit_ = bit;
      }
      for (; i < n; ++i) fn(get(width));
    } else {
      for (; i < n; ++i) fn(get64(width));
    }
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t bit_ = 0;
};

}  // namespace iotscope::util
