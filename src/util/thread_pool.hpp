// A small fixed-size worker pool for fork/join parallelism — the
// concurrency substrate of the sharded analysis pipeline and the
// prefetching flowtuple iteration. Deliberately minimal: two blocking
// parallel-for primitives (static index claiming and morsel-range work
// stealing), no futures, no task graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace iotscope::util {

/// A persistent pool of worker threads executing indexed jobs.
///
/// run_indexed(count, fn) calls fn(i) at most once for every
/// i in [0, count), distributing indices across the workers plus the
/// calling thread, and returns when all calls have completed (a full
/// fork/join barrier). The first exception thrown by any fn is captured
/// and rethrown on the calling thread after the join; once an exception
/// is recorded, unclaimed indices are skipped (fail-fast) so a poisoned
/// job drains quickly instead of running to completion on broken state.
/// When no fn throws, every index runs exactly once. The pool stays
/// usable after a throwing job. Each run_indexed call is timed into the
/// obs stage "threadpool.run_indexed".
///
/// The pool itself is not re-entrant: run_indexed/run_morsels must not
/// be called concurrently from two threads, and fn must not call back
/// into the same pool.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates in
  /// every run_indexed). threads == 0 or 1 spawns no workers; the pool
  /// then degenerates to a serial loop.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that participate in a run (workers + caller).
  unsigned size() const noexcept;

  /// Runs fn(i) for every i in [0, count); blocks until all are done.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  /// Tallies of one run_morsels call: how many morsels each lane took
  /// from its initial contiguous range vs obtained through stealing.
  struct MorselStats {
    std::uint64_t claimed = 0;
    std::uint64_t stolen = 0;
  };

  /// Work-stealing variant: runs fn(lane, i) exactly once for every
  /// i in [0, count) (count must fit in 32 bits). Each participating
  /// lane — worker threads plus the caller, lane ids in [0, size()) —
  /// starts with an even contiguous slice of the index space held in a
  /// packed atomic [begin, end) range; a lane pops indices off the front
  /// of its own range, and when it runs dry it steals the back half of
  /// the fullest remaining range. Under a balanced load every lane
  /// drains its own slice (cache behaviour matches run_indexed); under a
  /// skewed per-index cost the idle lanes drain the loaded lane's slice
  /// instead of idling at the barrier.
  ///
  /// No ordering guarantee: which lane runs which index — and in what
  /// order — is scheduling-dependent, so fn's per-lane accumulation must
  /// be merge-order-insensitive. Error semantics match run_indexed
  /// (first exception rethrown after the join, fail-fast skip of the
  /// remaining indices, pool stays usable). Timed into the obs stage
  /// "threadpool.run_morsels".
  void run_morsels(std::size_t count,
                   const std::function<void(unsigned, std::size_t)>& fn,
                   MorselStats* stats = nullptr);

  /// Resolves a thread-count request: 0 means "auto" (the hardware
  /// concurrency, at least 1); anything else is returned unchanged.
  static unsigned resolve(unsigned requested) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace iotscope::util
