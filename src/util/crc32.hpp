// CRC-32C (Castagnoli, reflected, polynomial 0x82F63B38) — the block
// integrity check for the compressed flowtuple format. The Castagnoli
// polynomial was chosen over IEEE 802.3 because x86-64 has a dedicated
// instruction for it (SSE4.2 crc32, ~an order of magnitude over table
// lookup; the check was ~30% of decode time with the software IEEE
// variant). Dispatches at runtime to the hardware path when available,
// else a slice-by-8 table fallback with identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace iotscope::util {

/// Incremental CRC-32C: pass the previous call's result as `crc` to
/// continue a running checksum (crc32(b, crc32(a)) == crc32 of a||b).
/// The initial value for a fresh checksum is 0.
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t crc = 0) noexcept;

inline std::uint32_t crc32(std::string_view data,
                           std::uint32_t crc = 0) noexcept {
  return crc32(data.data(), data.size(), crc);
}

}  // namespace iotscope::util
