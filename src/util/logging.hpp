// Minimal leveled logger. The pipeline is library-first, so logging is
// opt-in: the default level is Warn and examples/benches raise it to Info.
#pragma once

#include <cstdarg>
#include <string>

namespace iotscope::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is emitted to stderr.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// printf-style logging; no-op when below the global level.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define IOTSCOPE_LOG_DEBUG(...) \
  ::iotscope::util::logf(::iotscope::util::LogLevel::Debug, __VA_ARGS__)
#define IOTSCOPE_LOG_INFO(...) \
  ::iotscope::util::logf(::iotscope::util::LogLevel::Info, __VA_ARGS__)
#define IOTSCOPE_LOG_WARN(...) \
  ::iotscope::util::logf(::iotscope::util::LogLevel::Warn, __VA_ARGS__)
#define IOTSCOPE_LOG_ERROR(...) \
  ::iotscope::util::logf(::iotscope::util::LogLevel::Error, __VA_ARGS__)

}  // namespace iotscope::util
