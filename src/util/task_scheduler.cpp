#include "util/task_scheduler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace iotscope::util {

namespace {

/// Packs the monotone (head, tail) ring cursors into one atomic word —
/// the same single-CAS discipline as ThreadPool's morsel ranges, but
/// both cursors only ever advance, so no word value can recur and the
/// classic push-after-steal ABA (a reproduced word hiding different
/// slot contents) is structurally impossible.
constexpr std::uint64_t pack_cursor(std::uint32_t head,
                                    std::uint32_t tail) noexcept {
  return (static_cast<std::uint64_t>(head) << 32) | tail;
}
constexpr std::uint32_t cursor_head(std::uint64_t c) noexcept {
  return static_cast<std::uint32_t>(c >> 32);
}
constexpr std::uint32_t cursor_tail(std::uint64_t c) noexcept {
  return static_cast<std::uint32_t>(c);
}

constexpr std::uint32_t kSlotBits = 32;
constexpr std::uint64_t kSlotMask = 0xFFFFFFFFull;

constexpr std::uint32_t id_slot(std::uint64_t id) noexcept {
  return static_cast<std::uint32_t>(id & kSlotMask);
}
constexpr std::uint32_t id_generation(std::uint64_t id) noexcept {
  return static_cast<std::uint32_t>(id >> kSlotBits);
}
constexpr std::uint64_t make_id(std::uint32_t slot,
                                std::uint32_t generation) noexcept {
  return (static_cast<std::uint64_t>(generation) << kSlotBits) | slot;
}

/// Which scheduler (if any) the current thread is a lane of. Used by
/// on_lane() and to route successor releases to the finishing lane.
struct LaneContext {
  const void* scheduler = nullptr;
  unsigned lane = 0;
};
thread_local LaneContext t_lane;

}  // namespace

struct TaskScheduler::Impl {
  /// Ring capacity per lane. Tasks are hour-subgraph coarse (a morsel
  /// task covers 2k records), so 4096 in-flight ready tasks per lane is
  /// far above the credit-bounded pipeline's working set; the overflow
  /// deque keeps correctness if a caller exceeds it anyway.
  static constexpr std::uint32_t kRingCapacity = 4096;

  struct alignas(64) Lane {
    /// (head << 32) | tail, both monotone. size == tail - head.
    std::atomic<std::uint64_t> cursor{0};
    /// Serializes producers (successors are released from arbitrary
    /// finishing lanes). Consumers and thieves stay lock-free on the
    /// cursor CAS.
    std::mutex push_mutex;
    std::atomic<std::uint64_t> slots[kRingCapacity];

    Lane() {
      for (auto& s : slots) s.store(kNoTask, std::memory_order_relaxed);
    }
  };

  struct Task {
    std::function<void(unsigned)> fn;
    std::function<void()> finally;
    std::vector<TaskId> successors;
    const void* prefetch = nullptr;
    std::uint32_t pending = 0;  ///< unmet dependencies (graph mutex)
    std::uint32_t generation = 0;
    std::int32_t preferred_lane = -1;
    bool live = false;
  };

  explicit Impl(unsigned threads)
      : spawned_counter(obs::Registry::instance().counter(
            "pipeline.task.spawned")),
        stolen_counter(obs::Registry::instance().counter(
            "pipeline.task.stolen")),
        depth_gauge(obs::Registry::instance().gauge("task.queue_depth")) {
    const unsigned resolved = ThreadPool::resolve(threads);
    lane_count = resolved <= 1 ? 1 : resolved;
    lanes = std::make_unique<Lane[]>(lane_count);
    if (resolved > 1) {
      workers.reserve(lane_count);
      for (unsigned w = 0; w < lane_count; ++w) {
        workers.emplace_back([this, w] { worker_loop(w); });
      }
    }
  }

  ~Impl() {
    // Outstanding tasks reference caller-owned state (pipeline hour
    // slots), so the graph must drain — running or skipping every task,
    // with its finally hooks — before the workers are joined and the
    // caller's members die. Destruction during an unwound error leaves
    // failed set; the skip path drains quickly either way.
    drain_outstanding();
    {
      std::lock_guard<std::mutex> lock(sleep_mutex);
      stop = true;
    }
    work_ready.notify_all();
    for (auto& w : workers) w.join();
  }

  // ---------------------------------------------------------- queues

  bool ring_push(Lane& lane, TaskId id) {
    std::lock_guard<std::mutex> lock(lane.push_mutex);
    std::uint64_t c = lane.cursor.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint32_t head = cursor_head(c);
      const std::uint32_t tail = cursor_tail(c);
      if (tail - head >= kRingCapacity) return false;  // full
      lane.slots[tail % kRingCapacity].store(id, std::memory_order_relaxed);
      // Release so a consumer whose acquire load observes the new tail
      // also observes the slot write. Only head moves concurrently
      // (pops/steals) — producers are serialized by push_mutex — so a
      // failed CAS just re-reads and retries with the same slot index.
      if (lane.cursor.compare_exchange_weak(c, pack_cursor(head, tail + 1),
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {
        depth_gauge.add(1);
        return true;
      }
    }
  }

  bool ring_pop(Lane& lane, TaskId* out) {
    std::uint64_t c = lane.cursor.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t head = cursor_head(c);
      const std::uint32_t tail = cursor_tail(c);
      if (head == tail) return false;
      const TaskId id =
          lane.slots[head % kRingCapacity].load(std::memory_order_relaxed);
      // The slot read is valid iff the CAS succeeds: producers write
      // only at tail positions, so slots in [head, tail) are stable
      // while the word is unchanged, and monotone cursors mean the
      // word cannot have changed and changed back.
      if (lane.cursor.compare_exchange_weak(c, pack_cursor(head + 1, tail),
                                            std::memory_order_acquire,
                                            std::memory_order_acquire)) {
        depth_gauge.add(-1);
        *out = id;
        return true;
      }
    }
  }

  /// Steals half of `victim`'s pending tasks: runs the first, moves the
  /// rest to `self`'s queue. Returns false if the victim was empty or
  /// the race was lost.
  bool ring_steal(Lane& victim, unsigned self_lane, TaskId* out) {
    std::uint64_t c = victim.cursor.load(std::memory_order_acquire);
    const std::uint32_t head = cursor_head(c);
    const std::uint32_t tail = cursor_tail(c);
    const std::uint32_t size = tail - head;
    if (size == 0) return false;
    const std::uint32_t take = (size + 1) / 2;
    TaskId grabbed[kRingCapacity];
    for (std::uint32_t i = 0; i < take; ++i) {
      grabbed[i] = victim.slots[(head + i) % kRingCapacity].load(
          std::memory_order_relaxed);
    }
    if (!victim.cursor.compare_exchange_strong(c, pack_cursor(head + take, tail),
                                               std::memory_order_acquire,
                                               std::memory_order_relaxed)) {
      return false;  // lost the race; caller rescans
    }
    depth_gauge.add(-static_cast<std::int64_t>(take));
    stolen_total.fetch_add(take, std::memory_order_relaxed);
    stolen_counter.add(take);
    *out = grabbed[0];
    for (std::uint32_t i = 1; i < take; ++i) {
      enqueue(grabbed[i], self_lane);
    }
    return true;
  }

  /// Routes a ready task to a lane queue (overflow deque if full) and
  /// wakes a sleeper if one is parked.
  void enqueue(TaskId id, unsigned home_lane) {
    // The slab vector may reallocate under a concurrent wire(); index it
    // only under the graph mutex (the Task pointees themselves are
    // stable — they live behind unique_ptrs).
    int preferred;
    {
      std::lock_guard<std::mutex> lock(graph_mutex);
      preferred = slab[id_slot(id)]->preferred_lane;
    }
    unsigned lane = home_lane;
    if (preferred >= 0 && static_cast<unsigned>(preferred) < lane_count) {
      lane = static_cast<unsigned>(preferred);
    }
    if (!ring_push(lanes[lane], id)) {
      std::lock_guard<std::mutex> lock(graph_mutex);
      overflow.push_back(id);
      depth_gauge.add(1);
    }
    if (sleepers.load(std::memory_order_seq_cst) > 0) {
      work_ready.notify_one();
    }
  }

  bool pop_overflow(TaskId* out) {
    std::lock_guard<std::mutex> lock(graph_mutex);
    if (overflow.empty()) return false;
    *out = overflow.front();
    overflow.pop_front();
    depth_gauge.add(-1);
    return true;
  }

  // ----------------------------------------------------------- graph

  /// Allocates and wires a task under the graph mutex; returns its id
  /// and whether it is immediately ready.
  TaskId wire(std::function<void(unsigned)> fn, const TaskId* deps,
              std::size_t dep_count, TaskOptions& options, bool* ready) {
    std::lock_guard<std::mutex> lock(graph_mutex);
    std::uint32_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slab.size());
      slab.push_back(std::make_unique<Task>());
    }
    Task& task = *slab[slot];
    task.fn = std::move(fn);
    task.finally = std::move(options.finally);
    task.prefetch = options.prefetch;
    task.preferred_lane = options.preferred_lane;
    task.live = true;
    task.pending = options.manual_dependencies;
    const TaskId id = make_id(slot, task.generation);
    for (std::size_t d = 0; d < dep_count; ++d) {
      const TaskId dep = deps[d];
      if (dep == kNoTask) continue;
      const std::uint32_t dep_slot = id_slot(dep);
      if (dep_slot >= slab.size()) continue;
      Task& dep_task = *slab[dep_slot];
      // A stale generation means the dependency already completed and
      // its slot was recycled — satisfied by definition.
      if (!dep_task.live || dep_task.generation != id_generation(dep)) {
        continue;
      }
      dep_task.successors.push_back(id);
      ++task.pending;
    }
    ++outstanding;
    spawned_total.fetch_add(1, std::memory_order_relaxed);
    spawned_counter.add(1);
    *ready = task.pending == 0;
    return id;
  }

  /// Runs (or skips, under fail-fast) one task, fires its finally hook,
  /// retires its slot, and collects the successors its completion
  /// releases into `released`.
  void execute(TaskId id, unsigned lane, std::vector<TaskId>& released) {
    // Stable pointee, unstable vector: fetch the Task* under the graph
    // mutex (wire() may reallocate the slab concurrently), then run
    // unlocked — this task was dequeued exactly once, and the only
    // concurrent mutation of a live incomplete task (a successor push
    // in wire()) touches a member we only read under the lock below.
    Task* task_ptr;
    {
      std::lock_guard<std::mutex> lock(graph_mutex);
      task_ptr = slab[id_slot(id)].get();
    }
    Task& task = *task_ptr;
    if (!failed.load(std::memory_order_acquire)) {
      if (task.prefetch != nullptr) {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(task.prefetch, 0 /*read*/, 3 /*high locality*/);
#endif
      }
      try {
        task.fn(lane);
      } catch (...) {
        std::lock_guard<std::mutex> lock(graph_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    }
    if (task.finally) task.finally();

    released.clear();
    bool idle;
    {
      std::lock_guard<std::mutex> lock(graph_mutex);
      for (const TaskId succ : task.successors) {
        const std::uint32_t succ_slot = id_slot(succ);
        Task& succ_task = *slab[succ_slot];
        if (!succ_task.live || succ_task.generation != id_generation(succ)) {
          continue;
        }
        if (--succ_task.pending == 0) released.push_back(succ);
      }
      task.fn = nullptr;
      task.finally = nullptr;
      task.successors.clear();
      task.prefetch = nullptr;
      task.live = false;
      ++task.generation;
      free_slots.push_back(id_slot(id));
      idle = --outstanding == 0;
    }
    if (idle) idle_cv.notify_all();
  }

  /// Inline serial mode: runs `first` and everything its completions
  /// transitively release, on the calling thread, in release order.
  void run_inline(TaskId first) {
    const LaneContext saved = t_lane;
    t_lane = {this, 0};
    std::vector<TaskId> queue{first};
    std::vector<TaskId> released;
    while (!queue.empty()) {
      const TaskId id = queue.front();
      queue.erase(queue.begin());
      execute(id, 0, released);
      queue.insert(queue.end(), released.begin(), released.end());
    }
    t_lane = saved;
  }

  // --------------------------------------------------------- workers

  bool find_work(unsigned self, TaskId* out) {
    if (ring_pop(lanes[self], out)) return true;
    // Steal from the fullest other lane — the PR5 victim policy.
    unsigned victim = lane_count;
    std::uint32_t best = 0;
    for (unsigned l = 0; l < lane_count; ++l) {
      if (l == self) continue;
      const std::uint64_t c = lanes[l].cursor.load(std::memory_order_relaxed);
      const std::uint32_t size = cursor_tail(c) - cursor_head(c);
      if (size > best) {
        best = size;
        victim = l;
      }
    }
    if (victim < lane_count && ring_steal(lanes[victim], self, out)) {
      return true;
    }
    return pop_overflow(out);
  }

  void worker_loop(unsigned lane) {
    t_lane = {this, lane};
    std::vector<TaskId> released;
    for (;;) {
      TaskId id;
      if (find_work(lane, &id)) {
        execute(id, lane, released);
        for (const TaskId r : released) enqueue(r, lane);
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mutex);
      if (stop) return;
      sleepers.fetch_add(1, std::memory_order_seq_cst);
      // Re-check after registering as a sleeper: an enqueue that read
      // sleepers == 0 before our increment is sequenced (seq_cst)
      // before this scan, so the scan sees its push. The bounded wait
      // is belt-and-braces against a missed wakeup, never correctness.
      if (!any_work_visible()) {
        work_ready.wait_for(lock, std::chrono::milliseconds(5));
      }
      sleepers.fetch_sub(1, std::memory_order_seq_cst);
      if (stop) return;
    }
  }

  bool any_work_visible() {
    for (unsigned l = 0; l < lane_count; ++l) {
      const std::uint64_t c = lanes[l].cursor.load(std::memory_order_acquire);
      if (cursor_head(c) != cursor_tail(c)) return true;
    }
    std::lock_guard<std::mutex> lock(graph_mutex);
    return !overflow.empty();
  }

  void drain_outstanding() {
    std::unique_lock<std::mutex> lock(graph_mutex);
    idle_cv.wait(lock, [this] { return outstanding == 0; });
  }

  // ------------------------------------------------------------ state

  std::vector<std::thread> workers;
  std::unique_ptr<Lane[]> lanes;
  unsigned lane_count = 1;

  std::mutex graph_mutex;  ///< slab, free list, pending counts, overflow
  std::vector<std::unique_ptr<Task>> slab;
  std::vector<std::uint32_t> free_slots;
  std::deque<TaskId> overflow;
  std::size_t outstanding = 0;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};
  std::condition_variable_any idle_cv;

  std::mutex sleep_mutex;
  std::condition_variable work_ready;
  std::atomic<unsigned> sleepers{0};
  bool stop = false;

  std::atomic<std::uint64_t> spawned_total{0};
  std::atomic<std::uint64_t> stolen_total{0};
  obs::Counter& spawned_counter;
  obs::Counter& stolen_counter;
  obs::Gauge& depth_gauge;
};

TaskScheduler::TaskScheduler(unsigned threads)
    : impl_(std::make_unique<Impl>(threads)) {}

TaskScheduler::~TaskScheduler() = default;

unsigned TaskScheduler::lanes() const noexcept { return impl_->lane_count; }

TaskScheduler::TaskId TaskScheduler::submit(
    std::function<void(unsigned lane)> fn, const TaskId* deps,
    std::size_t dep_count, TaskOptions options) {
  bool ready = false;
  const TaskId id =
      impl_->wire(std::move(fn), deps, dep_count, options, &ready);
  if (ready) {
    if (impl_->workers.empty()) {
      impl_->run_inline(id);
    } else {
      const unsigned home =
          on_lane() ? t_lane.lane
                    : static_cast<unsigned>(id_slot(id) % impl_->lane_count);
      impl_->enqueue(id, home);
    }
  }
  return id;
}

TaskScheduler::TaskId TaskScheduler::submit(
    std::function<void(unsigned lane)> fn, std::initializer_list<TaskId> deps,
    TaskOptions options) {
  return submit(std::move(fn), deps.begin(), deps.size(), std::move(options));
}

void TaskScheduler::release(TaskId id) {
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(impl_->graph_mutex);
    const std::uint32_t slot = id_slot(id);
    if (slot >= impl_->slab.size()) return;
    Impl::Task& task = *impl_->slab[slot];
    if (!task.live || task.generation != id_generation(id)) return;
    ready = --task.pending == 0;
  }
  if (!ready) return;
  if (impl_->workers.empty()) {
    impl_->run_inline(id);
  } else {
    const unsigned home =
        on_lane() ? t_lane.lane
                  : static_cast<unsigned>(id_slot(id) % impl_->lane_count);
    impl_->enqueue(id, home);
  }
}

void TaskScheduler::wait_idle() {
  impl_->drain_outstanding();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(impl_->graph_mutex);
    error = impl_->first_error;
    impl_->first_error = nullptr;
    impl_->failed.store(false, std::memory_order_release);
  }
  if (error) std::rethrow_exception(error);
}

bool TaskScheduler::failed() const noexcept {
  return impl_->failed.load(std::memory_order_acquire);
}

bool TaskScheduler::on_lane() const noexcept {
  return t_lane.scheduler == impl_.get();
}

TaskScheduler::Stats TaskScheduler::stats() const noexcept {
  return {impl_->spawned_total.load(std::memory_order_relaxed),
          impl_->stolen_total.load(std::memory_order_relaxed)};
}

void TaskScheduler::run_indexed(
    std::size_t count, const std::function<void(unsigned, std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    TaskOptions options;
    options.preferred_lane = static_cast<int>(i % impl_->lane_count);
    submit([&fn, i](unsigned lane) { fn(lane, i); }, {}, std::move(options));
  }
  wait_idle();
}

}  // namespace iotscope::util
