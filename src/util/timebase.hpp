// The study's time base: 143 analysis hours over April 12–17 2017 (UTC),
// matching the paper's telescope window after discarding the incomplete
// April 18 data. All time series in the pipeline are indexed by the hourly
// "interval" in [0, 143) exactly as the paper's figures are.
#pragma once

#include <cstdint>
#include <string>

namespace iotscope::util {

/// Unix timestamp (seconds since epoch, UTC).
using UnixTime = std::int64_t;

/// One hour, in seconds.
inline constexpr std::int64_t kSecondsPerHour = 3600;

/// The analysis window used throughout the reproduction.
///
/// The paper analyzes darknet traffic captured between April 12 and
/// April 17, 2017 — 143 hourly flowtuple files (the final hour of the
/// 6 x 24 = 144 was discarded with the incomplete April 18 data).
class AnalysisWindow {
 public:
  /// 2017-04-12 00:00:00 UTC.
  static constexpr UnixTime kStart = 1491955200;
  /// Number of hourly intervals in the study (the paper's x-axes run 1..143;
  /// we use 0-based indices 0..142 internally).
  static constexpr int kHours = 143;
  static constexpr int kDays = 6;

  /// Start of the window.
  static constexpr UnixTime start() noexcept { return kStart; }
  /// One past the end of the window.
  static constexpr UnixTime end() noexcept {
    return kStart + static_cast<UnixTime>(kHours) * kSecondsPerHour;
  }

  /// True if ts falls inside the analysis window.
  static constexpr bool contains(UnixTime ts) noexcept {
    return ts >= start() && ts < end();
  }

  /// interval_of's disposition for a timestamp outside the window.
  /// Callers must handle it explicitly: the historical behavior —
  /// silently clamping to hour 0 or kHours-1 — folded stray records
  /// into the edge intervals and corrupted both ends of every hourly
  /// time series the moment ingestion ran continuously.
  static constexpr int kOutOfWindow = -1;

  /// Hourly interval index in [0, kHours) for a timestamp inside the
  /// window; kOutOfWindow for any timestamp outside it.
  static constexpr int interval_of(UnixTime ts) noexcept {
    if (!contains(ts)) return kOutOfWindow;
    return static_cast<int>((ts - start()) / kSecondsPerHour);
  }

  /// Start timestamp of an interval index (clamped to valid range).
  static constexpr UnixTime interval_start(int interval) noexcept {
    if (interval < 0) interval = 0;
    if (interval >= kHours) interval = kHours - 1;
    return start() + static_cast<UnixTime>(interval) * kSecondsPerHour;
  }

  /// Day index in [0, kDays) for an interval (day 0 = April 12).
  static constexpr int day_of_interval(int interval) noexcept {
    if (interval < 0) return 0;
    const int d = interval / 24;
    return d >= kDays ? kDays - 1 : d;
  }
};

/// Formats a unix timestamp as "YYYY-MM-DD HH:MM:SS" (UTC).
std::string format_utc(UnixTime ts);

/// Formats a day index of the analysis window as "APR-12" .. "APR-17".
std::string format_window_day(int day);

}  // namespace iotscope::util
