#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace iotscope::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string human_count(double n) {
  const char* suffix = "";
  double v = n;
  if (std::fabs(v) >= 1e9) {
    v /= 1e9;
    suffix = "B";
  } else if (std::fabs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  char buf[48];
  if (*suffix == '\0') {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
  }
  return buf;
}

std::string percent(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::optional<std::uint64_t> parse_decimal(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace iotscope::util
