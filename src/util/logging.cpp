#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace iotscope::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[iotscope %s] %s\n", level_name(level), buf);
}

}  // namespace iotscope::util
