// Minimal JSON string escaping, shared by every JSON emitter in the
// project (the obs --metrics-out snapshot and the serve/ query server).
// Header-only on purpose: obs sits below util in the link graph and can
// include this without taking a link dependency on iotscope_util.
//
// Escapes exactly what RFC 8259 requires: quote, backslash, and the
// C0 control range (with the common two-character forms for the
// whitespace controls). Everything else — UTF-8 multibyte sequences
// included — passes through byte-for-byte, which keeps inventory ISP /
// vendor names readable in the output while still producing a document
// any JSON parser accepts even when a name contains `"` or `\`.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace iotscope::util {

/// Appends `s` to `out` with JSON string escaping applied (no
/// surrounding quotes — callers decide the quoting).
inline void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// `s` as a complete JSON string literal, quotes included.
inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

/// The escaped body alone (no quotes) — for callers building into a
/// larger buffer.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_json_escaped(out, s);
  return out;
}

}  // namespace iotscope::util
