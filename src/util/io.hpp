// Endian-stable binary stream primitives used by the flowtuple and pcap
// codecs, plus small filesystem helpers. All multi-byte integers on disk
// are little-endian regardless of host order.
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace iotscope::util {

/// Error raised by codecs on malformed or truncated input.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes an unsigned integer little-endian.
void write_u8(std::ostream& os, std::uint8_t v);
void write_u16(std::ostream& os, std::uint16_t v);
void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);

/// Reads an unsigned integer little-endian; throws IoError on EOF.
std::uint8_t read_u8(std::istream& is);
std::uint16_t read_u16(std::istream& is);
std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);

/// Writes a length-prefixed (u32) UTF-8 string.
void write_string(std::ostream& os, const std::string& s);
/// Reads a length-prefixed string; enforces the given sanity cap.
std::string read_string(std::istream& is, std::uint32_t max_len = 1 << 20);

/// Reads an entire file into a string; throws IoError if unreadable.
std::string read_file(const std::filesystem::path& path);

/// Writes a string to a file atomically-ish (write then rename not needed
/// for our single-process use; direct write with error checking).
void write_file(const std::filesystem::path& path, const std::string& data);

/// Creates a unique temporary directory under the system temp root and
/// removes it (recursively) on destruction. Used by tests and examples.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "iotscope");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace iotscope::util
