// Endian-stable binary stream primitives used by the flowtuple and pcap
// codecs, plus small filesystem helpers. All multi-byte integers on disk
// are little-endian regardless of host order.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace iotscope::util {

/// Error raised by codecs on malformed or truncated input.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Little-endian loads from an unaligned byte pointer. On little-endian
/// hosts these compile to single unaligned loads; the portable shift form
/// is kept for big-endian targets.
inline std::uint16_t load_le16(const unsigned char* b) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint16_t v;
    std::memcpy(&v, b, sizeof v);
    return v;
  } else {
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
}

inline std::uint32_t load_le32(const unsigned char* b) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint32_t v;
    std::memcpy(&v, b, sizeof v);
    return v;
  } else {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
}

inline std::uint64_t load_le64(const unsigned char* b) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, b, sizeof v);
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
}

/// Little-endian stores to an unaligned byte pointer.
inline void store_le16(unsigned char* b, std::uint16_t v) noexcept {
  b[0] = static_cast<unsigned char>(v);
  b[1] = static_cast<unsigned char>(v >> 8);
}

inline void store_le32(unsigned char* b, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline void store_le64(unsigned char* b, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
}

/// Bounds-checked little-endian cursor over an in-memory byte buffer —
/// the block-decode counterpart of the read_* stream primitives below.
/// Codecs slurp a file once (read_file) and decode with plain pointer
/// arithmetic instead of one virtual istream read per field. Overrunning
/// the buffer throws IoError, mirroring the stream primitives' EOF
/// behaviour ("unexpected end of stream").
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size) noexcept
      : p_(static_cast<const unsigned char*>(data)), end_(p_ + size) {}
  explicit ByteReader(std::string_view blob) noexcept
      : ByteReader(blob.data(), blob.size()) {}

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  bool done() const noexcept { return p_ == end_; }

  /// Consumes n bytes, returning a pointer to them; throws IoError if
  /// fewer remain. The pointer is valid for the underlying buffer's life.
  const unsigned char* bytes(std::size_t n) {
    if (remaining() < n) throw IoError("unexpected end of stream");
    const unsigned char* q = p_;
    p_ += n;
    return q;
  }

  std::uint8_t u8() { return *bytes(1); }
  std::uint16_t u16() { return load_le16(bytes(2)); }
  std::uint32_t u32() { return load_le32(bytes(4)); }
  std::uint64_t u64() { return load_le64(bytes(8)); }

  /// Unchecked cursor access for decoders that have already verified
  /// bounds against remaining() — advance(n) past the end is UB.
  const unsigned char* cursor() const noexcept { return p_; }
  void advance(std::size_t n) noexcept { p_ += n; }

 private:
  const unsigned char* p_;
  const unsigned char* end_;
};

/// Append-only little-endian encoder over a caller-owned contiguous
/// buffer; the block-encode counterpart of the write_* stream primitives.
/// One os.write of the finished buffer replaces per-field stream writes.
class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) noexcept : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    unsigned char b[2];
    store_le16(b, v);
    bytes(b, sizeof b);
  }
  void u32(std::uint32_t v) {
    unsigned char b[4];
    store_le32(b, v);
    bytes(b, sizeof b);
  }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    store_le64(b, v);
    bytes(b, sizeof b);
  }
  void bytes(const void* data, std::size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }

 private:
  std::string* out_;
};

/// Writes an unsigned integer little-endian.
void write_u8(std::ostream& os, std::uint8_t v);
void write_u16(std::ostream& os, std::uint16_t v);
void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);

/// Reads an unsigned integer little-endian; throws IoError on EOF.
std::uint8_t read_u8(std::istream& is);
std::uint16_t read_u16(std::istream& is);
std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);

/// Writes a length-prefixed (u32) UTF-8 string.
void write_string(std::ostream& os, const std::string& s);
/// Reads a length-prefixed string; enforces the given sanity cap.
std::string read_string(std::istream& is, std::uint32_t max_len = 1 << 20);

/// Reads an entire file into a string; throws IoError if unreadable.
std::string read_file(const std::filesystem::path& path);

/// Writes a string to a file atomically-ish (write then rename not needed
/// for our single-process use; direct write with error checking).
void write_file(const std::filesystem::path& path, const std::string& data);

/// Creates a unique temporary directory under the system temp root and
/// removes it (recursively) on destruction. Used by tests and examples.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "iotscope");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace iotscope::util
