// Deterministic pseudo-random number generation for reproducible
// simulation. All synthetic data in iotscope is derived from a seeded
// Xoshiro256** generator so that every experiment is replayable bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <vector>

namespace iotscope::util {

/// SplitMix64 — used to expand a single 64-bit seed into the Xoshiro state.
/// Passes BigCrush when used as a stand-alone generator; here it is only a
/// seeding primitive.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the project-wide deterministic PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, but the class also provides the small set
/// of distributions the simulator needs so that results do not depend on
/// standard-library implementation details (libstdc++ vs libc++ produce
/// different std::uniform_int_distribution streams).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x1075C0DEULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Poisson-distributed count with the given mean. Uses inversion for
  /// small means and a normal approximation above 64 to stay O(1)-ish.
  std::uint64_t poisson(double mean) noexcept;

  /// Standard normal deviate (Box–Muller, stateless variant).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Pareto-distributed value with scale xm > 0 and shape alpha > 0.
  /// Heavy-tailed; used for per-device packet volumes.
  double pareto(double xm, double alpha) noexcept;

  /// Index in [0, weights.size()) sampled proportionally to weights.
  /// Zero/negative weights are treated as zero. Requires a positive total.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle of an arbitrary random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(0, i));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Derives an independent child generator; the label decorrelates
  /// children created from the same parent state.
  Rng fork(std::uint64_t label) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Stable 64-bit FNV-1a hash of a string — used to derive per-entity RNG
/// labels from names so that adding entities does not shift other streams.
std::uint64_t stable_hash(std::string_view s) noexcept;

}  // namespace iotscope::util
