#include "util/mmap.hpp"

#include <utility>

#include "util/io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define IOTSCOPE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace iotscope::util {

MmapFile::MmapFile(const std::filesystem::path& path) {
#if IOTSCOPE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError("cannot open file for mapping: " + path.string());
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("cannot stat file for mapping: " + path.string());
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return;  // empty view via the (empty) fallback buffer
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapped != MAP_FAILED) {
    data_ = mapped;
    size_ = size;
    return;
  }
#endif
  // Portable fallback: one owned copy, same view() semantics.
  fallback_ = read_file(path);
}

MmapFile::~MmapFile() { unmap(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fallback_(std::move(other.fallback_)) {
  other.fallback_.clear();
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fallback_ = std::move(other.fallback_);
    other.fallback_.clear();
  }
  return *this;
}

void MmapFile::advise_sequential() noexcept {
#if IOTSCOPE_HAVE_MMAP
  if (data_ != nullptr) {
    ::madvise(data_, size_, MADV_SEQUENTIAL);
  }
#endif
}

void MmapFile::unmap() noexcept {
#if IOTSCOPE_HAVE_MMAP
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
#endif
}

}  // namespace iotscope::util
