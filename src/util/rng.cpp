#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace iotscope::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // Guard against the (astronomically unlikely) all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;  // span==0 means the full 2^64 range
  if (span == 0) return next();
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t threshold = -span % span;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) noexcept {
  // Avoid log(0) by shifting the uniform sample away from zero.
  const double u = 1.0 - uniform01();
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    double prod = uniform01();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform01();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean)) + 0.5;
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

double Rng::normal() noexcept {
  // Box–Muller; draws two uniforms per deviate (no cached second value, to
  // keep the generator state a pure function of the call sequence).
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::pareto(double xm, double alpha) noexcept {
  const double u = 1.0 - uniform01();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return 0;
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(weights[i], 0.0);
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t label) noexcept {
  Rng child(next() ^ (label * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL));
  return child;
}

std::uint64_t stable_hash(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace iotscope::util
