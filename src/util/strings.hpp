// Small string and number-formatting helpers shared across the project.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iotscope::util {

/// Splits s on the given delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// ASCII lower-casing (locale-independent).
std::string to_lower(std::string_view s);

/// True if s starts with the given prefix.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Formats a count with thousands separators: 26881 -> "26,881".
std::string with_commas(std::uint64_t n);

/// Human-scaled count: 26881 -> "26.9K", 141300000 -> "141.3M".
std::string human_count(double n);

/// Fixed-point percentage: (26.881, 1) -> "26.9%".
std::string percent(double value, int decimals = 1);

/// Fixed-point double formatting without iostream locale surprises.
std::string fixed(double value, int decimals);

/// Strict decimal parse for CLI-flag style values: ASCII digits only —
/// no sign, no whitespace, no exponent — and the result must fit in 64
/// bits. Returns nullopt for anything else ("", "abc", "-3", "1e3",
/// "18446744073709551616"). Callers decide whether 0 is acceptable;
/// the loose strtoul/atof coercions this replaces turned "--threads -1"
/// into 4294967295 and "--idle-ms abc" into 0.
std::optional<std::uint64_t> parse_decimal(std::string_view s) noexcept;

}  // namespace iotscope::util
