#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace iotscope::util {

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable job_done;

  // Current job, valid while generation is odd-stepped forward; workers
  // pick up indices with a shared atomic cursor.
  const std::function<void(std::size_t)>* job = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> cursor{0};
  std::uint64_t generation = 0;
  std::size_t busy = 0;  ///< workers still draining the current job
  bool stop = false;

  // Exception channel: the first error is recorded here and rethrown on
  // the calling thread after the join; `failed` fail-fasts the other
  // workers out of the remaining indices.
  std::mutex error_mutex;
  std::exception_ptr error;
  std::atomic<bool> failed{false};

  obs::Stage& run_stage =
      obs::Registry::instance().stage("threadpool.run_indexed");
  obs::Counter& task_counter =
      obs::Registry::instance().counter("threadpool.tasks");

  void drain() {
    // Claim indices until the job is exhausted or another task failed;
    // record the first error and fail-fast so the join never waits on
    // work that is already pointless.
    for (std::size_t i = cursor.fetch_add(1); i < count;
         i = cursor.fetch_add(1)) {
      if (failed.load(std::memory_order_acquire)) return;
      try {
        (*job)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      work_ready.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      lock.unlock();

      drain();

      lock.lock();
      if (--busy == 0) job_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(std::make_unique<Impl>()) {
  const unsigned n = resolve(threads);
  impl_->workers.reserve(n > 0 ? n - 1 : 0);
  for (unsigned i = 1; i < n; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_ready.notify_all();
  for (auto& worker : impl_->workers) worker.join();
}

unsigned ThreadPool::size() const noexcept {
  return static_cast<unsigned>(impl_->workers.size()) + 1;
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  obs::ScopedTimer timer(impl_->run_stage);
  impl_->task_counter.add(count);
  if (impl_->workers.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &fn;
    impl_->count = count;
    impl_->cursor.store(0, std::memory_order_relaxed);
    impl_->failed.store(false, std::memory_order_relaxed);
    impl_->busy = impl_->workers.size();
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  impl_->drain();  // the caller is a worker too

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->job_done.wait(lock, [&] { return impl_->busy == 0; });
    impl_->job = nullptr;
  }
  if (impl_->error) {
    auto error = impl_->error;
    impl_->error = nullptr;
    std::rethrow_exception(error);
  }
}

unsigned ThreadPool::resolve(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace iotscope::util
