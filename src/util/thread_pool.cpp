#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace iotscope::util {

namespace {

/// Packs a half-open [begin, end) index range into one atomic word so a
/// pop (front) or a steal (back) is a single compare-exchange.
constexpr std::uint64_t pack_range(std::uint32_t begin,
                                   std::uint32_t end) noexcept {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}
constexpr std::uint32_t range_begin(std::uint64_t r) noexcept {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t r) noexcept {
  return static_cast<std::uint32_t>(r);
}

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable job_done;

  // Current job, valid while generation is odd-stepped forward; workers
  // pick up indices with a shared atomic cursor (indexed mode) or the
  // per-lane stealing ranges below (morsel mode).
  const std::function<void(std::size_t)>* job = nullptr;
  const std::function<void(unsigned, std::size_t)>* morsel_job = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> cursor{0};
  std::uint64_t generation = 0;
  std::size_t busy = 0;  ///< workers still draining the current job
  bool stop = false;

  /// One lane's stealing state, cache-line isolated: the packed range is
  /// contended by thieves; the tallies are written only by the owning
  /// lane during a run and read by the caller after the join barrier.
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> range{0};
    std::uint64_t claimed = 0;
    std::uint64_t stolen = 0;
  };
  std::unique_ptr<Lane[]> lanes;
  unsigned lane_count = 1;

  // Exception channel: the first error is recorded here and rethrown on
  // the calling thread after the join; `failed` fail-fasts the other
  // workers out of the remaining indices.
  std::mutex error_mutex;
  std::exception_ptr error;
  std::atomic<bool> failed{false};

  obs::Stage& run_stage =
      obs::Registry::instance().stage("threadpool.run_indexed");
  obs::Stage& morsel_stage =
      obs::Registry::instance().stage("threadpool.run_morsels");
  obs::Counter& task_counter =
      obs::Registry::instance().counter("threadpool.tasks");

  void record_error() {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error) error = std::current_exception();
    failed.store(true, std::memory_order_release);
  }

  void drain() {
    // Claim indices until the job is exhausted or another task failed;
    // record the first error and fail-fast so the join never waits on
    // work that is already pointless.
    for (std::size_t i = cursor.fetch_add(1); i < count;
         i = cursor.fetch_add(1)) {
      if (failed.load(std::memory_order_acquire)) return;
      try {
        (*job)(i);
      } catch (...) {
        record_error();
      }
    }
  }

  /// Steals the back half of the fullest other lane into `lane`'s own
  /// (empty) range. Returns false when every range is empty — no work is
  /// left that this lane could ever see: morsels only become visible by
  /// being carved out of a non-empty range, so an all-empty scan means
  /// the remaining in-flight indices are already owned by other lanes.
  bool steal_into(unsigned lane) {
    for (;;) {
      unsigned victim = lane_count;
      std::uint32_t best_remaining = 0;
      for (unsigned v = 0; v < lane_count; ++v) {
        if (v == lane) continue;
        const std::uint64_t r = lanes[v].range.load(std::memory_order_acquire);
        const std::uint32_t remaining = range_end(r) - range_begin(r);
        if (remaining > best_remaining) {
          best_remaining = remaining;
          victim = v;
        }
      }
      if (victim == lane_count) return false;
      std::uint64_t r = lanes[victim].range.load(std::memory_order_acquire);
      const std::uint32_t begin = range_begin(r);
      const std::uint32_t end = range_end(r);
      if (begin >= end) continue;  // raced to empty; rescan
      const std::uint32_t take = (end - begin + 1) / 2;
      if (!lanes[victim].range.compare_exchange_strong(
              r, pack_range(begin, end - take), std::memory_order_acq_rel)) {
        continue;  // victim moved; rescan for the new fullest range
      }
      // The stolen back half is invisible between the shrink above and
      // this install, but only to *other* thieves — this lane executes
      // it, so no index is lost. (ABA on the victim's word is impossible:
      // every index is claimed at most once, so a non-empty range value
      // can never reappear within one run.)
      lanes[lane].range.store(pack_range(end - take, end),
                              std::memory_order_release);
      return true;
    }
  }

  void drain_morsels(unsigned lane) {
    Lane& mine = lanes[lane];
    bool range_is_stolen = false;
    for (;;) {
      std::uint64_t r = mine.range.load(std::memory_order_acquire);
      while (range_begin(r) < range_end(r)) {
        const std::uint32_t index = range_begin(r);
        if (!mine.range.compare_exchange_weak(
                r, pack_range(index + 1, range_end(r)),
                std::memory_order_acq_rel)) {
          continue;  // a thief shrank the range; retry with the new word
        }
        if (failed.load(std::memory_order_acquire)) return;
        try {
          (*morsel_job)(lane, index);
        } catch (...) {
          record_error();
        }
        (range_is_stolen ? mine.stolen : mine.claimed) += 1;
        r = mine.range.load(std::memory_order_acquire);
      }
      if (failed.load(std::memory_order_acquire)) return;
      if (!steal_into(lane)) return;
      range_is_stolen = true;
    }
  }

  void worker_loop(unsigned lane) {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      work_ready.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      const bool morsels = morsel_job != nullptr;
      lock.unlock();

      if (morsels) {
        drain_morsels(lane);
      } else {
        drain();
      }

      lock.lock();
      if (--busy == 0) job_done.notify_all();
    }
  }

  /// Blocks until every worker finished the current job, then rethrows
  /// the first recorded error (if any).
  void join_and_rethrow() {
    {
      std::unique_lock<std::mutex> lock(mutex);
      job_done.wait(lock, [&] { return busy == 0; });
      job = nullptr;
      morsel_job = nullptr;
    }
    if (error) {
      auto pending = error;
      error = nullptr;
      std::rethrow_exception(pending);
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(std::make_unique<Impl>()) {
  const unsigned n = resolve(threads);
  impl_->lane_count = n > 0 ? n : 1;
  impl_->lanes = std::make_unique<Impl::Lane[]>(impl_->lane_count);
  impl_->workers.reserve(n > 0 ? n - 1 : 0);
  for (unsigned i = 1; i < n; ++i) {
    impl_->workers.emplace_back(
        [impl = impl_.get(), i] { impl->worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_ready.notify_all();
  for (auto& worker : impl_->workers) worker.join();
}

unsigned ThreadPool::size() const noexcept {
  return static_cast<unsigned>(impl_->workers.size()) + 1;
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  obs::ScopedTimer timer(impl_->run_stage);
  impl_->task_counter.add(count);
  if (impl_->workers.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &fn;
    impl_->morsel_job = nullptr;
    impl_->count = count;
    impl_->cursor.store(0, std::memory_order_relaxed);
    impl_->failed.store(false, std::memory_order_relaxed);
    impl_->busy = impl_->workers.size();
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  impl_->drain();  // the caller is a worker too

  impl_->join_and_rethrow();
}

void ThreadPool::run_morsels(std::size_t count,
                             const std::function<void(unsigned, std::size_t)>& fn,
                             MorselStats* stats) {
  if (stats) *stats = {};
  if (count == 0) return;
  obs::ScopedTimer timer(impl_->morsel_stage);
  impl_->task_counter.add(count);
  if (impl_->workers.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    if (stats) stats->claimed = count;
    return;
  }
  const auto n = static_cast<std::uint32_t>(count);
  const unsigned lanes = impl_->lane_count;
  for (unsigned l = 0; l < lanes; ++l) {
    // Even contiguous split; the publish to the workers happens-before
    // their wake-up via the generation bump under the mutex below.
    const auto begin = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(n) * l / lanes);
    const auto end = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(n) * (l + 1) / lanes);
    impl_->lanes[l].range.store(pack_range(begin, end),
                                std::memory_order_relaxed);
    impl_->lanes[l].claimed = 0;
    impl_->lanes[l].stolen = 0;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = nullptr;
    impl_->morsel_job = &fn;
    impl_->failed.store(false, std::memory_order_relaxed);
    impl_->busy = impl_->workers.size();
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  impl_->drain_morsels(0);  // the caller is lane 0

  impl_->join_and_rethrow();
  if (stats) {
    for (unsigned l = 0; l < lanes; ++l) {
      stats->claimed += impl_->lanes[l].claimed;
      stats->stolen += impl_->lanes[l].stolen;
    }
  }
}

unsigned ThreadPool::resolve(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace iotscope::util
