// The Shodan-style inventory synthesizer: generates an Internet-facing IoT
// device population whose marginals (country, realm, device type, CPS
// protocol support, ISP market structure) match the paper's reported
// distributions. This substitutes for the proprietary Shodan dataset the
// paper obtained (see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "inventory/database.hpp"
#include "net/ipv4.hpp"
#include "util/rng.hpp"

namespace iotscope::inventory {

/// Parameters of inventory synthesis.
struct SynthesisConfig {
  std::uint64_t seed = 20170412;
  /// Total devices; the paper's corpus is 331,000. Scale down for tests.
  std::size_t device_count = 331000;
  /// Address block devices must avoid (the telescope's dark space).
  net::Ipv4Prefix darknet{net::Ipv4Address::from_octets(10, 0, 0, 0), 8};
  /// Mean number of *additional* CPS services beyond the first.
  double extra_cps_services_mean = 0.15;
};

/// Generates the device inventory. Deterministic in config.seed.
IoTDeviceDatabase synthesize_inventory(
    const SynthesisConfig& config,
    const Catalog& catalog = Catalog::standard());

}  // namespace iotscope::inventory
