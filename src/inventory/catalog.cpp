#include "inventory/catalog.hpp"

#include <cstdio>
#include <stdexcept>

namespace iotscope::inventory {

namespace {

// Countries: {name, deploy weight %, consumer share, compromise propensity
// consumer, compromise propensity CPS}. The deploy weights of the top 15
// match Fig 1a (cumulative 69.3%); propensities are relative rates the
// CompromiseAssigner rescales so totals hit the paper's 15,299 / 11,582.
// Propensity values approximate the percent-compromised line of Fig 1b
// (Russia ~31%, Ukraine ~30%, US ~2.4%, UK ~2.5%).
std::vector<CountryInfo> build_countries() {
  std::vector<CountryInfo> c = {
      // --- Fig 1a top 15 (deployment) ---
      {"United States", 25.0, 0.62, 2.7, 2.5},
      {"United Kingdom", 6.0, 0.60, 2.5, 2.5},
      {"Russian Federation", 5.9, 0.65, 38.0, 25.0},
      {"China", 5.0, 0.40, 5.2, 20.0},
      {"Republic of Korea", 4.3, 0.55, 6.5, 15.0},
      {"France", 3.8, 0.45, 3.0, 3.5},
      {"Italy", 3.2, 0.58, 4.5, 4.0},
      {"Germany", 3.0, 0.56, 2.8, 2.8},
      {"Canada", 2.8, 0.44, 3.0, 3.5},
      {"Australia", 2.4, 0.57, 4.0, 4.0},
      {"Vietnam", 2.1, 0.42, 9.0, 8.0},
      {"Taiwan", 1.9, 0.43, 8.0, 14.5},
      {"Brazil", 1.7, 0.56, 7.5, 7.0},
      {"Spain", 1.2, 0.46, 4.0, 4.0},
      {"Mexico", 1.0, 0.55, 5.0, 5.0},
      // --- heavily-exploited countries outside the deployment top 15
      //     (they enter Fig 1b's compromised top 15) ---
      {"Thailand", 1.2, 0.60, 26.0, 12.0},
      {"Indonesia", 1.1, 0.65, 26.0, 10.0},
      {"Singapore", 0.6, 0.55, 15.0, 12.0},
      {"Turkey", 1.4, 0.50, 12.0, 22.0},
      {"Ukraine", 0.7, 0.62, 31.0, 28.0},
      {"India", 1.0, 0.60, 14.0, 10.0},
      {"Philippines", 0.9, 0.60, 22.0, 8.0},
      // --- other countries that appear in specific findings ---
      {"Japan", 1.5, 0.55, 2.0, 2.0},
      {"Netherlands", 0.9, 0.58, 3.5, 3.0},
      {"Switzerland", 0.5, 0.50, 2.5, 3.0},
      {"Argentina", 0.4, 0.55, 6.0, 6.0},
      {"Poland", 0.6, 0.58, 5.0, 4.0},
      {"Sweden", 0.5, 0.55, 2.5, 2.5},
      {"Czech Republic", 0.35, 0.55, 4.0, 4.0},
      {"Romania", 0.4, 0.58, 7.0, 6.0},
      {"Hungary", 0.25, 0.55, 4.5, 4.0},
      {"Colombia", 0.3, 0.55, 6.0, 5.0},
      {"Chile", 0.25, 0.55, 5.0, 5.0},
      {"Peru", 0.2, 0.55, 6.0, 5.0},
      {"Malaysia", 0.4, 0.55, 8.0, 7.0},
      {"Hong Kong", 0.45, 0.50, 6.0, 6.0},
      {"Israel", 0.3, 0.50, 3.0, 3.0},
      {"United Arab Emirates", 0.25, 0.50, 5.0, 5.0},
      {"Saudi Arabia", 0.25, 0.50, 5.0, 5.0},
      {"Egypt", 0.2, 0.55, 8.0, 7.0},
      {"South Africa", 0.35, 0.50, 6.0, 6.0},
      {"Dominican Republic", 0.1, 0.65, 10.0, 6.0},
      {"Austria", 0.3, 0.55, 3.0, 3.0},
      {"Belgium", 0.3, 0.55, 3.0, 3.0},
      {"Denmark", 0.25, 0.55, 2.5, 2.5},
      {"Finland", 0.25, 0.55, 2.5, 2.5},
      {"Norway", 0.25, 0.55, 2.5, 2.5},
      {"Portugal", 0.3, 0.55, 4.0, 4.0},
      {"Greece", 0.25, 0.55, 5.0, 5.0},
      {"New Zealand", 0.25, 0.55, 3.5, 3.5},
      {"Pakistan", 0.25, 0.55, 9.0, 7.0},
      {"Bangladesh", 0.15, 0.55, 9.0, 7.0},
      {"Nigeria", 0.15, 0.55, 8.0, 6.0},
      {"Kenya", 0.1, 0.55, 7.0, 6.0},
      {"Morocco", 0.12, 0.55, 7.0, 6.0},
      {"Venezuela", 0.15, 0.55, 6.0, 5.0},
      {"Ireland", 0.25, 0.55, 3.0, 3.0},
  };
  // Long tail: the paper observes deployed devices in >200 countries and
  // compromised ones in 161. Generate small tail economies until the
  // weights account for the remaining mass.
  double named = 0.0;
  for (const auto& info : c) named += info.deploy_weight;
  const double remaining = 100.0 - named;
  const int tail_count = 150;
  for (int i = 0; i < tail_count; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "Country-%03d", i + 1);
    // Mildly decaying weights so tail countries differ in size. Every
    // third tail country is essentially exploitation-free: the paper
    // finds compromised devices in 161 of the 200+ countries hosting
    // devices, so a clean tail fraction is required to match that gap.
    const double w = remaining * 2.0 * (tail_count - i) /
                     (static_cast<double>(tail_count) * (tail_count + 1));
    const bool clean = (i % 3) == 2;
    c.push_back({name, w, 0.55, clean ? 0.02 : 5.0, clean ? 0.02 : 4.5});
  }
  return c;
}

// The 31 industrial/automation protocols. The top 10 weights reproduce
// Table III's share of compromised CPS devices (support is assigned
// independently of compromise, so deployed shares == compromised shares in
// expectation). Shares are not mutually exclusive: a device may support
// several services.
std::vector<CpsProtocolInfo> build_cps_protocols() {
  return {
      {"Telvent OASyS DNA",
       "Oil and Gas transportation pipelines and distribution networks",
       20.0},
      {"SNC GENe", "Control systems", 18.3},
      {"Niagara Fox", "Building automation systems", 13.4},
      {"MQ Telemetry Transport",
       "IoT communications, sensory networks, safety-critical communications",
       12.9},
      {"Ethernet/IP", "Manufacturing automation", 12.8},
      {"ABB Ranger",
       "Power generating plants, transmission lines, mining operations, and "
       "transportation systems",
       9.1},
      {"Siemens Spectrum PowerTG", "Utility networks", 5.9},
      {"Modbus TCP", "Power utilities", 5.5},
      {"Foxboro/Invensys Foxboro",
       "Plant automation systems, flowmeters, single-loop controllers, and "
       "product support services",
       5.1},
      {"Foundation Fieldbus HSE", "Plant and factory automation", 3.0},
      // Remaining 21 protocols (long tail of the 31 services).
      {"BACnet/IP", "Building automation", 2.5},
      {"DNP3", "Electric and water utilities", 2.2},
      {"IEC 60870-5-104", "Power grid telecontrol", 2.0},
      {"Siemens S7", "Factory automation PLCs", 1.8},
      {"OPC UA", "Industrial interoperability", 1.6},
      {"Omron FINS", "Factory automation controllers", 1.4},
      {"PCWorx", "Phoenix Contact PLCs", 1.2},
      {"ProConOS", "Runtime for industrial controllers", 1.1},
      {"Red Lion Crimson V3", "HMI and protocol converters", 1.0},
      {"GE-SRTP", "GE Fanuc PLC communications", 0.9},
      {"MELSEC-Q", "Mitsubishi PLC communications", 0.9},
      {"HART-IP", "Process instrumentation", 0.8},
      {"Tridium Niagara AX", "Facility management platforms", 0.8},
      {"Lantronix UDS", "Serial-to-Ethernet device servers", 0.7},
      {"Moxa NPort", "Serial device servers", 0.7},
      {"VxWorks WDB", "Embedded RTOS debug service", 0.6},
      {"ATG", "Automatic tank gauges at fuel stations", 0.6},
      {"IEC 61850", "Substation automation", 0.5},
      {"Crestron", "Room and AV control systems", 0.5},
      {"KNX IP", "Home and building control", 0.4},
      {"CoDeSys", "PLC runtime and gateway", 0.4},
  };
}

// Named ISPs with engineered market shares; chosen so the compromised-ISP
// rankings reproduce Tables I and II.
std::vector<NamedIsp> build_named_isps() {
  return {
      {"JSC ER-Telecom", "Russian Federation", 0.85, 0.16},
      {"Rostelecom", "Russian Federation", 0.05, 0.27},
      {"PT Telkom", "Indonesia", 0.85, 0.40},
      {"Korea Telecom", "Republic of Korea", 0.85, 0.50},
      {"PLDT", "Philippines", 0.80, 0.40},
      {"TOT", "Thailand", 0.45, 0.30},
      {"True Internet", "Thailand", 0.30, 0.20},
      {"Turk Telekom", "Turkey", 0.55, 0.60},
      {"HiNet", "Taiwan", 0.60, 0.50},
      {"China Telecom", "China", 0.45, 0.11},
      {"China Unicom", "China", 0.30, 0.10},
      {"Comcast", "United States", 0.12, 0.08},
      {"AT&T", "United States", 0.10, 0.12},
      {"Verizon", "United States", 0.08, 0.08},
      {"BT", "United Kingdom", 0.30, 0.25},
      {"Deutsche Telekom", "Germany", 0.35, 0.30},
      {"Orange", "France", 0.35, 0.30},
      {"Telstra", "Australia", 0.40, 0.30},
      {"VNPT", "Vietnam", 0.45, 0.40},
      {"Swisscom", "Switzerland", 0.40, 0.40},
      {"KPN", "Netherlands", 0.35, 0.30},
  };
}

}  // namespace

Catalog::Catalog()
    : countries_(build_countries()),
      cps_protocols_(build_cps_protocols()),
      named_isps_(build_named_isps()),
      // Deployment mix (Section III-A1): routers 46.9%, printers 29.1%,
      // cameras 18.3%, network storage 4.6%, remainder 1.1%.
      consumer_type_mix_({0.469, 0.183, 0.291, 0.046, 0.008, 0.003}),
      // Propensity multipliers = Fig 3 compromised share / deployed share:
      // routers 52.4/46.9, cameras 25.2/18.3, printers 18.0/29.1,
      // NAS 3.6/4.6, DVR ~0.5/0.8, hubs 0.1/0.3.
      consumer_type_propensity_({1.12, 1.38, 0.62, 0.78, 0.63, 0.33}) {}

const Catalog& Catalog::standard() {
  static const Catalog catalog;
  return catalog;
}

CountryId Catalog::country_id(const std::string& name) const {
  for (std::size_t i = 0; i < countries_.size(); ++i) {
    if (countries_[i].name == name) return static_cast<CountryId>(i);
  }
  throw std::out_of_range("unknown country: " + name);
}

CpsProtocolId Catalog::cps_protocol_id(const std::string& name) const {
  for (std::size_t i = 0; i < cps_protocols_.size(); ++i) {
    if (cps_protocols_[i].name == name) return static_cast<CpsProtocolId>(i);
  }
  throw std::out_of_range("unknown CPS protocol: " + name);
}

}  // namespace iotscope::inventory
