// The IoT device model: what a Shodan-style active-measurement service
// knows about an Internet-facing device — address, realm (consumer vs
// CPS), device type or supported industrial protocols, hosting country
// and ISP.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace iotscope::inventory {

/// Deployment realm, per the paper's two populations.
enum class DeviceCategory : std::uint8_t {
  Consumer,  ///< routers, cameras, printers, NAS, DVRs, outlets
  Cps,       ///< PLC/RTU/ICS/SCADA/DCS equipment
};

const char* to_string(DeviceCategory c) noexcept;

/// Consumer device types (Section III-A1 / Figure 3).
enum class ConsumerType : std::uint8_t {
  Router = 0,
  IpCamera,
  Printer,
  NetworkStorage,
  TvBoxDvr,
  ElectricHub,
  kCount,  // sentinel
};

inline constexpr int kConsumerTypeCount =
    static_cast<int>(ConsumerType::kCount);

const char* to_string(ConsumerType t) noexcept;

/// Identifier of a CPS service/protocol; index into the catalog's list of
/// 31 industrial/automation protocols (Table III names the top 10).
using CpsProtocolId = std::uint8_t;

/// Index into the catalog's country table.
using CountryId = std::uint16_t;

/// Globally unique ISP identifier (index into the database's ISP table).
using IspId = std::uint32_t;

/// One Internet-facing IoT device as indexed by the measurement service.
struct DeviceRecord {
  net::Ipv4Address ip;
  DeviceCategory category = DeviceCategory::Consumer;
  ConsumerType consumer_type = ConsumerType::Router;  ///< consumer realm only
  std::vector<CpsProtocolId> services;  ///< CPS realm only; >=1 protocol
  CountryId country = 0;
  IspId isp = 0;

  bool is_consumer() const noexcept {
    return category == DeviceCategory::Consumer;
  }
  bool is_cps() const noexcept { return category == DeviceCategory::Cps; }

  /// True if the CPS device supports the given protocol.
  bool supports(CpsProtocolId proto) const noexcept {
    for (auto s : services)
      if (s == proto) return true;
    return false;
  }
};

}  // namespace iotscope::inventory
