#include "inventory/database.hpp"

#include <fstream>
#include <set>

#include "util/io.hpp"
#include "util/strings.hpp"

namespace iotscope::inventory {

IoTDeviceDatabase::IoTDeviceDatabase(const Catalog* catalog)
    : catalog_(catalog) {}

IspId IoTDeviceDatabase::add_isp(std::string name, CountryId country) {
  const std::string key = name + "\x1f" + std::to_string(country);
  if (auto it = isp_ids_.find(key); it != isp_ids_.end()) return it->second;
  const IspId id = static_cast<IspId>(isps_.size());
  isps_.push_back({std::move(name), country});
  isp_ids_.emplace(key, id);
  return id;
}

bool IoTDeviceDatabase::add_device(DeviceRecord device) {
  const auto [it, inserted] =
      by_ip_.emplace(device.ip, static_cast<std::uint32_t>(devices_.size()));
  if (!inserted) return false;
  if (device.is_consumer()) ++consumer_count_;
  devices_.push_back(std::move(device));
  return true;
}

const DeviceRecord* IoTDeviceDatabase::find(
    net::Ipv4Address ip) const noexcept {
  const auto it = by_ip_.find(ip);
  return it == by_ip_.end() ? nullptr : &devices_[it->second];
}

std::size_t IoTDeviceDatabase::country_count() const {
  std::set<CountryId> seen;
  for (const auto& d : devices_) seen.insert(d.country);
  return seen.size();
}

// CSV layout:
//   line 1:            "isp_count,<N>"
//   next N lines:      "<isp name>,<country id>"   (names contain no commas)
//   line N+2:          "device_count,<M>"
//   next M lines:      ip,category,consumer_type,services,country,isp
// where services is ';'-joined protocol ids (empty for consumer devices).
void IoTDeviceDatabase::save_csv(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw util::IoError("cannot create " + path.string());
  out << "isp_count," << isps_.size() << "\n";
  for (const auto& isp : isps_) {
    out << isp.name << "," << isp.country << "\n";
  }
  out << "device_count," << devices_.size() << "\n";
  for (const auto& d : devices_) {
    out << d.ip.to_string() << ","
        << (d.is_consumer() ? "consumer" : "cps") << ","
        << static_cast<int>(d.consumer_type) << ",";
    for (std::size_t i = 0; i < d.services.size(); ++i) {
      if (i) out << ';';
      out << static_cast<int>(d.services[i]);
    }
    out << "," << d.country << "," << d.isp << "\n";
  }
  if (!out) throw util::IoError("write failed: " + path.string());
}

IoTDeviceDatabase IoTDeviceDatabase::load_csv(
    const std::filesystem::path& path, const Catalog* catalog) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open " + path.string());
  IoTDeviceDatabase db(catalog);
  std::string line;

  auto expect_count = [&](const char* tag) -> std::size_t {
    if (!std::getline(in, line)) throw util::IoError("truncated inventory csv");
    const auto fields = util::split(line, ',');
    if (fields.size() != 2 || fields[0] != tag) {
      throw util::IoError(std::string("expected ") + tag + " header");
    }
    return static_cast<std::size_t>(std::stoull(fields[1]));
  };

  const std::size_t isp_count = expect_count("isp_count");
  for (std::size_t i = 0; i < isp_count; ++i) {
    if (!std::getline(in, line)) throw util::IoError("truncated isp table");
    const auto fields = util::split(line, ',');
    if (fields.size() != 2) throw util::IoError("malformed isp row");
    db.add_isp(fields[0], static_cast<CountryId>(std::stoul(fields[1])));
  }

  const std::size_t device_count = expect_count("device_count");
  for (std::size_t i = 0; i < device_count; ++i) {
    if (!std::getline(in, line)) throw util::IoError("truncated device table");
    const auto fields = util::split(line, ',');
    if (fields.size() != 6) throw util::IoError("malformed device row");
    DeviceRecord d;
    const auto ip = net::Ipv4Address::parse(fields[0]);
    if (!ip) throw util::IoError("malformed device IP: " + fields[0]);
    d.ip = *ip;
    d.category = fields[1] == "consumer" ? DeviceCategory::Consumer
                                         : DeviceCategory::Cps;
    d.consumer_type = static_cast<ConsumerType>(std::stoi(fields[2]));
    if (!fields[3].empty()) {
      for (const auto& s : util::split(fields[3], ';')) {
        d.services.push_back(static_cast<CpsProtocolId>(std::stoi(s)));
      }
    }
    d.country = static_cast<CountryId>(std::stoul(fields[4]));
    d.isp = static_cast<IspId>(std::stoul(fields[5]));
    db.add_device(std::move(d));
  }
  return db;
}

}  // namespace iotscope::inventory
