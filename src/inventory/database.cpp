#include "inventory/database.hpp"

#include <fstream>

#include "util/io.hpp"
#include "util/strings.hpp"

namespace iotscope::inventory {

namespace {

/// Strict decimal parser for inventory CSV fields. Rejects empty,
/// non-digit, and out-of-range text with a util::IoError carrying the
/// field name and line number — raw std::stoul would let
/// std::invalid_argument/std::out_of_range escape the loader instead.
std::uint64_t parse_uint_field(const std::string& text, std::uint64_t max,
                               const char* field, std::size_t line_no) {
  const auto fail = [&](const char* why) -> util::IoError {
    return util::IoError("inventory csv line " + std::to_string(line_no) +
                         ": " + why + " " + field + " '" + text + "'");
  };
  if (text.empty() || text.size() > 20) throw fail("malformed");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') throw fail("malformed");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > max) throw fail("out-of-range");
  }
  return value;
}

}  // namespace

IoTDeviceDatabase::IoTDeviceDatabase(const Catalog* catalog)
    : catalog_(catalog) {}

IspId IoTDeviceDatabase::add_isp(std::string name, CountryId country) {
  const std::string key = name + "\x1f" + std::to_string(country);
  if (auto it = isp_ids_.find(key); it != isp_ids_.end()) return it->second;
  const IspId id = static_cast<IspId>(isps_.size());
  isps_.push_back({std::move(name), country});
  isp_ids_.emplace(key, id);
  return id;
}

bool IoTDeviceDatabase::add_device(DeviceRecord device) {
  if (!by_ip_.insert(device.ip.value(),
                     static_cast<std::uint32_t>(devices_.size()))) {
    return false;
  }
  if (device.is_consumer()) ++consumer_count_;
  if (device.country >= country_devices_.size()) {
    country_devices_.resize(device.country + 1, 0);
  }
  if (++country_devices_[device.country] == 1) ++distinct_countries_;
  devices_.push_back(std::move(device));
  return true;
}

// CSV layout:
//   line 1:            "isp_count,<N>"
//   next N lines:      "<isp name>,<country id>"   (names contain no commas)
//   line N+2:          "device_count,<M>"
//   next M lines:      ip,category,consumer_type,services,country,isp
// where services is ';'-joined protocol ids (empty for consumer devices).
void IoTDeviceDatabase::save_csv(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw util::IoError("cannot create " + path.string());
  out << "isp_count," << isps_.size() << "\n";
  for (const auto& isp : isps_) {
    out << isp.name << "," << isp.country << "\n";
  }
  out << "device_count," << devices_.size() << "\n";
  for (const auto& d : devices_) {
    out << d.ip.to_string() << ","
        << (d.is_consumer() ? "consumer" : "cps") << ","
        << static_cast<int>(d.consumer_type) << ",";
    for (std::size_t i = 0; i < d.services.size(); ++i) {
      if (i) out << ';';
      out << static_cast<int>(d.services[i]);
    }
    out << "," << d.country << "," << d.isp << "\n";
  }
  if (!out) throw util::IoError("write failed: " + path.string());
}

IoTDeviceDatabase IoTDeviceDatabase::load_csv(
    const std::filesystem::path& path, const Catalog* catalog) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open " + path.string());
  IoTDeviceDatabase db(catalog);
  std::string line;
  std::size_t line_no = 0;

  const auto next_line = [&](const char* what) {
    if (!std::getline(in, line)) {
      throw util::IoError(std::string("truncated ") + what);
    }
    ++line_no;
  };

  auto expect_count = [&](const char* tag) -> std::size_t {
    next_line("inventory csv");
    const auto fields = util::split(line, ',');
    if (fields.size() != 2 || fields[0] != tag) {
      throw util::IoError(std::string("expected ") + tag + " header");
    }
    return static_cast<std::size_t>(
        parse_uint_field(fields[1], std::uint64_t{1} << 32, tag, line_no));
  };

  const std::size_t isp_count = expect_count("isp_count");
  for (std::size_t i = 0; i < isp_count; ++i) {
    next_line("isp table");
    const auto fields = util::split(line, ',');
    if (fields.size() != 2) throw util::IoError("malformed isp row");
    db.add_isp(fields[0],
               static_cast<CountryId>(parse_uint_field(
                   fields[1], 0xFFFF, "isp country", line_no)));
  }

  const std::size_t device_count = expect_count("device_count");
  for (std::size_t i = 0; i < device_count; ++i) {
    next_line("device table");
    const auto fields = util::split(line, ',');
    if (fields.size() != 6) throw util::IoError("malformed device row");
    DeviceRecord d;
    const auto ip = net::Ipv4Address::parse(fields[0]);
    if (!ip) throw util::IoError("malformed device IP: " + fields[0]);
    d.ip = *ip;
    d.category = fields[1] == "consumer" ? DeviceCategory::Consumer
                                         : DeviceCategory::Cps;
    d.consumer_type = static_cast<ConsumerType>(
        parse_uint_field(fields[2], 0xFF, "consumer type", line_no));
    if (!fields[3].empty()) {
      for (const auto& s : util::split(fields[3], ';')) {
        d.services.push_back(static_cast<CpsProtocolId>(
            parse_uint_field(s, 0xFF, "service id", line_no)));
      }
    }
    d.country = static_cast<CountryId>(
        parse_uint_field(fields[4], 0xFFFF, "country", line_no));
    d.isp = static_cast<IspId>(
        parse_uint_field(fields[5], 0xFFFFFFFF, "isp id", line_no));
    db.add_device(std::move(d));
  }
  return db;
}

}  // namespace iotscope::inventory
