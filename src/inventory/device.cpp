#include "inventory/device.hpp"

namespace iotscope::inventory {

const char* to_string(DeviceCategory c) noexcept {
  switch (c) {
    case DeviceCategory::Consumer:
      return "Consumer";
    case DeviceCategory::Cps:
      return "CPS";
  }
  return "?";
}

const char* to_string(ConsumerType t) noexcept {
  switch (t) {
    case ConsumerType::Router:
      return "Router";
    case ConsumerType::IpCamera:
      return "IP Camera";
    case ConsumerType::Printer:
      return "Printer";
    case ConsumerType::NetworkStorage:
      return "Network Storage Media";
    case ConsumerType::TvBoxDvr:
      return "TV Box/DVR";
    case ConsumerType::ElectricHub:
      return "Electric Hub/Outlet";
    case ConsumerType::kCount:
      break;
  }
  return "?";
}

}  // namespace iotscope::inventory
