// Static catalogs describing the simulated deployment universe: countries
// with deployment weights and compromise propensities, the 31 CPS
// protocols, consumer device-type mixes, and named ISPs with per-country
// market shares. The numbers are engineered so that the synthetic
// inventory + workload reproduce the marginals the paper reports
// (Fig 1a/1b, Fig 3, Tables I–III); see DESIGN.md §2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "inventory/device.hpp"

namespace iotscope::inventory {

/// Per-country deployment and exploitation parameters.
struct CountryInfo {
  std::string name;
  double deploy_weight = 0.0;    ///< share of the 331k inventory (percent)
  double consumer_share = 0.5;   ///< fraction of the country's devices that
                                 ///< are consumer (vs CPS)
  double propensity_consumer = 1.0;  ///< relative compromise propensity,
                                     ///< consumer realm (scaled globally by
                                     ///< the assigner to hit target totals)
  double propensity_cps = 1.0;       ///< same, CPS realm
};

/// One of the 31 industrial/automation protocols.
struct CpsProtocolInfo {
  std::string name;
  std::string application;  ///< "common applications" column of Table III
  double weight = 0.0;      ///< support probability weight among CPS devices
};

/// A named ISP with an explicit market share within one country+realm.
/// Devices not covered by named ISPs fall into generated per-country ISPs
/// with a Zipf-like share tail.
struct NamedIsp {
  std::string name;
  std::string country;       ///< must match a CountryInfo name
  double consumer_share = 0; ///< fraction of that country's consumer devices
  double cps_share = 0;      ///< fraction of that country's CPS devices
};

/// The full static catalog. Immutable after construction.
class Catalog {
 public:
  /// The default catalog parameterized to the paper's distributions.
  static const Catalog& standard();

  const std::vector<CountryInfo>& countries() const noexcept {
    return countries_;
  }
  const std::vector<CpsProtocolInfo>& cps_protocols() const noexcept {
    return cps_protocols_;
  }
  const std::vector<NamedIsp>& named_isps() const noexcept {
    return named_isps_;
  }

  /// Deployment mix of consumer device types (fractions, sum to 1):
  /// routers 46.9%, printers 29.1%, cameras 18.3%, NAS 4.6%, rest 1.1%.
  const std::vector<double>& consumer_type_mix() const noexcept {
    return consumer_type_mix_;
  }

  /// Relative compromise propensity per consumer type (engineered so the
  /// compromised mix matches Fig 3: routers 52.4%, cameras 25.2%, ...).
  const std::vector<double>& consumer_type_propensity() const noexcept {
    return consumer_type_propensity_;
  }

  /// Index of a country by name; throws std::out_of_range if unknown.
  CountryId country_id(const std::string& name) const;

  /// Index of a CPS protocol by name; throws std::out_of_range if unknown.
  CpsProtocolId cps_protocol_id(const std::string& name) const;

  const std::string& country_name(CountryId id) const {
    return countries_.at(id).name;
  }
  const std::string& cps_protocol_name(CpsProtocolId id) const {
    return cps_protocols_.at(id).name;
  }

 private:
  Catalog();

  std::vector<CountryInfo> countries_;
  std::vector<CpsProtocolInfo> cps_protocols_;
  std::vector<NamedIsp> named_isps_;
  std::vector<double> consumer_type_mix_;
  std::vector<double> consumer_type_propensity_;
};

}  // namespace iotscope::inventory
