#include "inventory/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "util/logging.hpp"

namespace iotscope::inventory {

namespace {

/// Rejects addresses that could never host a public IoT device (reserved,
/// private, loopback, multicast) or that fall inside the monitored darknet.
bool is_assignable(net::Ipv4Address ip, const net::Ipv4Prefix& darknet) {
  const auto o0 = ip.octet(0);
  if (o0 == 0 || o0 == 127 || o0 >= 224) return false;
  if (o0 == 10) return false;                                  // RFC1918
  if (o0 == 192 && ip.octet(1) == 168) return false;           // RFC1918
  if (o0 == 172 && ip.octet(1) >= 16 && ip.octet(1) < 32) return false;
  if (o0 == 169 && ip.octet(1) == 254) return false;           // link-local
  if (darknet.contains(ip)) return false;
  return true;
}

/// Per-(country, realm) ISP sampling structure: ids and weights.
struct IspMarket {
  std::vector<IspId> isps;
  std::vector<double> shares;
};

/// Builds the ISP market for one country and realm: named ISPs keep their
/// engineered shares; the remainder is split across generated regional
/// ISPs with a Zipf-like tail. The number of generated ISPs grows with the
/// country's deployment weight so the global distinct-ISP count lands in
/// the thousands, as in the paper (1,762 consumer / 2,279 CPS ISPs among
/// compromised devices alone).
IspMarket build_market(IoTDeviceDatabase& db, const Catalog& catalog,
                       CountryId country, DeviceCategory realm) {
  IspMarket market;
  const auto& info = catalog.countries()[country];
  double named_total = 0.0;
  for (const auto& isp : catalog.named_isps()) {
    if (isp.country != info.name) continue;
    const double share = realm == DeviceCategory::Consumer
                             ? isp.consumer_share
                             : isp.cps_share;
    if (share <= 0.0) continue;
    market.isps.push_back(db.add_isp(isp.name, country));
    market.shares.push_back(share);
    named_total += share;
  }
  const double rest = std::max(0.0, 1.0 - named_total);
  const int generated =
      std::clamp(static_cast<int>(4 + info.deploy_weight * 4.0), 4, 110);
  // Flattened Zipf (exponent 0.6) so no single generated regional ISP
  // dominates a large market — the paper's Table II shows even China's
  // 17% CPS share spread across ISPs none of which reach the top five.
  double norm = 0.0;
  for (int i = 1; i <= generated; ++i) norm += std::pow(i, -0.6);
  for (int i = 1; i <= generated; ++i) {
    char name[96];
    std::snprintf(name, sizeof(name), "%s %s Net-%d", info.name.c_str(),
                  realm == DeviceCategory::Consumer ? "Broadband" : "Industrial",
                  i);
    market.isps.push_back(db.add_isp(name, country));
    market.shares.push_back(rest * std::pow(i, -0.6) / norm);
  }
  return market;
}

}  // namespace

IoTDeviceDatabase synthesize_inventory(const SynthesisConfig& config,
                                       const Catalog& catalog) {
  util::Rng rng(config.seed);
  IoTDeviceDatabase db(&catalog);

  // Country sampling weights.
  std::vector<double> country_weights;
  country_weights.reserve(catalog.countries().size());
  for (const auto& c : catalog.countries()) {
    country_weights.push_back(c.deploy_weight);
  }

  // CPS protocol weights (Table III shares as support probabilities).
  std::vector<double> proto_weights;
  for (const auto& p : catalog.cps_protocols()) {
    proto_weights.push_back(p.weight);
  }

  // Lazily built ISP markets, one per (country, realm).
  std::vector<IspMarket> consumer_markets(catalog.countries().size());
  std::vector<IspMarket> cps_markets(catalog.countries().size());

  std::unordered_set<std::uint32_t> used_ips;
  used_ips.reserve(config.device_count * 2);

  util::Rng ip_rng = rng.fork(util::stable_hash("ip-assignment"));
  util::Rng svc_rng = rng.fork(util::stable_hash("cps-services"));

  for (std::size_t n = 0; n < config.device_count; ++n) {
    DeviceRecord d;

    // Country, then realm by the country's consumer share.
    d.country = static_cast<CountryId>(rng.weighted_index(country_weights));
    const auto& cinfo = catalog.countries()[d.country];
    d.category = rng.chance(cinfo.consumer_share) ? DeviceCategory::Consumer
                                                  : DeviceCategory::Cps;

    // Unique public IP outside reserved space and the darknet.
    for (;;) {
      const auto candidate =
          net::Ipv4Address(static_cast<std::uint32_t>(ip_rng.next()));
      if (!is_assignable(candidate, config.darknet)) continue;
      if (used_ips.insert(candidate.value()).second) {
        d.ip = candidate;
        break;
      }
    }

    if (d.is_consumer()) {
      d.consumer_type = static_cast<ConsumerType>(
          rng.weighted_index(catalog.consumer_type_mix()));
    } else {
      // 1 + Poisson(extra) supported services, sampled without replacement
      // proportionally to Table III weights.
      const std::size_t count = std::min<std::size_t>(
          1 + svc_rng.poisson(config.extra_cps_services_mean),
          proto_weights.size());
      std::vector<double> w = proto_weights;
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t pick = svc_rng.weighted_index(w);
        d.services.push_back(static_cast<CpsProtocolId>(pick));
        w[pick] = 0.0;
      }
      std::sort(d.services.begin(), d.services.end());
    }

    auto& market = d.is_consumer() ? consumer_markets[d.country]
                                   : cps_markets[d.country];
    if (market.isps.empty()) {
      market = build_market(db, catalog, d.country, d.category);
    }
    d.isp = market.isps[rng.weighted_index(market.shares)];

    db.add_device(std::move(d));
  }

  IOTSCOPE_LOG_INFO("synthesized inventory: %zu devices (%zu consumer, %zu CPS), %zu ISPs",
                    db.size(), db.consumer_count(), db.cps_count(),
                    db.isps().size());
  return db;
}

}  // namespace iotscope::inventory
