// The IoT device database: the queryable, IP-indexed inventory the
// correlation engine joins darknet flows against — our stand-in for the
// "near real-time IoT database provided by Shodan".
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "inventory/catalog.hpp"
#include "inventory/device.hpp"
#include "util/flat_hash.hpp"

namespace iotscope::inventory {

/// An ISP as tracked by the database.
struct IspInfo {
  std::string name;
  CountryId country = 0;
};

/// IP-indexed inventory of IoT devices.
///
/// Invariants: each device IP is unique; every record's country and ISP
/// indices are valid for the attached catalog / ISP table.
class IoTDeviceDatabase {
 public:
  explicit IoTDeviceDatabase(const Catalog* catalog = &Catalog::standard());

  /// Registers an ISP and returns its id. Duplicate (name,country) pairs
  /// return the existing id.
  IspId add_isp(std::string name, CountryId country);

  /// Adds a device; returns false (and ignores the record) if the IP is
  /// already present.
  bool add_device(DeviceRecord device);

  /// O(1) lookup by source IP — the pipeline's hot path. Probes an
  /// open-addressing flat index (one contiguous vector, Fibonacci-hashed)
  /// instead of a node-based map: a miss or hit usually costs one or two
  /// cache lines. Defined inline so observe()'s per-record join inlines.
  const DeviceRecord* find(net::Ipv4Address ip) const noexcept {
    const std::uint32_t* index = by_ip_.find(ip.value());
    return index == nullptr ? nullptr : &devices_[*index];
  }

  /// Cache-hints the find() probe's home slot for `ip`. The columnar
  /// pipeline walk issues this a few records ahead of its join — the
  /// dense source column makes the future keys free to read.
  void prefetch(net::Ipv4Address ip) const noexcept {
    by_ip_.prefetch(ip.value());
  }

  const std::vector<DeviceRecord>& devices() const noexcept {
    return devices_;
  }
  const std::vector<IspInfo>& isps() const noexcept { return isps_; }
  const Catalog& catalog() const noexcept { return *catalog_; }

  std::size_t size() const noexcept { return devices_.size(); }
  std::size_t consumer_count() const noexcept { return consumer_count_; }
  std::size_t cps_count() const noexcept { return devices_.size() - consumer_count_; }

  const std::string& isp_name(IspId id) const { return isps_.at(id).name; }
  const std::string& country_name(CountryId id) const {
    return catalog_->country_name(id);
  }

  /// Number of distinct countries with at least one device. O(1):
  /// maintained incrementally by add_device.
  std::size_t country_count() const noexcept { return distinct_countries_; }

  /// Persists the inventory (devices + ISP table) as CSV; loadable by
  /// load_csv. Format documented in the implementation.
  void save_csv(const std::filesystem::path& path) const;

  /// Loads an inventory previously saved with save_csv. Throws
  /// util::IoError on malformed input.
  static IoTDeviceDatabase load_csv(const std::filesystem::path& path,
                                    const Catalog* catalog =
                                        &Catalog::standard());

 private:
  const Catalog* catalog_;
  std::vector<DeviceRecord> devices_;
  std::vector<IspInfo> isps_;
  util::FlatMap<std::uint32_t, std::uint32_t> by_ip_;  ///< ip -> device index
  std::unordered_map<std::string, IspId> isp_ids_;
  std::size_t consumer_count_ = 0;
  std::vector<std::uint32_t> country_devices_;  ///< per-country device tally
  std::size_t distinct_countries_ = 0;
};

}  // namespace iotscope::inventory
