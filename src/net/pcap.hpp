// A minimal but real libpcap (classic tcpdump) codec. Captures are written
// with LINKTYPE_RAW (101) frames containing fully-formed IPv4 + TCP/UDP/
// ICMP headers (valid checksums), so emitted files are readable by tcpdump
// or Wireshark; the reader parses such files back into PacketRecords.
//
// This is the "libpcap feasible" substrate: a darknet operator feeding
// iotscope can hand it pcap files from a real tap instead of the simulator.
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "net/packet.hpp"

namespace iotscope::net {

/// Streaming pcap writer. Emits the global header on construction. Each
/// record (header + frame) is assembled in a reused contiguous buffer and
/// flushed with a single stream write.
class PcapWriter {
 public:
  static constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // microsecond tsres
  static constexpr std::uint32_t kLinkTypeRaw = 101;   // raw IPv4/IPv6

  explicit PcapWriter(std::ostream& os);

  /// Serializes one packet as an IPv4 datagram with synthesized transport
  /// header. ip_length bytes are emitted (payload zero-filled).
  void write(const PacketRecord& packet);

  std::size_t packets_written() const noexcept { return count_; }

 private:
  std::ostream& os_;
  std::size_t count_ = 0;
  std::vector<std::uint8_t> scratch_;  ///< per-record assembly buffer
};

/// Streaming pcap reader. Validates the global header on construction.
/// Record headers are read in one 16-byte gulp and frames land in a
/// reused buffer, so steady-state reading does not allocate.
class PcapReader {
 public:
  explicit PcapReader(std::istream& is);

  /// Reads the next packet; returns false at clean EOF and throws
  /// util::IoError on truncated or non-IPv4 frames.
  bool next(PacketRecord& out);

 private:
  std::istream& is_;
  std::vector<std::uint8_t> frame_;  ///< reused frame buffer
};

/// Block decoder: parses a complete in-memory pcap capture with a
/// bounds-checked cursor — same validation and failure modes as
/// PcapReader, without the per-field stream reads. read_pcap_file slurps
/// the file and routes through this.
std::vector<PacketRecord> decode_pcap(std::string_view blob);

/// Writes all packets to a pcap file.
void write_pcap_file(const std::filesystem::path& path,
                     const std::vector<PacketRecord>& packets);

/// Reads an entire pcap file.
std::vector<PacketRecord> read_pcap_file(const std::filesystem::path& path);

}  // namespace iotscope::net
