// IPv4 address and CIDR prefix value types. Addresses are stored as host-
// order 32-bit integers; text parsing/formatting uses dotted-quad notation.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace iotscope::net {

/// An IPv4 address. Regular value type, totally ordered by numeric value.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  explicit constexpr Ipv4Address(std::uint32_t value) noexcept : value_(value) {}

  /// Builds an address from its four octets, a.b.c.d.
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c,
                                           std::uint8_t d) noexcept {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad text ("192.0.2.1"); nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Dotted-quad string.
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 CIDR prefix, e.g. 44.0.0.0/8. Invariant: host bits are zero.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() noexcept = default;

  /// Constructs a prefix; host bits of base are masked off.
  constexpr Ipv4Prefix(Ipv4Address base, int length) noexcept
      : length_(length < 0 ? 0 : (length > 32 ? 32 : length)),
        base_(Ipv4Address(base.value() & mask())) {}

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text) noexcept;

  constexpr Ipv4Address base() const noexcept { return base_; }
  constexpr int length() const noexcept { return length_; }

  /// Netmask as a 32-bit value (e.g. /8 -> 0xff000000).
  constexpr std::uint32_t mask() const noexcept {
    return length_ == 0 ? 0u : (~0u << (32 - length_));
  }

  /// Number of addresses covered by the prefix.
  constexpr std::uint64_t size() const noexcept {
    return 1ULL << (32 - length_);
  }

  constexpr bool contains(Ipv4Address addr) const noexcept {
    return (addr.value() & mask()) == base_.value();
  }

  /// The i-th address within the prefix (i < size()).
  constexpr Ipv4Address at(std::uint64_t i) const noexcept {
    return Ipv4Address(base_.value() + static_cast<std::uint32_t>(i));
  }

  std::string to_string() const;

  friend constexpr bool operator==(Ipv4Prefix, Ipv4Prefix) noexcept = default;

 private:
  int length_ = 0;
  Ipv4Address base_{};
};

}  // namespace iotscope::net

template <>
struct std::hash<iotscope::net::Ipv4Address> {
  std::size_t operator()(iotscope::net::Ipv4Address a) const noexcept {
    // Fibonacci scrambling — source IPs cluster by prefix, so identity
    // hashing would put whole subnets in neighbouring buckets.
    return static_cast<std::size_t>(a.value()) * 0x9E3779B97F4A7C15ULL >> 16;
  }
};
