#include "net/packet.hpp"

namespace iotscope::net {

PacketRecord make_tcp_syn(util::UnixTime ts, Ipv4Address src, Ipv4Address dst,
                          Port src_port, Port dst_port,
                          std::uint8_t ttl) noexcept {
  PacketRecord p;
  p.timestamp = ts;
  p.src = src;
  p.dst = dst;
  p.src_port = src_port;
  p.dst_port = dst_port;
  p.protocol = Protocol::Tcp;
  p.tcp_flags = kSyn;
  p.ttl = ttl;
  p.ip_length = 44;  // 20 IP + 20 TCP + MSS option
  return p;
}

PacketRecord make_tcp_syn_ack(util::UnixTime ts, Ipv4Address src,
                              Ipv4Address dst, Port src_port, Port dst_port,
                              std::uint8_t ttl) noexcept {
  PacketRecord p = make_tcp_syn(ts, src, dst, src_port, dst_port, ttl);
  p.tcp_flags = kSyn | kAck;
  return p;
}

PacketRecord make_tcp_rst(util::UnixTime ts, Ipv4Address src, Ipv4Address dst,
                          Port src_port, Port dst_port,
                          std::uint8_t ttl) noexcept {
  PacketRecord p = make_tcp_syn(ts, src, dst, src_port, dst_port, ttl);
  p.tcp_flags = kRst;
  p.ip_length = 40;
  return p;
}

PacketRecord make_udp(util::UnixTime ts, Ipv4Address src, Ipv4Address dst,
                      Port src_port, Port dst_port, std::uint16_t payload_len,
                      std::uint8_t ttl) noexcept {
  PacketRecord p;
  p.timestamp = ts;
  p.src = src;
  p.dst = dst;
  p.src_port = src_port;
  p.dst_port = dst_port;
  p.protocol = Protocol::Udp;
  p.ttl = ttl;
  p.ip_length = static_cast<std::uint16_t>(28 + payload_len);  // 20 IP + 8 UDP
  return p;
}

PacketRecord make_icmp(util::UnixTime ts, Ipv4Address src, Ipv4Address dst,
                       IcmpType type, std::uint8_t code,
                       std::uint8_t ttl) noexcept {
  PacketRecord p;
  p.timestamp = ts;
  p.src = src;
  p.dst = dst;
  p.protocol = Protocol::Icmp;
  p.icmp_type = static_cast<std::uint8_t>(type);
  p.icmp_code = code;
  p.ttl = ttl;
  p.ip_length = 28;  // 20 IP + 8 ICMP
  return p;
}

}  // namespace iotscope::net
