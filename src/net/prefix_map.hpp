// Longest-prefix-match container over IPv4 CIDR prefixes — the routing-
// table primitive behind prefix-level attribution (mapping darknet
// sources to announcing networks, allocating country blocks, or excluding
// reserved space). Lookup is O(number of distinct prefix lengths) with a
// hash probe per length, i.e. at most 33 probes and typically ~4.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"

namespace iotscope::net {

/// Maps CIDR prefixes to values with longest-prefix-match semantics.
template <typename Value>
class PrefixMap {
 public:
  /// Inserts or replaces the value for an exact prefix.
  void insert(Ipv4Prefix prefix, Value value) {
    auto& table = tables_[prefix.length()];
    // insert_or_assign, not emplace-then-assign: emplace may move the
    // value into a discarded node even when the key already exists, so
    // the subsequent assignment would store a moved-from husk.
    const auto [it, inserted] =
        table.insert_or_assign(prefix.base().value(), std::move(value));
    if (inserted) ++size_;
    if (!(lengths_mask_ >> prefix.length() & 1u)) {
      lengths_mask_ |= 1ULL << prefix.length();
      rebuild_lengths();
    }
  }

  /// Longest-prefix match; nullptr when no prefix covers the address.
  const Value* lookup(Ipv4Address addr) const noexcept {
    for (const int length : lengths_) {  // descending, most specific first
      const std::uint32_t mask =
          length == 0 ? 0u : (~0u << (32 - length));
      const auto it = tables_[length].find(addr.value() & mask);
      if (it != tables_[length].end()) return &it->second;
    }
    return nullptr;
  }

  /// Exact-prefix fetch (no LPM); nullopt when that exact entry is absent.
  std::optional<Value> exact(Ipv4Prefix prefix) const {
    const auto& table = tables_[prefix.length()];
    const auto it = table.find(prefix.base().value());
    if (it == table.end()) return std::nullopt;
    return it->second;
  }

  /// Removes an exact prefix; returns whether it existed.
  bool erase(Ipv4Prefix prefix) {
    auto& table = tables_[prefix.length()];
    const bool existed = table.erase(prefix.base().value()) > 0;
    if (existed) {
      --size_;
      if (table.empty()) {
        lengths_mask_ &= ~(1ULL << prefix.length());
        rebuild_lengths();
      }
    }
    return existed;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  void rebuild_lengths() {
    lengths_.clear();
    for (int length = 32; length >= 0; --length) {
      if (lengths_mask_ >> length & 1u) lengths_.push_back(length);
    }
  }

  std::unordered_map<std::uint32_t, Value> tables_[33];
  std::vector<int> lengths_;     // populated lengths, descending
  std::uint64_t lengths_mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace iotscope::net
