// Transport-protocol enums, TCP flag bits, and ICMP message types as used
// by the darknet taxonomy (Fachkha & Debbabi 2016; Moore et al. 2006).
#pragma once

#include <cstdint>
#include <string>

namespace iotscope::net {

/// IANA protocol numbers for the three protocols the telescope records.
enum class Protocol : std::uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

const char* to_string(Protocol p) noexcept;

/// TCP header flag bits (low byte of the flags field).
enum TcpFlag : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

/// Common flag combinations used by the classifier.
inline constexpr std::uint8_t kSynOnly = kSyn;
inline constexpr std::uint8_t kSynAck = kSyn | kAck;

/// Renders flags as e.g. "SYN|ACK".
std::string tcp_flags_to_string(std::uint8_t flags);

/// ICMP message types relevant to the backscatter taxonomy. A darknet
/// observes *reply*-family ICMP from DoS victims (responses to spoofed
/// floods) and echo requests from scanners.
enum class IcmpType : std::uint8_t {
  EchoReply = 0,
  DestinationUnreachable = 3,
  SourceQuench = 4,
  Redirect = 5,
  EchoRequest = 8,
  TimeExceeded = 11,
  ParameterProblem = 12,
  TimestampRequest = 13,
  TimestampReply = 14,
  InformationRequest = 15,
  InformationReply = 16,
  AddressMaskRequest = 17,
  AddressMaskReply = 18,
};

const char* to_string(IcmpType t) noexcept;

/// True for the ICMP types the paper treats as backscatter (Section IV-B):
/// Echo Reply, Destination Unreachable, Source Quench, Redirect, Time
/// Exceeded, Parameter Problem, Timestamp Reply, Information Reply, and
/// Address Mask Reply.
constexpr bool is_icmp_backscatter(IcmpType t) noexcept {
  switch (t) {
    case IcmpType::EchoReply:
    case IcmpType::DestinationUnreachable:
    case IcmpType::SourceQuench:
    case IcmpType::Redirect:
    case IcmpType::TimeExceeded:
    case IcmpType::ParameterProblem:
    case IcmpType::TimestampReply:
    case IcmpType::InformationReply:
    case IcmpType::AddressMaskReply:
      return true;
    default:
      return false;
  }
}

/// A transport port number.
using Port = std::uint16_t;

/// Well-known ports referenced throughout the study.
namespace ports {
inline constexpr Port kTelnet = 23;
inline constexpr Port kTelnetAlt = 2323;
inline constexpr Port kTelnetAlt2 = 23231;
inline constexpr Port kHttp = 80;
inline constexpr Port kHttpAlt = 8080;
inline constexpr Port kHttpAlt2 = 81;
inline constexpr Port kSsh = 22;
inline constexpr Port kBackroomNet = 3387;
inline constexpr Port kCwmp = 7547;
inline constexpr Port kWsdapiS = 5358;
inline constexpr Port kMssql = 1433;
inline constexpr Port kKerberos = 88;
inline constexpr Port kMsDs = 445;
inline constexpr Port kEthernetIpIo = 2222;
inline constexpr Port kIrdmi = 8000;
inline constexpr Port kUnassigned21677 = 21677;
inline constexpr Port kRdp = 3389;
inline constexpr Port kFtp = 21;
inline constexpr Port kNetis = 37547;     // Netcore/Netis router backdoor
inline constexpr Port kNetbios = 137;
inline constexpr Port kNetisAlt = 53413;  // Netis backdoor UDP port
inline constexpr Port kMdns = 5353;
inline constexpr Port kDns = 53;
inline constexpr Port kTeredo = 3544;
inline constexpr Port kOpenVpn = 1194;
inline constexpr Port kEthernetIp = 44818;  // Rockwell ControlLogix PLC
}  // namespace ports

}  // namespace iotscope::net
