#include "net/ipv4.hpp"

#include <charconv>
#include <cstdio>

namespace iotscope::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = 0;
  const char* p = text.data() + slash + 1;
  const char* end = text.data() + text.size();
  auto [next, ec] = std::from_chars(p, end, length);
  if (ec != std::errc{} || next != end || length < 0 || length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*addr, length);
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace iotscope::net
