// Compressed columnar block format (".iftc") for hourly flowtuple files
// — the storage layer under TB-scale replay (DESIGN.md §15).
//
// Where the fixed-width ".ift" format spends 25 bytes per record, the
// compressed format chops an hour into blocks of (by default) 8K
// records and encodes each column of each block with whichever of six
// adaptive modes is smallest for that block's actual value
// distribution: a single constant, a min-offset bit-pack, a sorted
// dictionary (delta-varint dictionary + bit-packed indexes), plain
// per-record varints, or — when the block's src column is dictionary-
// coded — a src-keyed table storing one value per *source* rather than
// per record (optionally with an exception bitmap for near-functional
// columns). The src-keyed modes exploit the telescope's structure:
// every scanner keeps one TTL, probes one service, and emits one packet
// shape, so ttl/dst_port/ip_len are (nearly) pure functions of src and
// compress to their per-source table plus the src indexes already paid
// for. Record ORDER is preserved exactly — the analysis pipeline's
// first-sighting tie-breaks depend on record index, so a compacted
// store must replay to byte-identical reports.
//
// Every block is prefixed by a fixed 28-byte header carrying the record
// count, compressed/uncompressed sizes, a CRC-32C sealing header +
// payload, and per-column summaries (hour, protocol set, src/dst port
// min/max). The summaries enable predicate pushdown: decode_filtered()
// evaluates a BlockPredicate against each header and skips non-matching
// blocks without touching (or, on an mmap'd file, even faulting in)
// their payload bytes.
//
// Layout, all integers little-endian:
//
//   file   := magic "IFC1" u32 | version u16 | interval u32 |
//             start_time u64 | record_count u64 | block_count u32 |
//             block*
//   block  := header(28B) | payload
//   header := records u32 | raw_bytes u32 | payload_bytes u32 |
//             crc32 u32 | interval u16 | proto_mask u8 | reserved u8 |
//             src_port_min u16 | src_port_max u16 |
//             dst_port_min u16 | dst_port_max u16
//   payload:= column{src u32, dst u32, src_port u16, dst_port u16,
//                    proto u8, ttl u8, tcp_flags u8, ip_len u16,
//                    pkt_count u64}
//   column := mode u8 | mode-specific body (each body byte-aligned)
//
// The CRC covers the header (with the crc field zeroed) plus the
// payload, so any mutated byte of a block — including the pushdown
// summaries — fails decode with util::IoError carrying the block's
// index and file offset.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "net/flow_batch.hpp"
#include "net/protocol.hpp"

namespace iotscope::net {

/// The pushdown-relevant slice of a block header.
struct BlockSummary {
  int interval = 0;
  std::uint8_t proto_mask = 0;
  std::uint16_t src_port_min = 0;
  std::uint16_t src_port_max = 0;
  std::uint16_t dst_port_min = 0;
  std::uint16_t dst_port_max = 0;
  std::uint32_t records = 0;
};

/// A conjunctive filter over the dimensions the block summaries index:
/// hour window (inclusive), accepted protocol set, and dst-port range.
/// Defaults match everything. Skipping is sound because may_match() is
/// conservative: it only rejects a block whose summary PROVES no row
/// can match; rows of admitted blocks are then filtered exactly.
struct BlockPredicate {
  int hour_min = 0;
  int hour_max = std::numeric_limits<int>::max();
  std::uint8_t proto_mask = kAllProtocols;
  std::uint16_t dst_port_min = 0;
  std::uint16_t dst_port_max = 0xFFFF;

  static constexpr std::uint8_t kAllProtocols = 0x7;

  /// Bit position for a protocol in summary/predicate masks.
  static constexpr std::uint8_t proto_bit(Protocol p) noexcept {
    switch (p) {
      case Protocol::Tcp:
        return 1u << 0;
      case Protocol::Udp:
        return 1u << 1;
      case Protocol::Icmp:
        return 1u << 2;
    }
    return 0;
  }

  bool matches_all() const noexcept {
    return hour_min <= 0 && hour_max == std::numeric_limits<int>::max() &&
           (proto_mask & kAllProtocols) == kAllProtocols &&
           dst_port_min == 0 && dst_port_max == 0xFFFF;
  }

  /// Hour-level test (whole files share one interval).
  bool may_match_hour(int interval) const noexcept {
    return interval >= hour_min && interval <= hour_max;
  }

  /// Conservative block-level test against the header summary.
  bool may_match(const BlockSummary& s) const noexcept {
    return may_match_hour(s.interval) && (s.proto_mask & proto_mask) != 0 &&
           s.dst_port_max >= dst_port_min && s.dst_port_min <= dst_port_max;
  }

  /// Exact row-level test (hour is block/file scoped, not per row).
  bool matches_row(Protocol proto, std::uint16_t dst_port) const noexcept {
    return (proto_bit(proto) & proto_mask) != 0 && dst_port >= dst_port_min &&
           dst_port <= dst_port_max;
  }
};

/// Accounting for one decode/scan: what pushdown skipped versus decoded
/// and the byte volumes on both sides of the codec. The store layer
/// folds these into the `store.*` obs counters.
struct BlockScanStats {
  std::uint64_t blocks_decoded = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t records_decoded = 0;
  std::uint64_t bytes_compressed = 0;  ///< header+payload bytes of decoded blocks
  std::uint64_t bytes_raw = 0;         ///< 25-byte-equivalent bytes of decoded blocks

  void merge(const BlockScanStats& other) noexcept {
    blocks_decoded += other.blocks_decoded;
    blocks_skipped += other.blocks_skipped;
    records_decoded += other.records_decoded;
    bytes_compressed += other.bytes_compressed;
    bytes_raw += other.bytes_raw;
  }
};

/// Encoder/decoder for the compressed hourly format. Mirrors
/// FlowTupleCodec's shape: encode appends the exact on-disk byte
/// stream, decode validates everything and throws util::IoError (with
/// block index + file offset context) on any malformed input.
class CompressedFlowCodec {
 public:
  static constexpr std::uint32_t kMagic = 0x31434649;  // "IFC1"
  static constexpr std::uint16_t kVersion = 1;
  static constexpr std::size_t kFileHeaderBytes = 30;
  static constexpr std::size_t kBlockHeaderBytes = 28;
  static constexpr std::size_t kDefaultBlockRecords = 8192;
  static constexpr std::size_t kMaxBlockRecords = 1u << 20;

  /// Appends the compressed byte stream for `batch` to `out`. Record
  /// order is preserved; class_tag is derived state and not serialized.
  static void encode(std::string& out, const FlowBatch& batch,
                     std::size_t block_records = kDefaultBlockRecords);

  /// Full decode of an in-memory (or mmap'd) blob into columnar form.
  /// Bytes after the declared blocks are ignored, matching the
  /// uncompressed codec's trailing-bytes convention.
  static FlowBatch decode(std::string_view blob,
                          BlockScanStats* stats = nullptr);

  /// Predicate-pushdown decode: blocks whose summaries cannot match are
  /// skipped before any payload byte is read; rows of decoded blocks
  /// are then filtered exactly, so the result equals
  /// filter(decode(blob)) for any predicate.
  static FlowBatch decode_filtered(std::string_view blob,
                                   const BlockPredicate& predicate,
                                   BlockScanStats* stats = nullptr);

  /// Decodes only the blocks with index in [block_begin, block_end),
  /// optionally with predicate pushdown, preserving record order within
  /// the range. Blocks outside the range are hopped over by their
  /// declared payload size (headers are still validated) and counted in
  /// neither decoded nor skipped stats — they belong to another range's
  /// decode. Concatenating the batches of consecutive ranges covering
  /// [0, block_count) reproduces decode()/decode_filtered() exactly;
  /// this is what lets the task-graph pipeline decode one hour's blocks
  /// as parallel tasks (DESIGN.md §16).
  static FlowBatch decode_blocks(std::string_view blob,
                                 std::uint32_t block_begin,
                                 std::uint32_t block_end,
                                 const BlockPredicate* predicate = nullptr,
                                 BlockScanStats* stats = nullptr);

  /// Reads only the file header and returns the block count — what an
  /// hour-level skip costs instead of a full decode.
  static std::uint32_t peek_block_count(std::string_view blob);

  /// Canonical file name for an interval, e.g. "flowtuple-0042.iftc".
  static std::string file_name(int interval);
};

/// Appends the rows of `in` that satisfy `predicate` to `out` — the
/// row-exact reference the pushdown decode must agree with, and the
/// filter applied to uncompressed hours so mixed stores answer
/// predicated scans uniformly. `out` adopts `in`'s interval/start_time.
void filter_batch(const FlowBatch& in, const BlockPredicate& predicate,
                  FlowBatch& out);

}  // namespace iotscope::net
