#include "net/checksum.hpp"

namespace iotscope::net {

void ChecksumAccumulator::feed(std::span<const std::uint8_t> data) noexcept {
  for (std::uint8_t byte : data) {
    if (odd_) {
      sum_ += byte;  // low byte of the current word
    } else {
      sum_ += static_cast<std::uint64_t>(byte) << 8;  // high byte
    }
    odd_ = !odd_;
  }
}

void ChecksumAccumulator::feed_word(std::uint16_t word) noexcept {
  const std::uint8_t bytes[2] = {static_cast<std::uint8_t>(word >> 8),
                                 static_cast<std::uint8_t>(word)};
  feed(bytes);
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  ChecksumAccumulator acc;
  acc.feed(data);
  return acc.finish();
}

}  // namespace iotscope::net
