// Columnar record batches: the structure-of-arrays twin of HourlyFlows.
//
// The analysis pipeline is one long scan over ~141M flowtuple records;
// between layers the records used to travel as array-of-structs
// std::vector<FlowTuple>, so every consumer paid the full 32-byte stride
// to touch the two or three fields it actually reads. A FlowBatch keeps
// one contiguous column per field instead: the decoder fills columns
// straight from the block buffer, the capture engine and synthesizer
// emit batches, the prefetch/study queues hand batches through, and each
// pipeline shard walks only the columns it needs (src for the join,
// pkt_count for tallies, the class_tag byte for the taxonomy switch).
//
// `class_tag` is an optional extra column written by the shared
// classification pass (core::classify_batch): one branchy decode of
// tcp_flags/ICMP types per record, consumed by every downstream analysis
// instead of re-derived per consumer. net/ only stores the bytes; the
// tag encoding is owned by core/classifier.hpp.
//
// The AoS FlowTuple survives as the codec's on-disk record, the unit of
// aggregation keys, and the conversion boundary (row()/from_rows()/
// to_rows()) used by tests and the retained before-variants in bench.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flowtuple.hpp"
#include "net/ipv4.hpp"
#include "net/protocol.hpp"

namespace iotscope::net {

/// One hour of telescope flows as parallel column vectors. All data
/// columns always have equal length; `class_tag` is either empty (not
/// yet classified) or exactly size() long.
struct FlowBatch {
  int interval = 0;             ///< hour index in [0, AnalysisWindow::kHours)
  std::int64_t start_time = 0;  ///< unix time of the hour's start

  std::vector<Ipv4Address> src;
  std::vector<Ipv4Address> dst;
  std::vector<Port> src_port;
  std::vector<Port> dst_port;
  std::vector<Protocol> proto;
  std::vector<std::uint8_t> tcp_flags;
  std::vector<std::uint8_t> ttl;
  std::vector<std::uint16_t> ip_len;
  std::vector<std::uint64_t> pkt_count;
  /// Per-record taxonomy tag (see core::ClassTag); empty until a
  /// classification pass fills it.
  std::vector<std::uint8_t> class_tag;
  /// Opaque fingerprint of the classification options that produced
  /// class_tag (0 = untagged). Owned by core/classifier.hpp; consumers
  /// recompute tags when it does not match their own options, so a
  /// producer tagged under different knobs can never skew a report.
  std::uint8_t tag_recipe = 0;

  std::size_t size() const noexcept { return src.size(); }
  bool empty() const noexcept { return src.empty(); }

  /// Drops all records (and tags) but keeps column capacity, so a batch
  /// reused hour over hour stops allocating once it has seen the
  /// high-water record count.
  void clear() noexcept;

  void reserve(std::size_t n);

  /// Appends one record to every data column (class_tag untouched).
  void push_back(const FlowTuple& t);

  /// Appends all of `other`'s records (the splice step that reassembles
  /// an hour from per-block-range decode tasks; record order is the
  /// concatenation order). Tags are dropped — appending changes the
  /// record set, so any existing class_tag column no longer covers it.
  void append(const FlowBatch& other);

  /// Materializes row i as an AoS FlowTuple (the conversion boundary).
  FlowTuple row(std::size_t i) const noexcept;

  /// ICMP type for row i, carried in the src_port column per the corsaro
  /// convention (see FlowTuple::icmp_type).
  IcmpType icmp_type(std::size_t i) const noexcept {
    return static_cast<IcmpType>(src_port[i]);
  }

  /// Sum of pkt_count over all records.
  std::uint64_t total_packets() const noexcept;

  /// Bytes currently backing the columns (capacity, not size): the
  /// resident footprint a queue holds while the batch is in flight.
  std::size_t resident_bytes() const noexcept;

  /// AoS <-> SoA conversions. assign_rows() reuses column capacity.
  static FlowBatch from_rows(const HourlyFlows& flows);
  HourlyFlows to_rows() const;
  void assign_rows(const HourlyFlows& flows);

  /// Data columns compare element-wise (class_tag excluded: it is a
  /// derived annotation, not part of the record identity).
  bool same_records(const FlowBatch& other) const noexcept;
};

}  // namespace iotscope::net
