#include "net/protocol.hpp"

namespace iotscope::net {

const char* to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::Icmp:
      return "ICMP";
    case Protocol::Tcp:
      return "TCP";
    case Protocol::Udp:
      return "UDP";
  }
  return "?";
}

std::string tcp_flags_to_string(std::uint8_t flags) {
  static constexpr struct {
    std::uint8_t bit;
    const char* name;
  } kBits[] = {{kFin, "FIN"}, {kSyn, "SYN"}, {kRst, "RST"},
               {kPsh, "PSH"}, {kAck, "ACK"}, {kUrg, "URG"}};
  std::string out;
  for (const auto& b : kBits) {
    if (flags & b.bit) {
      if (!out.empty()) out.push_back('|');
      out += b.name;
    }
  }
  if (out.empty()) out = "none";
  return out;
}

const char* to_string(IcmpType t) noexcept {
  switch (t) {
    case IcmpType::EchoReply:
      return "Echo Reply";
    case IcmpType::DestinationUnreachable:
      return "Destination Unreachable";
    case IcmpType::SourceQuench:
      return "Source Quench";
    case IcmpType::Redirect:
      return "Redirect";
    case IcmpType::EchoRequest:
      return "Echo Request";
    case IcmpType::TimeExceeded:
      return "Time Exceeded";
    case IcmpType::ParameterProblem:
      return "Parameter Problem";
    case IcmpType::TimestampRequest:
      return "Timestamp Request";
    case IcmpType::TimestampReply:
      return "Timestamp Reply";
    case IcmpType::InformationRequest:
      return "Information Request";
    case IcmpType::InformationReply:
      return "Information Reply";
    case IcmpType::AddressMaskRequest:
      return "Address Mask Request";
    case IcmpType::AddressMaskReply:
      return "Address Mask Reply";
  }
  return "?";
}

}  // namespace iotscope::net
