#include "net/flowtuple.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/io.hpp"

namespace iotscope::net {

FlowTuple FlowTuple::from_packet(const PacketRecord& p) noexcept {
  FlowTuple t;
  t.src = p.src;
  t.dst = p.dst;
  if (p.protocol == Protocol::Icmp) {
    // corsaro convention: ICMP type/code ride in the port fields.
    t.src_port = p.icmp_type;
    t.dst_port = p.icmp_code;
  } else {
    t.src_port = p.src_port;
    t.dst_port = p.dst_port;
  }
  t.protocol = p.protocol;
  t.ttl = p.ttl;
  t.tcp_flags = p.tcp_flags;
  t.ip_length = p.ip_length;
  t.packet_count = 1;
  return t;
}

std::size_t FlowTupleKeyHash::operator()(const FlowTuple& t) const noexcept {
  // 64-bit mix of the key fields; quality matters because the aggregation
  // map holds millions of entries per hour at full scale.
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix((static_cast<std::uint64_t>(t.src.value()) << 32) | t.dst.value());
  mix((static_cast<std::uint64_t>(t.src_port) << 48) |
      (static_cast<std::uint64_t>(t.dst_port) << 32) |
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(t.protocol))
       << 24) |
      (static_cast<std::uint64_t>(t.ttl) << 16) |
      (static_cast<std::uint64_t>(t.tcp_flags) << 8));
  mix(t.ip_length);
  return static_cast<std::size_t>(h);
}

std::uint64_t HourlyFlows::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : records) total += r.packet_count;
  return total;
}

void FlowTupleCodec::write(std::ostream& os, const HourlyFlows& flows) {
  util::write_u32(os, kMagic);
  util::write_u16(os, kVersion);
  util::write_u32(os, static_cast<std::uint32_t>(flows.interval));
  util::write_u64(os, static_cast<std::uint64_t>(flows.start_time));
  util::write_u64(os, flows.records.size());
  for (const auto& r : flows.records) {
    util::write_u32(os, r.src.value());
    util::write_u32(os, r.dst.value());
    util::write_u16(os, r.src_port);
    util::write_u16(os, r.dst_port);
    util::write_u8(os, static_cast<std::uint8_t>(r.protocol));
    util::write_u8(os, r.ttl);
    util::write_u8(os, r.tcp_flags);
    util::write_u16(os, r.ip_length);
    util::write_u64(os, r.packet_count);
  }
}

HourlyFlows FlowTupleCodec::read(std::istream& is) {
  if (util::read_u32(is) != kMagic) {
    throw util::IoError("flowtuple file: bad magic");
  }
  if (util::read_u16(is) != kVersion) {
    throw util::IoError("flowtuple file: unsupported version");
  }
  HourlyFlows flows;
  flows.interval = static_cast<int>(util::read_u32(is));
  flows.start_time = static_cast<std::int64_t>(util::read_u64(is));
  const std::uint64_t count = util::read_u64(is);
  // Sanity cap: an hourly file beyond 1B records is corrupt.
  if (count > (1ULL << 30)) {
    throw util::IoError("flowtuple file: implausible record count");
  }
  // The count is untrusted until the records actually decode: reserve at
  // most 1M slots (~32 MB) upfront so a corrupt header can't force a
  // multi-gigabyte allocation before the first short read throws, and let
  // the vector grow normally past that.
  flows.records.reserve(
      static_cast<std::size_t>(std::min(count, std::uint64_t{1} << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    FlowTuple r;
    r.src = Ipv4Address(util::read_u32(is));
    r.dst = Ipv4Address(util::read_u32(is));
    r.src_port = util::read_u16(is);
    r.dst_port = util::read_u16(is);
    const std::uint8_t proto = util::read_u8(is);
    if (proto != static_cast<std::uint8_t>(Protocol::Tcp) &&
        proto != static_cast<std::uint8_t>(Protocol::Udp) &&
        proto != static_cast<std::uint8_t>(Protocol::Icmp)) {
      throw util::IoError("flowtuple file: unknown protocol value");
    }
    r.protocol = static_cast<Protocol>(proto);
    r.ttl = util::read_u8(is);
    r.tcp_flags = util::read_u8(is);
    r.ip_length = util::read_u16(is);
    r.packet_count = util::read_u64(is);
    flows.records.push_back(r);
  }
  return flows;
}

void FlowTupleCodec::write_file(const std::filesystem::path& path,
                                const HourlyFlows& flows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::IoError("cannot create " + path.string());
  write(out, flows);
  if (!out) throw util::IoError("write failed: " + path.string());
}

HourlyFlows FlowTupleCodec::read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open " + path.string());
  return read(in);
}

std::string FlowTupleCodec::file_name(int interval) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flowtuple-%04d.ift", interval);
  return buf;
}

}  // namespace iotscope::net
