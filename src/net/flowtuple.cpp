#include "net/flowtuple.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>

#include "net/flow_batch.hpp"
#include "util/io.hpp"

namespace iotscope::net {

FlowTuple FlowTuple::from_packet(const PacketRecord& p) noexcept {
  FlowTuple t;
  t.src = p.src;
  t.dst = p.dst;
  if (p.protocol == Protocol::Icmp) {
    // corsaro convention: ICMP type/code ride in the port fields.
    t.src_port = p.icmp_type;
    t.dst_port = p.icmp_code;
  } else {
    t.src_port = p.src_port;
    t.dst_port = p.dst_port;
  }
  t.protocol = p.protocol;
  t.ttl = p.ttl;
  t.tcp_flags = p.tcp_flags;
  t.ip_length = p.ip_length;
  t.packet_count = 1;
  return t;
}

std::size_t FlowTupleKeyHash::operator()(const FlowTuple& t) const noexcept {
  // 64-bit mix of the key fields; quality matters because the aggregation
  // map holds millions of entries per hour at full scale.
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix((static_cast<std::uint64_t>(t.src.value()) << 32) | t.dst.value());
  mix((static_cast<std::uint64_t>(t.src_port) << 48) |
      (static_cast<std::uint64_t>(t.dst_port) << 32) |
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(t.protocol))
       << 24) |
      (static_cast<std::uint64_t>(t.ttl) << 16) |
      (static_cast<std::uint64_t>(t.tcp_flags) << 8));
  mix(t.ip_length);
  return static_cast<std::size_t>(h);
}

std::uint64_t HourlyFlows::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : records) total += r.packet_count;
  return total;
}

namespace {

/// True for the three protocol values the telescope retains.
bool known_protocol(std::uint8_t proto) noexcept {
  return proto == static_cast<std::uint8_t>(Protocol::Tcp) ||
         proto == static_cast<std::uint8_t>(Protocol::Udp) ||
         proto == static_cast<std::uint8_t>(Protocol::Icmp);
}

}  // namespace

void FlowTupleCodec::encode(std::string& out, const HourlyFlows& flows) {
  out.reserve(out.size() + 26 + flows.records.size() * kRecordBytes);
  util::ByteWriter w(out);
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(static_cast<std::uint32_t>(flows.interval));
  w.u64(static_cast<std::uint64_t>(flows.start_time));
  w.u64(flows.records.size());
  for (const auto& r : flows.records) {
    unsigned char b[kRecordBytes];
    util::store_le32(b + 0, r.src.value());
    util::store_le32(b + 4, r.dst.value());
    util::store_le16(b + 8, r.src_port);
    util::store_le16(b + 10, r.dst_port);
    b[12] = static_cast<std::uint8_t>(r.protocol);
    b[13] = r.ttl;
    b[14] = r.tcp_flags;
    util::store_le16(b + 15, r.ip_length);
    util::store_le64(b + 17, r.packet_count);
    w.bytes(b, sizeof b);
  }
}

void FlowTupleCodec::encode(std::string& out, const FlowBatch& batch) {
  const std::size_t n = batch.size();
  out.reserve(out.size() + 26 + n * kRecordBytes);
  util::ByteWriter w(out);
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(static_cast<std::uint32_t>(batch.interval));
  w.u64(static_cast<std::uint64_t>(batch.start_time));
  w.u64(n);
  for (std::size_t i = 0; i < n; ++i) {
    unsigned char b[kRecordBytes];
    util::store_le32(b + 0, batch.src[i].value());
    util::store_le32(b + 4, batch.dst[i].value());
    util::store_le16(b + 8, batch.src_port[i]);
    util::store_le16(b + 10, batch.dst_port[i]);
    b[12] = static_cast<std::uint8_t>(batch.proto[i]);
    b[13] = batch.ttl[i];
    b[14] = batch.tcp_flags[i];
    util::store_le16(b + 15, batch.ip_len[i]);
    util::store_le64(b + 17, batch.pkt_count[i]);
    w.bytes(b, sizeof b);
  }
}

HourlyFlows FlowTupleCodec::decode(std::string_view blob) {
  util::ByteReader r(blob);
  if (r.u32() != kMagic) {
    throw util::IoError("flowtuple file: bad magic");
  }
  if (r.u16() != kVersion) {
    throw util::IoError("flowtuple file: unsupported version");
  }
  HourlyFlows flows;
  flows.interval = static_cast<int>(r.u32());
  flows.start_time = static_cast<std::int64_t>(r.u64());
  const std::uint64_t count = r.u64();
  // Sanity cap: an hourly file beyond 1B records is corrupt.
  if (count > (1ULL << 30)) {
    throw util::IoError("flowtuple file: implausible record count");
  }
  // The whole blob is already in memory, so the untrusted count can be
  // clamped to what the remaining bytes can actually yield — a corrupt
  // header cannot force an allocation beyond the file's own size.
  flows.records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining() / kRecordBytes)));
  for (std::uint64_t i = 0; i < count; ++i) {
    const unsigned char* b = r.bytes(kRecordBytes);
    FlowTuple t;
    t.src = Ipv4Address(util::load_le32(b + 0));
    t.dst = Ipv4Address(util::load_le32(b + 4));
    t.src_port = util::load_le16(b + 8);
    t.dst_port = util::load_le16(b + 10);
    if (!known_protocol(b[12])) {
      throw util::IoError("flowtuple file: unknown protocol value");
    }
    t.protocol = static_cast<Protocol>(b[12]);
    t.ttl = b[13];
    t.tcp_flags = b[14];
    t.ip_length = util::load_le16(b + 15);
    t.packet_count = util::load_le64(b + 17);
    flows.records.push_back(t);
  }
  return flows;
}

FlowBatch FlowTupleCodec::decode_columns(std::string_view blob) {
  util::ByteReader r(blob);
  if (r.u32() != kMagic) {
    throw util::IoError("flowtuple file: bad magic");
  }
  if (r.u16() != kVersion) {
    throw util::IoError("flowtuple file: unsupported version");
  }
  FlowBatch batch;
  batch.interval = static_cast<int>(r.u32());
  batch.start_time = static_cast<std::int64_t>(r.u64());
  const std::uint64_t count = r.u64();
  // Sanity cap: an hourly file beyond 1B records is corrupt.
  if (count > (1ULL << 30)) {
    throw util::IoError("flowtuple file: implausible record count");
  }
  // Same clamp as decode(): the blob is in memory, so a corrupt count
  // cannot force allocations beyond what the remaining bytes can yield.
  batch.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining() / kRecordBytes)));
  for (std::uint64_t i = 0; i < count; ++i) {
    const unsigned char* b = r.bytes(kRecordBytes);
    if (!known_protocol(b[12])) {
      throw util::IoError("flowtuple file: unknown protocol value");
    }
    batch.src.push_back(Ipv4Address(util::load_le32(b + 0)));
    batch.dst.push_back(Ipv4Address(util::load_le32(b + 4)));
    batch.src_port.push_back(util::load_le16(b + 8));
    batch.dst_port.push_back(util::load_le16(b + 10));
    batch.proto.push_back(static_cast<Protocol>(b[12]));
    batch.ttl.push_back(b[13]);
    batch.tcp_flags.push_back(b[14]);
    batch.ip_len.push_back(util::load_le16(b + 15));
    batch.pkt_count.push_back(util::load_le64(b + 17));
  }
  return batch;
}

void FlowTupleCodec::write(std::ostream& os, const HourlyFlows& flows) {
  std::string blob;
  encode(blob, flows);
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

HourlyFlows FlowTupleCodec::read(std::istream& is) {
  // Slurp the remaining stream and block-decode. Like the per-field
  // reader this replaced, bytes after the declared records are left
  // unconsumed logically (they are ignored), and every truncation or
  // corruption failure is a util::IoError.
  std::string blob((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  return decode(blob);
}

HourlyFlows FlowTupleCodec::read_unbuffered(std::istream& is) {
  if (util::read_u32(is) != kMagic) {
    throw util::IoError("flowtuple file: bad magic");
  }
  if (util::read_u16(is) != kVersion) {
    throw util::IoError("flowtuple file: unsupported version");
  }
  HourlyFlows flows;
  flows.interval = static_cast<int>(util::read_u32(is));
  flows.start_time = static_cast<std::int64_t>(util::read_u64(is));
  const std::uint64_t count = util::read_u64(is);
  // Sanity cap: an hourly file beyond 1B records is corrupt.
  if (count > (1ULL << 30)) {
    throw util::IoError("flowtuple file: implausible record count");
  }
  // The count is untrusted until the records actually decode: reserve at
  // most 1M slots (~32 MB) upfront so a corrupt header can't force a
  // multi-gigabyte allocation before the first short read throws, and let
  // the vector grow normally past that.
  flows.records.reserve(
      static_cast<std::size_t>(std::min(count, std::uint64_t{1} << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    FlowTuple r;
    r.src = Ipv4Address(util::read_u32(is));
    r.dst = Ipv4Address(util::read_u32(is));
    r.src_port = util::read_u16(is);
    r.dst_port = util::read_u16(is);
    const std::uint8_t proto = util::read_u8(is);
    if (!known_protocol(proto)) {
      throw util::IoError("flowtuple file: unknown protocol value");
    }
    r.protocol = static_cast<Protocol>(proto);
    r.ttl = util::read_u8(is);
    r.tcp_flags = util::read_u8(is);
    r.ip_length = util::read_u16(is);
    r.packet_count = util::read_u64(is);
    flows.records.push_back(r);
  }
  return flows;
}

void FlowTupleCodec::write_file(const std::filesystem::path& path,
                                const HourlyFlows& flows) {
  std::string blob;
  encode(blob, flows);
  util::write_file(path, blob);
}

HourlyFlows FlowTupleCodec::read_file(const std::filesystem::path& path) {
  return decode(util::read_file(path));
}

std::string FlowTupleCodec::file_name(int interval) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flowtuple-%04d.ift", interval);
  return buf;
}

}  // namespace iotscope::net
