#include "net/block_codec.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/bitpack.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace iotscope::net {

namespace {

using util::BitReader;
using util::BitWriter;
using util::ByteReader;
using util::ByteWriter;
using util::IoError;

constexpr std::uint32_t kRecordCountCap = 1u << 30;

/// Column encodings. The encoder computes the exact byte cost of every
/// applicable mode and emits the cheapest; ties break toward the lower
/// mode number so the output is deterministic.
///
/// Modes 4 and 5 exploit cross-column structure: telescope columns like
/// ttl, dst_port, and ip_len are (nearly) functions of the source —
/// each scanner keeps one TTL, probes one service, sends one packet
/// shape. When the src column of a block is dictionary-coded, those
/// columns can be stored as one value per *source* instead of one per
/// record, reusing the src column's per-record indexes for free.
enum ColumnMode : std::uint8_t {
  kModeConstant = 0,     // varint value
  kModeMinMax = 1,       // varint min | u8 width | bit-packed (v - min)
  kModeDict = 2,         // varint count | delta-varint sorted dict |
                         // u8 index width | bit-packed indexes
  kModeVarint = 3,       // one varint per record
  kModeSrcKeyed = 4,     // per-src-dict-entry varint table; row i's value
                         // is table[src_index(i)] (pure function of src)
  kModeSrcKeyedExc = 5,  // table as mode 4 (per-src modal value) |
                         // exception bitmap, LSB-first | varint value per
                         // set bit, in row order
};

/// Per-block src-column context: the per-row dictionary indexes the
/// src column produced (encoder side) or decoded (decoder side), which
/// modes 4/5 of later columns key off.
struct SrcContext {
  bool valid = false;  // src column was dictionary-coded this block
  std::size_t dict_size = 0;
  std::vector<std::uint32_t> idx;  // per-row src dictionary index
  // Rows grouped by src index (counting sort), encoder side only:
  // rows[offsets[g]..offsets[g+1]) are the rows of src group g.
  std::vector<std::uint32_t> rows;
  std::vector<std::uint32_t> offsets;

  void reset() noexcept {
    valid = false;
    dict_size = 0;
  }

  void build_groups(std::size_t n) {
    offsets.assign(dict_size + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++offsets[idx[i] + 1];
    for (std::size_t g = 1; g <= dict_size; ++g) {
      offsets[g] += offsets[g - 1];
    }
    rows.resize(n);
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      rows[cursor[idx[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
};

bool known_protocol(std::uint8_t proto) noexcept {
  return proto == static_cast<std::uint8_t>(Protocol::Tcp) ||
         proto == static_cast<std::uint8_t>(Protocol::Udp) ||
         proto == static_cast<std::uint8_t>(Protocol::Icmp);
}

unsigned bit_width64(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::bit_width(v));
}

/// Encodes one column's block slice (already widened to u64). `dict` is
/// caller-owned scratch so block after block reuses its capacity. With
/// `src` set (and valid), the src-keyed modes 4/5 compete on cost; with
/// `capture` set, a winning dictionary encoding records its per-row
/// indexes so later columns in the same block can key off them.
void encode_column(std::string& out, const std::vector<std::uint64_t>& vals,
                   std::vector<std::uint64_t>& dict,
                   const SrcContext* src = nullptr,
                   SrcContext* capture = nullptr) {
  const std::size_t n = vals.size();
  std::uint64_t mn = vals[0];
  std::uint64_t mx = vals[0];
  for (const std::uint64_t v : vals) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  if (mn == mx) {
    out.push_back(static_cast<char>(kModeConstant));
    util::put_varint(out, mn);
    return;
  }

  const unsigned width = bit_width64(mx - mn);
  const std::size_t cost_minmax =
      2 + util::varint_len(mn) + util::packed_bytes(n, width);

  dict.assign(vals.begin(), vals.end());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const std::size_t dc = dict.size();  // >= 2 since mn != mx
  std::size_t dict_body = util::varint_len(dc) + util::varint_len(dict[0]);
  for (std::size_t i = 1; i < dc; ++i) {
    dict_body += util::varint_len(dict[i] - dict[i - 1]);
  }
  const unsigned idx_width = bit_width64(dc - 1);
  const std::size_t cost_dict = 2 + dict_body + util::packed_bytes(n, idx_width);

  std::size_t cost_varint = 1;
  for (const std::uint64_t v : vals) cost_varint += util::varint_len(v);

  // Src-keyed candidates: one modal value per src group plus (mode 5)
  // a bitmap and varints for the rows that deviate. Mode 4 applies only
  // when every group is pure (zero exceptions).
  constexpr std::size_t kInapplicable = static_cast<std::size_t>(-1);
  std::size_t cost_src_pure = kInapplicable;
  std::size_t cost_src_exc = kInapplicable;
  std::vector<std::uint64_t> table;
  if (src != nullptr && src->valid) {
    table.resize(src->dict_size);
    std::vector<std::uint64_t> grp;
    std::size_t table_bytes = 0;
    std::size_t exceptions = 0;
    for (std::size_t g = 0; g < src->dict_size; ++g) {
      grp.clear();
      for (std::uint32_t o = src->offsets[g]; o < src->offsets[g + 1]; ++o) {
        grp.push_back(vals[src->rows[o]]);
      }
      std::sort(grp.begin(), grp.end());
      std::uint64_t best_v = grp[0];
      std::size_t best_c = 1;
      std::size_t run = 1;
      for (std::size_t i = 1; i < grp.size(); ++i) {
        run = (grp[i] == grp[i - 1]) ? run + 1 : 1;
        if (run > best_c) {
          best_c = run;
          best_v = grp[i];
        }
      }
      table[g] = best_v;
      table_bytes += util::varint_len(best_v);
      exceptions += grp.size() - best_c;
    }
    if (exceptions == 0) {
      cost_src_pure = 1 + table_bytes;
    } else {
      std::size_t exc_value_bytes = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (vals[i] != table[src->idx[i]]) {
          exc_value_bytes += util::varint_len(vals[i]);
        }
      }
      cost_src_exc = 1 + table_bytes + (n + 7) / 8 + exc_value_bytes;
    }
  }

  // Lowest cost wins; ties break toward the lower mode number.
  std::uint8_t best_mode = kModeMinMax;
  std::size_t best_cost = cost_minmax;
  if (cost_dict < best_cost) {
    best_mode = kModeDict;
    best_cost = cost_dict;
  }
  if (cost_varint < best_cost) {
    best_mode = kModeVarint;
    best_cost = cost_varint;
  }
  if (cost_src_pure < best_cost) {
    best_mode = kModeSrcKeyed;
    best_cost = cost_src_pure;
  }
  if (cost_src_exc < best_cost) {
    best_mode = kModeSrcKeyedExc;
    best_cost = cost_src_exc;
  }

  switch (best_mode) {
    case kModeMinMax: {
      out.push_back(static_cast<char>(kModeMinMax));
      util::put_varint(out, mn);
      out.push_back(static_cast<char>(width));
      BitWriter bw(out);
      for (const std::uint64_t v : vals) bw.put(v - mn, width);
      bw.flush();
      break;
    }
    case kModeDict: {
      out.push_back(static_cast<char>(kModeDict));
      util::put_varint(out, dc);
      util::put_varint(out, dict[0]);
      for (std::size_t i = 1; i < dc; ++i) {
        util::put_varint(out, dict[i] - dict[i - 1]);
      }
      out.push_back(static_cast<char>(idx_width));
      if (capture != nullptr) capture->idx.resize(n);
      BitWriter bw(out);
      for (std::size_t i = 0; i < n; ++i) {
        const auto it = std::lower_bound(dict.begin(), dict.end(), vals[i]);
        const auto idx = static_cast<std::uint64_t>(it - dict.begin());
        if (capture != nullptr) {
          capture->idx[i] = static_cast<std::uint32_t>(idx);
        }
        bw.put(idx, idx_width);
      }
      bw.flush();
      if (capture != nullptr) {
        capture->dict_size = dc;
        capture->valid = true;
        capture->build_groups(n);
      }
      break;
    }
    case kModeVarint: {
      out.push_back(static_cast<char>(kModeVarint));
      for (const std::uint64_t v : vals) util::put_varint(out, v);
      break;
    }
    case kModeSrcKeyed: {
      out.push_back(static_cast<char>(kModeSrcKeyed));
      for (const std::uint64_t v : table) util::put_varint(out, v);
      break;
    }
    case kModeSrcKeyedExc: {
      out.push_back(static_cast<char>(kModeSrcKeyedExc));
      for (const std::uint64_t v : table) util::put_varint(out, v);
      std::vector<unsigned char> bits((n + 7) / 8, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (vals[i] != table[src->idx[i]]) {
          bits[i >> 3] |= static_cast<unsigned char>(1u << (i & 7));
        }
      }
      out.append(reinterpret_cast<const char*>(bits.data()), bits.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (vals[i] != table[src->idx[i]]) util::put_varint(out, vals[i]);
      }
      break;
    }
  }
}

/// Decodes one column, appending exactly n values to `col` via `make`
/// (which validates and converts the widened u64). Every mode is
/// validated strictly: values must fit `max_value`, bit widths must be
/// in range, dictionaries must be strictly increasing with in-bounds
/// indexes, and the payload cursor advances by exactly the declared
/// region sizes. Modes 4/5 are accepted only when `src` carries a valid
/// context (the src column of this block was dictionary-coded); the src
/// column itself passes `capture` so its indexes are stashed for them.
template <typename Out, typename Make>
void decode_column(ByteReader& pr, std::size_t n, std::uint64_t max_value,
                   unsigned max_width, std::vector<Out>& col,
                   std::vector<std::uint64_t>& dict, Make make,
                   const SrcContext* src = nullptr,
                   SrcContext* capture = nullptr) {
  const std::size_t base = col.size();
  col.resize(base + n);
  Out* out = col.data() + base;
  const std::uint8_t mode = pr.u8();
  switch (mode) {
    case kModeConstant: {
      const std::uint64_t v = util::get_varint(pr);
      if (v > max_value) throw IoError("column constant out of range");
      const Out o = make(v);
      std::fill(out, out + n, o);
      break;
    }
    case kModeMinMax: {
      const std::uint64_t mn = util::get_varint(pr);
      if (mn > max_value) throw IoError("column minimum out of range");
      const unsigned width = pr.u8();
      if (width == 0 || width > max_width) {
        throw IoError("bad column bit width");
      }
      const std::size_t packed = util::packed_bytes(n, width);
      BitReader br(pr.bytes(packed), packed);
      const std::uint64_t headroom = max_value - mn;
      Out* cursor = out;
      br.run(n, width, [&](std::uint64_t delta) {
        if (delta > headroom) throw IoError("column value out of range");
        *cursor++ = make(mn + delta);
      });
      break;
    }
    case kModeDict: {
      const std::uint64_t dc = util::get_varint(pr);
      if (dc < 2 || dc > n) throw IoError("bad dictionary size");
      dict.clear();
      dict.reserve(static_cast<std::size_t>(dc));
      std::uint64_t entry = util::get_varint(pr);
      if (entry > max_value) throw IoError("dictionary entry out of range");
      dict.push_back(entry);
      for (std::uint64_t i = 1; i < dc; ++i) {
        const std::uint64_t delta = util::get_varint(pr);
        if (delta == 0) throw IoError("dictionary not strictly increasing");
        if (delta > max_value - entry) {
          throw IoError("dictionary entry out of range");
        }
        entry += delta;
        dict.push_back(entry);
      }
      const unsigned idx_width = pr.u8();
      if (idx_width != bit_width64(dc - 1)) {
        throw IoError("bad dictionary index width");
      }
      const std::size_t packed = util::packed_bytes(n, idx_width);
      BitReader br(pr.bytes(packed), packed);
      Out* cursor = out;
      if (capture == nullptr) {
        br.run(n, idx_width, [&](std::uint64_t idx) {
          if (idx >= dc) throw IoError("dictionary index out of range");
          *cursor++ = make(dict[static_cast<std::size_t>(idx)]);
        });
      } else {
        capture->idx.resize(n);
        std::uint32_t* stash = capture->idx.data();
        br.run(n, idx_width, [&](std::uint64_t idx) {
          if (idx >= dc) throw IoError("dictionary index out of range");
          *stash++ = static_cast<std::uint32_t>(idx);
          *cursor++ = make(dict[static_cast<std::size_t>(idx)]);
        });
        capture->dict_size = static_cast<std::size_t>(dc);
        capture->valid = true;
      }
      break;
    }
    case kModeVarint: {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t v = util::get_varint(pr);
        if (v > max_value) throw IoError("column value out of range");
        out[i] = make(v);
      }
      break;
    }
    case kModeSrcKeyed: {
      if (src == nullptr || !src->valid) {
        throw IoError("src-keyed column without dictionary-coded src");
      }
      dict.clear();  // reused as the per-src value table
      dict.reserve(src->dict_size);
      for (std::size_t g = 0; g < src->dict_size; ++g) {
        const std::uint64_t v = util::get_varint(pr);
        if (v > max_value) throw IoError("column value out of range");
        dict.push_back(v);
      }
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = make(dict[src->idx[i]]);
      }
      break;
    }
    case kModeSrcKeyedExc: {
      if (src == nullptr || !src->valid) {
        throw IoError("src-keyed column without dictionary-coded src");
      }
      dict.clear();  // reused as the per-src value table
      dict.reserve(src->dict_size);
      for (std::size_t g = 0; g < src->dict_size; ++g) {
        const std::uint64_t v = util::get_varint(pr);
        if (v > max_value) throw IoError("column value out of range");
        dict.push_back(v);
      }
      const std::size_t bitmap_bytes = (n + 7) / 8;
      const unsigned char* bits = pr.bytes(bitmap_bytes);
      for (std::size_t i = 0; i < n; ++i) {
        if ((bits[i >> 3] >> (i & 7)) & 1u) {
          const std::uint64_t v = util::get_varint(pr);
          if (v > max_value) throw IoError("column value out of range");
          out[i] = make(v);
        } else {
          out[i] = make(dict[src->idx[i]]);
        }
      }
      break;
    }
    default:
      throw IoError("unknown column mode");
  }
}

struct FileHeader {
  int interval = 0;
  std::int64_t start_time = 0;
  std::uint64_t record_count = 0;
  std::uint32_t block_count = 0;
};

FileHeader parse_file_header(ByteReader& r) {
  if (r.remaining() < CompressedFlowCodec::kFileHeaderBytes) {
    throw IoError("compressed flowtuple: truncated file header");
  }
  if (r.u32() != CompressedFlowCodec::kMagic) {
    throw IoError("compressed flowtuple: bad magic");
  }
  if (r.u16() != CompressedFlowCodec::kVersion) {
    throw IoError("compressed flowtuple: unsupported version");
  }
  FileHeader h;
  const std::uint32_t interval = r.u32();
  if (interval > 0xFFFF) {
    throw IoError("compressed flowtuple: implausible interval");
  }
  h.interval = static_cast<int>(interval);
  h.start_time = static_cast<std::int64_t>(r.u64());
  h.record_count = r.u64();
  if (h.record_count > kRecordCountCap) {
    throw IoError("compressed flowtuple: implausible record count");
  }
  h.block_count = r.u32();
  return h;
}

/// Decodes one block's payload (CRC already verified), appending
/// `records` rows to dst. The protocol column must stay inside the
/// block summary's protocol set — decode enforces the invariant
/// pushdown skipping relies on.
void decode_block(ByteReader& pr, std::size_t records, std::uint8_t proto_mask,
                  FlowBatch& dst, std::vector<std::uint64_t>& dict,
                  SrcContext& ctx) {
  ctx.reset();
  decode_column(pr, records, 0xFFFFFFFFull, 32, dst.src, dict,
                [](std::uint64_t v) {
                  return Ipv4Address(static_cast<std::uint32_t>(v));
                },
                nullptr, &ctx);
  decode_column(pr, records, 0xFFFFFFFFull, 32, dst.dst, dict,
                [](std::uint64_t v) {
                  return Ipv4Address(static_cast<std::uint32_t>(v));
                },
                &ctx);
  decode_column(pr, records, 0xFFFFull, 16, dst.src_port, dict,
                [](std::uint64_t v) { return static_cast<Port>(v); }, &ctx);
  decode_column(pr, records, 0xFFFFull, 16, dst.dst_port, dict,
                [](std::uint64_t v) { return static_cast<Port>(v); }, &ctx);
  decode_column(pr, records, 0xFFull, 8, dst.proto, dict,
                [proto_mask](std::uint64_t v) {
                  const auto p = static_cast<std::uint8_t>(v);
                  if (!known_protocol(p)) {
                    throw IoError("unknown protocol value");
                  }
                  const auto proto = static_cast<Protocol>(p);
                  if ((BlockPredicate::proto_bit(proto) & proto_mask) == 0) {
                    throw IoError("protocol outside block summary mask");
                  }
                  return proto;
                },
                &ctx);
  decode_column(pr, records, 0xFFull, 8, dst.ttl, dict,
                [](std::uint64_t v) { return static_cast<std::uint8_t>(v); },
                &ctx);
  decode_column(pr, records, 0xFFull, 8, dst.tcp_flags, dict,
                [](std::uint64_t v) { return static_cast<std::uint8_t>(v); },
                &ctx);
  decode_column(pr, records, 0xFFFFull, 16, dst.ip_len, dict,
                [](std::uint64_t v) { return static_cast<std::uint16_t>(v); },
                &ctx);
  decode_column(pr, records, ~0ull, 64, dst.pkt_count, dict,
                [](std::uint64_t v) { return v; }, &ctx);
  if (!pr.done()) throw IoError("block payload has trailing bytes");
}

FlowBatch decode_impl(std::string_view blob, const BlockPredicate* predicate,
                      BlockScanStats* stats, std::uint32_t block_begin = 0,
                      std::uint32_t block_end = 0xFFFFFFFFu) {
  ByteReader r(blob);
  const FileHeader hdr = parse_file_header(r);
  const bool full_range = block_begin == 0 && block_end >= hdr.block_count;

  FlowBatch out;
  out.interval = hdr.interval;
  out.start_time = hdr.start_time;
  // One allocation per column up front — block-by-block resize would
  // reallocate-and-copy every column log(blocks) times. (On the
  // filtered path most blocks may be skipped, so this deliberately
  // over-reserves by the filtered-out share.)
  if (predicate == nullptr && full_range) out.reserve(hdr.record_count);

  BlockScanStats local;
  FlowBatch scratch;  // per-block decode target on the filtered path
  std::vector<std::uint64_t> dict;
  SrcContext ctx;
  std::uint64_t declared_total = 0;

  for (std::uint32_t bi = 0; bi < hdr.block_count; ++bi) {
    const std::size_t offset = blob.size() - r.remaining();
    try {
      if (r.remaining() < CompressedFlowCodec::kBlockHeaderBytes) {
        throw IoError("truncated block header");
      }
      const unsigned char* h =
          r.bytes(CompressedFlowCodec::kBlockHeaderBytes);
      const std::uint32_t records = util::load_le32(h);
      const std::uint32_t raw_bytes = util::load_le32(h + 4);
      const std::uint32_t payload_bytes = util::load_le32(h + 8);
      const std::uint32_t crc_stored = util::load_le32(h + 12);
      BlockSummary summary;
      summary.interval = util::load_le16(h + 16);
      summary.proto_mask = h[18];
      summary.src_port_min = util::load_le16(h + 20);
      summary.src_port_max = util::load_le16(h + 22);
      summary.dst_port_min = util::load_le16(h + 24);
      summary.dst_port_max = util::load_le16(h + 26);
      summary.records = records;

      if (records == 0 || records > CompressedFlowCodec::kMaxBlockRecords) {
        throw IoError("implausible block record count");
      }
      if (raw_bytes != records * FlowTupleCodec::kRecordBytes) {
        throw IoError("block raw size mismatch");
      }
      if (summary.interval != hdr.interval) {
        throw IoError("block interval mismatch");
      }
      if (h[19] != 0) throw IoError("nonzero reserved byte");
      declared_total += records;
      if (declared_total > hdr.record_count) {
        throw IoError("block records exceed file record count");
      }
      if (r.remaining() < payload_bytes) {
        throw IoError("truncated block payload");
      }
      const unsigned char* payload = r.bytes(payload_bytes);

      // Outside the requested range: the header was still validated and
      // the payload hopped by its declared size, but decode/skip
      // accounting belongs to whichever range decode owns the block.
      if (bi < block_begin || bi >= block_end) continue;

      if (predicate != nullptr && !predicate->may_match(summary)) {
        ++local.blocks_skipped;
        continue;
      }

      unsigned char sealed[CompressedFlowCodec::kBlockHeaderBytes];
      std::memcpy(sealed, h, sizeof(sealed));
      util::store_le32(sealed + 12, 0);
      std::uint32_t crc = util::crc32(sealed, sizeof(sealed));
      crc = util::crc32(payload, payload_bytes, crc);
      if (crc != crc_stored) throw IoError("crc mismatch");

      ByteReader pr(payload, payload_bytes);
      if (predicate == nullptr) {
        decode_block(pr, records, summary.proto_mask, out, dict, ctx);
      } else {
        scratch.clear();
        scratch.interval = hdr.interval;
        scratch.start_time = hdr.start_time;
        decode_block(pr, records, summary.proto_mask, scratch, dict, ctx);
        filter_batch(scratch, *predicate, out);
      }
      ++local.blocks_decoded;
      local.records_decoded += records;
      local.bytes_compressed +=
          CompressedFlowCodec::kBlockHeaderBytes + payload_bytes;
      local.bytes_raw += raw_bytes;
    } catch (const IoError& e) {
      throw IoError("compressed flowtuple: block " + std::to_string(bi) +
                    " at offset " + std::to_string(offset) + ": " + e.what());
    }
  }

  // Every block header is walked (ranges only hop payload decode), so
  // the declared-total cross-check holds for range decodes too.
  if (predicate == nullptr && declared_total != hdr.record_count) {
    throw IoError("compressed flowtuple: record count mismatch");
  }
  if (stats != nullptr) stats->merge(local);
  return out;
}

}  // namespace

void CompressedFlowCodec::encode(std::string& out, const FlowBatch& batch,
                                 std::size_t block_records) {
  if (batch.interval < 0 || batch.interval > 0xFFFF) {
    throw IoError("compressed flowtuple: interval out of range");
  }
  if (block_records == 0) block_records = kDefaultBlockRecords;
  block_records = std::min(block_records, kMaxBlockRecords);

  const std::size_t total = batch.size();
  const std::uint32_t block_count = static_cast<std::uint32_t>(
      (total + block_records - 1) / block_records);

  ByteWriter w(out);
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(static_cast<std::uint32_t>(batch.interval));
  w.u64(static_cast<std::uint64_t>(batch.start_time));
  w.u64(total);
  w.u32(block_count);

  std::string payload;
  std::vector<std::uint64_t> vals;
  std::vector<std::uint64_t> dict;
  SrcContext ctx;
  for (std::size_t b = 0; b < total; b += block_records) {
    const std::size_t e = std::min(b + block_records, total);
    const std::size_t n = e - b;

    payload.clear();
    ctx.reset();
    const auto gather = [&](auto&& get) -> const std::vector<std::uint64_t>& {
      vals.clear();
      vals.reserve(n);
      for (std::size_t i = b; i < e; ++i) vals.push_back(get(i));
      return vals;
    };
    encode_column(payload, gather([&](std::size_t i) {
                    return std::uint64_t{batch.src[i].value()};
                  }),
                  dict, nullptr, &ctx);
    encode_column(payload, gather([&](std::size_t i) {
                    return std::uint64_t{batch.dst[i].value()};
                  }),
                  dict, &ctx);
    encode_column(payload, gather([&](std::size_t i) {
                    return std::uint64_t{batch.src_port[i]};
                  }),
                  dict, &ctx);
    encode_column(payload, gather([&](std::size_t i) {
                    return std::uint64_t{batch.dst_port[i]};
                  }),
                  dict, &ctx);
    encode_column(payload, gather([&](std::size_t i) {
                    return std::uint64_t{
                        static_cast<std::uint8_t>(batch.proto[i])};
                  }),
                  dict, &ctx);
    encode_column(payload, gather([&](std::size_t i) {
                    return std::uint64_t{batch.ttl[i]};
                  }),
                  dict, &ctx);
    encode_column(payload, gather([&](std::size_t i) {
                    return std::uint64_t{batch.tcp_flags[i]};
                  }),
                  dict, &ctx);
    encode_column(payload, gather([&](std::size_t i) {
                    return std::uint64_t{batch.ip_len[i]};
                  }),
                  dict, &ctx);
    encode_column(payload,
                  gather([&](std::size_t i) { return batch.pkt_count[i]; }),
                  dict, &ctx);

    std::uint8_t proto_mask = 0;
    std::uint16_t sp_min = 0xFFFF, sp_max = 0;
    std::uint16_t dp_min = 0xFFFF, dp_max = 0;
    for (std::size_t i = b; i < e; ++i) {
      proto_mask |= BlockPredicate::proto_bit(batch.proto[i]);
      sp_min = std::min(sp_min, batch.src_port[i]);
      sp_max = std::max(sp_max, batch.src_port[i]);
      dp_min = std::min(dp_min, batch.dst_port[i]);
      dp_max = std::max(dp_max, batch.dst_port[i]);
    }

    unsigned char h[kBlockHeaderBytes] = {};
    util::store_le32(h, static_cast<std::uint32_t>(n));
    util::store_le32(h + 4, static_cast<std::uint32_t>(
                                n * FlowTupleCodec::kRecordBytes));
    util::store_le32(h + 8, static_cast<std::uint32_t>(payload.size()));
    // h+12 (crc) stays zero while the seal is computed.
    util::store_le16(h + 16, static_cast<std::uint16_t>(batch.interval));
    h[18] = proto_mask;
    h[19] = 0;
    util::store_le16(h + 20, sp_min);
    util::store_le16(h + 22, sp_max);
    util::store_le16(h + 24, dp_min);
    util::store_le16(h + 26, dp_max);
    std::uint32_t crc = util::crc32(h, kBlockHeaderBytes);
    crc = util::crc32(payload.data(), payload.size(), crc);
    util::store_le32(h + 12, crc);

    w.bytes(h, kBlockHeaderBytes);
    w.bytes(payload.data(), payload.size());
  }
}

FlowBatch CompressedFlowCodec::decode(std::string_view blob,
                                      BlockScanStats* stats) {
  return decode_impl(blob, nullptr, stats);
}

FlowBatch CompressedFlowCodec::decode_blocks(std::string_view blob,
                                             std::uint32_t block_begin,
                                             std::uint32_t block_end,
                                             const BlockPredicate* predicate,
                                             BlockScanStats* stats) {
  if (predicate != nullptr && predicate->matches_all()) predicate = nullptr;
  return decode_impl(blob, predicate, stats, block_begin, block_end);
}

FlowBatch CompressedFlowCodec::decode_filtered(std::string_view blob,
                                               const BlockPredicate& predicate,
                                               BlockScanStats* stats) {
  if (predicate.matches_all()) {
    // Nothing can be skipped; take the straight-through path (which also
    // cross-checks the file's declared record count).
    return decode_impl(blob, nullptr, stats);
  }
  return decode_impl(blob, &predicate, stats);
}

std::uint32_t CompressedFlowCodec::peek_block_count(std::string_view blob) {
  ByteReader r(blob);
  return parse_file_header(r).block_count;
}

std::string CompressedFlowCodec::file_name(int interval) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flowtuple-%04d.iftc", interval);
  return buf;
}

void filter_batch(const FlowBatch& in, const BlockPredicate& predicate,
                  FlowBatch& out) {
  out.interval = in.interval;
  out.start_time = in.start_time;
  if (!predicate.may_match_hour(in.interval)) return;
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!predicate.matches_row(in.proto[i], in.dst_port[i])) continue;
    out.src.push_back(in.src[i]);
    out.dst.push_back(in.dst[i]);
    out.src_port.push_back(in.src_port[i]);
    out.dst_port.push_back(in.dst_port[i]);
    out.proto.push_back(in.proto[i]);
    out.tcp_flags.push_back(in.tcp_flags[i]);
    out.ttl.push_back(in.ttl[i]);
    out.ip_len.push_back(in.ip_len[i]);
    out.pkt_count.push_back(in.pkt_count[i]);
  }
}

}  // namespace iotscope::net
