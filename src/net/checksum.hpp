// RFC 1071 Internet checksum, used when synthesizing on-wire headers for
// the pcap codec so emitted captures are well-formed for external tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace iotscope::net {

/// One's-complement sum folding over 16-bit words; odd trailing byte is
/// zero-padded. Returns the checksum in host order (store big-endian).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// Incremental checksum accumulator for header + pseudo-header sums.
class ChecksumAccumulator {
 public:
  /// Feeds bytes; may be called repeatedly. Internally tracks byte parity
  /// so split odd-length chunks still sum correctly.
  void feed(std::span<const std::uint8_t> data) noexcept;
  /// Feeds one 16-bit word in host order.
  void feed_word(std::uint16_t word) noexcept;
  /// Final folded one's-complement checksum.
  std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;
};

}  // namespace iotscope::net
