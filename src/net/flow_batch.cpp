#include "net/flow_batch.hpp"

namespace iotscope::net {

void FlowBatch::clear() noexcept {
  src.clear();
  dst.clear();
  src_port.clear();
  dst_port.clear();
  proto.clear();
  tcp_flags.clear();
  ttl.clear();
  ip_len.clear();
  pkt_count.clear();
  class_tag.clear();
  tag_recipe = 0;
}

void FlowBatch::reserve(std::size_t n) {
  src.reserve(n);
  dst.reserve(n);
  src_port.reserve(n);
  dst_port.reserve(n);
  proto.reserve(n);
  tcp_flags.reserve(n);
  ttl.reserve(n);
  ip_len.reserve(n);
  pkt_count.reserve(n);
}

void FlowBatch::push_back(const FlowTuple& t) {
  tag_recipe = 0;  // any existing tags no longer cover every record
  src.push_back(t.src);
  dst.push_back(t.dst);
  src_port.push_back(t.src_port);
  dst_port.push_back(t.dst_port);
  proto.push_back(t.protocol);
  tcp_flags.push_back(t.tcp_flags);
  ttl.push_back(t.ttl);
  ip_len.push_back(t.ip_length);
  pkt_count.push_back(t.packet_count);
}

void FlowBatch::append(const FlowBatch& other) {
  tag_recipe = 0;
  class_tag.clear();
  src.insert(src.end(), other.src.begin(), other.src.end());
  dst.insert(dst.end(), other.dst.begin(), other.dst.end());
  src_port.insert(src_port.end(), other.src_port.begin(),
                  other.src_port.end());
  dst_port.insert(dst_port.end(), other.dst_port.begin(),
                  other.dst_port.end());
  proto.insert(proto.end(), other.proto.begin(), other.proto.end());
  tcp_flags.insert(tcp_flags.end(), other.tcp_flags.begin(),
                   other.tcp_flags.end());
  ttl.insert(ttl.end(), other.ttl.begin(), other.ttl.end());
  ip_len.insert(ip_len.end(), other.ip_len.begin(), other.ip_len.end());
  pkt_count.insert(pkt_count.end(), other.pkt_count.begin(),
                   other.pkt_count.end());
}

FlowTuple FlowBatch::row(std::size_t i) const noexcept {
  FlowTuple t;
  t.src = src[i];
  t.dst = dst[i];
  t.src_port = src_port[i];
  t.dst_port = dst_port[i];
  t.protocol = proto[i];
  t.ttl = ttl[i];
  t.tcp_flags = tcp_flags[i];
  t.ip_length = ip_len[i];
  t.packet_count = pkt_count[i];
  return t;
}

std::uint64_t FlowBatch::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const auto c : pkt_count) total += c;
  return total;
}

std::size_t FlowBatch::resident_bytes() const noexcept {
  return src.capacity() * sizeof(Ipv4Address) +
         dst.capacity() * sizeof(Ipv4Address) +
         src_port.capacity() * sizeof(Port) +
         dst_port.capacity() * sizeof(Port) +
         proto.capacity() * sizeof(Protocol) + tcp_flags.capacity() +
         ttl.capacity() + ip_len.capacity() * sizeof(std::uint16_t) +
         pkt_count.capacity() * sizeof(std::uint64_t) + class_tag.capacity();
}

FlowBatch FlowBatch::from_rows(const HourlyFlows& flows) {
  FlowBatch batch;
  batch.assign_rows(flows);
  return batch;
}

HourlyFlows FlowBatch::to_rows() const {
  HourlyFlows flows;
  flows.interval = interval;
  flows.start_time = start_time;
  flows.records.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) flows.records.push_back(row(i));
  return flows;
}

void FlowBatch::assign_rows(const HourlyFlows& flows) {
  clear();
  interval = flows.interval;
  start_time = flows.start_time;
  reserve(flows.records.size());
  for (const auto& r : flows.records) push_back(r);
}

bool FlowBatch::same_records(const FlowBatch& other) const noexcept {
  return interval == other.interval && start_time == other.start_time &&
         src == other.src && dst == other.dst && src_port == other.src_port &&
         dst_port == other.dst_port && proto == other.proto &&
         tcp_flags == other.tcp_flags && ttl == other.ttl &&
         ip_len == other.ip_len && pkt_count == other.pkt_count;
}

}  // namespace iotscope::net
