#include "net/pcap.hpp"

#include <algorithm>
#include <fstream>

#include "net/checksum.hpp"
#include "util/io.hpp"

namespace iotscope::net {

namespace {

void put_u16be(std::uint8_t* buf, std::uint16_t v) {
  buf[0] = static_cast<std::uint8_t>(v >> 8);
  buf[1] = static_cast<std::uint8_t>(v);
}

void put_u32be(std::uint8_t* buf, std::uint32_t v) {
  buf[0] = static_cast<std::uint8_t>(v >> 24);
  buf[1] = static_cast<std::uint8_t>(v >> 16);
  buf[2] = static_cast<std::uint8_t>(v >> 8);
  buf[3] = static_cast<std::uint8_t>(v);
}

std::uint16_t get_u16be(const std::uint8_t* buf) {
  return static_cast<std::uint16_t>((buf[0] << 8) | buf[1]);
}

std::uint32_t get_u32be(const std::uint8_t* buf) {
  return (static_cast<std::uint32_t>(buf[0]) << 24) |
         (static_cast<std::uint32_t>(buf[1]) << 16) |
         (static_cast<std::uint32_t>(buf[2]) << 8) |
         static_cast<std::uint32_t>(buf[3]);
}

/// On-wire size of the IPv4 datagram a PacketRecord serializes to.
std::size_t datagram_length(const PacketRecord& p) {
  const std::size_t ip_header = 20;
  std::size_t transport_header = 0;
  switch (p.protocol) {
    case Protocol::Tcp:
      transport_header = 20;
      break;
    case Protocol::Udp:
    case Protocol::Icmp:
      transport_header = 8;
      break;
  }
  return std::max<std::size_t>(p.ip_length, ip_header + transport_header);
}

/// Builds the on-wire IPv4 datagram into buf (zero-filled, `total` =
/// datagram_length(p) bytes).
void build_datagram(const PacketRecord& p, std::uint8_t* buf,
                    std::size_t total) {
  const std::size_t ip_header = 20;

  // --- IPv4 header ---
  buf[0] = 0x45;  // version 4, IHL 5
  put_u16be(buf + 2, static_cast<std::uint16_t>(total));
  buf[8] = p.ttl;
  buf[9] = static_cast<std::uint8_t>(p.protocol);
  put_u32be(buf + 12, p.src.value());
  put_u32be(buf + 16, p.dst.value());
  put_u16be(buf + 10, internet_checksum({buf, ip_header}));

  // --- transport header ---
  const std::size_t t = ip_header;
  switch (p.protocol) {
    case Protocol::Tcp: {
      put_u16be(buf + t + 0, p.src_port);
      put_u16be(buf + t + 2, p.dst_port);
      buf[t + 12] = 0x50;  // data offset 5
      buf[t + 13] = p.tcp_flags;
      put_u16be(buf + t + 14, 14600);  // window
      ChecksumAccumulator acc;         // pseudo-header + segment
      acc.feed_word(static_cast<std::uint16_t>(p.src.value() >> 16));
      acc.feed_word(static_cast<std::uint16_t>(p.src.value()));
      acc.feed_word(static_cast<std::uint16_t>(p.dst.value() >> 16));
      acc.feed_word(static_cast<std::uint16_t>(p.dst.value()));
      acc.feed_word(static_cast<std::uint16_t>(p.protocol));
      acc.feed_word(static_cast<std::uint16_t>(total - ip_header));
      acc.feed({buf + t, total - t});
      put_u16be(buf + t + 16, acc.finish());
      break;
    }
    case Protocol::Udp: {
      put_u16be(buf + t + 0, p.src_port);
      put_u16be(buf + t + 2, p.dst_port);
      put_u16be(buf + t + 4, static_cast<std::uint16_t>(total - ip_header));
      ChecksumAccumulator acc;
      acc.feed_word(static_cast<std::uint16_t>(p.src.value() >> 16));
      acc.feed_word(static_cast<std::uint16_t>(p.src.value()));
      acc.feed_word(static_cast<std::uint16_t>(p.dst.value() >> 16));
      acc.feed_word(static_cast<std::uint16_t>(p.dst.value()));
      acc.feed_word(static_cast<std::uint16_t>(p.protocol));
      acc.feed_word(static_cast<std::uint16_t>(total - ip_header));
      acc.feed({buf + t, total - t});
      put_u16be(buf + t + 6, acc.finish());
      break;
    }
    case Protocol::Icmp: {
      buf[t + 0] = p.icmp_type;
      buf[t + 1] = p.icmp_code;
      put_u16be(buf + t + 2, internet_checksum({buf + t, total - t}));
      break;
    }
  }
}

/// Parses a captured IPv4 frame back into a PacketRecord (timestamp left
/// for the caller). `size` >= 20, enforced by both record readers before
/// the frame bytes are obtained.
PacketRecord parse_frame(const std::uint8_t* buf, std::size_t size) {
  if ((buf[0] >> 4) != 4) throw util::IoError("pcap: non-IPv4 frame");
  const std::size_t ihl = static_cast<std::size_t>(buf[0] & 0x0f) * 4;
  if (ihl < 20 || ihl > size) {
    throw util::IoError("pcap: bad IPv4 header length");
  }

  PacketRecord p;
  p.ip_length = get_u16be(buf + 2);
  // The IP header's own length claim must fit inside the captured frame;
  // a frame whose ip_length overruns incl_len is corrupt (our writer
  // never snaplen-truncates), and trusting either bound alone lets the
  // transport-header reads below index past the real datagram.
  if (p.ip_length < ihl || p.ip_length > size) {
    throw util::IoError("pcap: IPv4 total length disagrees with frame");
  }
  p.ttl = buf[8];
  const std::uint8_t proto = buf[9];
  p.src = Ipv4Address(get_u32be(buf + 12));
  p.dst = Ipv4Address(get_u32be(buf + 16));
  // Per-protocol minimum transport header, checked against both the
  // capture buffer and the datagram's own length claim.
  const auto require_transport = [&](std::size_t min_header) {
    if (ihl + min_header > size || ihl + min_header > p.ip_length) {
      throw util::IoError("pcap: truncated transport header");
    }
  };
  switch (proto) {
    case static_cast<std::uint8_t>(Protocol::Tcp):
      require_transport(20);  // fixed TCP header (ports..urgent pointer)
      p.protocol = Protocol::Tcp;
      p.src_port = get_u16be(buf + ihl + 0);
      p.dst_port = get_u16be(buf + ihl + 2);
      p.tcp_flags = buf[ihl + 13];
      break;
    case static_cast<std::uint8_t>(Protocol::Udp):
      require_transport(8);  // UDP header
      p.protocol = Protocol::Udp;
      p.src_port = get_u16be(buf + ihl + 0);
      p.dst_port = get_u16be(buf + ihl + 2);
      break;
    case static_cast<std::uint8_t>(Protocol::Icmp):
      require_transport(4);  // ICMP type/code/checksum
      p.protocol = Protocol::Icmp;
      p.icmp_type = buf[ihl + 0];
      p.icmp_code = buf[ihl + 1];
      break;
    default:
      throw util::IoError("pcap: unsupported transport protocol");
  }
  return p;
}

constexpr std::size_t kRecordHeader = 16;  // ts_sec ts_usec incl_len orig_len

}  // namespace

PcapWriter::PcapWriter(std::ostream& os) : os_(os) {
  util::write_u32(os_, kMagic);
  util::write_u16(os_, 2);   // version major
  util::write_u16(os_, 4);   // version minor
  util::write_u32(os_, 0);   // thiszone
  util::write_u32(os_, 0);   // sigfigs
  util::write_u32(os_, 65535);  // snaplen
  util::write_u32(os_, kLinkTypeRaw);
}

void PcapWriter::write(const PacketRecord& packet) {
  // The classic pcap record header carries a 32-bit seconds field; a
  // silent truncation of the 64-bit timestamp would time-warp post-2106
  // (or negative) captures instead of failing loudly.
  if (packet.timestamp < 0 ||
      packet.timestamp > static_cast<util::UnixTime>(0xFFFFFFFFu)) {
    throw util::IoError("pcap: timestamp out of 32-bit range");
  }
  const std::size_t frame_len = datagram_length(packet);
  scratch_.assign(kRecordHeader + frame_len, 0);
  util::store_le32(scratch_.data() + 0,
                   static_cast<std::uint32_t>(packet.timestamp));
  util::store_le32(scratch_.data() + 4, 0);  // microseconds
  util::store_le32(scratch_.data() + 8,
                   static_cast<std::uint32_t>(frame_len));  // incl_len
  util::store_le32(scratch_.data() + 12,
                   static_cast<std::uint32_t>(frame_len));  // orig_len
  build_datagram(packet, scratch_.data() + kRecordHeader, frame_len);
  os_.write(reinterpret_cast<const char*>(scratch_.data()),
            static_cast<std::streamsize>(scratch_.size()));
  ++count_;
}

PcapReader::PcapReader(std::istream& is) : is_(is) {
  if (util::read_u32(is_) != PcapWriter::kMagic) {
    throw util::IoError("pcap: unsupported magic (expect usec little-endian)");
  }
  util::read_u16(is_);  // version major
  util::read_u16(is_);  // version minor
  util::read_u32(is_);  // thiszone
  util::read_u32(is_);  // sigfigs
  util::read_u32(is_);  // snaplen
  if (util::read_u32(is_) != PcapWriter::kLinkTypeRaw) {
    throw util::IoError("pcap: only LINKTYPE_RAW (101) captures supported");
  }
}

bool PcapReader::next(PacketRecord& out) {
  // Peek for clean EOF before the record header.
  if (is_.peek() == std::char_traits<char>::eof()) return false;
  std::uint8_t header[kRecordHeader];
  is_.read(reinterpret_cast<char*>(header),
           static_cast<std::streamsize>(sizeof header));
  if (static_cast<std::size_t>(is_.gcount()) != sizeof header) {
    throw util::IoError("unexpected end of stream");
  }
  const std::uint32_t ts_sec = util::load_le32(header + 0);
  const std::uint32_t incl_len = util::load_le32(header + 8);
  if (incl_len < 20 || incl_len > 65535) {
    throw util::IoError("pcap: implausible frame length");
  }
  frame_.resize(incl_len);
  is_.read(reinterpret_cast<char*>(frame_.data()),
           static_cast<std::streamsize>(incl_len));
  if (static_cast<std::uint32_t>(is_.gcount()) != incl_len) {
    throw util::IoError("pcap: truncated frame");
  }
  out = parse_frame(frame_.data(), incl_len);
  out.timestamp = ts_sec;
  return true;
}

std::vector<PacketRecord> decode_pcap(std::string_view blob) {
  util::ByteReader r(blob);
  if (r.u32() != PcapWriter::kMagic) {
    throw util::IoError("pcap: unsupported magic (expect usec little-endian)");
  }
  r.bytes(16);  // version major/minor, thiszone, sigfigs, snaplen
  if (r.u32() != PcapWriter::kLinkTypeRaw) {
    throw util::IoError("pcap: only LINKTYPE_RAW (101) captures supported");
  }
  std::vector<PacketRecord> out;
  // Lower bound on record size keeps the reserve proportional to the
  // bytes actually present.
  out.reserve(r.remaining() / (kRecordHeader + 20));
  while (!r.done()) {
    const unsigned char* header = r.bytes(kRecordHeader);
    const std::uint32_t ts_sec = util::load_le32(header + 0);
    const std::uint32_t incl_len = util::load_le32(header + 8);
    if (incl_len < 20 || incl_len > 65535) {
      throw util::IoError("pcap: implausible frame length");
    }
    const unsigned char* frame = r.bytes(incl_len);
    PacketRecord p = parse_frame(frame, incl_len);
    p.timestamp = ts_sec;
    out.push_back(p);
  }
  return out;
}

void write_pcap_file(const std::filesystem::path& path,
                     const std::vector<PacketRecord>& packets) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::IoError("cannot create " + path.string());
  PcapWriter writer(out);
  for (const auto& p : packets) writer.write(p);
}

std::vector<PacketRecord> read_pcap_file(const std::filesystem::path& path) {
  return decode_pcap(util::read_file(path));
}

}  // namespace iotscope::net
