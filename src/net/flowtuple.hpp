// The flowtuple record and hourly file format — our reimplementation of the
// CAIDA/corsaro "flowtuple" representation the paper consumes. Each hourly
// file holds aggregated one-way flows: the 8-field key the UCSD telescope
// retains (src/dst IP, src/dst port, protocol, TTL, TCP flags, IP length)
// plus a packet count.
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <ostream>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "net/protocol.hpp"

namespace iotscope::net {

struct FlowBatch;  // net/flow_batch.hpp — the SoA twin of HourlyFlows

/// The aggregation key + count. For ICMP flows, src_port/dst_port carry the
/// ICMP type/code (the corsaro convention), so no information is lost.
struct FlowTuple {
  Ipv4Address src;
  Ipv4Address dst;
  Port src_port = 0;
  Port dst_port = 0;
  Protocol protocol = Protocol::Tcp;
  std::uint8_t ttl = 0;
  std::uint8_t tcp_flags = 0;
  std::uint16_t ip_length = 0;
  std::uint64_t packet_count = 0;

  /// The key fields (everything except packet_count) compare equal.
  bool same_key(const FlowTuple& other) const noexcept {
    return src == other.src && dst == other.dst &&
           src_port == other.src_port && dst_port == other.dst_port &&
           protocol == other.protocol && ttl == other.ttl &&
           tcp_flags == other.tcp_flags && ip_length == other.ip_length;
  }

  /// Builds the key portion of a flowtuple from a packet (count = 1).
  static FlowTuple from_packet(const PacketRecord& p) noexcept;

  /// ICMP type stored in the port fields per the corsaro convention.
  IcmpType icmp_type() const noexcept {
    return static_cast<IcmpType>(src_port);
  }

  friend bool operator==(const FlowTuple&, const FlowTuple&) = default;
};

/// Hash over the flowtuple key (ignores packet_count) for aggregation maps.
struct FlowTupleKeyHash {
  std::size_t operator()(const FlowTuple& t) const noexcept;
};
/// Key equality (ignores packet_count).
struct FlowTupleKeyEq {
  bool operator()(const FlowTuple& a, const FlowTuple& b) const noexcept {
    return a.same_key(b);
  }
};

/// One hour of telescope flows: the interval index within the analysis
/// window and the aggregated records for that hour.
struct HourlyFlows {
  int interval = 0;                ///< hour index in [0, AnalysisWindow::kHours)
  std::int64_t start_time = 0;     ///< unix time of the hour's start
  std::vector<FlowTuple> records;  ///< aggregated flows, arbitrary order

  /// Sum of packet counts over all records.
  std::uint64_t total_packets() const noexcept;
};

/// Binary codec for hourly flowtuple files.
///
/// Layout: magic "IFT1", format version (u16), interval (u32), start time
/// (u64), record count (u64), then fixed-width 25-byte records. All
/// integers little-endian. Readers validate magic/version and record
/// bounds and throw util::IoError on malformed input.
///
/// Hot path: encode()/decode() run over a contiguous in-memory buffer
/// (util::ByteWriter/ByteReader) — one bounds check per 25-byte record
/// instead of four-to-nine virtual istream reads. The stream overloads
/// and the file helpers route through them; read_unbuffered() keeps the
/// original per-field istream decoder as the reference implementation for
/// equivalence tests and the bench ablation.
class FlowTupleCodec {
 public:
  static constexpr std::uint32_t kMagic = 0x31544649;  // "IFT1"
  static constexpr std::uint16_t kVersion = 1;
  /// On-disk size of one record (src, dst, ports, proto, ttl, flags,
  /// ip_length, packet_count): 4+4+2+2+1+1+1+2+8.
  static constexpr std::size_t kRecordBytes = 25;

  /// Appends the exact on-disk byte stream for `flows` to `out`.
  static void encode(std::string& out, const HourlyFlows& flows);
  /// Columnar encode: identical byte stream, reading from a FlowBatch's
  /// column vectors instead of AoS records (class_tag is derived state
  /// and never serialized).
  static void encode(std::string& out, const FlowBatch& batch);
  /// Decodes a complete in-memory blob with a bounds-checked cursor.
  /// Trailing bytes after the declared records are ignored, matching the
  /// stream decoder.
  static HourlyFlows decode(std::string_view blob);
  /// Columnar decode: same validation and error surface as decode(), but
  /// fills FlowBatch columns straight from the block buffer so records
  /// never materialize as AoS structs on the read path.
  static FlowBatch decode_columns(std::string_view blob);

  static void write(std::ostream& os, const HourlyFlows& flows);
  static HourlyFlows read(std::istream& is);

  /// Reference decoder: the per-field istream path decode() replaced.
  /// Kept (not used by production code) so tests can pin byte-for-byte
  /// acceptance and error parity between the two implementations.
  static HourlyFlows read_unbuffered(std::istream& is);

  static void write_file(const std::filesystem::path& path,
                         const HourlyFlows& flows);
  static HourlyFlows read_file(const std::filesystem::path& path);

  /// Canonical file name for an interval, e.g. "flowtuple-0042.ift".
  static std::string file_name(int interval);
};

}  // namespace iotscope::net
