// The packet model observed at the telescope edge. The simulator produces
// PacketRecords; the capture engine aggregates them into flowtuples; the
// pcap codec can serialize them into real libpcap files with synthesized
// IPv4/TCP/UDP/ICMP headers.
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "net/protocol.hpp"
#include "util/timebase.hpp"

namespace iotscope::net {

/// One packet as seen on the wire at the telescope. Carries exactly the
/// header fields the CAIDA flowtuple schema retains (plus a timestamp).
struct PacketRecord {
  util::UnixTime timestamp = 0;  ///< arrival time, seconds UTC
  Ipv4Address src;               ///< source IP (the sender "in the wild")
  Ipv4Address dst;               ///< destination IP (a dark address)
  Port src_port = 0;             ///< transport source port (0 for ICMP)
  Port dst_port = 0;             ///< transport destination port (0 for ICMP)
  Protocol protocol = Protocol::Tcp;
  std::uint8_t ttl = 64;         ///< remaining IP time-to-live
  std::uint8_t tcp_flags = 0;    ///< TCP flag bits (0 for UDP/ICMP)
  std::uint8_t icmp_type = 0;    ///< ICMP type (valid when protocol==Icmp)
  std::uint8_t icmp_code = 0;    ///< ICMP code (valid when protocol==Icmp)
  std::uint16_t ip_length = 40;  ///< total IP datagram length in bytes

  /// Convenience accessors for classifier readability.
  bool is_tcp() const noexcept { return protocol == Protocol::Tcp; }
  bool is_udp() const noexcept { return protocol == Protocol::Udp; }
  bool is_icmp() const noexcept { return protocol == Protocol::Icmp; }

  bool tcp_syn_only() const noexcept {
    return is_tcp() && (tcp_flags & (kSyn | kAck | kRst | kFin)) == kSyn;
  }
  bool tcp_syn_ack() const noexcept {
    return is_tcp() && (tcp_flags & (kSyn | kAck | kRst)) == (kSyn | kAck);
  }
  bool tcp_rst() const noexcept { return is_tcp() && (tcp_flags & kRst) != 0; }

  friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

/// Builders for the packet shapes the simulator emits. Each returns a fully
/// populated record; TTL and length defaults mimic common stacks.

/// A TCP SYN probe (scanning traffic).
PacketRecord make_tcp_syn(util::UnixTime ts, Ipv4Address src, Ipv4Address dst,
                          Port src_port, Port dst_port,
                          std::uint8_t ttl = 52) noexcept;

/// A TCP SYN-ACK (backscatter from a victim of a spoofed SYN flood).
PacketRecord make_tcp_syn_ack(util::UnixTime ts, Ipv4Address src,
                              Ipv4Address dst, Port src_port, Port dst_port,
                              std::uint8_t ttl = 52) noexcept;

/// A TCP RST (backscatter; also response to floods against closed ports).
PacketRecord make_tcp_rst(util::UnixTime ts, Ipv4Address src, Ipv4Address dst,
                          Port src_port, Port dst_port,
                          std::uint8_t ttl = 52) noexcept;

/// A UDP datagram with the given payload length.
PacketRecord make_udp(util::UnixTime ts, Ipv4Address src, Ipv4Address dst,
                      Port src_port, Port dst_port,
                      std::uint16_t payload_len = 32,
                      std::uint8_t ttl = 52) noexcept;

/// An ICMP message of the given type/code.
PacketRecord make_icmp(util::UnixTime ts, Ipv4Address src, Ipv4Address dst,
                       IcmpType type, std::uint8_t code = 0,
                       std::uint8_t ttl = 52) noexcept;

}  // namespace iotscope::net
