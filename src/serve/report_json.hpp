// JSON projections of a published Report for the query server: each
// function renders one endpoint's response body from the immutable
// snapshot + the inventory it was correlated against. Pure functions of
// their inputs — the server caches the rendered bodies keyed on
// (epoch, request target), so a projection runs at most once per
// snapshot per distinct query under cache pressure.
//
// All inventory-derived strings (ISP names, country names, device
// types) pass through util::json_escape: the inventory CSV is operator
// input and a vendor/ISP name containing `"` or `\` must not corrupt
// the document.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/report.hpp"
#include "inventory/database.hpp"

namespace iotscope::serve {

/// GET /report/summary — headline totals of the snapshot.
std::string render_summary(std::uint64_t epoch, const core::Report& report,
                           const inventory::IoTDeviceDatabase& db);

/// GET /report/country/<name> — deployed vs compromised for one country
/// (name match is ASCII case-insensitive). nullopt = unknown country.
std::optional<std::string> render_country(
    std::uint64_t epoch, const core::Report& report,
    const inventory::IoTDeviceDatabase& db, std::string_view name);

/// GET /report/isp/<name> — compromised devices and attributed packets
/// hosted by one ISP (case-insensitive). nullopt = unknown ISP.
std::optional<std::string> render_isp(std::uint64_t epoch,
                                      const core::Report& report,
                                      const inventory::IoTDeviceDatabase& db,
                                      std::string_view name);

/// GET /report/type/<t> — compromised consumer devices of one type
/// ("Router", "IP camera", ... as printed by to_string(ConsumerType);
/// case-insensitive). nullopt = unknown type.
std::optional<std::string> render_type(std::uint64_t epoch,
                                       const core::Report& report,
                                       const inventory::IoTDeviceDatabase& db,
                                       std::string_view name);

/// GET /report/ports/top?k=N — the top-k scanned UDP ports (clamped to
/// what the report tracks).
std::string render_top_ports(std::uint64_t epoch, const core::Report& report,
                             std::size_t k);

/// GET /report/device/<ip>/timeline — activity window, per-class packet
/// tallies, and per-service scan volumes for one source IP. An inventory
/// device renders even when never observed (packets 0, intervals -1:
/// "deployed but quiet" is an answer). IPs outside the inventory fall
/// back to the unknown-source profiles; nullopt = in neither.
std::optional<std::string> render_device_timeline(
    std::uint64_t epoch, const core::Report& report,
    const inventory::IoTDeviceDatabase& db, net::Ipv4Address ip);

}  // namespace iotscope::serve
