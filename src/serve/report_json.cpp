#include "serve/report_json.hpp"

#include <algorithm>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace iotscope::serve {

namespace {

void field(std::string& out, std::string_view name, std::uint64_t value,
           bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += name;
  out += "\": ";
  out += std::to_string(value);
}

void field(std::string& out, std::string_view name, std::int64_t value,
           bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += name;
  out += "\": ";
  out += std::to_string(value);
}

void field_str(std::string& out, std::string_view name,
               std::string_view value, bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += name;
  out += "\": ";
  out += util::json_quote(value);
}

bool iequals(std::string_view a, std::string_view b) {
  return util::to_lower(a) == util::to_lower(b);
}

}  // namespace

std::string render_summary(std::uint64_t epoch, const core::Report& report,
                           const inventory::IoTDeviceDatabase& db) {
  std::string out = "{";
  field(out, "epoch", epoch, /*first=*/true);
  field(out, "total_packets", report.total_packets);
  field(out, "unattributed_packets", report.unattributed_packets);
  field(out, "compromised_devices",
        static_cast<std::uint64_t>(report.discovered_total()));
  field(out, "compromised_consumer",
        static_cast<std::uint64_t>(report.discovered_consumer));
  field(out, "compromised_cps",
        static_cast<std::uint64_t>(report.discovered_cps));
  field(out, "inventory_devices", static_cast<std::uint64_t>(db.size()));
  field(out, "tcp_scan_packets", report.tcp_scan_total);
  field(out, "udp_packets", report.udp_total_packets);
  field(out, "backscatter_packets", report.backscatter_total);
  field(out, "dos_victims", static_cast<std::uint64_t>(report.dos_victims));
  field(out, "scanner_devices",
        static_cast<std::uint64_t>(report.scanner_devices));
  field(out, "unknown_sources",
        static_cast<std::uint64_t>(report.unknown_sources.size()));
  out += "}\n";
  return out;
}

std::optional<std::string> render_country(
    std::uint64_t epoch, const core::Report& report,
    const inventory::IoTDeviceDatabase& db, std::string_view name) {
  const auto& countries = db.catalog().countries();
  int country = -1;
  for (std::size_t i = 0; i < countries.size(); ++i) {
    if (iequals(countries[i].name, name)) {
      country = static_cast<int>(i);
      break;
    }
  }
  if (country < 0) return std::nullopt;
  const auto id = static_cast<inventory::CountryId>(country);

  std::size_t deployed_consumer = 0;
  std::size_t deployed_cps = 0;
  for (const auto& device : db.devices()) {
    if (device.country != id) continue;
    ++(device.is_consumer() ? deployed_consumer : deployed_cps);
  }
  std::size_t compromised_consumer = 0;
  std::size_t compromised_cps = 0;
  std::uint64_t packets = 0;
  for (const auto& traffic : report.devices) {
    const auto& device = db.devices()[traffic.device];
    if (device.country != id) continue;
    ++(device.is_consumer() ? compromised_consumer : compromised_cps);
    packets += traffic.packets;
  }

  std::string out = "{";
  field(out, "epoch", epoch, /*first=*/true);
  field_str(out, "country", countries[static_cast<std::size_t>(country)].name);
  field(out, "deployed", static_cast<std::uint64_t>(deployed_consumer +
                                                    deployed_cps));
  field(out, "deployed_consumer", static_cast<std::uint64_t>(deployed_consumer));
  field(out, "deployed_cps", static_cast<std::uint64_t>(deployed_cps));
  field(out, "compromised", static_cast<std::uint64_t>(compromised_consumer +
                                                       compromised_cps));
  field(out, "compromised_consumer",
        static_cast<std::uint64_t>(compromised_consumer));
  field(out, "compromised_cps", static_cast<std::uint64_t>(compromised_cps));
  field(out, "packets", packets);
  out += "}\n";
  return out;
}

std::optional<std::string> render_isp(std::uint64_t epoch,
                                      const core::Report& report,
                                      const inventory::IoTDeviceDatabase& db,
                                      std::string_view name) {
  const auto& isps = db.isps();
  int isp = -1;
  for (std::size_t i = 0; i < isps.size(); ++i) {
    if (iequals(isps[i].name, name)) {
      isp = static_cast<int>(i);
      break;
    }
  }
  if (isp < 0) return std::nullopt;
  const auto id = static_cast<inventory::IspId>(isp);

  std::size_t deployed = 0;
  for (const auto& device : db.devices()) deployed += device.isp == id;
  std::size_t compromised_consumer = 0;
  std::size_t compromised_cps = 0;
  std::uint64_t packets = 0;
  std::uint64_t scan_packets = 0;
  for (const auto& traffic : report.devices) {
    const auto& device = db.devices()[traffic.device];
    if (device.isp != id) continue;
    ++(device.is_consumer() ? compromised_consumer : compromised_cps);
    packets += traffic.packets;
    scan_packets += traffic.tcp_scan;
  }

  std::string out = "{";
  field(out, "epoch", epoch, /*first=*/true);
  field_str(out, "isp", isps[static_cast<std::size_t>(isp)].name);
  field_str(out, "country", db.country_name(isps[static_cast<std::size_t>(isp)].country));
  field(out, "deployed", static_cast<std::uint64_t>(deployed));
  field(out, "compromised", static_cast<std::uint64_t>(compromised_consumer +
                                                       compromised_cps));
  field(out, "compromised_consumer",
        static_cast<std::uint64_t>(compromised_consumer));
  field(out, "compromised_cps", static_cast<std::uint64_t>(compromised_cps));
  field(out, "packets", packets);
  field(out, "tcp_scan_packets", scan_packets);
  out += "}\n";
  return out;
}

std::optional<std::string> render_type(std::uint64_t epoch,
                                       const core::Report& report,
                                       const inventory::IoTDeviceDatabase& db,
                                       std::string_view name) {
  int type = -1;
  for (int t = 0; t < inventory::kConsumerTypeCount; ++t) {
    if (iequals(to_string(static_cast<inventory::ConsumerType>(t)), name)) {
      type = t;
      break;
    }
  }
  if (type < 0) return std::nullopt;
  const auto wanted = static_cast<inventory::ConsumerType>(type);

  std::size_t deployed = 0;
  for (const auto& device : db.devices()) {
    deployed += device.is_consumer() && device.consumer_type == wanted;
  }
  std::size_t compromised = 0;
  std::uint64_t packets = 0;
  std::uint64_t scan_packets = 0;
  for (const auto& traffic : report.devices) {
    const auto& device = db.devices()[traffic.device];
    if (!device.is_consumer() || device.consumer_type != wanted) continue;
    ++compromised;
    packets += traffic.packets;
    scan_packets += traffic.tcp_scan;
  }

  std::string out = "{";
  field(out, "epoch", epoch, /*first=*/true);
  field_str(out, "type", to_string(wanted));
  field(out, "deployed", static_cast<std::uint64_t>(deployed));
  field(out, "compromised", static_cast<std::uint64_t>(compromised));
  field(out, "packets", packets);
  field(out, "tcp_scan_packets", scan_packets);
  out += "}\n";
  return out;
}

std::string render_top_ports(std::uint64_t epoch, const core::Report& report,
                             std::size_t k) {
  const std::size_t n = std::min(k, report.udp_top_ports.size());
  std::string out = "{";
  field(out, "epoch", epoch, /*first=*/true);
  field(out, "k", static_cast<std::uint64_t>(n));
  field(out, "udp_total_packets", report.udp_total_packets);
  out += ", \"ports\": [";
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = report.udp_top_ports[i];
    if (i > 0) out += ", ";
    out += "{";
    field(out, "port", static_cast<std::uint64_t>(row.port), /*first=*/true);
    field(out, "packets", row.packets);
    field(out, "devices", static_cast<std::uint64_t>(row.devices));
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::optional<std::string> render_device_timeline(
    std::uint64_t epoch, const core::Report& report,
    const inventory::IoTDeviceDatabase& db, net::Ipv4Address ip) {
  if (const auto* device = db.find(ip)) {
    const auto index =
        static_cast<std::uint32_t>(device - db.devices().data());
    const auto* traffic = report.traffic_for(index);

    std::string out = "{";
    field(out, "epoch", epoch, /*first=*/true);
    field_str(out, "ip", ip.to_string());
    field_str(out, "kind", "device");
    field_str(out, "category", to_string(device->category));
    if (device->is_consumer()) {
      field_str(out, "type", to_string(device->consumer_type));
    }
    field_str(out, "country", db.country_name(device->country));
    field_str(out, "isp", db.isp_name(device->isp));
    field(out, "packets", traffic ? traffic->packets : 0);
    field(out, "first_interval",
          static_cast<std::int64_t>(traffic ? traffic->first_interval : -1));
    field(out, "last_interval",
          static_cast<std::int64_t>(traffic ? traffic->last_interval : -1));
    field(out, "days_active",
          static_cast<std::int64_t>(traffic ? traffic->days_active() : 0));
    if (traffic) {
      out += ", \"classes\": {";
      field(out, "tcp_scan", traffic->tcp_scan, /*first=*/true);
      field(out, "tcp_backscatter", traffic->tcp_backscatter);
      field(out, "icmp_scan", traffic->icmp_scan);
      field(out, "icmp_backscatter", traffic->icmp_backscatter);
      field(out, "udp", traffic->udp);
      field(out, "tcp_other", traffic->tcp_other);
      field(out, "icmp_other", traffic->icmp_other);
      out += "}";
      out += ", \"scan_services\": [";
      bool first = true;
      for (std::size_t s = 0;
           s < traffic->scan_by_service.size() &&
           s < report.scan_services.size();
           ++s) {
        if (traffic->scan_by_service[s] == 0) continue;
        if (!first) out += ", ";
        first = false;
        out += "{";
        field_str(out, "service", report.scan_services[s].name,
                  /*first=*/true);
        field(out, "packets", traffic->scan_by_service[s]);
        out += "}";
      }
      out += "]";
    }
    out += "}\n";
    return out;
  }

  // Outside the inventory: maybe a profiled unknown source.
  for (const auto& profile : report.unknown_sources) {
    if (profile.ip.value() != ip.value()) continue;
    std::string out = "{";
    field(out, "epoch", epoch, /*first=*/true);
    field_str(out, "ip", ip.to_string());
    field_str(out, "kind", "unknown_source");
    field(out, "packets", profile.packets);
    field(out, "tcp_syn_packets", profile.tcp_syn_packets);
    field(out, "iot_port_packets", profile.iot_port_packets);
    field(out, "first_interval",
          static_cast<std::int64_t>(profile.first_interval));
    field(out, "last_interval",
          static_cast<std::int64_t>(profile.last_interval));
    out += "}\n";
    return out;
  }
  return std::nullopt;
}

}  // namespace iotscope::serve
