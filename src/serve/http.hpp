// Minimal HTTP/1.1 message handling for the embedded query server: just
// enough of RFC 9112 to parse a GET request line + headers off a socket
// buffer and to render a response with Content-Length framing. No
// chunked transfer, no bodies on requests, no TLS — the server fronts
// immutable report snapshots on an operator's loopback/LAN, not the
// open internet.
//
// Parsing is pure (string_view in, struct out) so the unit tests cover
// it without sockets; the socket loop lives in server.cpp.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iotscope::serve {

/// A parsed request line + the headers the server cares about.
struct HttpRequest {
  std::string method;  ///< "GET", uppercased as received
  std::string target;  ///< raw request target, e.g. "/report/ports/top?k=5"
  std::string path;    ///< percent-decoded path component, no query
  /// Percent-decoded query parameters in order of appearance.
  std::vector<std::pair<std::string, std::string>> query;
  bool keep_alive = true;  ///< HTTP/1.1 default unless "Connection: close"

  /// First value of the named query parameter, or nullopt.
  std::optional<std::string_view> param(std::string_view name) const noexcept {
    for (const auto& [key, value] : query) {
      if (key == name) return std::string_view(value);
    }
    return std::nullopt;
  }
};

/// Percent-decodes a URL component ("%2F" -> "/", "+" -> " "). Malformed
/// escapes (truncated or non-hex) pass through literally rather than
/// failing the whole request.
std::string url_decode(std::string_view s);

/// Parses one request's head (everything up to and excluding the blank
/// line). Returns nullopt on a malformed request line. Header names are
/// matched case-insensitively; only Connection is interpreted.
std::optional<HttpRequest> parse_request(std::string_view head);

/// Renders a complete response: status line, Content-Type,
/// Content-Length, Connection, then the body.
std::string render_response(int status, std::string_view body,
                            std::string_view content_type = "application/json",
                            bool keep_alive = true);

/// Canonical reason phrase for the handful of statuses the server emits.
std::string_view status_reason(int status) noexcept;

/// A JSON error body: {"error": "<message>"} with proper escaping.
std::string error_body(std::string_view message);

}  // namespace iotscope::serve
