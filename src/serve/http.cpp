#include "serve/http.hpp"

#include <cctype>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace iotscope::serve {

namespace {

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// ASCII case-insensitive equality (header names, Connection tokens).
bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
      } else {
        out += '%';
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::optional<HttpRequest> parse_request(std::string_view head) {
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // METHOD SP TARGET SP VERSION. The version is split off the LAST
  // space so a naive client sending an unencoded space inside the
  // target ("GET /report/isp/Deutsche Telekom HTTP/1.1") still parses.
  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return std::nullopt;
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp2 == sp1) return std::nullopt;  // only two tokens: no version
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!util::starts_with(version, "HTTP/1.")) return std::nullopt;

  HttpRequest request;
  request.method = std::string(request_line.substr(0, sp1));
  for (char& c : request.method) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (request.target.empty() || request.target[0] != '/') return std::nullopt;
  // HTTP/1.0 defaults to close; 1.1 to keep-alive.
  request.keep_alive = version != "HTTP/1.0";

  // Split target into path and query, percent-decoding each component
  // separately (an encoded '&' inside a value must not split the pair).
  const std::string_view target(request.target);
  const std::size_t qmark = target.find('?');
  request.path = url_decode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair =
          amp == std::string_view::npos ? qs : qs.substr(0, amp);
      qs = amp == std::string_view::npos ? std::string_view()
                                         : qs.substr(amp + 1);
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        request.query.emplace_back(url_decode(pair), std::string());
      } else {
        request.query.emplace_back(url_decode(pair.substr(0, eq)),
                                   url_decode(pair.substr(eq + 1)));
      }
    }
  }

  // Header lines: only Connection matters to the server loop.
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view name = util::trim(line.substr(0, colon));
    const std::string_view value = util::trim(line.substr(colon + 1));
    if (iequals(name, "connection")) {
      if (iequals(value, "close")) request.keep_alive = false;
      if (iequals(value, "keep-alive")) request.keep_alive = true;
    }
  }
  return request;
}

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string render_response(int status, std::string_view body,
                            std::string_view content_type, bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string error_body(std::string_view message) {
  std::string out = "{\"error\": ";
  out += util::json_quote(message);
  out += "}\n";
  return out;
}

}  // namespace iotscope::serve
