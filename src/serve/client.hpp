// A deliberately small blocking HTTP/1.1 client — just enough to drive
// the embedded query server from the e2e tests and the load-generator
// bench. Keep-alive by default so a bench connection amortises the TCP
// handshake across thousands of requests, exactly like a dashboard
// poller would.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace iotscope::serve {

struct HttpResponse {
  int status = 0;
  std::string body;
};

class HttpClient {
 public:
  /// Connects to 127.0.0.1:port; throws util::IoError on failure.
  explicit HttpClient(std::uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Issues GET <target> on the kept-alive connection and reads the full
  /// Content-Length-framed response. nullopt if the connection broke
  /// (the caller may reconnect and retry).
  std::optional<HttpResponse> get(std::string_view target);

 private:
  int fd_ = -1;
};

/// One-shot convenience: connect, GET, close. nullopt on any failure.
std::optional<HttpResponse> http_get(std::uint16_t port,
                                     std::string_view target);

}  // namespace iotscope::serve
