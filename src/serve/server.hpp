// The multi-tenant snapshot query server (ROADMAP item 2): an embedded
// HTTP/1.1 + JSON layer answering operator-dashboard queries against
// immutable report snapshots. One blocking accept loop feeds accepted
// connections through a BoundedQueue to a util::ThreadPool worker pool;
// every request is answered against whatever snapshot the provider
// returns at that instant — an atomic shared_ptr load on the streaming
// study side — so queries never block ingestion and ingestion never
// blocks queries.
//
//   GET /healthz                        liveness + current epoch
//   GET /metrics                        obs registry snapshot as JSON
//   GET /report/summary                 headline totals
//   GET /report/country/<name>          per-country breakdown
//   GET /report/isp/<name>              per-ISP breakdown
//   GET /report/type/<t>                per-consumer-type breakdown
//   GET /report/ports/top?k=N           top scanned UDP ports
//   GET /report/device/<ip>/timeline    one source's activity ledger
//
// Rendered /report/* bodies are cached in a sharded LRU keyed on
// (epoch, request target): a snapshot swap bumps the epoch, so every
// stale entry misses (and is replaced) on its next lookup — no explicit
// invalidation pass, no lock across the swap.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "core/report.hpp"
#include "inventory/database.hpp"
#include "serve/cache.hpp"
#include "serve/http.hpp"
#include "util/bounded_queue.hpp"
#include "util/thread_pool.hpp"

namespace iotscope::obs {
class Counter;
class Gauge;
class Stage;
}  // namespace iotscope::obs

namespace iotscope::serve {

/// What the server queries: an epoch-stamped immutable report. The two
/// members must be loaded together (the streaming study bundles them in
/// one atomic pointer) so a reader can never pair a new report with an
/// old epoch — the cache keys on the epoch.
struct Snapshot {
  std::uint64_t epoch = 0;
  std::shared_ptr<const core::Report> report;
};

/// Called once per request (and once per cache fill); must be safe to
/// call concurrently from every worker thread. Return a null report
/// while no snapshot has been published yet (the server answers 503).
using SnapshotProvider = std::function<Snapshot()>;

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral port
  /// (read it back from port() after start()).
  std::uint16_t port = 0;
  /// Worker threads answering requests (plus one accept thread and one
  /// pool-runner thread). 0 = auto (hardware concurrency).
  unsigned threads = 4;
  /// LRU shards and entries per shard for the rendered-response cache.
  std::size_t cache_shards = 8;
  std::size_t cache_entries_per_shard = 128;
  /// listen(2) backlog.
  int backlog = 128;
  /// Per-recv timeout; workers re-check the stop flag at this cadence,
  /// so stop() latency is bounded by it even mid-keep-alive.
  std::chrono::milliseconds read_timeout{200};
  /// A keep-alive connection idle longer than this is closed.
  std::chrono::milliseconds idle_timeout{5000};
};

/// One routed response, socket-free — the unit the cache stores and the
/// tests assert on.
struct RoutedResponse {
  int status = 500;
  std::shared_ptr<const std::string> body;
};

class ReportServer {
 public:
  /// The database must outlive the server; the provider is copied.
  ReportServer(const inventory::IoTDeviceDatabase& db,
               SnapshotProvider provider, ServerOptions options = {});
  ~ReportServer();

  ReportServer(const ReportServer&) = delete;
  ReportServer& operator=(const ReportServer&) = delete;

  /// Binds, listens, and spawns the accept loop + worker pool. Throws
  /// util::IoError if the port cannot be bound.
  void start();

  /// Stops accepting, drains the workers, joins every thread. Idempotent;
  /// also run by the destructor.
  void stop();

  /// The bound port (after start()); useful with options.port == 0.
  std::uint16_t port() const noexcept { return port_; }

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Routes one request exactly as the socket path would (same cache,
  /// same renderers) without any socket involved. Thread-safe.
  RoutedResponse handle(std::string_view method, std::string_view target);

  CacheStats cache_stats() const { return cache_.stats(); }

 private:
  void accept_loop();
  void worker_loop();
  /// Serves one accepted connection until close/idle/stop.
  void serve_connection(int fd);
  /// route() wrapped with the request counter + latency stage.
  RoutedResponse handle_request(const HttpRequest& request);
  RoutedResponse route(const HttpRequest& request);

  const inventory::IoTDeviceDatabase* db_;
  SnapshotProvider provider_;
  ServerOptions options_;
  ResponseCache cache_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::unique_ptr<util::BoundedQueue<int>> connections_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread accept_thread_;
  std::thread pool_runner_;  ///< hosts the blocking run_indexed fork/join

  // Observability handles, resolved once at construction.
  obs::Counter& requests_counter_;   ///< serve.requests
  obs::Counter& errors_counter_;     ///< serve.errors (status >= 400)
  obs::Counter& hits_counter_;       ///< serve.cache.hits
  obs::Counter& misses_counter_;     ///< serve.cache.misses
  obs::Gauge& connections_gauge_;    ///< serve.connections (live sockets)
  obs::Stage& request_stage_;        ///< serve.request — route+render time
};

}  // namespace iotscope::serve
