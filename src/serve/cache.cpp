#include "serve/cache.hpp"

#include <functional>

namespace iotscope::serve {

ResponseCache::ResponseCache(std::size_t shards,
                             std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResponseCache::Shard& ResponseCache::shard_of(std::string_view key) noexcept {
  return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

std::shared_ptr<const std::string> ResponseCache::get(std::uint64_t epoch,
                                                      std::string_view key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (it->second->epoch != epoch) {
    // Rendered from a superseded snapshot: drop it now rather than let a
    // stale body linger at the LRU front.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.invalidated;
    ++shard.misses;
    return nullptr;
  }
  // Most recently used: move to the front without touching the entry
  // (splice keeps the index's iterators and key views valid).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->body;
}

void ResponseCache::put(std::uint64_t epoch, std::string_view key,
                        std::shared_ptr<const std::string> body) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent renderers of the same key land here; last writer wins
    // (both rendered from immutable snapshots, so either body is right
    // for its epoch).
    it->second->epoch = epoch;
    it->second->body = std::move(body);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(key), epoch, std::move(body)});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  while (shard.lru.size() > capacity_per_shard_) {
    shard.index.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats ResponseCache::stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.invalidated += shard->invalidated;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace iotscope::serve
