#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/io.hpp"
#include "util/strings.hpp"

namespace iotscope::serve {

namespace {

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Reads until `buffer` contains at least `need` bytes; false on EOF or
/// error before that.
bool read_until(int fd, std::string& buffer, std::size_t need) {
  char chunk[4096];
  while (buffer.size() < need) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

HttpClient::HttpClient(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw util::IoError(std::string("client: socket() failed: ") +
                        std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw util::IoError("client: cannot connect to 127.0.0.1:" +
                        std::to_string(port) + ": " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  // A response that takes this long means the server is wedged or every
  // worker is pinned; surface nullopt instead of blocking the caller
  // forever (get() treats the EAGAIN as a broken connection).
  timeval tv{};
  tv.tv_sec = 30;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

HttpClient::~HttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

HttpClient::HttpClient(HttpClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<HttpResponse> HttpClient::get(std::string_view target) {
  if (fd_ < 0) return std::nullopt;
  std::string request;
  request.reserve(target.size() + 64);
  request += "GET ";
  request += target;
  request += " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!send_all(fd_, request)) return std::nullopt;

  std::string buffer;
  std::size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (!read_until(fd_, buffer, buffer.size() + 1)) return std::nullopt;
  }
  const std::string_view head(buffer.data(), head_end);

  // Status line: "HTTP/1.1 200 OK".
  const auto first_space = head.find(' ');
  if (first_space == std::string_view::npos) return std::nullopt;
  const auto status_text = head.substr(first_space + 1, 3);
  const auto status = util::parse_decimal(status_text);
  if (!status) return std::nullopt;

  // Content-Length framing (the server always sends it).
  std::size_t content_length = 0;
  for (std::size_t pos = head.find("\r\n"); pos != std::string_view::npos;
       pos = head.find("\r\n", pos + 2)) {
    const auto line = head.substr(pos + 2);
    static constexpr std::string_view kName = "content-length:";
    if (line.size() >= kName.size()) {
      bool match = true;
      for (std::size_t i = 0; i < kName.size(); ++i) {
        const char c = line[i];
        const char lower =
            (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        if (lower != kName[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        auto value = line.substr(kName.size());
        value = util::trim(value.substr(0, value.find("\r\n")));
        if (const auto parsed = util::parse_decimal(value)) {
          content_length = static_cast<std::size_t>(*parsed);
        }
        break;
      }
    }
  }

  const std::size_t total = head_end + 4 + content_length;
  if (!read_until(fd_, buffer, total)) return std::nullopt;
  HttpResponse response;
  response.status = static_cast<int>(*status);
  response.body = buffer.substr(head_end + 4, content_length);
  return response;
}

std::optional<HttpResponse> http_get(std::uint16_t port,
                                     std::string_view target) {
  try {
    HttpClient client(port);
    return client.get(target);
  } catch (const util::IoError&) {
    return std::nullopt;
  }
}

}  // namespace iotscope::serve
