#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/ipv4.hpp"
#include "obs/metrics.hpp"
#include "serve/report_json.hpp"
#include "util/io.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace iotscope::serve {

namespace {

/// Hard ceiling on a request head; anything larger is a 400 and a close
/// (no endpoint here needs more than a couple hundred bytes).
constexpr std::size_t kMaxRequestBytes = 16 * 1024;

std::shared_ptr<const std::string> make_body(std::string body) {
  return std::make_shared<const std::string>(std::move(body));
}

void set_recv_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

ReportServer::ReportServer(const inventory::IoTDeviceDatabase& db,
                           SnapshotProvider provider, ServerOptions options)
    : db_(&db),
      provider_(std::move(provider)),
      options_(options),
      cache_(options.cache_shards, options.cache_entries_per_shard),
      requests_counter_(obs::Registry::instance().counter("serve.requests")),
      errors_counter_(obs::Registry::instance().counter("serve.errors")),
      hits_counter_(obs::Registry::instance().counter("serve.cache.hits")),
      misses_counter_(obs::Registry::instance().counter("serve.cache.misses")),
      connections_gauge_(
          obs::Registry::instance().gauge("serve.connections")),
      request_stage_(obs::Registry::instance().stage("serve.request")) {
  options_.threads = util::ThreadPool::resolve(options_.threads);
}

ReportServer::~ReportServer() { stop(); }

void ReportServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw util::IoError(std::string("serve: socket() failed: ") +
                        std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::IoError("serve: cannot bind 127.0.0.1:" +
                        std::to_string(options_.port) + ": " +
                        std::strerror(err));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::IoError(std::string("serve: listen() failed: ") +
                        std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  // Enough queue slack that a burst of accepted sockets does not stall
  // the accept loop while every worker is mid-render.
  connections_ = std::make_unique<util::BoundedQueue<int>>(
      options_.threads * 4, "serve.backlog");
  pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  running_.store(true, std::memory_order_release);

  accept_thread_ = std::thread([this] { accept_loop(); });
  // run_indexed is a blocking fork/join in which the calling thread
  // participates, so it gets a thread of its own; with count == size()
  // every participant claims exactly one long-running worker_loop and we
  // end up with `threads` concurrent request handlers.
  pool_runner_ = std::thread([this] {
    pool_->run_indexed(pool_->size(), [this](std::size_t) { worker_loop(); });
  });
}

void ReportServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept(2): shutdown() forces a pending accept to return on
  // Linux; close() frees the port.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (connections_) connections_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_runner_.joinable()) pool_runner_.join();
  // Drain sockets that were queued but never claimed by a worker.
  if (connections_) {
    while (auto fd = connections_->pop()) ::close(*fd);
  }
  pool_.reset();
  connections_.reset();
}

void ReportServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listening socket closed by stop(), or a fatal accept error:
      // either way the server is done accepting.
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_recv_timeout(fd, options_.read_timeout);
    if (!connections_->push(fd)) {
      ::close(fd);  // queue closed: shutting down
      break;
    }
  }
}

void ReportServer::worker_loop() {
  while (auto fd = connections_->pop()) {
    connections_gauge_.add(1);
    try {
      serve_connection(*fd);
    } catch (...) {
      // A connection must never take its worker down; drop it and move on.
    }
    ::close(*fd);
    connections_gauge_.add(-1);
  }
}

void ReportServer::serve_connection(int fd) {
  std::string buffer;
  const auto idle_deadline_ns = [&] {
    return obs::now_ns() +
           static_cast<std::uint64_t>(options_.idle_timeout.count()) *
               1'000'000ULL;
  };
  std::uint64_t deadline = idle_deadline_ns();

  while (!stopping_.load(std::memory_order_acquire)) {
    // Assemble one request head (requests are GETs; bodies are ignored).
    std::size_t head_end = buffer.find("\r\n\r\n");
    while (head_end == std::string::npos) {
      if (buffer.size() > kMaxRequestBytes) {
        send_all(fd, render_response(400, error_body("request too large"),
                                     "application/json", false));
        return;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n == 0) return;  // peer closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          if (stopping_.load(std::memory_order_acquire)) return;
          if (obs::now_ns() > deadline) return;  // idle keep-alive expired
          continue;
        }
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      head_end = buffer.find("\r\n\r\n");
    }

    const std::string_view head(buffer.data(), head_end + 4);
    const auto request = parse_request(head);
    if (!request) {
      send_all(fd, render_response(400, error_body("malformed request"),
                                   "application/json", false));
      return;
    }

    const RoutedResponse response = handle_request(*request);
    const bool keep_alive =
        request->keep_alive && !stopping_.load(std::memory_order_acquire);
    if (!send_all(fd, render_response(response.status, *response.body,
                                      "application/json", keep_alive))) {
      return;
    }
    if (!keep_alive) return;
    buffer.erase(0, head_end + 4);  // keep pipelined bytes, if any
    deadline = idle_deadline_ns();
  }
}

RoutedResponse ReportServer::handle(std::string_view method,
                                    std::string_view target) {
  std::string raw;
  raw.reserve(method.size() + target.size() + 16);
  raw.append(method);
  raw += ' ';
  raw.append(target);
  raw += " HTTP/1.1\r\n\r\n";
  const auto request = parse_request(raw);
  if (!request) {
    return RoutedResponse{400, make_body(error_body("malformed request"))};
  }
  return handle_request(*request);
}

RoutedResponse ReportServer::handle_request(const HttpRequest& request) {
  requests_counter_.add(1);
  obs::ScopedTimer timer(request_stage_);
  RoutedResponse response = route(request);
  if (response.status >= 400) errors_counter_.add(1);
  return response;
}

RoutedResponse ReportServer::route(const HttpRequest& request) {
  if (request.method != "GET") {
    return RoutedResponse{405, make_body(error_body("method not allowed"))};
  }
  const std::string_view path = request.path;

  if (path == "/healthz") {
    const Snapshot snapshot = provider_();
    std::string body = "{\"status\": \"ok\", \"epoch\": ";
    body += std::to_string(snapshot.epoch);
    body += ", \"has_snapshot\": ";
    body += snapshot.report ? "true" : "false";
    body += "}\n";
    return RoutedResponse{200, make_body(std::move(body))};
  }
  if (path == "/metrics") {
    return RoutedResponse{
        200, make_body(obs::render_json(obs::Registry::instance().snapshot()))};
  }

  if (!path.starts_with("/report/")) {
    return RoutedResponse{404, make_body(error_body("no such endpoint"))};
  }

  const Snapshot snapshot = provider_();
  if (!snapshot.report) {
    return RoutedResponse{
        503, make_body(error_body("no snapshot published yet"))};
  }

  // The raw target (path + query, percent-encoded) is the cache key:
  // distinct parameters are distinct keys, and the epoch namespace makes
  // a snapshot swap an implicit flush.
  if (auto cached = cache_.get(snapshot.epoch, request.target)) {
    hits_counter_.add(1);
    return RoutedResponse{200, std::move(cached)};
  }
  misses_counter_.add(1);

  const core::Report& report = *snapshot.report;
  std::optional<std::string> body;
  int bad_request_status = 0;
  std::string bad_request_reason;

  if (path == "/report/summary") {
    body = render_summary(snapshot.epoch, report, *db_);
  } else if (path.starts_with("/report/country/")) {
    body = render_country(snapshot.epoch, report, *db_,
                          path.substr(std::strlen("/report/country/")));
  } else if (path.starts_with("/report/isp/")) {
    body = render_isp(snapshot.epoch, report, *db_,
                      path.substr(std::strlen("/report/isp/")));
  } else if (path.starts_with("/report/type/")) {
    body = render_type(snapshot.epoch, report, *db_,
                       path.substr(std::strlen("/report/type/")));
  } else if (path == "/report/ports/top") {
    std::size_t k = 10;
    if (const auto raw = request.param("k")) {
      const auto parsed = util::parse_decimal(*raw);
      if (!parsed || *parsed == 0) {
        bad_request_status = 400;
        bad_request_reason = "k must be a positive integer";
      } else {
        k = static_cast<std::size_t>(*parsed);
      }
    }
    if (bad_request_status == 0) {
      body = render_top_ports(snapshot.epoch, report, k);
    }
  } else if (path.starts_with("/report/device/") &&
             path.ends_with("/timeline")) {
    const auto ip_text = path.substr(
        std::strlen("/report/device/"),
        path.size() - std::strlen("/report/device/") -
            std::strlen("/timeline"));
    const auto ip = net::Ipv4Address::parse(ip_text);
    if (!ip) {
      bad_request_status = 400;
      bad_request_reason = "not an IPv4 address";
    } else {
      body = render_device_timeline(snapshot.epoch, report, *db_, *ip);
    }
  } else {
    return RoutedResponse{404, make_body(error_body("no such endpoint"))};
  }

  if (bad_request_status != 0) {
    return RoutedResponse{bad_request_status,
                          make_body(error_body(bad_request_reason))};
  }
  if (!body) {
    return RoutedResponse{404, make_body(error_body("not found"))};
  }
  auto shared = make_body(*std::move(body));
  cache_.put(snapshot.epoch, request.target, shared);
  return RoutedResponse{200, std::move(shared)};
}

}  // namespace iotscope::serve
