// Sharded LRU cache for rendered query responses, keyed on
// (epoch, request target). The epoch is the publication counter of the
// snapshot a response was rendered from, so a snapshot swap invalidates
// every cached body without any explicit flush: the next lookup under
// the new epoch misses (and replaces) the stale entry in place. Sharding
// by key hash keeps the per-shard mutex uncontended under the worker
// pool — the same striping idea as the obs counters.
//
// Bodies are shared_ptr<const string> so a hit hands the caller a
// reference into the cache without copying the payload, and an entry
// evicted mid-flight stays alive until the last response referencing it
// has been written to its socket.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace iotscope::serve {

/// Hit/miss/eviction tallies across all shards (point-in-time sums).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;   ///< capacity evictions (LRU tail drops)
  std::uint64_t invalidated = 0; ///< stale-epoch entries replaced
  std::size_t entries = 0;       ///< currently resident
};

class ResponseCache {
 public:
  /// `shards` is clamped to >= 1; `capacity_per_shard` entries are kept
  /// per shard before the least-recently-used entry is dropped.
  ResponseCache(std::size_t shards, std::size_t capacity_per_shard);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// The cached body for `key` rendered under `epoch`, or null. An entry
  /// cached under a different epoch is treated as a miss (and dropped, so
  /// stale bodies never outlive their snapshot by more than one lookup).
  std::shared_ptr<const std::string> get(std::uint64_t epoch,
                                         std::string_view key);

  /// Inserts (or replaces) the body for `key` under `epoch` and marks it
  /// most recently used. Evicts the shard's LRU tail beyond capacity.
  void put(std::uint64_t epoch, std::string_view key,
           std::shared_ptr<const std::string> body);

  CacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t epoch = 0;
    std::shared_ptr<const std::string> body;
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used. Stable iterators under splice.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidated = 0;
  };

  Shard& shard_of(std::string_view key) noexcept;

  std::size_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace iotscope::serve
