#include "telescope/capture.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace iotscope::telescope {

TelescopeCapture::TelescopeCapture(DarknetSpace space, Sink sink)
    : space_(space), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("TelescopeCapture: empty sink");
}

void TelescopeCapture::ingest(const net::PacketRecord& packet) {
  if (finished_) {
    throw std::logic_error("TelescopeCapture: ingest after finish");
  }
  if (!space_.observes(packet.dst)) {
    ++stats_.packets_dropped;
    return;
  }
  const int interval = util::AnalysisWindow::interval_of(packet.timestamp);
  if (interval == util::AnalysisWindow::kOutOfWindow) {
    // Explicit disposition, never a clamp: a stray timestamp must not
    // fold into the hour-0/hour-142 time series.
    ++stats_.out_of_window;
    obs::Registry::instance().counter("ingest.out_of_window").add(1);
    if (!warned_out_of_window_) {
      warned_out_of_window_ = true;
      IOTSCOPE_LOG_WARN(
          "telescope: dropping packet with out-of-window timestamp %lld "
          "(window [%lld, %lld)); further drops counted silently",
          static_cast<long long>(packet.timestamp),
          static_cast<long long>(util::AnalysisWindow::start()),
          static_cast<long long>(util::AnalysisWindow::end()));
    }
    return;
  }
  if (current_interval_ < 0) {
    current_interval_ = interval;
  } else if (interval > current_interval_) {
    rotate_to(interval);
  }
  // Timestamps must be monotone at hour granularity; within the hour the
  // aggregation is order-insensitive.
  ++stats_.packets_observed;
  net::FlowTuple key = net::FlowTuple::from_packet(packet);
  key.packet_count = 0;  // count tracked in the map value
  accumulator_[key] += 1;
}

void TelescopeCapture::rotate_to(int interval) {
  while (current_interval_ < interval) {
    net::FlowBatch batch;
    batch.interval = current_interval_;
    batch.start_time = util::AnalysisWindow::interval_start(current_interval_);
    batch.reserve(accumulator_.size());
    accumulator_.for_each([&batch](const net::FlowTuple& key,
                                   std::uint64_t count) {
      net::FlowTuple r = key;
      r.packet_count = count;
      batch.push_back(r);
    });
    stats_.flows_emitted += batch.size();
    ++stats_.hours_rotated;
    // Epoch clear: O(1), keeps the table's high-water capacity so the
    // next hour inserts without rehashing.
    accumulator_.clear();
    sink_(std::move(batch));
    ++current_interval_;
  }
}

void TelescopeCapture::finish() {
  if (finished_) return;
  if (current_interval_ >= 0) {
    rotate_to(current_interval_ + 1);
  }
  finished_ = true;
}

}  // namespace iotscope::telescope
