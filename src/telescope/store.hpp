// Persistence and iteration over a telescope's hourly flowtuple files —
// the on-disk layout the analysis pipeline consumes (one file per hour,
// matching the paper's "unique compressed files representing hourly
// traffic").
#pragma once

#include <exception>
#include <filesystem>
#include <functional>
#include <optional>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/block_codec.hpp"
#include "net/flow_batch.hpp"
#include "net/flowtuple.hpp"
#include "obs/metrics.hpp"
#include "util/bounded_queue.hpp"

namespace iotscope::telescope {

/// On-disk representation put() writes for new hours. Reads are always
/// format-transparent: a store may hold raw ".ift" and compressed
/// ".iftc" hours side by side and every read API behaves identically.
enum class StoreFormat {
  Raw,         ///< fixed 25-byte records (net::FlowTupleCodec, ".ift")
  Compressed,  ///< columnar blocks (net::CompressedFlowCodec, ".iftc")
};

/// Knobs for a predicated, possibly parallel scan() over the store.
struct ScanOptions {
  /// Hours decoded ahead of the visitor (single-reader path only).
  std::size_t prefetch = 0;
  /// Decoder threads. With more than one, hours are decoded concurrently
  /// but the visitor still observes strict interval order.
  std::size_t readers = 1;
  /// When set, compressed hours decode with predicate pushdown (blocks
  /// whose summaries cannot match are skipped undecoded) and raw hours
  /// are row-filtered, so mixed stores answer uniformly.
  std::optional<net::BlockPredicate> predicate;
};

/// Knobs for compact() — in-place conversion of raw hours to compressed.
struct CompactOptions {
  std::size_t block_records = net::CompressedFlowCodec::kDefaultBlockRecords;
  /// Decode each freshly written file and require record-exact equality
  /// with its source before the original is removed.
  bool verify = true;
  /// Leave the ".ift" originals beside the compressed files.
  bool keep_uncompressed = false;
};

/// What one compact() run converted.
struct CompactStats {
  std::size_t hours = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes_raw = 0;         ///< input ".ift" bytes
  std::uint64_t bytes_compressed = 0;  ///< output ".iftc" bytes
};

/// A directory of hourly flowtuple files.
///
/// Reads surface columnar net::FlowBatch values (decoded straight into
/// columns — records never materialize as AoS structs on the hot read
/// path); the on-disk bytes are unchanged, so files written from AoS
/// HourlyFlows and from batches are interchangeable.
class FlowTupleStore {
 public:
  /// Opens (and creates if absent) the store rooted at dir.
  explicit FlowTupleStore(std::filesystem::path dir);

  /// Persists one hourly file; overwrites any existing file for the hour.
  /// Publication is atomic (temp file + rename in the same directory), so
  /// a concurrent reader polling the store — the streaming study's
  /// rotation watcher — either sees the complete hour or no file at all,
  /// never a torn partial write.
  void put(const net::HourlyFlows& flows) const;
  /// Columnar variant: identical file bytes for the same records.
  void put(const net::FlowBatch& batch) const;

  /// Publishes arbitrary bytes under an hour's on-disk name (".ift" or
  /// ".iftc" per `format`), with the same atomic temp+rename discipline
  /// as put(). The bytes need not decode — this is the scenario engine's
  /// seam for hostile hours (torn blocks, truncated records, implausible
  /// headers): a concurrent follower must observe either no file or the
  /// complete corrupt file, never a torn write of the corruption itself.
  void put_hostile(int interval, std::string_view bytes,
                   StoreFormat format) const;

  /// Selects the format put() writes from now on (default Raw). The
  /// block size only applies to StoreFormat::Compressed.
  void set_write_format(
      StoreFormat format,
      std::size_t block_records = net::CompressedFlowCodec::kDefaultBlockRecords) noexcept {
    write_format_ = format;
    block_records_ = block_records;
  }
  StoreFormat write_format() const noexcept { return write_format_; }

  /// Loads the file for an interval; nullopt if the hour is absent
  /// (the paper itself had a missing-hours day it discarded).
  std::optional<net::HourlyFlows> get(int interval) const;
  /// Columnar load of one interval (the read path the pipeline uses).
  std::optional<net::FlowBatch> get_batch(int interval) const;

  /// Sorted list of intervals present on disk (either format; an hour
  /// stored in both appears once).
  std::vector<int> intervals() const;

  /// Converts every raw ".ift" hour to the compressed format in place:
  /// encode, optionally verify by full round-trip decode, publish the
  /// ".iftc" atomically (temp + rename), then remove the original unless
  /// options.keep_uncompressed. Hours already compressed-only are left
  /// untouched. Throws util::IoError if verification fails (the raw
  /// original is preserved in that case).
  CompactStats compact(const CompactOptions& options = {}) const;

  /// Predicated, optionally parallel scan. Semantically equivalent to
  /// for_each with the predicate's row filter applied per hour, but
  /// compressed hours decode with predicate pushdown (summary-rejected
  /// blocks and out-of-window hours are skipped without decoding) and
  /// options.readers > 1 decodes hours concurrently while preserving
  /// strict interval visit order. Decode and visitor errors propagate on
  /// the calling thread after all readers join.
  void scan(const std::function<void(const net::FlowBatch&)>& visit,
            const ScanOptions& options = {}) const;

  /// Calls visit(const net::FlowBatch&) for every stored hour in interval
  /// order — the streaming entry point the pipeline uses so full-scale
  /// runs never hold more than one hour (plus prefetch) in memory.
  ///
  /// With prefetch > 0, a background reader thread decodes up to that
  /// many upcoming hours while the visitor processes the current one;
  /// visit order is still strictly interval order and a decode or visitor
  /// error is rethrown on the calling thread after both sides join
  /// (DESIGN.md §8). prefetch == 0 is the serial path.
  ///
  /// The visitor is a deduced template parameter so the per-hour call is
  /// direct (inlinable) rather than through std::function type erasure; a
  /// std::function overload below serves callers that need to pass an
  /// erased callable (e.g. the CLI assembling visitors at runtime).
  template <typename Visitor>
  void for_each(Visitor&& visit, std::size_t prefetch = 0) const {
    auto& decode_stage = obs::Registry::instance().stage("store.decode");
    if (prefetch == 0) {
      for (const int interval : intervals()) {
        std::optional<net::FlowBatch> batch;
        {
          obs::ScopedTimer timer(decode_stage);
          batch = get_batch(interval);
        }
        if (batch) visit(static_cast<const net::FlowBatch&>(*batch));
      }
      return;
    }

    const auto order = intervals();
    // High-water of batch bytes resident in (or just handed out of) the
    // prefetch queue: added before push, released when the visitor is
    // done with the batch — via an RAII guard on the consumer side, so a
    // throwing visitor still releases its in-flight bytes and the
    // surfaced max() never carries a permanent residual from an
    // unwound iteration.
    auto& mem_gauge =
        obs::Registry::instance().gauge("pipeline.batch.mem_peak");

    // Error paths mirror run_study's (DESIGN.md §8): a visitor exception
    // closes the queue (the reader's next push fails and it exits), a
    // decode error is recorded, the queue closed so the consumer drains
    // and stops, and the error is rethrown here after the join. Both
    // sides always join before an exception leaves this frame.
    util::BoundedQueue<net::FlowBatch> queue(prefetch, "store.prefetch");
    std::exception_ptr reader_error;

    std::thread reader([&] {
      for (const int interval : order) {
        std::optional<net::FlowBatch> batch;
        try {
          obs::ScopedTimer timer(decode_stage);
          batch = get_batch(interval);
        } catch (...) {
          reader_error = std::current_exception();
          break;
        }
        if (!batch) continue;
        const auto bytes = static_cast<std::int64_t>(batch->resident_bytes());
        mem_gauge.add(bytes);
        if (!queue.push(std::move(*batch))) {
          mem_gauge.add(-bytes);  // consumer aborted; batch dropped
          return;
        }
      }
      queue.close();  // end of stream (or decode error recorded above)
    });

    // Releases one batch's gauge bytes on every exit path, including a
    // throwing visit() — without it, an unwound iteration left the
    // in-flight bytes in the gauge forever (a permanent residual in the
    // surfaced high-water mark).
    struct GaugeRelease {
      obs::Gauge& gauge;
      std::int64_t bytes;
      ~GaugeRelease() { gauge.add(-bytes); }
    };
    try {
      while (auto batch = queue.pop()) {
        GaugeRelease release{
            mem_gauge, static_cast<std::int64_t>(batch->resident_bytes())};
        visit(static_cast<const net::FlowBatch&>(*batch));
      }
    } catch (...) {
      queue.close();
      reader.join();
      // Drain what the reader had already accounted into the gauge but
      // the dead consumer never popped.
      while (auto batch = queue.pop()) {
        mem_gauge.add(-static_cast<std::int64_t>(batch->resident_bytes()));
      }
      throw;
    }
    reader.join();
    if (reader_error) std::rethrow_exception(reader_error);
  }

  /// Type-erased overload for callers assembling visitors at runtime.
  void for_each(const std::function<void(const net::FlowBatch&)>& visit,
                std::size_t prefetch = 0) const;

  /// One deferred decode of a contiguous slice of an hour's records
  /// (see hour_loaders). Thread-safe to call; each invocation opens and
  /// maps the file independently.
  using HourPartLoader = std::function<net::FlowBatch()>;

  /// Splits one hour's decode into up to `max_parts` independent
  /// loaders — the store-scan tasks of the task-graph pipeline
  /// (DESIGN.md §16), replacing the dedicated prefetch thread: the
  /// scheduler runs the parts as parallel tasks and the hour is
  /// reassembled by appending the part batches in order, which
  /// reproduces get_batch()'s record order exactly. Compressed hours
  /// with several blocks split at block boundaries (each part decodes
  /// its block range, with predicate pushdown when a predicate is
  /// given); raw hours and single-block files return one loader.
  /// Returns no loaders when the hour is absent or entirely outside the
  /// predicate's hour window.
  std::vector<HourPartLoader> hour_loaders(
      int interval, std::size_t max_parts,
      const std::optional<net::BlockPredicate>& predicate = std::nullopt)
      const;

  const std::filesystem::path& directory() const noexcept { return dir_; }

 private:
  /// Loads one hour, preferring the compressed file when both exist.
  /// With a predicate, compressed hours use pushdown and raw hours are
  /// row-filtered; an hour entirely outside the predicate's window is
  /// skipped (compressed: after reading only the 30-byte file header).
  /// nullopt means the hour is absent or fully skipped.
  std::optional<net::FlowBatch> load_batch(
      int interval, const net::BlockPredicate* predicate) const;

  std::filesystem::path dir_;
  StoreFormat write_format_ = StoreFormat::Raw;
  std::size_t block_records_ = net::CompressedFlowCodec::kDefaultBlockRecords;
};

/// Incremental rotation watcher over a FlowTupleStore directory: each
/// poll() returns the intervals whose hourly files have appeared since
/// the previous poll, in ascending interval order. Because put()
/// publishes by atomic rename, a file is either absent or complete —
/// an interval this watcher reports is immediately readable in full.
/// Files are never forgotten once reported; deleting or renaming hours
/// out from under a live watcher is outside the contract.
class RotationWatcher {
 public:
  /// The store must outlive the watcher.
  explicit RotationWatcher(const FlowTupleStore& store) : store_(&store) {}

  /// Newly appeared intervals since the previous poll (ascending).
  std::vector<int> poll();

 private:
  const FlowTupleStore* store_;
  std::unordered_set<int> seen_;
};

/// An in-memory store variant used by tests and small benches: same
/// interface shape, no disk round-trip. Stays AoS — it exists to hold
/// reference rows, not to be fast.
class MemoryFlowStore {
 public:
  void put(net::HourlyFlows flows);
  const std::vector<net::HourlyFlows>& hours() const noexcept {
    return hours_;
  }
  void for_each(const std::function<void(const net::HourlyFlows&)>& visit) const;

  /// Total packets across all hours.
  std::uint64_t total_packets() const noexcept;

 private:
  std::vector<net::HourlyFlows> hours_;
};

}  // namespace iotscope::telescope
