// Persistence and iteration over a telescope's hourly flowtuple files —
// the on-disk layout the analysis pipeline consumes (one file per hour,
// matching the paper's "unique compressed files representing hourly
// traffic").
#pragma once

#include <filesystem>
#include <functional>
#include <optional>
#include <vector>

#include "net/flowtuple.hpp"

namespace iotscope::telescope {

/// A directory of hourly flowtuple files.
class FlowTupleStore {
 public:
  /// Opens (and creates if absent) the store rooted at dir.
  explicit FlowTupleStore(std::filesystem::path dir);

  /// Persists one hourly file; overwrites any existing file for the hour.
  void put(const net::HourlyFlows& flows) const;

  /// Loads the file for an interval; nullopt if the hour is absent
  /// (the paper itself had a missing-hours day it discarded).
  std::optional<net::HourlyFlows> get(int interval) const;

  /// Sorted list of intervals present on disk.
  std::vector<int> intervals() const;

  /// Calls visit for every stored hour in interval order. This is the
  /// streaming entry point the pipeline uses so that full-scale runs never
  /// hold more than one hour in memory.
  void for_each(const std::function<void(const net::HourlyFlows&)>& visit) const;

  /// Like for_each, but reads and decodes up to `prefetch` upcoming hourly
  /// files on a background reader thread while the visitor processes the
  /// current one — disk I/O and codec work overlap the analysis. Visit
  /// order is still strictly interval order; a decode error is rethrown on
  /// the calling thread. prefetch == 0 degenerates to the serial path.
  void for_each(const std::function<void(const net::HourlyFlows&)>& visit,
                std::size_t prefetch) const;

  const std::filesystem::path& directory() const noexcept { return dir_; }

 private:
  std::filesystem::path dir_;
};

/// An in-memory store variant used by tests and small benches: same
/// interface shape, no disk round-trip.
class MemoryFlowStore {
 public:
  void put(net::HourlyFlows flows);
  const std::vector<net::HourlyFlows>& hours() const noexcept {
    return hours_;
  }
  void for_each(const std::function<void(const net::HourlyFlows&)>& visit) const;

  /// Total packets across all hours.
  std::uint64_t total_packets() const noexcept;

 private:
  std::vector<net::HourlyFlows> hours_;
};

}  // namespace iotscope::telescope
