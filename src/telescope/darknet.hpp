// The monitored dark IP space. The UCSD telescope observes a full /8
// (~16.7M routable but unused addresses); we model an arbitrary prefix so
// tests can use small telescopes and benches the full /8.
#pragma once

#include "net/ipv4.hpp"
#include "util/rng.hpp"

namespace iotscope::telescope {

/// A contiguous dark address block monitored by the telescope.
class DarknetSpace {
 public:
  /// Default mirrors the UCSD /8 scale (we use the reserved 10/8 block so
  /// synthetic captures never collide with real routable space).
  DarknetSpace() noexcept
      : prefix_(net::Ipv4Address::from_octets(10, 0, 0, 0), 8) {}
  explicit DarknetSpace(net::Ipv4Prefix prefix) noexcept : prefix_(prefix) {}

  const net::Ipv4Prefix& prefix() const noexcept { return prefix_; }

  /// Number of dark addresses monitored.
  std::uint64_t address_count() const noexcept { return prefix_.size(); }

  /// True if the destination falls inside the monitored space.
  bool observes(net::Ipv4Address dst) const noexcept {
    return prefix_.contains(dst);
  }

  /// Uniformly random dark address — what a random-scanning worm hits when
  /// its generated target happens to fall into the telescope.
  net::Ipv4Address random_address(util::Rng& rng) const noexcept {
    return prefix_.at(rng.uniform(0, address_count() - 1));
  }

  /// The i-th dark address (used by sequential scanners).
  net::Ipv4Address address_at(std::uint64_t i) const noexcept {
    return prefix_.at(i % address_count());
  }

 private:
  net::Ipv4Prefix prefix_;
};

}  // namespace iotscope::telescope
