// The telescope capture engine: ingests packets destined to the dark space
// and aggregates them into hourly flowtuple records, mimicking the corsaro
// pipeline that produced the files the paper analyzed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow_batch.hpp"
#include "net/flowtuple.hpp"
#include "net/packet.hpp"
#include "telescope/darknet.hpp"
#include "util/flat_hash.hpp"
#include "util/timebase.hpp"

namespace iotscope::telescope {

/// Counters for traffic handled by the capture engine.
struct CaptureStats {
  std::uint64_t packets_observed = 0;   ///< packets inside the dark space
  std::uint64_t packets_dropped = 0;    ///< destinations outside the space
  std::uint64_t out_of_window = 0;      ///< timestamps outside the window
  std::uint64_t flows_emitted = 0;      ///< aggregated records emitted
  int hours_rotated = 0;                ///< completed hourly files
};

/// Aggregates packets into hourly flowtuple batches.
///
/// Packets must be fed in non-decreasing timestamp order (the simulator
/// replays time forward); when an hour boundary passes, the accumulated
/// records are flushed to the sink callback as a completed FlowBatch
/// (column vectors — see net/flow_batch.hpp).
class TelescopeCapture {
 public:
  using Sink = std::function<void(net::FlowBatch&&)>;

  /// sink receives each completed hourly batch; must not be empty.
  TelescopeCapture(DarknetSpace space, Sink sink);

  /// Ingests one packet. Packets outside the dark space are counted as
  /// dropped (the telescope only sees its own prefix). A packet whose
  /// timestamp falls outside the analysis window is dropped and counted
  /// (stats().out_of_window and the `ingest.out_of_window` obs counter,
  /// with one warning log per capture) — never clamped into hour 0 or
  /// 142, which would corrupt both edge intervals of every hourly
  /// series under continuous ingestion.
  void ingest(const net::PacketRecord& packet);

  /// Flushes the final partially-filled hour. Call once after the last
  /// packet; further ingests are rejected.
  void finish();

  const CaptureStats& stats() const noexcept { return stats_; }
  const DarknetSpace& space() const noexcept { return space_; }

 private:
  void rotate_to(int interval);

  DarknetSpace space_;
  Sink sink_;
  CaptureStats stats_;
  int current_interval_ = -1;
  bool finished_ = false;
  bool warned_out_of_window_ = false;
  /// Flowtuple-key -> packet count for the hour in flight. A flat
  /// open-addressing table (one contiguous slot array, epoch clear at
  /// rotation) instead of a node-based map: at telescope scale this map
  /// takes one insert-or-bump per packet, so probe locality and
  /// allocation-free steady state dominate the ingest cost.
  util::FlatKeyMap<net::FlowTuple, std::uint64_t, net::FlowTupleKeyHash,
                   net::FlowTupleKeyEq>
      accumulator_;
};

}  // namespace iotscope::telescope
