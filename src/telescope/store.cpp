#include "telescope/store.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/io.hpp"

namespace iotscope::telescope {

FlowTupleStore::FlowTupleStore(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

void FlowTupleStore::put(const net::HourlyFlows& flows) const {
  net::FlowTupleCodec::write_file(
      dir_ / net::FlowTupleCodec::file_name(flows.interval), flows);
}

std::optional<net::HourlyFlows> FlowTupleStore::get(int interval) const {
  const auto path = dir_ / net::FlowTupleCodec::file_name(interval);
  if (!std::filesystem::exists(path)) return std::nullopt;
  return net::FlowTupleCodec::read_file(path);
}

std::vector<int> FlowTupleStore::intervals() const {
  std::vector<int> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const auto name = entry.path().filename().string();
    // flowtuple-NNNN.ift
    if (name.size() == 18 && name.rfind("flowtuple-", 0) == 0 &&
        name.substr(14) == ".ift") {
      out.push_back(std::stoi(name.substr(10, 4)));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FlowTupleStore::for_each(
    const std::function<void(const net::HourlyFlows&)>& visit) const {
  for (int interval : intervals()) {
    auto flows = get(interval);
    if (flows) visit(*flows);
  }
}

void FlowTupleStore::for_each(
    const std::function<void(const net::HourlyFlows&)>& visit,
    std::size_t prefetch) const {
  if (prefetch == 0) {
    for_each(visit);
    return;
  }
  const auto order = intervals();

  std::mutex mutex;
  std::condition_variable produced;
  std::condition_variable consumed;
  std::deque<net::HourlyFlows> queue;
  bool reader_done = false;
  bool abort = false;
  std::exception_ptr reader_error;

  std::thread reader([&] {
    for (int interval : order) {
      std::optional<net::HourlyFlows> flows;
      try {
        flows = get(interval);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        reader_error = std::current_exception();
        break;
      }
      if (!flows) continue;
      std::unique_lock<std::mutex> lock(mutex);
      consumed.wait(lock, [&] { return queue.size() < prefetch || abort; });
      if (abort) return;
      queue.push_back(std::move(*flows));
      lock.unlock();
      produced.notify_one();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      reader_done = true;
    }
    produced.notify_one();
  });

  try {
    for (;;) {
      net::HourlyFlows flows;
      {
        std::unique_lock<std::mutex> lock(mutex);
        produced.wait(lock, [&] { return !queue.empty() || reader_done; });
        if (queue.empty()) break;
        flows = std::move(queue.front());
        queue.pop_front();
      }
      consumed.notify_one();
      visit(flows);
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      abort = true;
    }
    consumed.notify_all();
    reader.join();
    throw;
  }
  reader.join();
  if (reader_error) std::rethrow_exception(reader_error);
}

void MemoryFlowStore::put(net::HourlyFlows flows) {
  hours_.push_back(std::move(flows));
  std::sort(hours_.begin(), hours_.end(),
            [](const net::HourlyFlows& a, const net::HourlyFlows& b) {
              return a.interval < b.interval;
            });
}

void MemoryFlowStore::for_each(
    const std::function<void(const net::HourlyFlows&)>& visit) const {
  for (const auto& h : hours_) visit(h);
}

std::uint64_t MemoryFlowStore::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const auto& h : hours_) total += h.total_packets();
  return total;
}

}  // namespace iotscope::telescope
