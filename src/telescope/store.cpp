#include "telescope/store.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "obs/metrics.hpp"
#include "util/bounded_queue.hpp"
#include "util/io.hpp"

namespace iotscope::telescope {

FlowTupleStore::FlowTupleStore(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

void FlowTupleStore::put(const net::HourlyFlows& flows) const {
  net::FlowTupleCodec::write_file(
      dir_ / net::FlowTupleCodec::file_name(flows.interval), flows);
}

std::optional<net::HourlyFlows> FlowTupleStore::get(int interval) const {
  const auto path = dir_ / net::FlowTupleCodec::file_name(interval);
  if (!std::filesystem::exists(path)) return std::nullopt;
  return net::FlowTupleCodec::read_file(path);
}

std::vector<int> FlowTupleStore::intervals() const {
  std::vector<int> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const auto name = entry.path().filename().string();
    // flowtuple-NNNN.ift — the interval must be exactly four decimal
    // digits. Stray files like "flowtuple-abcd.ift" are skipped (they are
    // not ours), where std::stoi would have thrown std::invalid_argument.
    if (name.size() != 18 || name.rfind("flowtuple-", 0) != 0 ||
        name.substr(14) != ".ift") {
      continue;
    }
    int interval = 0;
    bool digits = true;
    for (std::size_t i = 10; i < 14; ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') {
        digits = false;
        break;
      }
      interval = interval * 10 + (c - '0');
    }
    if (digits) out.push_back(interval);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FlowTupleStore::for_each(
    const std::function<void(const net::HourlyFlows&)>& visit) const {
  auto& decode_stage = obs::Registry::instance().stage("store.decode");
  for (int interval : intervals()) {
    std::optional<net::HourlyFlows> flows;
    {
      obs::ScopedTimer timer(decode_stage);
      flows = get(interval);
    }
    if (flows) visit(*flows);
  }
}

void FlowTupleStore::for_each(
    const std::function<void(const net::HourlyFlows&)>& visit,
    std::size_t prefetch) const {
  if (prefetch == 0) {
    for_each(visit);
    return;
  }
  const auto order = intervals();
  auto& decode_stage = obs::Registry::instance().stage("store.decode");

  // Error paths mirror run_study's (DESIGN.md §8): a visitor exception
  // closes the queue (the reader's next push fails and it exits), a
  // decode error is recorded, the queue closed so the consumer drains
  // and stops, and the error is rethrown here after the join. Both sides
  // always join before an exception leaves this frame.
  util::BoundedQueue<net::HourlyFlows> queue(prefetch, "store.prefetch");
  std::exception_ptr reader_error;

  std::thread reader([&] {
    for (int interval : order) {
      std::optional<net::HourlyFlows> flows;
      try {
        obs::ScopedTimer timer(decode_stage);
        flows = get(interval);
      } catch (...) {
        reader_error = std::current_exception();
        break;
      }
      if (!flows) continue;
      if (!queue.push(std::move(*flows))) return;  // consumer aborted
    }
    queue.close();  // end of stream (or decode error recorded above)
  });

  try {
    while (auto flows = queue.pop()) visit(*flows);
  } catch (...) {
    queue.close();
    reader.join();
    throw;
  }
  reader.join();
  if (reader_error) std::rethrow_exception(reader_error);
}

void MemoryFlowStore::put(net::HourlyFlows flows) {
  hours_.push_back(std::move(flows));
  std::sort(hours_.begin(), hours_.end(),
            [](const net::HourlyFlows& a, const net::HourlyFlows& b) {
              return a.interval < b.interval;
            });
}

void MemoryFlowStore::for_each(
    const std::function<void(const net::HourlyFlows&)>& visit) const {
  for (const auto& h : hours_) visit(h);
}

std::uint64_t MemoryFlowStore::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const auto& h : hours_) total += h.total_packets();
  return total;
}

}  // namespace iotscope::telescope
