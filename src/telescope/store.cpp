#include "telescope/store.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "util/io.hpp"

namespace iotscope::telescope {

namespace {

/// Atomic hourly-file publication: the bytes land in a dot-prefixed temp
/// file in the same directory (same filesystem, so rename() cannot fall
/// back to copy), then rename into the final name. A concurrent reader —
/// the streaming study polling the directory — therefore either sees no
/// file or the complete hour, never a torn prefix mid-write. The temp
/// name is excluded from intervals() by the strict flowtuple-NNNN.ift
/// pattern match, and a per-process counter keeps concurrent writers of
/// the same hour from colliding on it.
void publish_atomically(const std::filesystem::path& dir,
                        const std::string& file_name,
                        const std::string& blob) {
  static std::atomic<std::uint64_t> sequence{0};
  const auto tmp =
      dir / ("." + file_name + ".tmp" +
             std::to_string(sequence.fetch_add(1, std::memory_order_relaxed)));
  util::write_file(tmp, blob);
  std::filesystem::rename(tmp, dir / file_name);
}

}  // namespace

FlowTupleStore::FlowTupleStore(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

void FlowTupleStore::put(const net::HourlyFlows& flows) const {
  put(net::FlowBatch::from_rows(flows));
}

void FlowTupleStore::put(const net::FlowBatch& batch) const {
  std::string blob;
  net::FlowTupleCodec::encode(blob, batch);
  publish_atomically(dir_, net::FlowTupleCodec::file_name(batch.interval),
                     blob);
}

std::optional<net::HourlyFlows> FlowTupleStore::get(int interval) const {
  const auto path = dir_ / net::FlowTupleCodec::file_name(interval);
  if (!std::filesystem::exists(path)) return std::nullopt;
  return net::FlowTupleCodec::read_file(path);
}

std::optional<net::FlowBatch> FlowTupleStore::get_batch(int interval) const {
  const auto path = dir_ / net::FlowTupleCodec::file_name(interval);
  if (!std::filesystem::exists(path)) return std::nullopt;
  return net::FlowTupleCodec::decode_columns(util::read_file(path));
}

std::vector<int> FlowTupleStore::intervals() const {
  std::vector<int> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const auto name = entry.path().filename().string();
    // flowtuple-NNNN.ift — the interval must be exactly four decimal
    // digits. Stray files like "flowtuple-abcd.ift" are skipped (they are
    // not ours), where std::stoi would have thrown std::invalid_argument.
    if (name.size() != 18 || name.rfind("flowtuple-", 0) != 0 ||
        name.substr(14) != ".ift") {
      continue;
    }
    int interval = 0;
    bool digits = true;
    for (std::size_t i = 10; i < 14; ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') {
        digits = false;
        break;
      }
      interval = interval * 10 + (c - '0');
    }
    if (digits) out.push_back(interval);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FlowTupleStore::for_each(
    const std::function<void(const net::FlowBatch&)>& visit,
    std::size_t prefetch) const {
  for_each<const std::function<void(const net::FlowBatch&)>&>(visit, prefetch);
}

std::vector<int> RotationWatcher::poll() {
  std::vector<int> fresh;
  for (const int interval : store_->intervals()) {
    if (seen_.insert(interval).second) fresh.push_back(interval);
  }
  return fresh;  // intervals() is sorted, so fresh is too
}

void MemoryFlowStore::put(net::HourlyFlows flows) {
  hours_.push_back(std::move(flows));
  std::sort(hours_.begin(), hours_.end(),
            [](const net::HourlyFlows& a, const net::HourlyFlows& b) {
              return a.interval < b.interval;
            });
}

void MemoryFlowStore::for_each(
    const std::function<void(const net::HourlyFlows&)>& visit) const {
  for (const auto& h : hours_) visit(h);
}

std::uint64_t MemoryFlowStore::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const auto& h : hours_) total += h.total_packets();
  return total;
}

}  // namespace iotscope::telescope
