#include "telescope/store.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>

#include "util/io.hpp"
#include "util/mmap.hpp"

namespace iotscope::telescope {

namespace {

/// Atomic hourly-file publication: the bytes land in a dot-prefixed temp
/// file in the same directory (same filesystem, so rename() cannot fall
/// back to copy), then rename into the final name. A concurrent reader —
/// the streaming study polling the directory — therefore either sees no
/// file or the complete hour, never a torn prefix mid-write. The temp
/// name is excluded from intervals() by the strict flowtuple-NNNN
/// pattern match, and a per-process counter keeps concurrent writers of
/// the same hour from colliding on it.
void publish_atomically(const std::filesystem::path& dir,
                        const std::string& file_name,
                        const std::string& blob) {
  static std::atomic<std::uint64_t> sequence{0};
  const auto tmp =
      dir / ("." + file_name + ".tmp" +
             std::to_string(sequence.fetch_add(1, std::memory_order_relaxed)));
  util::write_file(tmp, blob);
  std::filesystem::rename(tmp, dir / file_name);
}

/// Parses "flowtuple-NNNN.ift" / "flowtuple-NNNN.iftc" (exactly four
/// decimal digits); nullopt for anything else — stray files and the
/// dot-prefixed temp names are not ours.
std::optional<int> parse_hour_file(const std::string& name) {
  const bool raw = name.size() == 18 && name.compare(14, 4, ".ift") == 0;
  const bool compressed =
      name.size() == 19 && name.compare(14, 5, ".iftc") == 0;
  if ((!raw && !compressed) || name.rfind("flowtuple-", 0) != 0) {
    return std::nullopt;
  }
  int interval = 0;
  for (std::size_t i = 10; i < 14; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    interval = interval * 10 + (c - '0');
  }
  return interval;
}

/// Lazily-registered handles for the compressed-read-path metrics
/// (DESIGN.md §9: look handles up once, record at hour granularity).
struct StoreMetrics {
  obs::Counter& blocks_decoded;
  obs::Counter& blocks_skipped;
  obs::Counter& bytes_compressed;
  obs::Counter& bytes_raw;
  obs::Gauge& ratio_permille;

  static StoreMetrics& instance() {
    static StoreMetrics m{
        obs::Registry::instance().counter("store.blocks.decoded"),
        obs::Registry::instance().counter("store.blocks.skipped"),
        obs::Registry::instance().counter("store.bytes.compressed"),
        obs::Registry::instance().counter("store.bytes.raw"),
        obs::Registry::instance().gauge("store.compression.ratio_permille")};
    return m;
  }

  void record(const net::BlockScanStats& s) {
    blocks_decoded.add(s.blocks_decoded);
    blocks_skipped.add(s.blocks_skipped);
    bytes_compressed.add(s.bytes_compressed);
    bytes_raw.add(s.bytes_raw);
    // Cumulative raw:compressed ratio of everything decoded so far, in
    // permille (3120 = 3.12x). A gauge because it is a derived level,
    // not a monotone count.
    const std::uint64_t compressed = bytes_compressed.value();
    if (compressed > 0) {
      ratio_permille.set(
          static_cast<std::int64_t>(bytes_raw.value() * 1000 / compressed));
    }
  }
};

}  // namespace

FlowTupleStore::FlowTupleStore(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

void FlowTupleStore::put(const net::HourlyFlows& flows) const {
  put(net::FlowBatch::from_rows(flows));
}

void FlowTupleStore::put(const net::FlowBatch& batch) const {
  std::string blob;
  if (write_format_ == StoreFormat::Compressed) {
    net::CompressedFlowCodec::encode(blob, batch, block_records_);
    publish_atomically(
        dir_, net::CompressedFlowCodec::file_name(batch.interval), blob);
  } else {
    net::FlowTupleCodec::encode(blob, batch);
    publish_atomically(dir_, net::FlowTupleCodec::file_name(batch.interval),
                       blob);
  }
}

void FlowTupleStore::put_hostile(int interval, std::string_view bytes,
                                 StoreFormat format) const {
  const std::string name = format == StoreFormat::Compressed
                               ? net::CompressedFlowCodec::file_name(interval)
                               : net::FlowTupleCodec::file_name(interval);
  publish_atomically(dir_, name, std::string(bytes));
}

std::optional<net::HourlyFlows> FlowTupleStore::get(int interval) const {
  const auto path = dir_ / net::FlowTupleCodec::file_name(interval);
  if (std::filesystem::exists(path)) {
    return net::FlowTupleCodec::read_file(path);
  }
  auto batch = load_batch(interval, nullptr);
  if (!batch) return std::nullopt;
  return batch->to_rows();
}

std::optional<net::FlowBatch> FlowTupleStore::get_batch(int interval) const {
  return load_batch(interval, nullptr);
}

std::optional<net::FlowBatch> FlowTupleStore::load_batch(
    int interval, const net::BlockPredicate* predicate) const {
  const auto compressed_path =
      dir_ / net::CompressedFlowCodec::file_name(interval);
  if (std::filesystem::exists(compressed_path)) {
    util::MmapFile map(compressed_path);
    net::BlockScanStats stats;
    if (predicate != nullptr && !predicate->may_match_hour(interval)) {
      // Whole hour outside the window: only the 30-byte file header is
      // ever faulted in; every block counts as skipped.
      stats.blocks_skipped =
          net::CompressedFlowCodec::peek_block_count(map.view());
      StoreMetrics::instance().record(stats);
      return std::nullopt;
    }
    net::FlowBatch batch;
    if (predicate != nullptr) {
      // Pushdown may skip blocks; MADV_SEQUENTIAL readahead would fault
      // their pages in anyway, so only the full decode advises.
      batch = net::CompressedFlowCodec::decode_filtered(map.view(),
                                                        *predicate, &stats);
    } else {
      map.advise_sequential();
      batch = net::CompressedFlowCodec::decode(map.view(), &stats);
    }
    StoreMetrics::instance().record(stats);
    return batch;
  }

  const auto raw_path = dir_ / net::FlowTupleCodec::file_name(interval);
  if (!std::filesystem::exists(raw_path)) return std::nullopt;
  if (predicate != nullptr && !predicate->may_match_hour(interval)) {
    return std::nullopt;
  }
  net::FlowBatch batch =
      net::FlowTupleCodec::decode_columns(util::read_file(raw_path));
  if (predicate == nullptr) return batch;
  net::FlowBatch filtered;
  net::filter_batch(batch, *predicate, filtered);
  return filtered;
}

std::vector<FlowTupleStore::HourPartLoader> FlowTupleStore::hour_loaders(
    int interval, std::size_t max_parts,
    const std::optional<net::BlockPredicate>& predicate) const {
  std::vector<HourPartLoader> loaders;
  if (max_parts == 0) max_parts = 1;

  const auto compressed_path =
      dir_ / net::CompressedFlowCodec::file_name(interval);
  if (std::filesystem::exists(compressed_path)) {
    if (predicate && !predicate->may_match_hour(interval)) {
      // Whole hour outside the window: account the skip now (only the
      // 30-byte file header is faulted in), return no work.
      util::MmapFile map(compressed_path);
      net::BlockScanStats stats;
      stats.blocks_skipped =
          net::CompressedFlowCodec::peek_block_count(map.view());
      StoreMetrics::instance().record(stats);
      return loaders;
    }
    std::uint32_t block_count;
    {
      util::MmapFile map(compressed_path);
      block_count = net::CompressedFlowCodec::peek_block_count(map.view());
    }
    const std::uint32_t parts = static_cast<std::uint32_t>(std::min<std::size_t>(
        max_parts, std::max<std::uint32_t>(block_count, 1)));
    auto& decode_stage = obs::Registry::instance().stage("store.decode");
    for (std::uint32_t p = 0; p < parts; ++p) {
      // Even split of the block index space; part p owns
      // [p*count/parts, (p+1)*count/parts).
      const std::uint32_t begin = block_count * p / parts;
      const std::uint32_t end = block_count * (p + 1) / parts;
      loaders.push_back([compressed_path, begin, end, predicate,
                         &decode_stage]() {
        obs::ScopedTimer timer(decode_stage);
        util::MmapFile map(compressed_path);
        net::BlockScanStats stats;
        net::FlowBatch batch = net::CompressedFlowCodec::decode_blocks(
            map.view(), begin, end, predicate ? &*predicate : nullptr,
            &stats);
        StoreMetrics::instance().record(stats);
        return batch;
      });
    }
    return loaders;
  }

  const auto raw_path = dir_ / net::FlowTupleCodec::file_name(interval);
  if (!std::filesystem::exists(raw_path)) return loaders;
  if (predicate && !predicate->may_match_hour(interval)) return loaders;
  // Raw hours decode in one piece — the fixed-stride format decodes at
  // memory bandwidth, so splitting it buys nothing over the copy cost.
  auto& decode_stage = obs::Registry::instance().stage("store.decode");
  loaders.push_back([raw_path, predicate, &decode_stage]() {
    obs::ScopedTimer timer(decode_stage);
    net::FlowBatch batch =
        net::FlowTupleCodec::decode_columns(util::read_file(raw_path));
    if (!predicate) return batch;
    net::FlowBatch filtered;
    net::filter_batch(batch, *predicate, filtered);
    return filtered;
  });
  return loaders;
}

std::vector<int> FlowTupleStore::intervals() const {
  std::vector<int> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (const auto interval = parse_hour_file(entry.path().filename().string())) {
      out.push_back(*interval);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

CompactStats FlowTupleStore::compact(const CompactOptions& options) const {
  CompactStats stats;
  for (const int interval : intervals()) {
    const auto raw_path = dir_ / net::FlowTupleCodec::file_name(interval);
    if (!std::filesystem::exists(raw_path)) continue;  // already compressed
    const std::string raw = util::read_file(raw_path);
    const net::FlowBatch batch = net::FlowTupleCodec::decode_columns(raw);
    std::string blob;
    net::CompressedFlowCodec::encode(blob, batch, options.block_records);
    if (options.verify) {
      const net::FlowBatch round = net::CompressedFlowCodec::decode(blob);
      if (round.interval != batch.interval ||
          round.start_time != batch.start_time ||
          !round.same_records(batch)) {
        throw util::IoError("compact: round-trip verification failed for "
                            "interval " +
                            std::to_string(interval));
      }
    }
    publish_atomically(dir_, net::CompressedFlowCodec::file_name(interval),
                       blob);
    if (!options.keep_uncompressed) std::filesystem::remove(raw_path);
    ++stats.hours;
    stats.records += batch.size();
    stats.bytes_raw += raw.size();
    stats.bytes_compressed += blob.size();
  }
  return stats;
}

void FlowTupleStore::scan(
    const std::function<void(const net::FlowBatch&)>& visit,
    const ScanOptions& options) const {
  const net::BlockPredicate* predicate =
      options.predicate ? &*options.predicate : nullptr;
  if (options.readers <= 1) {
    if (predicate == nullptr) {
      for_each(visit, options.prefetch);
      return;
    }
    auto& decode_stage = obs::Registry::instance().stage("store.decode");
    for (const int interval : intervals()) {
      std::optional<net::FlowBatch> batch;
      {
        obs::ScopedTimer timer(decode_stage);
        batch = load_batch(interval, predicate);
      }
      if (batch) visit(static_cast<const net::FlowBatch&>(*batch));
    }
    return;
  }

  // Parallel in-order scan: `readers` threads claim hours from an atomic
  // cursor, decode concurrently, and deposit results into an ordered
  // ready-map the calling thread drains in strict interval order. A
  // bounded deposit window (readers + prefetch) caps resident batches;
  // the worker holding the next-to-emit hour always fits inside it, so
  // the window cannot deadlock. Errors on either side flip `abort`,
  // every thread drains its gauge accounting, and the first error is
  // rethrown here after all readers join — the same contract as
  // for_each's prefetch path (DESIGN.md §8).
  const auto order = intervals();
  const std::size_t window =
      options.readers + std::max<std::size_t>(options.prefetch, 1);
  auto& decode_stage = obs::Registry::instance().stage("store.decode");
  auto& mem_gauge = obs::Registry::instance().gauge("pipeline.batch.mem_peak");

  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::size_t, std::optional<net::FlowBatch>> ready;
  std::size_t next_emit = 0;
  bool abort = false;
  std::exception_ptr error;
  std::atomic<std::size_t> next_claim{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t idx =
          next_claim.fetch_add(1, std::memory_order_relaxed);
      if (idx >= order.size()) return;
      std::optional<net::FlowBatch> batch;
      try {
        obs::ScopedTimer timer(decode_stage);
        batch = load_batch(order[idx], predicate);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        abort = true;
        cv.notify_all();
        return;
      }
      std::int64_t bytes = 0;
      if (batch) {
        bytes = static_cast<std::int64_t>(batch->resident_bytes());
        mem_gauge.add(bytes);
      }
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return abort || idx < next_emit + window; });
      if (abort) {
        if (bytes != 0) mem_gauge.add(-bytes);
        return;
      }
      ready.emplace(idx, std::move(batch));
      cv.notify_all();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(options.readers);
  for (std::size_t i = 0; i < options.readers; ++i) {
    threads.emplace_back(worker);
  }

  struct GaugeRelease {
    obs::Gauge& gauge;
    std::int64_t bytes;
    ~GaugeRelease() { gauge.add(-bytes); }
  };
  const auto shut_down = [&] {
    {
      std::lock_guard<std::mutex> lock(mutex);
      abort = true;
    }
    cv.notify_all();
    for (auto& t : threads) t.join();
    for (auto& [idx, batch] : ready) {
      if (batch) {
        mem_gauge.add(-static_cast<std::int64_t>(batch->resident_bytes()));
      }
    }
    ready.clear();
  };

  try {
    while (next_emit < order.size()) {
      std::optional<net::FlowBatch> batch;
      bool aborted = false;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock,
                [&] { return abort || ready.count(next_emit) != 0; });
        if (abort) {
          aborted = true;
        } else {
          auto it = ready.find(next_emit);
          batch = std::move(it->second);
          ready.erase(it);
          ++next_emit;
          cv.notify_all();  // a depositor may be waiting on the window
        }
      }
      if (aborted) break;
      if (batch) {
        GaugeRelease release{
            mem_gauge, static_cast<std::int64_t>(batch->resident_bytes())};
        visit(static_cast<const net::FlowBatch&>(*batch));
      }
    }
  } catch (...) {
    shut_down();
    throw;
  }
  shut_down();
  if (error) std::rethrow_exception(error);
}

void FlowTupleStore::for_each(
    const std::function<void(const net::FlowBatch&)>& visit,
    std::size_t prefetch) const {
  for_each<const std::function<void(const net::FlowBatch&)>&>(visit, prefetch);
}

std::vector<int> RotationWatcher::poll() {
  std::vector<int> fresh;
  for (const int interval : store_->intervals()) {
    if (seen_.insert(interval).second) fresh.push_back(interval);
  }
  return fresh;  // intervals() is sorted, so fresh is too
}

void MemoryFlowStore::put(net::HourlyFlows flows) {
  hours_.push_back(std::move(flows));
  std::sort(hours_.begin(), hours_.end(),
            [](const net::HourlyFlows& a, const net::HourlyFlows& b) {
              return a.interval < b.interval;
            });
}

void MemoryFlowStore::for_each(
    const std::function<void(const net::HourlyFlows&)>& visit) const {
  for (const auto& h : hours_) visit(h);
}

std::uint64_t MemoryFlowStore::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const auto& h : hours_) total += h.total_packets();
  return total;
}

}  // namespace iotscope::telescope
