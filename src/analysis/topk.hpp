// Generic frequency counting and top-k extraction used by every
// "Top N ..." table in the paper.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace iotscope::analysis {

/// A key type usable with Counter::top(): must supply a strict weak
/// order via operator< so count ties break deterministically.
template <typename K>
concept OrderedKey = requires(const K& a, const K& b) {
  { a < b } -> std::convertible_to<bool>;
};

/// Accumulates counts per key and extracts the k heaviest entries.
template <typename Key, typename Hash = std::hash<Key>>
class Counter {
 public:
  void add(const Key& key, std::uint64_t count = 1) {
    counts_[key] += count;
    total_ += count;
  }

  std::uint64_t count(const Key& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Sum of every added count. Maintained on add(), so this is O(1) —
  /// it used to walk all distinct keys, which made per-record callers
  /// quadratic in the number of distinct keys.
  std::uint64_t total() const noexcept { return total_; }

  std::size_t distinct() const noexcept { return counts_.size(); }

  struct Entry {
    Key key;
    std::uint64_t count;
  };

  /// The k heaviest entries, descending by count; ties break by
  /// ascending key order (Key::operator<), so the result is fully
  /// deterministic and independent of hash-map iteration order. Keys
  /// without operator< fail to compile here (see the static_assert) —
  /// supply an ordered key or sort the raw() map yourself.
  std::vector<Entry> top(std::size_t k) const {
    static_assert(OrderedKey<Key>,
                  "analysis::Counter::top requires an ordered Key "
                  "(operator< returning bool) so count ties break "
                  "deterministically; add operator< to the key type or "
                  "rank the raw() map with an explicit comparator");
    std::vector<Entry> all;
    all.reserve(counts_.size());
    for (const auto& [key, count] : counts_) all.push_back({key, count});
    std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    if (all.size() > k) all.resize(k);
    return all;
  }

  const std::unordered_map<Key, std::uint64_t, Hash>& raw() const noexcept {
    return counts_;
  }

 private:
  std::unordered_map<Key, std::uint64_t, Hash> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace iotscope::analysis
