// Generic frequency counting and top-k extraction used by every
// "Top N ..." table in the paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace iotscope::analysis {

/// Accumulates counts per key and extracts the k heaviest entries.
template <typename Key, typename Hash = std::hash<Key>>
class Counter {
 public:
  void add(const Key& key, std::uint64_t count = 1) { counts_[key] += count; }

  std::uint64_t count(const Key& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& [k, v] : counts_) t += v;
    return t;
  }

  std::size_t distinct() const noexcept { return counts_.size(); }

  struct Entry {
    Key key;
    std::uint64_t count;
  };

  /// The k heaviest entries, descending by count (ties broken by key order
  /// via stable comparison on the key's operator< when available is NOT
  /// required; ties are broken arbitrarily but deterministically by sort).
  std::vector<Entry> top(std::size_t k) const {
    std::vector<Entry> all;
    all.reserve(counts_.size());
    for (const auto& [key, count] : counts_) all.push_back({key, count});
    std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    if (all.size() > k) all.resize(k);
    return all;
  }

  const std::unordered_map<Key, std::uint64_t, Hash>& raw() const noexcept {
    return counts_;
  }

 private:
  std::unordered_map<Key, std::uint64_t, Hash> counts_;
};

}  // namespace iotscope::analysis
