#include "analysis/ecdf.hpp"

#include <algorithm>
#include <cmath>

namespace iotscope::analysis {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::below(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

std::vector<std::pair<double, double>> Ecdf::log_curve(double lo, double hi,
                                                       int points) const {
  std::vector<std::pair<double, double>> curve;
  if (points < 2 || lo <= 0.0 || hi <= lo) return curve;
  curve.reserve(static_cast<std::size_t>(points));
  const double step = std::log(hi / lo) / (points - 1);
  for (int i = 0; i < points; ++i) {
    const double x = lo * std::exp(step * i);
    curve.emplace_back(x, at(x));
  }
  return curve;
}

}  // namespace iotscope::analysis
