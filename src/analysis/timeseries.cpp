#include "analysis/timeseries.hpp"

namespace iotscope::analysis {

std::vector<double> HourlySeries::daily_totals() const {
  std::vector<double> days(util::AnalysisWindow::kDays, 0.0);
  for (int i = 0; i < size(); ++i) {
    days[static_cast<std::size_t>(util::AnalysisWindow::day_of_interval(i))] +=
        values_[static_cast<std::size_t>(i)];
  }
  return days;
}

std::vector<int> HourlySeries::spikes(double multiple) const {
  std::vector<int> out;
  const double threshold = mean() * multiple;
  for (int i = 0; i < size(); ++i) {
    if (values_[static_cast<std::size_t>(i)] > threshold) out.push_back(i);
  }
  return out;
}

}  // namespace iotscope::analysis
