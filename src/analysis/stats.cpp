#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iotscope::analysis {

Descriptive describe(std::span<const double> xs) noexcept {
  Descriptive d;
  d.n = xs.size();
  if (xs.empty()) return d;
  d.min = xs[0];
  d.max = xs[0];
  for (double x : xs) {
    d.sum += x;
    d.min = std::min(d.min, x);
    d.max = std::max(d.max, x);
  }
  d.mean = d.sum / static_cast<double>(d.n);
  if (d.n > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - d.mean) * (x - d.mean);
    d.stddev = std::sqrt(ss / static_cast<double>(d.n - 1));
  }
  return d;
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double regularized_incomplete_beta(double a, double b, double x) noexcept {
  // Lentz's continued fraction; standard Numerical-Recipes-style betacf.
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;

  auto betacf = [](double aa, double bb, double xx) {
    constexpr int kMaxIter = 300;
    constexpr double kEps = 3e-14;
    constexpr double kFpMin = 1e-300;
    const double qab = aa + bb;
    const double qap = aa + 1.0;
    const double qam = aa - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * xx / qap;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
      const int m2 = 2 * m;
      double num = m * (bb - m) * xx / ((qam + m2) * (aa + m2));
      d = 1.0 + num * d;
      if (std::fabs(d) < kFpMin) d = kFpMin;
      c = 1.0 + num / c;
      if (std::fabs(c) < kFpMin) c = kFpMin;
      d = 1.0 / d;
      h *= d * c;
      num = -(aa + m) * (qab + m) * xx / ((aa + m2) * (qap + m2));
      d = 1.0 + num * d;
      if (std::fabs(d) < kFpMin) d = kFpMin;
      c = 1.0 + num / c;
      if (std::fabs(c) < kFpMin) c = kFpMin;
      d = 1.0 / d;
      const double del = d * c;
      h *= del;
      if (std::fabs(del - 1.0) < kEps) break;
    }
    return h;
  };

  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_two_sided_p(double t, double df) noexcept {
  if (df <= 0.0) return 1.0;
  const double x = df / (df + t * t);
  return regularized_incomplete_beta(df / 2.0, 0.5, x);
}

PearsonResult pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("pearson: mismatched sample sizes");
  }
  PearsonResult result;
  result.n = x.size();
  if (x.size() < 2) return result;

  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return result;  // constant series: r = 0
  result.r = sxy / std::sqrt(sxx * syy);
  result.r = std::clamp(result.r, -1.0, 1.0);
  if (x.size() >= 3 && std::fabs(result.r) < 1.0) {
    const double df = n - 2.0;
    result.t = result.r * std::sqrt(df / (1.0 - result.r * result.r));
    result.p_value = student_t_two_sided_p(result.t, df);
  } else if (std::fabs(result.r) >= 1.0) {
    result.t = std::numeric_limits<double>::infinity();
    result.p_value = 0.0;
  }
  return result;
}

MannWhitneyResult mann_whitney_u(std::span<const double> x,
                                 std::span<const double> y) {
  MannWhitneyResult result;
  result.n1 = x.size();
  result.n2 = y.size();
  if (x.empty() || y.empty()) return result;

  // Pool and midrank.
  struct Obs {
    double value;
    int group;  // 0 = x, 1 = y
  };
  std::vector<Obs> pool;
  pool.reserve(x.size() + y.size());
  for (double v : x) pool.push_back({v, 0});
  for (double v : y) pool.push_back({v, 1});
  std::sort(pool.begin(), pool.end(),
            [](const Obs& a, const Obs& b) { return a.value < b.value; });

  const double n1 = static_cast<double>(x.size());
  const double n2 = static_cast<double>(y.size());
  const double n = n1 + n2;

  double rank_sum_x = 0.0;
  double tie_term = 0.0;  // sum of (t^3 - t) over tie groups
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].value == pool[i].value) ++j;
    const double tied = static_cast<double>(j - i);
    // Midrank of positions i..j-1 (1-based ranks).
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].group == 0) rank_sum_x += midrank;
    }
    if (tied > 1.0) tie_term += tied * tied * tied - tied;
    i = j;
  }

  result.u = rank_sum_x - n1 * (n1 + 1.0) / 2.0;
  const double mean_u = n1 * n2 / 2.0;
  const double var_u =
      (n1 * n2 / 12.0) * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All observations identical: no evidence of difference.
    result.z = 0.0;
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction toward the mean.
  double num = result.u - mean_u;
  if (num > 0.5) {
    num -= 0.5;
  } else if (num < -0.5) {
    num += 0.5;
  } else {
    num = 0.0;
  }
  result.z = num / std::sqrt(var_u);
  result.p_value = 2.0 * (1.0 - normal_cdf(std::fabs(result.z)));
  result.p_value = std::clamp(result.p_value, 0.0, 1.0);
  return result;
}

}  // namespace iotscope::analysis
