// Fixed-length hourly series over the 143-interval analysis window — the
// backbone of Figures 2, 5, 7, 9 and 10.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/timebase.hpp"

namespace iotscope::analysis {

/// A per-interval accumulator over the analysis window.
class HourlySeries {
 public:
  HourlySeries() : values_(util::AnalysisWindow::kHours, 0.0) {}

  void add(int interval, double amount = 1.0) noexcept {
    if (interval >= 0 && interval < static_cast<int>(values_.size())) {
      values_[static_cast<std::size_t>(interval)] += amount;
    }
  }

  double at(int interval) const noexcept {
    if (interval < 0 || interval >= static_cast<int>(values_.size())) return 0;
    return values_[static_cast<std::size_t>(interval)];
  }

  std::span<const double> values() const noexcept { return values_; }
  int size() const noexcept { return static_cast<int>(values_.size()); }

  double total() const noexcept {
    double t = 0;
    for (double v : values_) t += v;
    return t;
  }

  double max() const noexcept {
    double m = 0;
    for (double v : values_) m = v > m ? v : m;
    return m;
  }

  /// Interval index of the maximum value (first if tied).
  int argmax() const noexcept {
    int best = 0;
    for (int i = 1; i < size(); ++i) {
      if (values_[static_cast<std::size_t>(i)] >
          values_[static_cast<std::size_t>(best)])
        best = i;
    }
    return best;
  }

  /// Mean over all intervals.
  double mean() const noexcept {
    return values_.empty() ? 0.0 : total() / static_cast<double>(values_.size());
  }

  /// Sums each day's 24 intervals (last day has 23), giving the daily
  /// series used by Figure 2 and the "daily mean/sigma" statistics.
  std::vector<double> daily_totals() const;

  /// Intervals whose value exceeds multiple * the series mean — the spike
  /// detector used when narrating Figure 7's attack intervals.
  std::vector<int> spikes(double multiple) const;

 private:
  std::vector<double> values_;
};

}  // namespace iotscope::analysis
