// Plain-text table rendering for the bench harness output ("paper vs
// measured" rows) plus CSV export for plotting.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace iotscope::analysis {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  std::string render() const;

  /// Writes the table as CSV (cells containing commas are quoted).
  void write_csv(const std::filesystem::path& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iotscope::analysis
