// Empirical CDF — the representation behind the paper's Figures 6 and 11
// (distribution of per-device packet counts on a log-x axis).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iotscope::analysis {

/// An empirical cumulative distribution function over a sample.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> sample);

  /// Fraction of the sample <= x; 0 for an empty sample.
  double at(double x) const noexcept;

  /// q-th quantile (q in [0,1], nearest-rank); 0 for an empty sample.
  double quantile(double q) const noexcept;

  /// Fraction of the sample >= x.
  double tail_at_least(double x) const noexcept { return 1.0 - below(x); }

  std::size_t size() const noexcept { return sorted_.size(); }
  const std::vector<double>& sorted() const noexcept { return sorted_; }

  /// Samples the CDF at log-spaced points from lo to hi (inclusive),
  /// mirroring the log-x axes of Figures 6/11. Returns (x, F(x)) pairs.
  std::vector<std::pair<double, double>> log_curve(double lo, double hi,
                                                   int points) const;

 private:
  double below(double x) const noexcept;  // fraction strictly below x
  std::vector<double> sorted_;
};

}  // namespace iotscope::analysis
