// Statistical primitives the paper's evaluation uses: descriptive stats,
// Pearson correlation with a t-test p-value, and the Mann–Whitney U test
// with normal approximation and tie correction (the paper reports
// U = 6061, Z = -5.95, p < 0.0001 comparing CPS vs consumer backscatter).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace iotscope::analysis {

/// Basic descriptive statistics of a sample.
struct Descriptive {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes descriptive statistics; zero-initialized result for empty input.
Descriptive describe(std::span<const double> xs) noexcept;

/// Result of a Pearson product-moment correlation.
struct PearsonResult {
  double r = 0.0;        ///< correlation coefficient in [-1, 1]
  double t = 0.0;        ///< t statistic with n-2 degrees of freedom
  double p_value = 1.0;  ///< two-sided p-value
  std::size_t n = 0;
};

/// Pearson correlation of two equal-length samples (n >= 3 for a p-value).
PearsonResult pearson(std::span<const double> x, std::span<const double> y);

/// Result of a two-sided Mann–Whitney U test.
struct MannWhitneyResult {
  double u = 0.0;        ///< U statistic (of the first sample)
  double z = 0.0;        ///< normal approximation z-score (tie-corrected)
  double p_value = 1.0;  ///< two-sided p-value
  std::size_t n1 = 0;
  std::size_t n2 = 0;
};

/// Mann–Whitney U (Wilcoxon rank-sum) with midranks for ties and the
/// normal approximation with tie-corrected variance and continuity
/// correction. Suitable for the paper's sample sizes (hours, devices).
MannWhitneyResult mann_whitney_u(std::span<const double> x,
                                 std::span<const double> y);

/// Standard normal CDF.
double normal_cdf(double z) noexcept;

/// Two-sided p-value from a Student t statistic with df degrees of
/// freedom, computed via the regularized incomplete beta function.
double student_t_two_sided_p(double t, double df) noexcept;

/// Regularized incomplete beta function I_x(a, b) (continued fraction).
double regularized_incomplete_beta(double a, double b, double x) noexcept;

}  // namespace iotscope::analysis
