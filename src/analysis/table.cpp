#include "analysis/table.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/io.hpp"

namespace iotscope::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TextTable::write_csv(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw util::IoError("cannot create " + path.string());
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace iotscope::analysis
