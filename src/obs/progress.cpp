#include "obs/progress.hpp"

#include "obs/metrics.hpp"

namespace iotscope::obs {

namespace {
/// "1.2M" / "350.4k" / "87" — obs keeps its own tiny formatter so the
/// layer stays below util.
std::string human_count(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fB", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}
}  // namespace

ProgressMeter::ProgressMeter(std::string label, std::size_t total_units,
                             std::FILE* out, std::uint64_t min_interval_ms)
    : label_(std::move(label)),
      total_units_(total_units),
      out_(out),
      min_interval_ns_(min_interval_ms * 1000000ULL),
      start_ns_(now_ns()) {}

void ProgressMeter::update(std::size_t units_done, std::uint64_t packets,
                           std::size_t devices) {
  const std::uint64_t now = now_ns();
  if (now - last_emit_ns_ < min_interval_ns_) return;
  last_emit_ns_ = now;
  emit(units_done, packets, devices, false);
}

void ProgressMeter::finish(std::size_t units_done, std::uint64_t packets,
                           std::size_t devices) {
  emit(units_done, packets, devices, true);
}

void ProgressMeter::emit(std::size_t units_done, std::uint64_t packets,
                         std::size_t devices, bool final_line) {
  const double elapsed_s =
      static_cast<double>(now_ns() - start_ns_) / 1e9;
  const double rate =
      elapsed_s > 0 ? static_cast<double>(packets) / elapsed_s : 0.0;
  std::fprintf(out_, "[iotscope progress] %s: %zu/%zu hours, %s pkts "
                     "(%s pkts/s), %zu devices%s\n",
               label_.c_str(), units_done, total_units_,
               human_count(static_cast<double>(packets)).c_str(),
               human_count(rate).c_str(), devices,
               final_line ? " — done" : "");
  std::fflush(out_);
}

}  // namespace iotscope::obs
