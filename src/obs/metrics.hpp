// Lightweight observability substrate: named counters, gauges, and
// fixed-bucket latency histograms ("stages"), collected in a global
// registry and aggregated only at read time.
//
// Design rules (DESIGN.md §9):
//  * Counters are striped across cache-line-padded atomic slots, one per
//    writer-thread stripe, so concurrent increments never contend — the
//    same idea as the shard-local accumulators in the analysis pipeline.
//    value() sums the stripes at read time.
//  * Stages are RAII-timed latency histograms with power-of-two
//    nanosecond buckets; recording is a handful of relaxed atomic adds.
//  * Instrumentation sits at hour/job granularity, never inside the
//    per-record hot loops, so the cost is a few clock reads per hour.
//  * This layer depends on nothing but the standard library (it sits
//    below util so the thread pool, queues, and time base can use it).
//
// Handles returned by the registry are stable for the process lifetime;
// call sites that record frequently should look the handle up once and
// keep the reference.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iotscope::obs {

/// Number of independent counter slots; increments from up to this many
/// threads proceed with no cache-line sharing at all, and more threads
/// only ever share a slot, never a lock.
inline constexpr std::size_t kCounterStripes = 16;

/// Histogram buckets: bucket i counts durations with bit_width(ns) == i,
/// i.e. [2^(i-1), 2^i) ns; the last bucket absorbs everything longer
/// (2^46 ns ≈ 19.5 hours).
inline constexpr std::size_t kHistogramBuckets = 47;

/// Monotonic nanosecond clock used by all spans and stall timers.
std::uint64_t now_ns() noexcept;

/// Globally enables/disables collection (default: enabled). Disabling
/// short-circuits counter adds and timer clock reads; it never clears
/// already-collected values (use Registry::reset for that).
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

namespace detail {
struct alignas(64) Stripe {
  std::atomic<std::uint64_t> value{0};
};
/// Stable per-thread stripe slot (round-robin over kCounterStripes).
std::size_t stripe_index() noexcept;
}  // namespace detail

/// A monotonically increasing, write-contention-free counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    stripes_[detail::stripe_index()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum of all stripes (aggregation happens here, at read time).
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& stripe : stripes_) {
      stripe.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<detail::Stripe, kCounterStripes> stripes_;
};

/// A point-in-time value with a high-water mark (e.g. queue depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  /// Adjusts the value by a (possibly negative) delta from any thread —
  /// set() would race when several writers account shared state such as
  /// bytes resident in a queue. Updates the high-water mark like set().
  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// A named pipeline stage: call count, cumulative and maximum duration,
/// and a fixed power-of-two latency histogram. Record with ScopedTimer
/// (preferred) or record_ns() directly.
class Stage {
 public:
  void record_ns(std::uint64_t ns) noexcept;

  std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Approximate percentile (0 < q <= 1) from the histogram; returns the
  /// upper bound of the bucket holding the q-th recorded duration.
  std::uint64_t percentile_ns(double q) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

/// RAII span: times its scope and records into a Stage on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stage& stage) noexcept
      : stage_(enabled() ? &stage : nullptr),
        start_ns_(stage_ ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (stage_ != nullptr) stage_->record_ns(now_ns() - start_ns_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stage* stage_;
  std::uint64_t start_ns_;
};

// ---------------------------------------------------------------------
// Registry and snapshots

struct CounterSample {
  std::string name;
  std::uint64_t value;
};

struct GaugeSample {
  std::string name;
  std::int64_t value;
  std::int64_t max;
};

struct StageSample {
  std::string name;
  std::uint64_t calls;
  std::uint64_t total_ns;
  std::uint64_t max_ns;
  std::uint64_t p50_ns;
  std::uint64_t p99_ns;
  /// (bucket upper bound in ns, count) for every non-empty bucket.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// A consistent-enough point-in-time copy of every registered metric
/// (individual values are read with relaxed atomics; the snapshot is
/// safe to take while writers are active).
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<StageSample> stages;

  const StageSample* stage(std::string_view name) const noexcept;
  const CounterSample* counter(std::string_view name) const noexcept;
  const GaugeSample* gauge(std::string_view name) const noexcept;
};

/// The process-wide metric registry. Registration (first lookup of a
/// name) takes a mutex; the returned handles are lock-free and stable.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Stage& stage(std::string_view name);

  /// Samples every metric, sorted by name.
  Snapshot snapshot() const;

  /// Zeroes all values (registrations survive). Meant for benchmarks
  /// measuring one region; not for use concurrent with writers.
  void reset() noexcept;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Human-readable multi-line summary of a snapshot.
std::string render_text(const Snapshot& snapshot);

/// Machine-readable JSON document (counters, gauges, stages).
std::string render_json(const Snapshot& snapshot);

}  // namespace iotscope::obs
