#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

// Header-only escaping shared with the serve/ JSON emitters; obs links
// against nothing above it, and this include keeps it that way.
#include "util/json.hpp"

namespace iotscope::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

namespace detail {
std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return index;
}
}  // namespace detail

// ---------------------------------------------------------------- Stage

namespace {
std::size_t bucket_of(std::uint64_t ns) noexcept {
  const auto width = static_cast<std::size_t>(std::bit_width(ns));
  return std::min(width, kHistogramBuckets - 1);
}

std::uint64_t bucket_upper_ns(std::size_t bucket) noexcept {
  // Bucket i holds durations with bit_width == i: [2^(i-1), 2^i) ns.
  return bucket >= 63 ? ~0ULL : (1ULL << bucket);
}
}  // namespace

void Stage::record_ns(std::uint64_t ns) noexcept {
  if (!enabled()) return;
  calls_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t Stage::percentile_ns(double q) const noexcept {
  const std::uint64_t n = calls();
  if (n == 0) return 0;
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // ceil(q * n) samples.
  const auto rank = static_cast<std::uint64_t>(std::min(
      static_cast<double>(n),
      std::max(1.0, std::ceil(q * static_cast<double>(n)))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) return bucket_upper_ns(i);
  }
  return max_ns();
}

void Stage::reset() noexcept {
  calls_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------- Registry

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map keeps snapshots sorted by name; unique_ptr keeps handle
  // addresses stable across rehashes/registrations.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Stage>, std::less<>> stages;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    it = i.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Stage& Registry::stage(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.stages.find(name);
  if (it == i.stages.end()) {
    it = i.stages.emplace(std::string(name), std::make_unique<Stage>()).first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  Snapshot snap;
  snap.counters.reserve(i.counters.size());
  for (const auto& [name, counter] : i.counters) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(i.gauges.size());
  for (const auto& [name, gauge] : i.gauges) {
    snap.gauges.push_back({name, gauge->value(), gauge->max()});
  }
  snap.stages.reserve(i.stages.size());
  for (const auto& [name, stage] : i.stages) {
    StageSample sample;
    sample.name = name;
    sample.calls = stage->calls();
    sample.total_ns = stage->total_ns();
    sample.max_ns = stage->max_ns();
    sample.p50_ns = stage->percentile_ns(0.50);
    sample.p99_ns = stage->percentile_ns(0.99);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const auto count = stage->bucket(b);
      if (count > 0) sample.buckets.emplace_back(bucket_upper_ns(b), count);
    }
    snap.stages.push_back(std::move(sample));
  }
  return snap;
}

void Registry::reset() noexcept {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, counter] : i.counters) counter->reset();
  for (auto& [name, gauge] : i.gauges) gauge->reset();
  for (auto& [name, stage] : i.stages) stage->reset();
}

// ------------------------------------------------------------ Snapshot

const StageSample* Snapshot::stage(std::string_view name) const noexcept {
  for (const auto& sample : stages) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const CounterSample* Snapshot::counter(std::string_view name) const noexcept {
  for (const auto& sample : counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const GaugeSample* Snapshot::gauge(std::string_view name) const noexcept {
  for (const auto& sample : gauges) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

// ------------------------------------------------------------ rendering

namespace {

/// "1.23s" / "45.6ms" / "789us" / "12ns".
std::string human_ns(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  util::append_json_escaped(out, s);
  out += '"';
}

}  // namespace

std::string render_text(const Snapshot& snapshot) {
  std::string out = "== iotscope metrics ==\n";
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& c : snapshot.counters) {
      char line[128];
      std::snprintf(line, sizeof(line), "  %-40s %20llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += line;
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& g : snapshot.gauges) {
      char line[160];
      std::snprintf(line, sizeof(line), "  %-40s %20lld (max %lld)\n",
                    g.name.c_str(), static_cast<long long>(g.value),
                    static_cast<long long>(g.max));
      out += line;
    }
  }
  if (!snapshot.stages.empty()) {
    out += "stages:                                      calls      total"
           "       mean        p50        p99        max\n";
    for (const auto& s : snapshot.stages) {
      const std::uint64_t mean = s.calls > 0 ? s.total_ns / s.calls : 0;
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %-40s %9llu %10s %10s %10s %10s %10s\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.calls),
                    human_ns(s.total_ns).c_str(), human_ns(mean).c_str(),
                    human_ns(s.p50_ns).c_str(), human_ns(s.p99_ns).c_str(),
                    human_ns(s.max_ns).c_str());
      out += line;
    }
  }
  return out;
}

std::string render_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, c.name);
    out += ": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, g.name);
    out += ": {\"value\": " + std::to_string(g.value) +
           ", \"max\": " + std::to_string(g.max) + "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"stages\": {";
  first = true;
  for (const auto& s : snapshot.stages) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, s.name);
    out += ": {\"calls\": " + std::to_string(s.calls) +
           ", \"total_ns\": " + std::to_string(s.total_ns) +
           ", \"max_ns\": " + std::to_string(s.max_ns) +
           ", \"p50_ns\": " + std::to_string(s.p50_ns) +
           ", \"p99_ns\": " + std::to_string(s.p99_ns) + ", \"buckets\": [";
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "[" + std::to_string(s.buckets[b].first) + ", " +
             std::to_string(s.buckets[b].second) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace iotscope::obs
