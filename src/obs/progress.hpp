// Periodic one-line progress reporting for long pipeline runs: hours
// processed, packet throughput, devices discovered. Rate-limited so a
// per-hour update cadence never floods the terminal.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace iotscope::obs {

/// Emits "[iotscope progress] 42/143 hours, 1.2M pkts (350.4k pkts/s),
/// 1234 devices" lines to a stream (default stderr), at most once per
/// min_interval_ms. finish() always emits a final line.
class ProgressMeter {
 public:
  explicit ProgressMeter(std::string label, std::size_t total_units,
                         std::FILE* out = stderr,
                         std::uint64_t min_interval_ms = 500);

  /// Rate-limited update; prints only when the interval has elapsed.
  void update(std::size_t units_done, std::uint64_t packets,
              std::size_t devices);

  /// Unconditional final line with overall throughput.
  void finish(std::size_t units_done, std::uint64_t packets,
              std::size_t devices);

 private:
  void emit(std::size_t units_done, std::uint64_t packets,
            std::size_t devices, bool final_line);

  std::string label_;
  std::size_t total_units_;
  std::FILE* out_;
  std::uint64_t min_interval_ns_;
  std::uint64_t start_ns_;
  std::uint64_t last_emit_ns_ = 0;
};

}  // namespace iotscope::obs
