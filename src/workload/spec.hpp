// The scenario specification: every measured marginal the paper reports,
// expressed as data tables that drive the traffic synthesizer. This file
// is the single place where "the paper's numbers" live; the synthesizer
// reads quotas/budgets from here and the bench harness compares its
// measurements back against the same constants.
//
// All packet budgets are at full scale (the paper's 141.3M packets over
// 143 hours); ScenarioConfig's traffic_scale multiplies them. All device
// quotas are at full inventory scale (331k devices); inventory_scale
// multiplies those.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace iotscope::workload {

/// Global volume decomposition (Section IV; reconciled with Figure 4 —
/// see EXPERIMENTS.md for notes on the paper's internal inconsistencies).
struct VolumeSpec {
  double tcp_scan_packets = 100.1e6;    ///< "slightly over 100M", 99.97% SYN
  double tcp_scan_consumer_share = 0.546;  ///< 382K/h of 700K/h hourly means
  double udp_packets = 13.0e6;          ///< "about 13M UDP packets"
  double udp_consumer_share = 0.63;     ///< consumer devices sent 63%
  double backscatter_packets = 10.3e6;  ///< 8.2% of total, 839 victims
  double backscatter_cps_share = 0.73;  ///< 73% of backscatter from CPS
  double icmp_scan_packets = 0.325e6;   ///< 0.23% of total, 56 devices
  double icmp_scan_consumer_share = 0.93;
  double misconfig_packets = 17.0e6;    ///< residual TCP-other, CPS-heavy
  double misconfig_cps_share = 0.95;
};

/// Device-population targets (Section III-B).
struct PopulationSpec {
  std::size_t inventory_devices = 331000;
  std::size_t compromised_consumer = 15299;
  std::size_t compromised_cps = 11582;
  std::size_t tcp_scanner_devices = 12363;   ///< 55% consumer
  double tcp_scanner_consumer_share = 0.55;
  std::size_t udp_sender_devices = 25242;    ///< 60% consumer
  double udp_sender_consumer_share = 0.60;
  std::size_t icmp_scanner_devices = 56;     ///< 32 consumer
  std::size_t icmp_scanner_consumer = 32;
  std::size_t dos_victims = 839;             ///< 53% CPS
  double dos_victim_cps_share = 0.53;
  /// Fig 2: fraction first observed on each analysis day.
  double discovery_day_weights[6] = {0.46, 0.108, 0.108, 0.108, 0.108, 0.108};
};

/// One scanned service (row of Table V).
struct ScanServiceSpec {
  std::string name;                  ///< e.g. "Telnet"
  std::vector<net::Port> ports;      ///< {23, 2323, 23231}
  std::vector<double> port_weights;  ///< probability of each port
  double packet_share_pct;           ///< % of all TCP scanning packets
  double consumer_packet_share;      ///< fraction of the service's packets
                                     ///< emitted by consumer devices
  int consumer_devices;              ///< device quota, full scale
  int cps_devices;
};

/// Rows of Table V plus the residual "Other" bucket (CP = 93.3%).
const std::vector<ScanServiceSpec>& scan_services();

/// Index of a service by name within scan_services(); -1 if absent.
int scan_service_index(const std::string& name);

/// One targeted UDP port (row of Table IV).
struct UdpPortSpec {
  std::string service;  ///< assigned service name or "Not Assigned"
  net::Port port;
  double packet_share_pct;  ///< % of all UDP packets
  int devices;              ///< devices observed targeting the port
};

/// Rows of Table IV; the remaining 89.3% of UDP packets go to a uniform
/// sweep over the full port space.
const std::vector<UdpPortSpec>& udp_ports();

/// A scripted DoS-attack victim (the named case studies of Section IV-B).
struct DosEventSpec {
  std::string label;          ///< for reports, e.g. "CN-EthernetIP-1"
  bool cps = true;            ///< realm of the victim
  std::string country;        ///< hosting country
  std::string cps_protocol;   ///< required protocol (CPS victims)
  int consumer_type = -1;     ///< required ConsumerType (consumer victims)
  net::Port service_port = 0; ///< attacked service (backscatter src port)
  std::vector<int> intervals; ///< attack hours (paper's 1-based figure axis
                              ///< converted to 0-based indices)
  double total_packets;       ///< backscatter budget over those intervals
  double icmp_fraction = 0.2; ///< share of replies that are ICMP vs TCP
};

/// The scripted attack case studies: the two Chinese Ethernet/IP PLCs,
/// the Swiss Telvent device, and the Dutch and British printers, plus two
/// unnamed heavy CPS victims (the paper reports 7 devices >= 100K packets,
/// 5 of them CPS).
const std::vector<DosEventSpec>& dos_events();

/// Background (non-scripted) victim population: Pareto-like packet counts
/// fitted to Fig 6's backscatter CDF (median < 170, 17% >= 10K).
struct DosBackgroundSpec {
  double pareto_xm = 12.4;
  double pareto_alpha = 0.2646;
  double cap = 150000.0;
  /// Country quotas for victims (Fig 8a): counts at full scale.
  /// Listed as (country, cps victims, consumer victims).
  struct CountryQuota {
    std::string country;
    int cps;
    int consumer;
  };
  std::vector<CountryQuota> country_quotas;
};

const DosBackgroundSpec& dos_background();

/// A scripted scanning "hero" — a single device the paper singles out.
struct ScanHeroSpec {
  std::string label;
  std::string service;       ///< must match a ScanServiceSpec name
  bool cps = false;
  std::string country;
  int consumer_type = -1;    ///< required ConsumerType (consumer heroes)
  std::string cps_protocol;  ///< required protocol (CPS heroes)
  double packet_share;       ///< fraction of the service's packets
  /// If non-empty, all packets land in these intervals (burst heroes).
  std::vector<int> burst_intervals;
};

/// Named heavy hitters: the 7 Telnet devices (55% of Telnet scans), the 5
/// SSH devices behind the interval-32/69 spikes, the Canadian BACnet/IP
/// device scanning BackroomNet from interval 113, the Australian CWMP
/// router, the 5 CWMP CPS devices, and the Dominican IP camera behind the
/// interval-119 port spike.
const std::vector<ScanHeroSpec>& scan_heroes();

/// Shape defaults for the adversarial scenario engine's campaigns
/// (workload/engine.hpp, DESIGN.md §17) — kept here so the "nasty"
/// numbers live beside the paper's clean marginals. Sources: the IoT-BDA
/// botnet lifecycle (staged recruitment ramps), the Merit telescope's
/// diurnal/bursty unsolicited traffic, and pulse-wave DDoS reports.
struct CampaignShapeSpec {
  double recruitment_growth = 2.5;  ///< exponential infection-ramp exponent
  double zipf_exponent = 1.2;       ///< source-population skew
  int diurnal_period_hours = 24;    ///< rate-cycle period
  int pulse_period_hours = 24;      ///< pulse-wave DoS repetition period
  int pulse_on_hours = 2;           ///< attack hours per pulse period
};

/// Default seed shared by examples and benches.
inline constexpr std::uint64_t kDefaultSeed = 20170412;

}  // namespace iotscope::workload
