#include "workload/spec.hpp"

#include "inventory/device.hpp"

namespace iotscope::workload {

namespace {
// Paper figures use 1-based interval axes; we store 0-based indices.
constexpr int iv(int one_based) { return one_based - 1; }

using inventory::ConsumerType;
constexpr int ct(ConsumerType t) { return static_cast<int>(t); }
}  // namespace

const std::vector<ScanServiceSpec>& scan_services() {
  // Columns: name, ports, port weights, % of TCP scan packets, consumer
  // packet share, consumer device quota, CPS device quota (Table V).
  static const std::vector<ScanServiceSpec> kServices = {
      {"Telnet", {23, 2323, 23231}, {0.90, 0.08, 0.02}, 50.2, 0.634, 643, 553},
      {"HTTP", {80, 8080, 81}, {0.70, 0.22, 0.08}, 9.4, 0.945, 1418, 345},
      {"SSH", {22}, {1.0}, 7.7, 0.337, 64, 80},
      {"BackroomNet", {3387}, {1.0}, 6.2, 0.0, 0, 1},
      {"CWMP", {7547}, {1.0}, 4.5, 0.448, 169, 244},
      {"WSDAPI-S", {5358}, {1.0}, 4.1, 0.59, 94, 48},
      {"MSSQLServer", {1433}, {1.0}, 3.3, 0.362, 8, 13},
      {"Kerberos", {88}, {1.0}, 2.7, 0.99, 1061, 23},
      {"MS DS", {445}, {1.0}, 2.5, 0.453, 43, 330},
      {"EthernetIP IO", {2222}, {1.0}, 0.7, 0.416, 50, 65},
      {"iRDMI", {8000}, {1.0}, 0.7, 0.985, 1055, 18},
      {"Unassigned 21677", {21677}, {1.0}, 0.6, 0.0, 1, 87},
      {"RDP", {3389}, {1.0}, 0.5, 0.468, 42, 61},
      {"FTP", {21}, {1.0}, 0.3, 0.46, 20, 33},
      // Residual bucket: remaining packets (100 - 93.3 = 6.7%) spread over
      // many ports by the remaining 12,363 - 6,569 = 5,794 scanners. The
      // realm split balances the named rows so the total lands on the
      // paper's 55% consumer share of scanners.
      {"Other", {}, {}, 6.7, 0.45, 2132, 3662},
  };
  return kServices;
}

int scan_service_index(const std::string& name) {
  const auto& services = scan_services();
  for (std::size_t i = 0; i < services.size(); ++i) {
    if (services[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const std::vector<UdpPortSpec>& udp_ports() {
  // Table IV: top 10 targeted UDP ports (share of all UDP packets).
  static const std::vector<UdpPortSpec> kPorts = {
      {"Not Assigned", 37547, 2.52, 10115},
      {"NetBIOS", 137, 2.06, 144},
      {"Not Assigned", 53413, 2.05, 91},
      {"Not Assigned", 32124, 1.08, 9488},
      {"Not Assigned", 28183, 0.94, 9710},
      {"mDNS", 5353, 0.76, 165},
      {"Not Assigned", 4605, 0.38, 150},
      {"DNS", 53, 0.33, 158},
      {"Teredo", 3544, 0.26, 226},
      {"OpenVPN", 1194, 0.26, 96},
  };
  return kPorts;
}

const std::vector<DosEventSpec>& dos_events() {
  // Section IV-B's case studies. Interval lists use the figures' 1-based
  // axis; totals are engineered so the narrated dominance shares hold
  // (e.g. >99% of intervals 6-8 from the first Chinese PLC).
  static const std::vector<DosEventSpec> kEvents = {
      {"CN-EthernetIP-1", true, "China", "Ethernet/IP", -1,
       net::ports::kEthernetIp,
       {iv(6), iv(7), iv(8), iv(53), iv(54), iv(55), iv(56)}, 3.4e6, 0.25},
      {"CN-EthernetIP-2", true, "China", "Ethernet/IP", -1,
       net::ports::kEthernetIp, {iv(99), iv(127)}, 1.1e6, 0.25},
      {"CH-Telvent", true, "Switzerland", "Telvent OASyS DNA", -1, 20000,
       {iv(94)}, 0.5e6, 0.3},
      {"NL-Printer", false, "Netherlands", "", ct(ConsumerType::Printer),
       9100, {iv(49)}, 104000.0, 0.1},
      {"UK-Printer", false, "United Kingdom", "",
       ct(ConsumerType::Printer), 9100, {iv(81)}, 250000.0, 0.1},
      // Two further unnamed heavy CPS victims: the paper counts 7 devices
      // >= 100K backscatter packets, 5 of them CPS.
      {"BR-Heavy", true, "Brazil", "", -1, 502, {iv(20), iv(21)}, 300000.0,
       0.3},
      {"AR-Heavy", true, "Argentina", "", -1, 502, {iv(110), iv(111)},
       280000.0, 0.3},
      // One non-CPS heavy besides the UK printer (7 total >= 100K).
      {"SG-Router", false, "Singapore", "", ct(ConsumerType::Router), 80,
       {iv(65), iv(66)}, 150000.0, 0.15},
  };
  return kEvents;
}

const DosBackgroundSpec& dos_background() {
  static const DosBackgroundSpec kSpec = {
      12.4,
      0.2646,
      150000.0,
      {
          // Fig 8a country quotas (cps, consumer victims at full scale).
          {"China", 103, 30},
          {"United States", 49, 25},
          {"Singapore", 8, 64},
          {"Indonesia", 6, 52},
          {"Republic of Korea", 25, 20},
          {"Taiwan", 20, 18},
          {"Russian Federation", 18, 22},
          {"Vietnam", 12, 20},
          {"Thailand", 10, 18},
          {"India", 12, 14},
          {"Turkey", 14, 10},
          {"Brazil", 9, 7},
          {"United Kingdom", 5, 5},
          {"Argentina", 3, 2},
          {"Switzerland", 3, 1},
          {"Netherlands", 4, 4},
          // Remaining victims are spread over the country long tail by the
          // assigner until the total victim quota is met.
      },
  };
  return kSpec;
}

const std::vector<ScanHeroSpec>& scan_heroes() {
  static const std::vector<ScanHeroSpec> kHeroes = {
      // --- Telnet: 7 devices contribute 55% of all Telnet scans ---
      {"telnet-cam-1", "Telnet", false, "Vietnam", ct(ConsumerType::IpCamera),
       "", 0.11, {}},
      {"telnet-cam-2", "Telnet", false, "Brazil", ct(ConsumerType::IpCamera),
       "", 0.09, {}},
      {"telnet-cam-3", "Telnet", false, "Turkey", ct(ConsumerType::IpCamera),
       "", 0.08, {}},
      {"telnet-router", "Telnet", false, "Russian Federation",
       ct(ConsumerType::Router), "", 0.08, {}},
      {"telnet-dvr", "Telnet", false, "Indonesia", ct(ConsumerType::TvBoxDvr),
       "", 0.07, {}},
      {"telnet-printer", "Telnet", false, "India", ct(ConsumerType::Printer),
       "", 0.05, {}},
      {"telnet-cps-power", "Telnet", true, "China", -1, "Modbus TCP", 0.04,
       {}},
      {"telnet-cps-utility", "Telnet", true, "Ukraine", -1,
       "Siemens Spectrum PowerTG", 0.03, {}},
      // --- SSH: interval-32 spike (242K packets, 93% from 5 devices) and
      //     interval-69 spike (253K, ~90% from the 3 CPS devices) ---
      {"ssh-router-ru", "SSH", false, "Russian Federation",
       ct(ConsumerType::Router), "", 0.016, {iv(32)}},
      {"ssh-router-au", "SSH", false, "Australia", ct(ConsumerType::Router),
       "", 0.016, {iv(32)}},
      {"ssh-cps-cn1", "SSH", true, "China", -1, "", 0.042, {iv(32), iv(69)}},
      {"ssh-cps-cn2", "SSH", true, "China", -1, "", 0.042, {iv(32), iv(69)}},
      {"ssh-cps-br", "SSH", true, "Brazil", -1, "", 0.042, {iv(32), iv(69)}},
      // --- BackroomNet: one Canadian BACnet/IP building-automation device
      //     scanning port 3387 from interval 113 onward (~200K/h) ---
      {"backroomnet-ca", "BackroomNet", true, "Canada", -1, "BACnet/IP", 1.0,
       {}},  // burst window handled specially (intervals 113..143)
      // --- CWMP: one Australian router at 10.6% plus 5 CPS devices
      //     totalling ~25% (3 Ethernet/IP in Korea, one SNC GENe in China,
      //     one Telvent in South Africa) ---
      {"cwmp-router-au", "CWMP", false, "Australia", ct(ConsumerType::Router),
       "", 0.106, {}},
      {"cwmp-cps-kr1", "CWMP", true, "Republic of Korea", -1, "Ethernet/IP",
       0.055, {}},
      {"cwmp-cps-kr2", "CWMP", true, "Republic of Korea", -1, "Ethernet/IP",
       0.05, {}},
      {"cwmp-cps-kr3", "CWMP", true, "Republic of Korea", -1, "Ethernet/IP",
       0.05, {}},
      {"cwmp-cps-cn", "CWMP", true, "China", -1, "SNC GENe", 0.05, {}},
      {"cwmp-cps-za", "CWMP", true, "South Africa", -1, "Telvent OASyS DNA",
       0.045, {}},
      // --- interval-119 port spike: a Dominican IP camera scanning 10,249
      //     ports on 55 destinations ---
      {"portspike-do-cam", "Other", false, "Dominican Republic",
       ct(ConsumerType::IpCamera), "", 0.003, {iv(119)}},
  };
  return kHeroes;
}

}  // namespace iotscope::workload
