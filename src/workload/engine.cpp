#include "workload/engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <utility>

#include "net/block_codec.hpp"
#include "net/flowtuple.hpp"
#include "telescope/darknet.hpp"
#include "util/logging.hpp"
#include "util/timebase.hpp"

namespace iotscope::workload {

namespace {

/// Reassigned-lease / Zipf-source pool: the upper /16 of the RFC 2544
/// benchmarking block, disjoint from the heavy hitter's 198.18.0.0/16
/// neighbourhood so campaign sources never alias the skew source.
net::Ipv4Prefix synthetic_source_prefix() {
  return net::Ipv4Prefix(net::Ipv4Address::from_octets(198, 19, 0, 0), 16);
}

int clamp_hour(int hour) {
  return std::clamp(hour, 0, util::AnalysisWindow::kHours);
}

/// Triangle-wave diurnal multiplier in [0.5, 1.0]: peak mid-period,
/// trough at the period boundary. Integer arithmetic (no libm) so the
/// planned counts are identical across platforms.
double diurnal_multiplier(int hour, int begin, int period) {
  const int pos = (hour - begin) % period;
  const int dist = std::min(pos, period - pos);
  return 0.5 + static_cast<double>(dist) / static_cast<double>(period);
}

}  // namespace

ScenarioEngine::ScenarioEngine(ScenarioScript script)
    : script_(std::move(script)), scenario_(build_scenario(script_.base)) {
  plan_campaigns();
}

void ScenarioEngine::plan_campaigns() {
  // Planning stream, decorrelated from both the builder's and the
  // synthesizer's derived streams.
  util::Rng rng(script_.base.seed ^ util::stable_hash(script_.name) ^
                0x5CE4A71E6E61ULL);

  // Campaign actors come from the *unplanned* inventory — devices the
  // base workload never makes emit — so every campaign packet stream is
  // a device's whole observable footprint and the ground truth can
  // assert exact first/last intervals and packet totals.
  std::vector<std::uint32_t> pool;
  const auto& devices = scenario_.inventory.devices();
  for (std::uint32_t i = 0; i < devices.size(); ++i) {
    if (scenario_.truth.plan_for(i) == nullptr) pool.push_back(i);
  }
  rng.shuffle(pool);
  std::size_t cursor = 0;
  bool warned_pool = false;
  auto take_device = [&]() -> std::optional<std::uint32_t> {
    if (cursor >= pool.size()) {
      if (!warned_pool) {
        warned_pool = true;
        IOTSCOPE_LOG_WARN(
            "scenario '%s': unplanned-device pool exhausted (%zu devices); "
            "remaining campaign actors dropped",
            script_.name.c_str(), pool.size());
      }
      return std::nullopt;
    }
    return pool[cursor++];
  };

  // Fresh non-inventory sources (churned leases, Zipf population), each
  // unique within the run.
  std::unordered_set<std::uint32_t> allocated;
  std::uint32_t next_offset = 1;
  auto take_source = [&]() -> net::Ipv4Address {
    net::Ipv4Address ip;
    do {
      ip = pick_unused_source(scenario_.inventory, synthetic_source_prefix(),
                              next_offset++);
    } while (!allocated.insert(ip.value()).second);
    return ip;
  };

  for (const PhaseSpec& phase : script_.phases) {
    const int begin = clamp_hour(phase.begin_hour);
    const int end = clamp_hour(phase.end_hour);
    if (begin >= end) continue;
    const int span = end - begin;

    for (const CampaignSpec& campaign : phase.campaigns) {
      switch (campaign.kind) {
        case CampaignKind::Recruitment: {
          // Infection i of n lands at t_i = span * ((i+1)/n)^(1/growth):
          // growth > 1 back-loads infections into an accelerating ramp
          // (the recruitment stage of the IoT-BDA botnet lifecycle).
          // Recruits keep emitting past the phase end — infections
          // persist until the study window closes.
          const double growth = campaign.growth > 0.0 ? campaign.growth : 1.0;
          for (std::size_t i = 0; i < campaign.actors; ++i) {
            const auto device = take_device();
            if (!device) break;
            const double frac = static_cast<double>(i + 1) /
                                static_cast<double>(campaign.actors);
            const int offset = std::min(
                span - 1, static_cast<int>(std::floor(
                              span * std::pow(frac, 1.0 / growth))));
            const int infected = begin + std::max(0, offset);
            RecruitTruth truth;
            truth.device = *device;
            truth.ip = devices[*device].ip;
            truth.infected_hour = infected;
            truth.rate = campaign.rate;
            truth.port = campaign.port;
            truth_.campaign_packets +=
                campaign.rate * static_cast<std::uint64_t>(
                                    util::AnalysisWindow::kHours - infected);
            truth_.recruits.push_back(std::move(truth));
          }
          break;
        }
        case CampaignKind::Churn: {
          if (span < 2) break;
          const int churn =
              std::clamp(campaign.churn_hour, begin + 1, end - 1);
          for (std::size_t i = 0; i < campaign.actors; ++i) {
            const auto device = take_device();
            if (!device) break;
            ChurnTruth truth;
            truth.device = *device;
            truth.device_ip = devices[*device].ip;
            truth.new_ip = take_source();
            truth.begin_hour = begin;
            truth.churn_hour = churn;
            truth.end_hour = end;
            truth.rate = campaign.rate;
            truth.port = campaign.port;
            truth_.campaign_packets +=
                campaign.rate * static_cast<std::uint64_t>(span);
            truth_.churned.push_back(std::move(truth));
          }
          break;
        }
        case CampaignKind::PulseDos: {
          const int period = std::max(1, campaign.period_hours);
          const int on = std::clamp(campaign.on_hours, 1, period);
          for (std::size_t i = 0; i < campaign.actors; ++i) {
            const auto device = take_device();
            if (!device) break;
            // Victims stagger their pulse windows evenly around the
            // period, so concurrent pulse-wave attacks interleave the
            // way the Imperva pulse-wave reports describe.
            const int stagger = static_cast<int>(
                (static_cast<std::size_t>(period) * i) /
                std::max<std::size_t>(1, campaign.actors));
            PulseTruth truth;
            truth.device = *device;
            truth.ip = devices[*device].ip;
            truth.packets_per_on_hour = campaign.rate;
            truth.service_port = campaign.port;
            for (int h = begin; h < end; ++h) {
              const int pos = (h - begin) % period;
              if ((pos - stagger + period) % period < on) {
                truth.on_intervals.push_back(h);
              }
            }
            truth_.campaign_packets +=
                campaign.rate * truth.on_intervals.size();
            truth_.pulses.push_back(std::move(truth));
          }
          break;
        }
        case CampaignKind::ZipfDiurnal: {
          const int period = std::max(1, campaign.period_hours);
          const double s =
              campaign.zipf_exponent > 0.0 ? campaign.zipf_exponent : 1.0;
          for (std::size_t rank = 0; rank < campaign.actors; ++rank) {
            const double weight =
                std::pow(static_cast<double>(rank + 1), -s);
            ZipfSourceTruth truth;
            truth.ip = take_source();
            truth.rank = rank;
            truth.port = campaign.port;
            std::vector<std::uint64_t> counts(util::AnalysisWindow::kHours, 0);
            std::uint64_t min_active = 0;
            for (int h = begin; h < end; ++h) {
              const auto count = static_cast<std::uint64_t>(std::llround(
                  static_cast<double>(campaign.rate) * weight *
                  diurnal_multiplier(h, begin, period)));
              counts[static_cast<std::size_t>(h)] = count;
              if (count > 0) {
                truth.total_packets += count;
                min_active =
                    min_active == 0 ? count : std::min(min_active, count);
              }
            }
            truth.min_hour_packets = min_active;
            truth_.campaign_packets += truth.total_packets;
            zipf_hour_counts_.push_back(std::move(counts));
            truth_.zipf_sources.push_back(std::move(truth));
          }
          break;
        }
        case CampaignKind::MalformedHours: {
          for (const int hour : campaign.hostile_hours) {
            if (hour < 0 || hour >= util::AnalysisWindow::kHours) continue;
            hostile_kind_.emplace(hour, campaign.hostile);
          }
          break;
        }
      }
    }
  }

  truth_.hostile_hours.clear();
  for (const auto& [hour, kind] : hostile_kind_) {
    (void)kind;
    truth_.hostile_hours.push_back(hour);  // std::map: already sorted
  }
}

void ScenarioEngine::emit_campaign_hour(int hour, const PacketSink& sink,
                                        util::Rng& rng,
                                        std::uint64_t& emitted) const {
  const util::UnixTime hour_start = util::AnalysisWindow::interval_start(hour);
  const telescope::DarknetSpace space(script_.base.darknet);
  auto ts = [&]() {
    return hour_start + static_cast<util::UnixTime>(rng.uniform(0, 3599));
  };
  auto ephemeral = [&]() {
    return static_cast<net::Port>(rng.uniform(1024, 65535));
  };

  for (const RecruitTruth& recruit : truth_.recruits) {
    if (hour < recruit.infected_hour) continue;
    for (std::uint64_t k = 0; k < recruit.rate; ++k) {
      sink(net::make_tcp_syn(ts(), recruit.ip, space.random_address(rng),
                             ephemeral(), recruit.port));
      ++emitted;
    }
  }

  for (const ChurnTruth& churned : truth_.churned) {
    if (hour < churned.begin_hour || hour >= churned.end_hour) continue;
    const net::Ipv4Address src =
        hour < churned.churn_hour ? churned.device_ip : churned.new_ip;
    for (std::uint64_t k = 0; k < churned.rate; ++k) {
      sink(net::make_tcp_syn(ts(), src, space.random_address(rng),
                             ephemeral(), churned.port));
      ++emitted;
    }
  }

  for (const PulseTruth& pulse : truth_.pulses) {
    if (!std::binary_search(pulse.on_intervals.begin(),
                            pulse.on_intervals.end(), hour)) {
      continue;
    }
    // SYN-ACKs from the flooded service port: exactly what a victim of a
    // randomly spoofed SYN flood reflects into the telescope.
    for (std::uint64_t k = 0; k < pulse.packets_per_on_hour; ++k) {
      sink(net::make_tcp_syn_ack(ts(), pulse.ip, space.random_address(rng),
                                 pulse.service_port, ephemeral()));
      ++emitted;
    }
  }

  for (std::size_t i = 0; i < truth_.zipf_sources.size(); ++i) {
    const ZipfSourceTruth& source = truth_.zipf_sources[i];
    const std::uint64_t count =
        zipf_hour_counts_[i][static_cast<std::size_t>(hour)];
    for (std::uint64_t k = 0; k < count; ++k) {
      sink(net::make_tcp_syn(ts(), source.ip, space.random_address(rng),
                             ephemeral(), source.port));
      ++emitted;
    }
  }
}

SynthStats ScenarioEngine::emit(const PacketSink& sink) const {
  // One emission stream for base + campaigns; seeded independently of
  // the planning stream so re-planning never shifts emission draws.
  util::Rng rng(script_.base.seed ^ util::stable_hash(script_.name) ^
                0xE517C4A9B30FULL);
  std::uint64_t emitted = 0;
  SynthStats stats = synthesize_traffic(
      scenario_, script_.base, sink,
      [this, &rng, &emitted](int hour, const PacketSink& hour_sink) {
        emit_campaign_hour(hour, hour_sink, rng, emitted);
      });
  if (emitted != truth_.campaign_packets) {
    // Planning and emission share the ledgers above; a divergence here
    // means a campaign formula changed on one side only.
    IOTSCOPE_LOG_WARN(
        "scenario '%s': emitted %llu campaign packets but ledger says %llu",
        script_.name.c_str(), static_cast<unsigned long long>(emitted),
        static_cast<unsigned long long>(truth_.campaign_packets));
  }
  return stats;
}

std::string ScenarioEngine::craft_hostile_bytes(const net::FlowBatch& batch,
                                                HostileKind kind) const {
  std::string bytes;
  switch (kind) {
    case HostileKind::TornCompressed:
      // A valid compressed encoding cut to two thirds: the reader fails
      // mid-block (truncated block or CRC mismatch), or on the file
      // header itself for very small hours.
      net::CompressedFlowCodec::encode(bytes, batch);
      bytes.resize(std::max<std::size_t>(bytes.size() * 2 / 3, 8));
      break;
    case HostileKind::TruncatedRaw:
      // Fixed 25-byte records cut mid-record: the reader's short-read
      // check fires on the final record.
      net::FlowTupleCodec::encode(bytes, batch);
      if (bytes.size() > 13) bytes.resize(bytes.size() - 13);
      break;
    case HostileKind::BadHeader: {
      // Valid framing, hostile header: the interval field (after the
      // u32 magic and u16 version) stamped 0xFFFFFFFF, which the codec
      // rejects as an implausible interval before touching any block.
      net::CompressedFlowCodec::encode(bytes, batch);
      for (std::size_t i = 6; i < 10 && i < bytes.size(); ++i) {
        bytes[i] = '\xFF';
      }
      break;
    }
  }
  return bytes;
}

ScenarioEngine::WriteResult ScenarioEngine::write_to_store(
    const telescope::FlowTupleStore& store,
    const HourPublished& on_publish) const {
  WriteResult result;
  result.clean_hour_packets.assign(
      static_cast<std::size_t>(util::AnalysisWindow::kHours), 0);
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(script_.base.darknet),
      [&](net::FlowBatch&& batch) {
        const int interval = batch.interval;
        const auto hostile = hostile_kind_.find(interval);
        if (hostile != hostile_kind_.end()) {
          // The hostile file *replaces* the hour: publish corrupt bytes
          // under the hour's only on-disk name, so a reader can never
          // fall back to an intact sibling.
          const auto format = hostile->second == HostileKind::TruncatedRaw
                                  ? telescope::StoreFormat::Raw
                                  : telescope::StoreFormat::Compressed;
          store.put_hostile(interval,
                            craft_hostile_bytes(batch, hostile->second),
                            format);
          ++result.corrupted_hours;
        } else {
          store.put(batch);
          result.clean_hour_packets[static_cast<std::size_t>(interval)] =
              batch.total_packets();
        }
        if (on_publish) on_publish(interval);
      });
  result.synth =
      emit([&](const net::PacketRecord& packet) { capture.ingest(packet); });
  capture.finish();
  result.capture = capture.stats();
  return result;
}

// ---- built-in scenarios --------------------------------------------

namespace {

/// Shared small-scale base: ~1.3k devices, ~115k base packets — big
/// enough that every report section is populated, small enough that a
/// full batch-vs-follow matrix runs in test time.
ScenarioConfig small_base() {
  ScenarioConfig base;
  base.inventory_scale = 0.004;
  base.traffic_scale = 0.0008;
  base.noise_ratio = 0.04;
  base.heavy_hitter_share = 0.0;
  return base;
}

ScenarioScript make_recruitment() {
  ScenarioScript script;
  script.name = "recruitment";
  script.description =
      "Staged botnet recruitment: a quiet day, then an accelerating "
      "Telnet-scanning infection ramp whose recruits persist to the end "
      "of the window.";
  script.base = small_base();
  PhaseSpec quiet;
  quiet.label = "quiet";
  quiet.begin_hour = 0;
  quiet.end_hour = 24;
  PhaseSpec ramp;
  ramp.label = "ramp";
  ramp.begin_hour = 24;
  ramp.end_hour = 108;
  CampaignSpec recruit;
  recruit.kind = CampaignKind::Recruitment;
  recruit.label = "telnet-ramp";
  recruit.actors = 32;
  recruit.rate = 6;
  recruit.port = 23;
  ramp.campaigns.push_back(recruit);
  PhaseSpec steady;
  steady.label = "steady";
  steady.begin_hour = 108;
  steady.end_hour = 143;
  script.phases = {quiet, ramp, steady};
  return script;
}

ScenarioScript make_churn() {
  ScenarioScript script;
  script.name = "churn";
  script.description =
      "Mid-study device churn: scanning devices lose their indexed IP to "
      "a lease reassignment, so each device's traffic splits into an "
      "attributed half and an unknown-source half.";
  script.base = small_base();
  PhaseSpec phase;
  phase.label = "lease-cycle";
  phase.begin_hour = 8;
  phase.end_hour = 120;
  CampaignSpec churn;
  churn.kind = CampaignKind::Churn;
  churn.label = "dhcp-reassignment";
  churn.actors = 6;
  churn.rate = 8;
  churn.churn_hour = 64;
  churn.port = 2323;
  phase.campaigns.push_back(churn);
  script.phases = {phase};
  return script;
}

ScenarioScript make_pulse_dos() {
  ScenarioScript script;
  script.name = "pulse-dos";
  script.description =
      "Pulse-wave DoS backscatter: two victims reflect short daily "
      "bursts large enough to dominate the hourly backscatter series.";
  script.base = small_base();
  PhaseSpec phase;
  phase.label = "pulse-waves";
  phase.begin_hour = 0;
  phase.end_hour = 143;
  CampaignSpec pulse;
  pulse.kind = CampaignKind::PulseDos;
  pulse.label = "syn-flood-pulses";
  pulse.actors = 2;
  pulse.rate = 5000;
  pulse.period_hours = 24;
  pulse.on_hours = 2;
  pulse.port = 80;
  phase.campaigns.push_back(pulse);
  script.phases = {phase};
  return script;
}

ScenarioScript make_zipf_diurnal() {
  ScenarioScript script;
  script.name = "zipf-diurnal";
  script.description =
      "Zipf-tailed unknown-source population on a diurnal cycle: a few "
      "heavy non-inventory scanners above the profiling floor, a long "
      "tail below it.";
  script.base = small_base();
  PhaseSpec phase;
  phase.label = "diurnal-sweep";
  phase.begin_hour = 0;
  phase.end_hour = 143;
  CampaignSpec zipf;
  zipf.kind = CampaignKind::ZipfDiurnal;
  zipf.label = "skewed-sources";
  zipf.actors = 20;
  zipf.rate = 48;
  zipf.zipf_exponent = 1.2;
  zipf.period_hours = 24;
  zipf.port = 23;
  phase.campaigns.push_back(zipf);
  script.phases = {phase};
  return script;
}

ScenarioScript make_malformed() {
  ScenarioScript script;
  script.name = "malformed";
  script.description =
      "Hostile store: three hours published as corrupt files (torn "
      "compressed block, truncated raw record, out-of-range header) that "
      "readers must quarantine without dying.";
  script.base = small_base();
  PhaseSpec phase;
  phase.label = "hostile-hours";
  phase.begin_hour = 0;
  phase.end_hour = 143;
  CampaignSpec torn;
  torn.kind = CampaignKind::MalformedHours;
  torn.label = "torn-block";
  torn.hostile_hours = {37};
  torn.hostile = HostileKind::TornCompressed;
  CampaignSpec truncated;
  truncated.kind = CampaignKind::MalformedHours;
  truncated.label = "truncated-record";
  truncated.hostile_hours = {71};
  truncated.hostile = HostileKind::TruncatedRaw;
  CampaignSpec header;
  header.kind = CampaignKind::MalformedHours;
  header.label = "hostile-header";
  header.hostile_hours = {107};
  header.hostile = HostileKind::BadHeader;
  phase.campaigns = {torn, truncated, header};
  script.phases = {phase};
  return script;
}

}  // namespace

const std::vector<std::string>& builtin_scenario_names() {
  static const std::vector<std::string> names = {
      "recruitment", "churn", "pulse-dos", "zipf-diurnal", "malformed"};
  return names;
}

std::optional<ScenarioScript> builtin_scenario(const std::string& name) {
  if (name == "recruitment") return make_recruitment();
  if (name == "churn") return make_churn();
  if (name == "pulse-dos") return make_pulse_dos();
  if (name == "zipf-diurnal") return make_zipf_diurnal();
  if (name == "malformed") return make_malformed();
  return std::nullopt;
}

}  // namespace iotscope::workload
