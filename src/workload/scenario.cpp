#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "util/logging.hpp"
#include "util/timebase.hpp"

namespace iotscope::workload {

namespace {

using inventory::DeviceCategory;
using inventory::DeviceRecord;
using inventory::IoTDeviceDatabase;

/// Mutable assignment state threaded through the helper passes.
struct Builder {
  const ScenarioConfig& config;
  const IoTDeviceDatabase& db;
  GroundTruth truth;
  util::Rng rng;
  /// Devices already pinned to a scripted role (heroes, scripted victims).
  std::unordered_set<std::uint32_t> pinned;

  Builder(const ScenarioConfig& cfg, const IoTDeviceDatabase& database)
      : config(cfg), db(database), rng(cfg.seed ^ 0xA551'6E5Cu) {}

  DevicePlan& plan_of(std::uint32_t device) {
    const auto it = truth.by_device.find(device);
    if (it != truth.by_device.end()) return truth.plans[it->second];
    DevicePlan plan;
    plan.device = device;
    plan.ttl = static_cast<std::uint8_t>(rng.uniform(30, 200));
    plan.first_interval = sample_first_interval();
    const auto index = static_cast<std::uint32_t>(truth.plans.size());
    truth.plans.push_back(plan);
    truth.by_device.emplace(device, index);
    if (db.devices()[device].is_consumer()) {
      ++truth.compromised_consumer;
    } else {
      ++truth.compromised_cps;
    }
    return truth.plans[index];
  }

  bool is_planned(std::uint32_t device) const {
    return truth.by_device.count(device) != 0;
  }

  /// Samples a first-seen hour from the Fig 2 discovery-day distribution.
  int sample_first_interval() {
    const auto& weights = PopulationSpec{}.discovery_day_weights;
    const std::size_t day = rng.weighted_index(std::span(weights, 6));
    const int lo = static_cast<int>(day) * 24;
    const int hi = std::min(lo + 23, util::AnalysisWindow::kHours - 1);
    return static_cast<int>(rng.uniform(lo, hi));
  }
};

/// Requirements for picking a scripted device.
struct Want {
  bool cps = false;
  std::string country;       // empty = any
  int consumer_type = -1;    // -1 = any
  std::string cps_protocol;  // empty = any
};

/// Finds an unpinned device matching the requirements, relaxing
/// constraints from the most specific to the least until something
/// matches. Returns nullopt only when every inventory device is already
/// pinned — the signal quota fills use to clamp themselves to the
/// available population instead of re-assigning pinned devices.
std::optional<std::uint32_t> find_unpinned(Builder& b, const Want& want) {
  const auto& catalog = b.db.catalog();
  int country = -1;
  if (!want.country.empty()) {
    country = catalog.country_id(want.country);
  }
  int proto = -1;
  if (!want.cps_protocol.empty()) {
    proto = catalog.cps_protocol_id(want.cps_protocol);
  }

  // Relaxation ladder: full match -> drop protocol/type -> drop country ->
  // any device of the realm -> any unpinned device at all.
  for (int pass = 0; pass < 5; ++pass) {
    std::vector<std::uint32_t> matches;
    for (std::uint32_t i = 0; i < b.db.devices().size(); ++i) {
      if (b.pinned.count(i)) continue;
      const DeviceRecord& d = b.db.devices()[i];
      if (pass < 4) {
        if (d.is_cps() != want.cps) continue;
        if (pass < 2 && country >= 0 &&
            d.country != static_cast<inventory::CountryId>(country))
          continue;
        if (pass < 1) {
          if (proto >= 0 &&
              !d.supports(static_cast<inventory::CpsProtocolId>(proto)))
            continue;
          if (want.consumer_type >= 0 &&
              d.consumer_type !=
                  static_cast<inventory::ConsumerType>(want.consumer_type))
            continue;
        }
      }
      matches.push_back(i);
      if (matches.size() >= 64) break;  // enough choice; stay O(n)
    }
    if (!matches.empty()) {
      return matches[b.rng.uniform(0, matches.size() - 1)];
    }
  }
  return std::nullopt;  // whole inventory pinned
}

// --------------------------------------------------------------------
// Pass 1: compromise selection per country/type propensities.
// --------------------------------------------------------------------
void select_compromised(Builder& b) {
  const auto& catalog = b.db.catalog();
  const PopulationSpec pop;
  const std::size_t target_consumer =
      b.config.scaled_count(pop.compromised_consumer);
  const std::size_t target_cps = b.config.scaled_count(pop.compromised_cps);

  // Expected propensity mass per realm.
  double mass_consumer = 0.0;
  double mass_cps = 0.0;
  std::vector<double> propensity(b.db.size());
  for (std::uint32_t i = 0; i < b.db.size(); ++i) {
    const DeviceRecord& d = b.db.devices()[i];
    const auto& cinfo = catalog.countries()[d.country];
    if (d.is_consumer()) {
      const double type_mult =
          catalog.consumer_type_propensity()[static_cast<std::size_t>(
              d.consumer_type)];
      propensity[i] = cinfo.propensity_consumer * type_mult;
      mass_consumer += propensity[i];
    } else {
      propensity[i] = cinfo.propensity_cps;
      mass_cps += propensity[i];
    }
  }
  const double factor_consumer =
      mass_consumer > 0 ? static_cast<double>(target_consumer) / mass_consumer
                        : 0.0;
  const double factor_cps =
      mass_cps > 0 ? static_cast<double>(target_cps) / mass_cps : 0.0;

  for (std::uint32_t i = 0; i < b.db.size(); ++i) {
    const DeviceRecord& d = b.db.devices()[i];
    const double p = std::min(
        0.97, propensity[i] * (d.is_consumer() ? factor_consumer : factor_cps));
    if (b.rng.chance(p)) b.plan_of(i);
  }
}

// --------------------------------------------------------------------
// Pass 2: TCP scanning roles — heroes first, then service quotas.
// --------------------------------------------------------------------
void assign_scanners(Builder& b) {
  const VolumeSpec vol;
  const PopulationSpec pop;
  const auto& services = scan_services();
  const double tcp_total = b.config.scaled_packets(vol.tcp_scan_packets);

  // Per-service budgets and consumed-by-hero tallies.
  std::vector<double> budget(services.size());
  std::vector<double> hero_consumer_budget(services.size(), 0.0);
  std::vector<double> hero_cps_budget(services.size(), 0.0);
  std::vector<int> hero_consumer_devices(services.size(), 0);
  std::vector<int> hero_cps_devices(services.size(), 0);
  for (std::size_t s = 0; s < services.size(); ++s) {
    budget[s] = tcp_total * services[s].packet_share_pct / 100.0;
  }

  // Scripted heroes.
  const auto& heroes = scan_heroes();
  for (std::size_t h = 0; h < heroes.size(); ++h) {
    const auto& hero = heroes[h];
    const int s = scan_service_index(hero.service);
    if (s < 0) continue;
    Want want;
    want.cps = hero.cps;
    want.country = hero.country;
    want.consumer_type = hero.consumer_type;
    want.cps_protocol = hero.cps_protocol;
    const auto picked = find_unpinned(b, want);
    if (!picked) continue;  // inventory smaller than the hero script
    const std::uint32_t device = *picked;
    b.pinned.insert(device);
    DevicePlan& plan = b.plan_of(device);
    plan.roles |= kRoleScanner;
    plan.scan.service = s;
    plan.scan.hero = static_cast<int>(h);
    plan.scan.total_packets = budget[static_cast<std::size_t>(s)] *
                              hero.packet_share;
    plan.duty = 1.0;
    // Heroes must be active before their scripted window.
    int earliest = 0;
    if (!hero.burst_intervals.empty()) {
      earliest = *std::min_element(hero.burst_intervals.begin(),
                                   hero.burst_intervals.end());
    }
    plan.first_interval = std::min(plan.first_interval, earliest);
    if (b.db.devices()[device].is_consumer()) {
      hero_consumer_budget[static_cast<std::size_t>(s)] +=
          plan.scan.total_packets;
      ++hero_consumer_devices[static_cast<std::size_t>(s)];
    } else {
      hero_cps_budget[static_cast<std::size_t>(s)] += plan.scan.total_packets;
      ++hero_cps_devices[static_cast<std::size_t>(s)];
    }
  }

  // Pools of non-pinned compromised devices per realm, shuffled.
  std::vector<std::uint32_t> consumer_pool;
  std::vector<std::uint32_t> cps_pool;
  for (const auto& plan : b.truth.plans) {
    if (b.pinned.count(plan.device)) continue;
    if (b.db.devices()[plan.device].is_consumer()) {
      consumer_pool.push_back(plan.device);
    } else {
      cps_pool.push_back(plan.device);
    }
  }
  b.rng.shuffle(consumer_pool);
  b.rng.shuffle(cps_pool);
  std::size_t consumer_next = 0;
  std::size_t cps_next = 0;

  (void)pop;  // device totals are implied by the per-service quotas

  // Fill per-service device quotas and split the non-hero budget with
  // Pareto weights so per-device volumes are heavy-tailed (Fig 6).
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto& svc = services[s];
    struct Member {
      std::uint32_t device;
      double weight;
      bool consumer;
    };
    std::vector<Member> members;

    auto take = [&](bool consumer, int quota) {
      auto& pool = consumer ? consumer_pool : cps_pool;
      auto& next = consumer ? consumer_next : cps_next;
      for (int k = 0; k < quota && next < pool.size(); ++k, ++next) {
        members.push_back({pool[next], b.rng.pareto(1.0, 1.1), consumer});
      }
    };
    take(true, static_cast<int>(b.config.scaled_count(
                   static_cast<std::size_t>(std::max(0, svc.consumer_devices -
                       hero_consumer_devices[s])))) *
                   (svc.consumer_devices > 0 ? 1 : 0));
    take(false, static_cast<int>(b.config.scaled_count(
                    static_cast<std::size_t>(std::max(0, svc.cps_devices -
                        hero_cps_devices[s])))) *
                    (svc.cps_devices > 0 ? 1 : 0));
    if (members.empty()) continue;

    // Realm budgets net of hero consumption.
    double consumer_budget = std::max(
        0.0, budget[s] * svc.consumer_packet_share - hero_consumer_budget[s]);
    double cps_budget =
        std::max(0.0, budget[s] * (1.0 - svc.consumer_packet_share) -
                          hero_cps_budget[s]);
    double consumer_weight = 0.0;
    double cps_weight = 0.0;
    for (const auto& m : members) {
      (m.consumer ? consumer_weight : cps_weight) += m.weight;
    }
    // If one realm has budget but no members (tiny scales), merge budgets.
    if (consumer_weight == 0.0) {
      cps_budget += consumer_budget;
      consumer_budget = 0.0;
    }
    if (cps_weight == 0.0) {
      consumer_budget += cps_budget;
      cps_budget = 0.0;
    }

    for (const auto& m : members) {
      DevicePlan& plan = b.plan_of(m.device);
      plan.roles |= kRoleScanner;
      plan.scan.service = static_cast<int>(s);
      const double realm_budget = m.consumer ? consumer_budget : cps_budget;
      const double realm_weight = m.consumer ? consumer_weight : cps_weight;
      plan.scan.total_packets =
          realm_weight > 0 ? realm_budget * m.weight / realm_weight : 0.0;
    }
  }
}

// --------------------------------------------------------------------
// Pass 3: UDP roles — the Netis trio group, per-port specialists, and the
// broadband random-port sweep.
// --------------------------------------------------------------------
void assign_udp(Builder& b) {
  const VolumeSpec vol;
  const PopulationSpec pop;
  const auto& ports = udp_ports();
  const double udp_total = b.config.scaled_packets(vol.udp_packets);

  // Candidate pools (compromised devices, heroes included — scanning and
  // UDP roles are not exclusive).
  std::vector<std::uint32_t> consumer_pool;
  std::vector<std::uint32_t> cps_pool;
  for (const auto& plan : b.truth.plans) {
    if (b.db.devices()[plan.device].is_consumer()) {
      consumer_pool.push_back(plan.device);
    } else {
      cps_pool.push_back(plan.device);
    }
  }
  b.rng.shuffle(consumer_pool);
  b.rng.shuffle(cps_pool);

  const std::size_t udp_devices = std::min(
      b.config.scaled_count(pop.udp_sender_devices),
      consumer_pool.size() + cps_pool.size());
  std::size_t udp_consumer = std::min(
      static_cast<std::size_t>(static_cast<double>(udp_devices) *
                               pop.udp_sender_consumer_share),
      consumer_pool.size());
  std::size_t udp_cps = std::min(udp_devices - udp_consumer, cps_pool.size());

  std::vector<std::uint32_t> senders;
  senders.insert(senders.end(), consumer_pool.begin(),
                 consumer_pool.begin() + static_cast<std::ptrdiff_t>(udp_consumer));
  senders.insert(senders.end(), cps_pool.begin(),
                 cps_pool.begin() + static_cast<std::ptrdiff_t>(udp_cps));
  b.rng.shuffle(senders);

  for (const auto device : senders) {
    b.plan_of(device).roles |= kRoleUdp;
  }

  // --- Netis trio group: ports 37547 / 32124 / 28183 ---
  // Trio budget: the three ports' Table IV shares.
  const double trio_budget =
      udp_total * (ports[0].packet_share_pct + ports[3].packet_share_pct +
                   ports[4].packet_share_pct) / 100.0;
  const std::size_t trio_devices = std::min(
      b.config.scaled_count(static_cast<std::size_t>(ports[0].devices)),
      senders.size());
  {
    double weight_sum = 0.0;
    std::vector<double> weights(trio_devices);
    for (std::size_t i = 0; i < trio_devices; ++i) {
      weights[i] = b.rng.pareto(1.0, 1.6);
      weight_sum += weights[i];
    }
    for (std::size_t i = 0; i < trio_devices; ++i) {
      DevicePlan& plan = b.plan_of(senders[i]);
      plan.udp.trio_packets = trio_budget * weights[i] / weight_sum;
    }
  }

  // --- Per-port specialists for the remaining Table IV rows ---
  std::size_t cursor = trio_devices;
  for (std::size_t p = 0; p < ports.size(); ++p) {
    if (p == 0 || p == 3 || p == 4) continue;  // trio handled above
    const double port_budget = udp_total * ports[p].packet_share_pct / 100.0;
    const std::size_t quota = std::min(
        b.config.scaled_count(static_cast<std::size_t>(ports[p].devices)),
        senders.size() > cursor ? senders.size() - cursor : 0);
    if (quota == 0) continue;
    double weight_sum = 0.0;
    std::vector<double> weights(quota);
    for (auto& w : weights) {
      w = b.rng.pareto(1.0, 1.2);
      weight_sum += w;
    }
    for (std::size_t i = 0; i < quota; ++i) {
      DevicePlan& plan = b.plan_of(senders[cursor + i]);
      plan.udp.dedicated_port = static_cast<int>(p);
      plan.udp.dedicated_packets = port_budget * weights[i] / weight_sum;
    }
    cursor += quota;
  }

  // --- Random-port sweep: the residual 89.3% of UDP traffic, split so the
  // realm shares land on 63% consumer ---
  double named_share = 0.0;
  for (const auto& port : ports) named_share += port.packet_share_pct;
  const double sweep_budget = udp_total * (100.0 - named_share) / 100.0;
  double consumer_weight = 0.0;
  double cps_weight = 0.0;
  std::vector<double> weights(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    weights[i] = b.rng.pareto(1.0, 1.05);
    if (b.db.devices()[senders[i]].is_consumer()) {
      consumer_weight += weights[i];
    } else {
      cps_weight += weights[i];
    }
  }
  const double consumer_sweep =
      cps_weight == 0.0 ? sweep_budget : sweep_budget * vol.udp_consumer_share;
  const double cps_sweep = sweep_budget - consumer_sweep;
  for (std::size_t i = 0; i < senders.size(); ++i) {
    DevicePlan& plan = b.plan_of(senders[i]);
    const bool consumer = b.db.devices()[senders[i]].is_consumer();
    const double realm_budget = consumer ? consumer_sweep : cps_sweep;
    const double realm_weight = consumer ? consumer_weight : cps_weight;
    if (realm_weight > 0) {
      plan.udp.sweep_packets = realm_budget * weights[i] / realm_weight;
    }
  }
}

// --------------------------------------------------------------------
// Pass 4: ICMP echo-request scanners (56 devices, 93% of packets from the
// 32 consumer devices).
// --------------------------------------------------------------------
void assign_icmp_scanners(Builder& b) {
  const VolumeSpec vol;
  const PopulationSpec pop;
  const double total = b.config.scaled_packets(vol.icmp_scan_packets);
  const std::size_t count = b.config.scaled_count(pop.icmp_scanner_devices);
  const std::size_t consumer_count = std::min(
      b.config.scaled_count(pop.icmp_scanner_consumer), count);

  std::vector<std::uint32_t> consumer_pool;
  std::vector<std::uint32_t> cps_pool;
  for (const auto& plan : b.truth.plans) {
    if (b.db.devices()[plan.device].is_consumer()) {
      consumer_pool.push_back(plan.device);
    } else {
      cps_pool.push_back(plan.device);
    }
  }
  b.rng.shuffle(consumer_pool);
  b.rng.shuffle(cps_pool);

  auto give = [&](std::span<const std::uint32_t> pool, std::size_t quota,
                  double budget) {
    if (pool.empty() || quota == 0) return;
    quota = std::min(quota, pool.size());
    std::vector<double> weights(quota);
    double sum = 0.0;
    for (auto& w : weights) {
      w = b.rng.pareto(1.0, 1.3);
      sum += w;
    }
    for (std::size_t i = 0; i < quota; ++i) {
      DevicePlan& plan = b.plan_of(pool[i]);
      plan.roles |= kRoleIcmpScanner;
      plan.icmp_scan_packets = budget * weights[i] / sum;
    }
  };
  give(consumer_pool, consumer_count, total * vol.icmp_scan_consumer_share);
  give(cps_pool, count - std::min(consumer_count, count),
       total * (1.0 - vol.icmp_scan_consumer_share));
}

// --------------------------------------------------------------------
// Pass 5: DoS victims — scripted case studies, then the background victim
// population with country quotas and a Pareto packet-count distribution.
// --------------------------------------------------------------------
void assign_victims(Builder& b) {
  const VolumeSpec vol;
  const PopulationSpec pop;

  double scripted_total = 0.0;
  const auto& events = dos_events();
  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto& event = events[e];
    Want want;
    want.cps = event.cps;
    want.country = event.country;
    want.consumer_type = event.consumer_type;
    want.cps_protocol = event.cps_protocol;
    const auto picked = find_unpinned(b, want);
    if (!picked) continue;  // inventory smaller than the event script
    const std::uint32_t device = *picked;
    b.pinned.insert(device);
    DevicePlan& plan = b.plan_of(device);
    plan.roles |= kRoleDosVictim;
    AttackPlan attack;
    attack.intervals = event.intervals;
    attack.total_packets = b.config.scaled_packets(event.total_packets);
    attack.service_port = event.service_port;
    attack.icmp_fraction = event.icmp_fraction;
    attack.event = static_cast<int>(e);
    const int earliest =
        *std::min_element(event.intervals.begin(), event.intervals.end());
    plan.first_interval = std::min(plan.first_interval, earliest);
    plan.attacks.push_back(std::move(attack));
    scripted_total += b.config.scaled_packets(event.total_packets);
    ++b.truth.dos_victims;
  }

  // Background victims. The background quota is scaled separately from the
  // scripted events (whose count is scale-invariant) so that small-scale
  // scenarios still carry the paper's backscatter volume split.
  const std::size_t victim_target =
      b.truth.dos_victims +
      b.config.scaled_count(pop.dos_victims - events.size());
  const auto& bg = dos_background();
  const double bg_budget = std::max(
      0.0, b.config.scaled_packets(vol.backscatter_packets) - scripted_total);

  struct PendingVictim {
    std::uint32_t device;
    double raw_packets;
  };
  std::vector<PendingVictim> pending;

  // Returns false once the target is met or the population is exhausted,
  // clamping the background quota sum to the devices actually available:
  // at tiny inventory_scale the per-row >= 1 rounding of scaled_count can
  // demand more victims than the inventory holds, and the old unbounded
  // fill re-assigned pinned devices (double-counting dos_victims).
  auto add_victim = [&](const Want& want) {
    if (b.truth.dos_victims >= victim_target) return false;
    const auto device = find_unpinned(b, want);
    if (!device) return false;  // every device already pinned
    b.pinned.insert(*device);
    const double raw = std::min(
        bg.cap, b.rng.pareto(bg.pareto_xm, bg.pareto_alpha));
    pending.push_back({*device, raw});
    ++b.truth.dos_victims;
    return true;
  };

  // Country quotas first (Fig 8a shape).
  bool exhausted = false;
  for (const auto& quota : bg.country_quotas) {
    for (std::size_t k = 0;
         k < b.config.scaled_count(static_cast<std::size_t>(quota.cps)); ++k) {
      Want want;
      want.cps = true;
      want.country = quota.country;
      if (!add_victim(want) && b.truth.dos_victims < victim_target) {
        exhausted = true;
      }
    }
    for (std::size_t k = 0;
         k < b.config.scaled_count(static_cast<std::size_t>(quota.consumer));
         ++k) {
      Want want;
      want.cps = false;
      want.country = quota.country;
      if (!add_victim(want) && b.truth.dos_victims < victim_target) {
        exhausted = true;
      }
    }
    if (exhausted) break;
  }
  // Fill the remainder with victims anywhere (realm split per spec).
  while (!exhausted && b.truth.dos_victims < victim_target) {
    Want want;
    want.cps = b.rng.chance(pop.dos_victim_cps_share);
    if (!add_victim(want)) break;
  }

  // Normalize the background budget and materialize attack plans.
  double raw_sum = 0.0;
  for (const auto& v : pending) raw_sum += v.raw_packets;
  const double factor = raw_sum > 0 ? bg_budget / raw_sum : 0.0;
  for (const auto& v : pending) {
    DevicePlan& plan = b.plan_of(v.device);
    plan.roles |= kRoleDosVictim;
    const bool cps = b.db.devices()[v.device].is_cps();
    const double device_budget = std::max(1.0, v.raw_packets * factor);
    // CPS devices are "attacked more often and with higher intensity"
    // (Section IV-B1): several longer attacks vs one short one.
    const std::size_t attack_count =
        cps ? 1 + b.rng.poisson(1.2) : 1;
    static constexpr net::Port kCpsPorts[] = {502, 44818, 20000, 102, 2404};
    static constexpr net::Port kConsumerPorts[] = {80, 23, 9100, 8080, 554};
    for (std::size_t a = 0; a < attack_count; ++a) {
      AttackPlan attack;
      const int start = static_cast<int>(
          b.rng.uniform(0, util::AnalysisWindow::kHours - 1));
      const int length =
          static_cast<int>(cps ? b.rng.uniform(2, 6) : b.rng.uniform(1, 3));
      for (int h = start;
           h < std::min(start + length, util::AnalysisWindow::kHours); ++h) {
        attack.intervals.push_back(h);
      }
      attack.total_packets =
          std::max(1.0, device_budget / static_cast<double>(attack_count));
      attack.service_port = cps ? kCpsPorts[b.rng.uniform(0, 4)]
                                : kConsumerPorts[b.rng.uniform(0, 4)];
      attack.icmp_fraction = b.rng.uniform_real(0.1, 0.5);
      plan.first_interval = std::min(plan.first_interval, attack.intervals[0]);
      plan.attacks.push_back(std::move(attack));
    }
  }
}

// --------------------------------------------------------------------
// Pass 6: misconfiguration traffic and the every-device-emits guarantee.
// --------------------------------------------------------------------
void assign_misconfig(Builder& b) {
  const VolumeSpec vol;
  const double total = b.config.scaled_packets(vol.misconfig_packets);

  std::vector<std::uint32_t> consumer_pool;
  std::vector<std::uint32_t> cps_pool;
  for (const auto& plan : b.truth.plans) {
    if (b.db.devices()[plan.device].is_consumer()) {
      consumer_pool.push_back(plan.device);
    } else {
      cps_pool.push_back(plan.device);
    }
  }
  b.rng.shuffle(consumer_pool);
  b.rng.shuffle(cps_pool);

  auto give = [&](std::span<const std::uint32_t> pool, std::size_t quota,
                  double budget) {
    if (pool.empty() || quota == 0 || budget <= 0) return;
    quota = std::min(quota, pool.size());
    std::vector<double> weights(quota);
    double sum = 0.0;
    for (auto& w : weights) {
      w = b.rng.pareto(1.0, 0.9);
      sum += w;
    }
    for (std::size_t i = 0; i < quota; ++i) {
      DevicePlan& plan = b.plan_of(pool[i]);
      plan.roles |= kRoleMisconfig;
      plan.misconfig_packets += budget * weights[i] / sum;
    }
  };
  // Spread CPS misconfiguration chatter across most of the CPS population:
  // the paper's per-device Mann-Whitney result (CPS devices emit
  // significantly more) comes from CPS devices being uniformly chattier,
  // not from a handful of heavy emitters.
  give(cps_pool, b.config.scaled_count(9000), total * vol.misconfig_cps_share);
  give(consumer_pool, b.config.scaled_count(300),
       total * (1.0 - vol.misconfig_cps_share));

  // Guarantee: every compromised device emits at least a couple of packets
  // so it is discoverable at the telescope (definition of "unsolicited").
  for (auto& plan : b.truth.plans) {
    const double expected = plan.scan.total_packets + plan.udp.trio_packets +
                            plan.udp.dedicated_packets +
                            plan.udp.sweep_packets + plan.misconfig_packets +
                            plan.icmp_scan_packets +
                            (plan.attacks.empty() ? 0.0 : 1.0);
    if (expected < 1.0) {
      plan.roles |= kRoleMisconfig;
      plan.misconfig_packets += b.rng.uniform_real(2.0, 6.0);
    }
  }
}

// --------------------------------------------------------------------
// Pass 6b: unindexed compromised IoT devices — bots whose IPs the
// inventory never indexed (Discussion §VI). They scan the IoT-exploited
// services with the same discipline as indexed bots.
// --------------------------------------------------------------------
void assign_unindexed(Builder& b) {
  const std::size_t count = b.config.scaled_count(
      b.config.unindexed_iot_devices);
  // IoT-exploited services only (what an unindexed camera/router botnet
  // member would probe): Telnet-dominant, some CWMP and HTTP-alt.
  static const struct {
    const char* service;
    double weight;
  } kMix[] = {{"Telnet", 0.70}, {"CWMP", 0.18}, {"HTTP", 0.12}};
  std::vector<double> weights;
  for (const auto& m : kMix) weights.push_back(m.weight);

  for (std::size_t i = 0; i < count; ++i) {
    UnindexedDevice device;
    for (;;) {
      const auto candidate =
          net::Ipv4Address(static_cast<std::uint32_t>(b.rng.next()));
      const auto o0 = candidate.octet(0);
      if (o0 == 0 || o0 == 127 || o0 >= 224 ||
          b.config.darknet.contains(candidate) ||
          b.db.find(candidate) != nullptr) {
        continue;
      }
      device.ip = candidate;
      break;
    }
    device.service = scan_service_index(kMix[b.rng.weighted_index(weights)].service);
    // Heavy-tailed budgets comparable to mid-tier indexed scanners.
    device.total_packets = b.config.scaled_packets(
        std::min(200000.0, b.rng.pareto(2500.0, 1.1)));
    device.first_interval = b.sample_first_interval();
    b.truth.unindexed.push_back(device);
  }
}

// --------------------------------------------------------------------
// Pass 7: discovery onsets. Scanners are long-running early infections —
// they make up the paper's ~46% day-one discovery mass and keep the
// hourly scanner population flat (the paper finds no correlation between
// hourly scanner counts and scan volume). The remaining devices surface
// across the rest of the window (~2,900 newly discovered per day).
// --------------------------------------------------------------------
void assign_onsets(Builder& b) {
  static constexpr double kLateDayWeights[6] = {0.04, 0.192, 0.192,
                                                0.192, 0.192, 0.192};
  for (auto& plan : b.truth.plans) {
    int onset;
    if (plan.has(kRoleScanner)) {
      // Scanners are infections that predate the window: they are active
      // from the first hours, which keeps the hourly scanner population
      // flat (and they dominate the day-one discovery mass of Fig 2).
      onset = static_cast<int>(b.rng.uniform(0, 3));
    } else {
      const auto day = b.rng.weighted_index(kLateDayWeights);
      const int lo = static_cast<int>(day) * 24;
      const int hi = std::min(lo + 23, util::AnalysisWindow::kHours - 1);
      onset = static_cast<int>(b.rng.uniform(lo, hi));
    }
    // Scripted constraints: be active before any burst or attack hour.
    for (const auto& attack : plan.attacks) {
      for (const int h : attack.intervals) onset = std::min(onset, h);
    }
    if (plan.scan.hero >= 0) {
      const auto& hero =
          scan_heroes()[static_cast<std::size_t>(plan.scan.hero)];
      for (const int h : hero.burst_intervals) onset = std::min(onset, h);
    }
    plan.first_interval = onset;
  }
}

// --------------------------------------------------------------------
// Pass 8: duty cycles.
// --------------------------------------------------------------------
void assign_duty(Builder& b) {
  for (auto& plan : b.truth.plans) {
    if (plan.has(kRoleScanner) || !plan.attacks.empty()) {
      plan.duty = 1.0;
      continue;
    }
    // Consumer UDP senders stay up in long repeated blocks; CPS devices
    // wake in shorter, rarer bursts (Section IV-A's contrast).
    plan.duty = b.db.devices()[plan.device].is_consumer()
                    ? b.rng.uniform_real(0.5, 0.75)
                    : b.rng.uniform_real(0.25, 0.45);
  }
}

}  // namespace

Scenario build_scenario(const ScenarioConfig& config) {
  inventory::SynthesisConfig inv_cfg;
  inv_cfg.seed = config.seed;
  inv_cfg.device_count =
      config.scaled_count(PopulationSpec{}.inventory_devices);
  inv_cfg.darknet = config.darknet;
  auto db = inventory::synthesize_inventory(inv_cfg);

  Builder b(config, db);
  select_compromised(b);
  b.truth.compromised_by_selection = b.truth.plans.size();
  assign_scanners(b);
  assign_udp(b);
  assign_icmp_scanners(b);
  assign_victims(b);
  assign_misconfig(b);
  assign_unindexed(b);
  assign_onsets(b);
  assign_duty(b);

  IOTSCOPE_LOG_INFO(
      "scenario: %zu compromised (%zu consumer, %zu CPS), %zu DoS victims",
      b.truth.plans.size(), b.truth.compromised_consumer,
      b.truth.compromised_cps, b.truth.dos_victims);

  return Scenario{std::move(db), std::move(b.truth)};
}

}  // namespace iotscope::workload
