// Rotating-file writer: the ingest side of the streaming study. Where
// synthesize_into feeds a capture whose sink the caller wires directly
// into a pipeline, this driver plays the role of a real telescope's
// collection process — each completed hour is encoded and atomically
// renamed into a FlowTupleStore directory, in interval order, while a
// StreamingStudy follows the same directory from another thread (or
// another process; the handshake is only the filesystem).
#pragma once

#include <functional>

#include "telescope/capture.hpp"
#include "telescope/store.hpp"
#include "workload/synth.hpp"

namespace iotscope::workload {

/// Called after an hour's file is visible in the store (rename done),
/// with the published interval. Tests and benches use it to pace or
/// observe a concurrent reader; may be empty.
using HourPublished = std::function<void(int interval)>;

/// Ground truth plus capture accounting for a rotating-writer run.
struct RotatingWriterResult {
  SynthStats synth;               ///< emitted-traffic ground truth
  telescope::CaptureStats capture;  ///< telescope-side accounting
};

/// Synthesizes the scenario and rotates every completed hour into the
/// store. Deterministic in config.seed; the store's file set afterwards
/// is exactly what a batch run would have put() hour by hour.
RotatingWriterResult write_rotating(const Scenario& scenario,
                                    const ScenarioConfig& config,
                                    const telescope::FlowTupleStore& store,
                                    const HourPublished& on_publish = {});

}  // namespace iotscope::workload
