// The phase-based adversarial scenario engine (ROADMAP item 4, DESIGN.md
// §17). A scenario is an ordered list of phases over the 143-hour
// analysis window; each phase declares the campaigns active during it —
// staged botnet recruitment ramps (the IoT-BDA lifecycle), mid-study
// device churn (IP reassignment that breaks the inventory join),
// pulse-wave DoS backscatter, Zipf-tailed source populations with
// diurnal rate cycles, and malformed/hostile flowtuple hours. Campaign
// traffic rides on top of the regular paper-marginal workload through
// synthesize_traffic's hour hook, and every campaign records exact
// ground truth (ScenarioTruth) so the inference report can be checked
// claim by claim (core/scenario_check.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "telescope/capture.hpp"
#include "telescope/store.hpp"
#include "workload/rotating_writer.hpp"
#include "workload/scenario.hpp"
#include "workload/synth.hpp"

namespace iotscope::workload {

/// What a campaign does during its phase.
enum class CampaignKind {
  Recruitment,    ///< exponential infection ramp of inventory devices
  Churn,          ///< devices lose their indexed IP mid-campaign
  PulseDos,       ///< periodic pulse-wave backscatter from victims
  ZipfDiurnal,    ///< Zipf-tailed non-inventory sources, diurnal cycle
  MalformedHours, ///< scheduled hostile/corrupt on-disk hours
};

/// How a MalformedHours campaign corrupts an hour's file.
enum class HostileKind {
  TornCompressed, ///< valid ".iftc" prefix truncated mid-block
  TruncatedRaw,   ///< ".ift" cut mid-record
  BadHeader,      ///< ".iftc" header with an out-of-range interval
};

/// One campaign inside a phase. Fields are interpreted per kind; unused
/// knobs are ignored.
struct CampaignSpec {
  CampaignKind kind = CampaignKind::Recruitment;
  std::string label;

  std::size_t actors = 8;  ///< devices (or sources) the campaign drives
  /// Deterministic packets per actor-hour once active. Keep at or above
  /// the pipeline's unknown-source hourly floor (default 4) when the
  /// ground truth asserts on unknown-profile tallies.
  std::uint64_t rate = 6;
  net::Port port = 23;  ///< probed service port (Telnet by default)

  // Recruitment: infections follow t_i ~ (i/actors)^(1/growth) over the
  // phase, i.e. growth > 1 back-loads infections into an accelerating
  // ramp. Recruits stay active past the phase end (infections persist).
  double growth = CampaignShapeSpec{}.recruitment_growth;

  // Churn: each actor emits from its inventory IP until churn_hour, then
  // from a fresh non-inventory IP (the reassigned lease) until phase end.
  int churn_hour = 72;

  // PulseDos / ZipfDiurnal cycles.
  int period_hours = CampaignShapeSpec{}.pulse_period_hours;
  int on_hours = CampaignShapeSpec{}.pulse_on_hours;
  double zipf_exponent = CampaignShapeSpec{}.zipf_exponent;

  // MalformedHours: which intervals to corrupt, and how.
  std::vector<int> hostile_hours;
  HostileKind hostile = HostileKind::TornCompressed;
};

/// One phase: a half-open hour window and its active campaigns.
struct PhaseSpec {
  std::string label;
  int begin_hour = 0;
  int end_hour = 143;  ///< util::AnalysisWindow::kHours
  std::vector<CampaignSpec> campaigns;
};

/// A full scenario script: base-workload knobs plus the phase list.
struct ScenarioScript {
  std::string name;
  std::string description;
  ScenarioConfig base;
  std::vector<PhaseSpec> phases;
};

// ---- exact campaign ground truth -----------------------------------

struct RecruitTruth {
  std::uint32_t device = 0;  ///< inventory index
  net::Ipv4Address ip;
  int infected_hour = 0;  ///< first hour with any emission from this device
  std::uint64_t rate = 0;  ///< packets per hour once infected
  net::Port port = 23;     ///< probed service
};

struct ChurnTruth {
  std::uint32_t device = 0;     ///< inventory index of the churned device
  net::Ipv4Address device_ip;   ///< indexed IP (used before churn_hour)
  net::Ipv4Address new_ip;      ///< reassigned non-inventory IP
  int begin_hour = 0;           ///< first emitting hour (old IP)
  int churn_hour = 0;           ///< first hour on the new IP
  int end_hour = 0;             ///< one past the last emitting hour
  std::uint64_t rate = 0;       ///< packets per hour, both halves
  net::Port port = 23;          ///< probed service
};

struct PulseTruth {
  std::uint32_t device = 0;  ///< inventory index of the victim
  net::Ipv4Address ip;
  std::vector<int> on_intervals;        ///< pulse hours, ascending
  std::uint64_t packets_per_on_hour = 0;  ///< backscatter per pulse hour
  net::Port service_port = 80;  ///< flooded service (backscatter src port)
};

struct ZipfSourceTruth {
  net::Ipv4Address ip;  ///< non-inventory source
  std::size_t rank = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t min_hour_packets = 0;  ///< smallest active-hour emission
  net::Port port = 23;
};

/// Exact ledger of everything the campaigns injected.
struct ScenarioTruth {
  std::vector<RecruitTruth> recruits;
  std::vector<ChurnTruth> churned;
  std::vector<PulseTruth> pulses;
  std::vector<ZipfSourceTruth> zipf_sources;
  std::vector<int> hostile_hours;  ///< sorted, unique
  std::uint64_t campaign_packets = 0;  ///< total injected by campaigns
};

/// Executes a ScenarioScript: builds the base scenario, plans every
/// campaign deterministically (actors, infection times, churned IPs,
/// pulse schedules), and emits base + campaign traffic per hour. All
/// planning happens in the constructor; emit()/write_to_store() are
/// const and reproducible — two calls produce identical packet streams,
/// which is what keeps batch and --follow runs byte-identical.
class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioScript script);

  const ScenarioScript& script() const noexcept { return script_; }
  const Scenario& scenario() const noexcept { return scenario_; }
  const ScenarioTruth& truth() const noexcept { return truth_; }
  /// Planned per-hour Zipf emissions, row-aligned with
  /// truth().zipf_sources — the per-hour ground truth the checker needs
  /// to reproduce the profiling floor's hour-by-hour cut.
  const std::vector<std::vector<std::uint64_t>>& zipf_hour_counts()
      const noexcept {
    return zipf_hour_counts_;
  }

  /// Emits the full packet stream (base workload + campaigns) into the
  /// sink in non-decreasing hour order. Returns the base synthesizer's
  /// stats; campaign packets are ledgered in truth().campaign_packets.
  SynthStats emit(const PacketSink& sink) const;

  /// What write_to_store() put on disk.
  struct WriteResult {
    SynthStats synth;
    telescope::CaptureStats capture;
    /// Per-interval packet totals of the hours published intact —
    /// hostile hours hold 0 (their records are unrecoverable by design).
    std::vector<std::uint64_t> clean_hour_packets;
    std::uint64_t corrupted_hours = 0;
  };

  /// Captures the emitted stream into hourly files under `store`,
  /// replacing each scheduled hostile hour's file with crafted corrupt
  /// bytes (published with the same atomic rename as real hours).
  /// on_publish (optional) fires after every published hour — hostile or
  /// not — in ascending interval order.
  WriteResult write_to_store(const telescope::FlowTupleStore& store,
                             const HourPublished& on_publish = {}) const;

 private:
  void plan_campaigns();
  void emit_campaign_hour(int hour, const PacketSink& sink, util::Rng& rng,
                          std::uint64_t& emitted) const;
  std::string craft_hostile_bytes(const net::FlowBatch& batch,
                                  HostileKind kind) const;

  ScenarioScript script_;
  Scenario scenario_;
  ScenarioTruth truth_;
  std::map<int, HostileKind> hostile_kind_;  ///< interval -> corruption
  /// Planned per-hour Zipf emission counts, indexed [source][hour] —
  /// precomputed so emit() and the truth ledger share one formula.
  std::vector<std::vector<std::uint64_t>> zipf_hour_counts_;
};

/// Ordered names of the built-in scenarios.
const std::vector<std::string>& builtin_scenario_names();

/// Script of a built-in scenario; nullopt for unknown names. All
/// built-ins run at a small scale suited to tests and benches.
std::optional<ScenarioScript> builtin_scenario(const std::string& name);

}  // namespace iotscope::workload
