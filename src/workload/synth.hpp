// The traffic synthesizer: executes the ground-truth plans hour by hour,
// emitting the packet stream the telescope would have captured during the
// 143-hour window — scanning, UDP probing, DoS backscatter, ICMP sweeps,
// misconfiguration, and non-IoT background radiation.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "telescope/capture.hpp"
#include "workload/scenario.hpp"

namespace iotscope::workload {

/// Emission counters, by traffic class (ground truth for validation).
struct SynthStats {
  std::uint64_t total = 0;
  std::uint64_t tcp_scan = 0;
  std::uint64_t udp = 0;
  std::uint64_t backscatter = 0;
  std::uint64_t icmp_scan = 0;
  std::uint64_t misconfig = 0;
  std::uint64_t noise = 0;      ///< spray-and-pray non-inventory radiation
  std::uint64_t unindexed = 0;  ///< scanning from unindexed IoT devices
  std::uint64_t heavy_hitter = 0;  ///< skew source (heavy_hitter_share > 0)
};

/// Packet sink. Called in non-decreasing hour order.
using PacketSink = std::function<void(const net::PacketRecord&)>;

/// Replays the scenario's plans over the analysis window into the sink.
/// Deterministic in config.seed.
SynthStats synthesize_traffic(const Scenario& scenario,
                              const ScenarioConfig& config,
                              const PacketSink& sink);

/// Convenience: synthesize directly into a telescope capture engine and
/// finish() it so all hourly files are flushed.
SynthStats synthesize_into(const Scenario& scenario,
                           const ScenarioConfig& config,
                           telescope::TelescopeCapture& capture);

}  // namespace iotscope::workload
