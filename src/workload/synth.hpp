// The traffic synthesizer: executes the ground-truth plans hour by hour,
// emitting the packet stream the telescope would have captured during the
// 143-hour window — scanning, UDP probing, DoS backscatter, ICMP sweeps,
// misconfiguration, and non-IoT background radiation.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "telescope/capture.hpp"
#include "workload/scenario.hpp"

namespace iotscope::workload {

/// Emission counters, by traffic class (ground truth for validation).
struct SynthStats {
  std::uint64_t total = 0;
  std::uint64_t tcp_scan = 0;
  std::uint64_t udp = 0;
  std::uint64_t backscatter = 0;
  std::uint64_t icmp_scan = 0;
  std::uint64_t misconfig = 0;
  std::uint64_t noise = 0;      ///< spray-and-pray non-inventory radiation
  std::uint64_t unindexed = 0;  ///< scanning from unindexed IoT devices
  std::uint64_t heavy_hitter = 0;  ///< skew source (heavy_hitter_share > 0)
};

/// Packet sink. Called in non-decreasing hour order.
using PacketSink = std::function<void(const net::PacketRecord&)>;

/// Optional per-hour tap: invoked once per analysis hour, after the base
/// workload's records for that hour have gone to the sink. The scenario
/// engine injects campaign traffic (recruitment ramps, churned sources,
/// pulse-wave backscatter) through this seam; packets it emits are the
/// hook's own responsibility to count. An empty hook leaves the base
/// packet stream byte-identical to the three-argument overload.
using HourHook = std::function<void(int interval, const PacketSink& sink)>;

/// First address of `prefix` at or after `prefix.base() + start_offset`
/// (host bits wrap within the prefix) that is not an inventory device IP.
/// Used wherever the workload needs a stable synthetic source that must
/// stay inside a reserved range — the RFC 2544 heavy hitter, churned-IP
/// reassignments — no matter how the inventory collides with it. Falls
/// back to the start address if the whole prefix is indexed (only
/// possible for prefixes smaller than the inventory).
net::Ipv4Address pick_unused_source(const inventory::IoTDeviceDatabase& db,
                                    const net::Ipv4Prefix& prefix,
                                    std::uint32_t start_offset);

/// Replays the scenario's plans over the analysis window into the sink.
/// Deterministic in config.seed; hour_hook (when set) runs at the end of
/// every hour and must itself be deterministic for that to hold.
SynthStats synthesize_traffic(const Scenario& scenario,
                              const ScenarioConfig& config,
                              const PacketSink& sink,
                              const HourHook& hour_hook = {});

/// Convenience: synthesize directly into a telescope capture engine and
/// finish() it so all hourly files are flushed.
SynthStats synthesize_into(const Scenario& scenario,
                           const ScenarioConfig& config,
                           telescope::TelescopeCapture& capture);

}  // namespace iotscope::workload
