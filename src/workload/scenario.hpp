// Scenario construction: inventory synthesis + compromise/role assignment.
// `build_scenario` is deterministic in the config and produces both the
// device database and the ground-truth plans that drive traffic synthesis.
#pragma once

#include <cstdint>

#include "inventory/database.hpp"
#include "inventory/generator.hpp"
#include "workload/ground_truth.hpp"
#include "workload/spec.hpp"

namespace iotscope::workload {

/// Scenario knobs. Scales apply multiplicatively to the paper-scale spec:
/// inventory_scale scales device counts and quotas; traffic_scale scales
/// packet budgets. Defaults regenerate the full study.
struct ScenarioConfig {
  std::uint64_t seed = kDefaultSeed;
  double inventory_scale = 1.0;
  double traffic_scale = 1.0;
  /// Extra telescope radiation from non-inventory sources, as a fraction
  /// of the IoT packet volume; exercises the correlation engine's filter.
  double noise_ratio = 0.10;
  /// Compromised IoT devices NOT present in the inventory (what Shodan
  /// never indexed), at full scale; they scan like indexed bots and are
  /// the targets of the fuzzy fingerprinting extension. Scaled by
  /// inventory_scale.
  std::size_t unindexed_iot_devices = 400;
  /// Fraction of each hour's records emitted by ONE aggressive
  /// non-inventory source (a Telnet-sweeping heavy hitter). 0 disables
  /// the source entirely — existing scenarios are byte-stable. At 0.8 the
  /// source pins ~80 % of every hour to a single partition bucket, the
  /// load shape that collapses static shard scheduling.
  double heavy_hitter_share = 0.0;
  net::Ipv4Prefix darknet{net::Ipv4Address::from_octets(10, 0, 0, 0), 8};

  /// Scaled device-count helper (at least 1 when count is positive).
  std::size_t scaled_count(std::size_t full_scale) const noexcept {
    if (full_scale == 0) return 0;
    const auto scaled =
        static_cast<std::size_t>(static_cast<double>(full_scale) *
                                 inventory_scale + 0.5);
    return scaled == 0 ? 1 : scaled;
  }

  /// Scaled packet-budget helper.
  double scaled_packets(double full_scale) const noexcept {
    return full_scale * traffic_scale;
  }
};

/// A built scenario: the synthetic Shodan inventory plus ground truth.
struct Scenario {
  inventory::IoTDeviceDatabase inventory;
  GroundTruth truth;
};

/// Synthesizes the inventory and assigns compromise/roles per the spec.
Scenario build_scenario(const ScenarioConfig& config);

}  // namespace iotscope::workload
