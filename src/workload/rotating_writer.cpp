#include "workload/rotating_writer.hpp"

namespace iotscope::workload {

RotatingWriterResult write_rotating(const Scenario& scenario,
                                    const ScenarioConfig& config,
                                    const telescope::FlowTupleStore& store,
                                    const HourPublished& on_publish) {
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet),
      [&store, &on_publish](net::FlowBatch&& batch) {
        const int interval = batch.interval;
        store.put(batch);  // atomic rename: readers see the whole hour
        if (on_publish) on_publish(interval);
      });
  RotatingWriterResult result;
  result.synth = synthesize_into(scenario, config, capture);
  result.capture = capture.stats();
  return result;
}

}  // namespace iotscope::workload
