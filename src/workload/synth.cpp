#include "workload/synth.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "telescope/darknet.hpp"
#include "util/logging.hpp"

namespace iotscope::workload {

namespace {

using util::AnalysisWindow;

constexpr int kHours = AnalysisWindow::kHours;

/// Per-plan immutable emission state derived once before the hour loop.
struct Derived {
  net::Ipv4Address src;
  bool consumer = true;
  std::uint8_t ttl = 52;
  int first = 0;
  int block_len = 6;       ///< duty-cycle block length (hours)
  std::uint64_t salt = 0;  ///< per-device hash salt for duty blocks

  // Scanning.
  double scan_base_rate = 0.0;   ///< packets per active hour
  double scan_burst_each = 0.0;  ///< extra packets per scripted burst hour
  const ScanServiceSpec* service = nullptr;
  const ScanHeroSpec* hero = nullptr;
  std::vector<net::Port> other_ports;  ///< port pool for "Other" scanners

  // UDP.
  double udp_rate = 0.0;  ///< combined per-active-hour rate
  double trio_frac = 0.0, dedicated_frac = 0.0;  ///< split of udp_rate
  net::Port dedicated_port = 0;
  bool trio_32124 = false, trio_28183 = false;
  std::vector<net::Port> udp_common;  ///< small reused port pool

  // Others.
  double icmp_rate = 0.0;
  double misconfig_rate = 0.0;
};

/// Stateless per-(device, block) duty decision so activity comes in
/// contiguous multi-hour blocks, as the paper observes for consumer UDP.
bool duty_active(std::uint64_t salt, int block_id, double duty) {
  util::SplitMix64 sm(salt ^ (static_cast<std::uint64_t>(block_id) *
                              0x9E3779B97F4A7C15ULL));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return u < duty;
}

/// Immutable emission state of one unindexed IoT device.
struct UnindexedDerived {
  net::Ipv4Address src;
  const ScanServiceSpec* service = nullptr;
  double rate = 0.0;
  int first = 0;
  std::uint8_t ttl = 64;
};

class Synthesizer {
 public:
  Synthesizer(const Scenario& scenario, const ScenarioConfig& config,
              const PacketSink& sink, const HourHook& hour_hook)
      : scenario_(scenario),
        config_(config),
        sink_(sink),
        hour_hook_(hour_hook),
        space_(config.darknet),
        rng_(config.seed ^ 0x7EA5C0DEULL) {
    prepare();
  }

  SynthStats run() {
    for (int h = 0; h < kHours; ++h) {
      hour_start_ = AnalysisWindow::interval_start(h);
      const std::uint64_t hour_base = stats_.total;
      for (std::size_t i = 0; i < scenario_.truth.plans.size(); ++i) {
        emit_plan_hour(scenario_.truth.plans[i], derived_[i], h);
      }
      emit_unindexed_hour(h);
      emit_noise_hour();
      emit_heavy_hitter_hour(stats_.total - hour_base);
      // Campaign tap last, so the heavy-hitter share stays defined over
      // the base workload alone (hook packets are the caller's ledger).
      if (hour_hook_) hour_hook_(h, sink_);
    }
    return stats_;
  }

 private:
  util::UnixTime ts() { return hour_start_ + static_cast<long>(rng_.uniform(0, 3599)); }

  net::Port ephemeral() {
    return static_cast<net::Port>(rng_.uniform(1024, 65535));
  }

  void prepare() {
    const auto& plans = scenario_.truth.plans;
    const auto& devices = scenario_.inventory.devices();
    derived_.resize(plans.size());
    const auto& heroes = scan_heroes();
    const auto& services = scan_services();

    for (std::size_t i = 0; i < plans.size(); ++i) {
      const DevicePlan& plan = plans[i];
      Derived& d = derived_[i];
      d.src = devices[plan.device].ip;
      d.consumer = devices[plan.device].is_consumer();
      d.ttl = plan.ttl;
      d.first = plan.first_interval;
      d.block_len = static_cast<int>(rng_.uniform(4, 12));
      d.salt = rng_.next();

      const double active_hours =
          std::max(1.0, plan.duty * static_cast<double>(kHours - d.first));

      if (plan.has(kRoleScanner) && plan.scan.service >= 0) {
        d.service = &services[static_cast<std::size_t>(plan.scan.service)];
        double base_budget = plan.scan.total_packets;
        if (plan.scan.hero >= 0) {
          d.hero = &heroes[static_cast<std::size_t>(plan.scan.hero)];
          if (!d.hero->burst_intervals.empty()) {
            const double burst_budget = 0.8 * plan.scan.total_packets;
            base_budget -= burst_budget;
            d.scan_burst_each =
                burst_budget /
                static_cast<double>(d.hero->burst_intervals.size());
          }
        }
        d.scan_base_rate = base_budget / active_hours;
        if (d.service->ports.empty()) {
          // "Other" scanners: consumer devices reuse a moderate port pool;
          // CPS devices sweep wider (Fig 9's ports-per-hour contrast).
          const std::size_t pool = d.consumer ? 240 : 2000;
          d.other_ports.resize(pool);
          for (auto& p : d.other_ports) {
            p = static_cast<net::Port>(rng_.uniform(1, 65535));
          }
        }
      }

      if (plan.has(kRoleUdp)) {
        const double total = plan.udp.trio_packets +
                             plan.udp.dedicated_packets +
                             plan.udp.sweep_packets;
        d.udp_rate = total / active_hours;
        if (total > 0) {
          d.trio_frac = plan.udp.trio_packets / total;
          d.dedicated_frac = plan.udp.dedicated_packets / total;
        }
        if (plan.udp.dedicated_port >= 0) {
          d.dedicated_port =
              udp_ports()[static_cast<std::size_t>(plan.udp.dedicated_port)]
                  .port;
        }
        d.trio_32124 = rng_.chance(0.938);  // Table IV device-count ratios
        d.trio_28183 = rng_.chance(0.960);
        // A few dozen recurring ports per device: enough reuse to keep
        // consumer distinct-port counts below packet counts (Fig 5b)
        // without letting one heavy device mint a top-10 port.
        d.udp_common.resize(64);
        for (auto& p : d.udp_common) {
          p = static_cast<net::Port>(rng_.uniform(1, 65535));
        }
      }

      d.icmp_rate = plan.icmp_scan_packets / active_hours;
      d.misconfig_rate = plan.misconfig_packets / active_hours;
    }

    // Unindexed IoT devices (Discussion section VI): same scanning
    // discipline as indexed bots, sources unknown to the inventory.
    for (const auto& device : scenario_.truth.unindexed) {
      UnindexedDerived u;
      u.src = device.ip;
      u.service = &services[static_cast<std::size_t>(device.service)];
      u.first = device.first_interval;
      u.rate = device.total_packets /
               std::max(1.0, static_cast<double>(kHours - device.first_interval));
      u.ttl = static_cast<std::uint8_t>(rng_.uniform(30, 200));
      unindexed_.push_back(u);
    }

    // Skewed-workload source: one fixed non-inventory IP (benchmarking
    // range, RFC 2544) emitting heavy_hitter_share of every hour. Picked
    // without consuming rng_ draws so share = 0 leaves every existing
    // scenario's packet stream byte-identical. Collision probing wraps
    // within 198.18.0.0/15 so the source can never walk into routable
    // (or inventory) space however densely the range is indexed.
    if (config_.heavy_hitter_share > 0.0) {
      heavy_hitter_src_ = pick_unused_source(
          scenario_.inventory,
          net::Ipv4Prefix(net::Ipv4Address::from_octets(198, 18, 0, 0), 15),
          66);
    }

    // Expected per-hour noise volume: scale with total IoT budget.
    const VolumeSpec vol;
    const double iot_total = config_.scaled_packets(
        vol.tcp_scan_packets + vol.udp_packets + vol.backscatter_packets +
        vol.icmp_scan_packets + vol.misconfig_packets);
    noise_per_hour_ = config_.noise_ratio * iot_total / kHours;
  }

  void emit(const net::PacketRecord& packet) {
    sink_(packet);
    ++stats_.total;
  }

  // ---- scanning ----
  void emit_scan_packets(const Derived& d, double count_mean) {
    const std::uint64_t n = rng_.poisson(count_mean);
    for (std::uint64_t k = 0; k < n; ++k) {
      net::Port port;
      if (!d.service->ports.empty()) {
        const std::size_t pick = rng_.weighted_index(d.service->port_weights);
        port = d.service->ports[pick];
      } else if (d.consumer) {
        port = d.other_ports[rng_.uniform(0, d.other_ports.size() - 1)];
      } else {
        port = static_cast<net::Port>(rng_.uniform(1, 65535));
      }
      emit(net::make_tcp_syn(ts(), d.src, space_.random_address(rng_),
                             ephemeral(), port, d.ttl));
      ++stats_.tcp_scan;
    }
  }

  /// The interval-119 case study: one camera probing ~10,249 distinct
  /// ports across 55 destinations in a single hour.
  void emit_port_spike(const Derived& d) {
    std::vector<net::Ipv4Address> dsts(55);
    for (auto& a : dsts) a = space_.random_address(rng_);
    const net::Port base = static_cast<net::Port>(rng_.uniform(1, 50000));
    for (int p = 0; p < 10249; ++p) {
      const net::Port port = static_cast<net::Port>(
          (static_cast<std::uint32_t>(base) + static_cast<std::uint32_t>(p)) %
              65535 + 1);
      emit(net::make_tcp_syn(ts(), d.src, dsts[static_cast<std::size_t>(p) % dsts.size()],
                             ephemeral(), port, d.ttl));
      ++stats_.tcp_scan;
    }
  }

  double http_ramp(int h) const {
    // Gradual rise of HTTP scanning after interval 92 (Fig 10), mean ~1.
    return h < 91 ? 0.93 : 0.93 + 0.42 * static_cast<double>(h - 91) / 52.0;
  }

  // ---- UDP ----
  void emit_udp_packets(const DevicePlan& plan, const Derived& d, double mean) {
    const std::uint64_t n = rng_.poisson(mean);
    if (n == 0) return;
    // CPS devices revisit a small destination pool (more packets per dst,
    // Fig 5a); consumer devices hit a fresh destination per packet
    // (packets ~= destinations, Fig 5b). A CPS hour may also be a "port
    // sweep" spike hour.
    std::vector<net::Ipv4Address> pool;
    const bool cps_pool = !d.consumer;
    if (cps_pool) {
      pool.resize(std::max<std::size_t>(1, n / 3));
      for (auto& a : pool) a = space_.random_address(rng_);
    }
    const bool sweep_hour = !d.consumer && rng_.chance(0.10);
    const net::Port sweep_base =
        static_cast<net::Port>(rng_.uniform(1, 60000));
    for (std::uint64_t k = 0; k < n; ++k) {
      net::Port port;
      const double r = rng_.uniform01();
      if (r < d.trio_frac) {
        // Netis-backdoor trio; weights follow Table IV shares.
        static const double kTrioW[] = {2.52, 1.08, 0.94};
        switch (rng_.weighted_index(kTrioW)) {
          case 1:
            port = d.trio_32124 ? net::Port{32124} : net::Port{37547};
            break;
          case 2:
            port = d.trio_28183 ? net::Port{28183} : net::Port{37547};
            break;
          default:
            port = 37547;
        }
      } else if (r < d.trio_frac + d.dedicated_frac && d.dedicated_port != 0) {
        port = d.dedicated_port;
      } else if (sweep_hour) {
        port = static_cast<net::Port>(
            (static_cast<std::uint32_t>(sweep_base) + k) % 65535 + 1);
      } else if (d.consumer && rng_.chance(0.35)) {
        port = d.udp_common[rng_.uniform(0, d.udp_common.size() - 1)];
      } else {
        port = static_cast<net::Port>(rng_.uniform(1, 65535));
      }
      const auto dst = cps_pool ? pool[rng_.uniform(0, pool.size() - 1)]
                                : space_.random_address(rng_);
      emit(net::make_udp(ts(), d.src, dst, ephemeral(), port,
                         static_cast<std::uint16_t>(rng_.uniform(8, 64)),
                         d.ttl));
      ++stats_.udp;
    }
    (void)plan;
  }

  // ---- backscatter ----
  void emit_backscatter(const Derived& d, const AttackPlan& attack) {
    const double mean =
        attack.total_packets / static_cast<double>(attack.intervals.size());
    const std::uint64_t n = rng_.poisson(mean);
    for (std::uint64_t k = 0; k < n; ++k) {
      const auto dst = space_.random_address(rng_);  // spoofed flood source
      if (rng_.chance(attack.icmp_fraction)) {
        static const double kIcmpW[] = {0.5, 0.3, 0.15, 0.05};
        static const net::IcmpType kIcmpT[] = {
            net::IcmpType::EchoReply, net::IcmpType::DestinationUnreachable,
            net::IcmpType::TimeExceeded, net::IcmpType::SourceQuench};
        emit(net::make_icmp(ts(), d.src, dst, kIcmpT[rng_.weighted_index(kIcmpW)],
                            0, d.ttl));
      } else if (rng_.chance(0.7)) {
        emit(net::make_tcp_syn_ack(ts(), d.src, dst, attack.service_port,
                                   ephemeral(), d.ttl));
      } else {
        emit(net::make_tcp_rst(ts(), d.src, dst, attack.service_port,
                               ephemeral(), d.ttl));
      }
      ++stats_.backscatter;
    }
  }

  // ---- misconfiguration: TCP traffic that is neither SYN probing nor
  // backscatter (ACK / PSH-ACK / FIN-ACK combinations) ----
  void emit_misconfig(const Derived& d, double mean) {
    const std::uint64_t n = rng_.poisson(mean);
    static const std::uint8_t kFlags[] = {
        net::kAck, net::kAck | net::kPsh, net::kAck | net::kFin};
    static const net::Port kPorts[] = {80, 443, 25, 8443, 5228};
    for (std::uint64_t k = 0; k < n; ++k) {
      net::PacketRecord p = net::make_tcp_syn(
          ts(), d.src, space_.random_address(rng_), ephemeral(),
          kPorts[rng_.uniform(0, 4)], d.ttl);
      p.tcp_flags = kFlags[rng_.uniform(0, 2)];
      p.ip_length = static_cast<std::uint16_t>(rng_.uniform(40, 1200));
      emit(p);
      ++stats_.misconfig;
    }
  }

  void emit_plan_hour(const DevicePlan& plan, const Derived& d, int h) {
    // Scripted burst hours fire regardless of onset/duty bookkeeping.
    if (d.hero != nullptr) {
      const auto& bursts = d.hero->burst_intervals;
      if (std::find(bursts.begin(), bursts.end(), h) != bursts.end()) {
        if (d.hero->label == "portspike-do-cam") {
          emit_port_spike(d);
        } else {
          emit_scan_packets(d, d.scan_burst_each);
        }
      }
    }
    for (const auto& attack : plan.attacks) {
      if (std::find(attack.intervals.begin(), attack.intervals.end(), h) !=
          attack.intervals.end()) {
        emit_backscatter(d, attack);
      }
    }

    if (h < d.first) return;
    const bool active =
        plan.duty >= 1.0 || duty_active(d.salt, h / d.block_len, plan.duty);
    if (!active) return;

    if (d.service != nullptr && d.scan_base_rate > 0) {
      // The BackroomNet device only scans within its scripted window
      // (intervals 113.. on the paper's 1-based axis).
      const bool backroom =
          d.hero != nullptr && d.hero->label == "backroomnet-ca";
      if (backroom) {
        if (h >= 112) {
          // Budget concentrated over the 31-hour tail window.
          const double window_rate =
              d.scan_base_rate * static_cast<double>(kHours - d.first) / 31.0;
          emit_scan_packets(d, window_rate);
        }
      } else {
        double rate = d.scan_base_rate;
        if (d.service->name == "HTTP") rate *= http_ramp(h);
        // Heavy scanners emit in bursty waves but never go fully silent:
        // hourly volume fluctuates widely while the scanner *population*
        // stays flat — the paper finds no correlation between hourly
        // scanner counts and scan volume.
        if (d.scan_base_rate > 50.0) {
          rate = std::max(5.0, rate * rng_.exponential(1.0));
        }
        emit_scan_packets(d, rate);
      }
    }
    if (d.udp_rate > 0) emit_udp_packets(plan, d, d.udp_rate);
    if (d.icmp_rate > 0) {
      const std::uint64_t n = rng_.poisson(d.icmp_rate);
      for (std::uint64_t k = 0; k < n; ++k) {
        emit(net::make_icmp(ts(), d.src, space_.random_address(rng_),
                            net::IcmpType::EchoRequest, 0, d.ttl));
        ++stats_.icmp_scan;
      }
    }
    if (d.misconfig_rate > 0) emit_misconfig(d, d.misconfig_rate);
  }

  // ---- unindexed IoT scanners ----
  void emit_unindexed_hour(int h) {
    for (const auto& u : unindexed_) {
      if (h < u.first) continue;
      const std::uint64_t n = rng_.poisson(u.rate);
      for (std::uint64_t k = 0; k < n; ++k) {
        const std::size_t pick = rng_.weighted_index(u.service->port_weights);
        emit(net::make_tcp_syn(ts(), u.src, space_.random_address(rng_),
                               ephemeral(), u.service->ports[pick], u.ttl));
        ++stats_.unindexed;
      }
    }
  }

  // ---- the skewed-workload heavy hitter ----
  // One source emitting `share` of the hour's records: with T records
  // already emitted this hour, another T*s/(1-s) Telnet SYNs make the
  // source's share of the hour s. Distinct ephemeral source ports keep
  // every packet its own flow, so the record-level skew survives
  // flowtuple aggregation.
  void emit_heavy_hitter_hour(std::uint64_t hour_records) {
    const double share = std::min(config_.heavy_hitter_share, 0.95);
    if (share <= 0.0 || hour_records == 0) return;
    const auto extra = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(hour_records) * share / (1.0 - share)));
    for (std::uint64_t k = 0; k < extra; ++k) {
      emit(net::make_tcp_syn(ts(), heavy_hitter_src_,
                             space_.random_address(rng_), ephemeral(), 23,
                             64));
      ++stats_.heavy_hitter;
    }
  }

  // ---- background radiation from non-inventory sources ----
  void emit_noise_hour() {
    const std::uint64_t n = rng_.poisson(noise_per_hour_);
    static const net::Port kScanPorts[] = {23, 445, 80, 1433, 3389, 5060};
    for (std::uint64_t k = 0; k < n; ++k) {
      // Random routable source outside the inventory.
      net::Ipv4Address src;
      do {
        src = net::Ipv4Address(static_cast<std::uint32_t>(rng_.next()));
      } while (src.octet(0) == 0 || src.octet(0) == 10 ||
               src.octet(0) == 127 || src.octet(0) >= 224 ||
               scenario_.inventory.find(src) != nullptr);
      const auto dst = space_.random_address(rng_);
      const double r = rng_.uniform01();
      if (r < 0.60) {
        emit(net::make_tcp_syn(ts(), src, dst, ephemeral(),
                               kScanPorts[rng_.uniform(0, 5)]));
      } else if (r < 0.85) {
        emit(net::make_udp(ts(), src, dst, ephemeral(),
                           static_cast<net::Port>(rng_.uniform(1, 65535))));
      } else if (r < 0.95) {
        emit(net::make_icmp(ts(), src, dst, net::IcmpType::EchoRequest));
      } else {
        net::PacketRecord p =
            net::make_tcp_syn(ts(), src, dst, ephemeral(), 80);
        p.tcp_flags = net::kAck;
        emit(p);
      }
      ++stats_.noise;
    }
  }

  const Scenario& scenario_;
  const ScenarioConfig& config_;
  const PacketSink& sink_;
  const HourHook& hour_hook_;
  telescope::DarknetSpace space_;
  util::Rng rng_;
  std::vector<Derived> derived_;
  std::vector<UnindexedDerived> unindexed_;
  net::Ipv4Address heavy_hitter_src_;
  SynthStats stats_;
  util::UnixTime hour_start_ = 0;
  double noise_per_hour_ = 0.0;
};

}  // namespace

net::Ipv4Address pick_unused_source(const inventory::IoTDeviceDatabase& db,
                                    const net::Ipv4Prefix& prefix,
                                    std::uint32_t start_offset) {
  const std::uint32_t host_mask = ~prefix.mask();
  for (std::uint64_t k = 0; k < prefix.size(); ++k) {
    const net::Ipv4Address candidate(
        prefix.base().value() |
        ((start_offset + static_cast<std::uint32_t>(k)) & host_mask));
    if (db.find(candidate) == nullptr) return candidate;
  }
  return net::Ipv4Address(prefix.base().value() | (start_offset & host_mask));
}

SynthStats synthesize_traffic(const Scenario& scenario,
                              const ScenarioConfig& config,
                              const PacketSink& sink,
                              const HourHook& hour_hook) {
  Synthesizer synth(scenario, config, sink, hour_hook);
  SynthStats stats = synth.run();
  IOTSCOPE_LOG_INFO(
      "synthesized %llu packets (scan %llu, udp %llu, backscatter %llu, "
      "icmp %llu, misconfig %llu, noise %llu, unindexed %llu)",
      static_cast<unsigned long long>(stats.total),
      static_cast<unsigned long long>(stats.tcp_scan),
      static_cast<unsigned long long>(stats.udp),
      static_cast<unsigned long long>(stats.backscatter),
      static_cast<unsigned long long>(stats.icmp_scan),
      static_cast<unsigned long long>(stats.misconfig),
      static_cast<unsigned long long>(stats.noise),
      static_cast<unsigned long long>(stats.unindexed));
  return stats;
}

SynthStats synthesize_into(const Scenario& scenario,
                           const ScenarioConfig& config,
                           telescope::TelescopeCapture& capture) {
  auto stats = synthesize_traffic(
      scenario, config,
      [&capture](const net::PacketRecord& p) { capture.ingest(p); });
  capture.finish();
  return stats;
}

}  // namespace iotscope::workload
