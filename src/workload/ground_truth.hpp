// Ground truth of the synthetic scenario: which devices are compromised,
// what role each plays, and the per-device emission plans the synthesizer
// executes. The paper could only *infer* these facts from darknet traffic;
// the simulator knows them exactly, which is what lets the test suite
// validate the inference pipeline end-to-end.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"

namespace iotscope::workload {

/// Bit flags describing what a compromised device does.
enum RoleBits : std::uint8_t {
  kRoleScanner = 1 << 0,      ///< TCP SYN scanning
  kRoleUdp = 1 << 1,          ///< UDP probing
  kRoleIcmpScanner = 1 << 2,  ///< ICMP echo-request scanning
  kRoleDosVictim = 1 << 3,    ///< emits backscatter (victim of spoofed DoS)
  kRoleMisconfig = 1 << 4,    ///< misconfiguration / other traffic
};

/// TCP-scanning plan of one device.
struct ScanPlan {
  int service = -1;          ///< index into spec scan_services()
  double total_packets = 0;  ///< budget over the analysis window
  int hero = -1;             ///< index into scan_heroes(), or -1
};

/// UDP-probing plan of one device.
struct UdpPlan {
  double trio_packets = 0;  ///< toward the Netis-backdoor trio
                            ///< (37547 / 32124 / 28183)
  int dedicated_port = -1;  ///< index into udp_ports() for specialists
  double dedicated_packets = 0;
  double sweep_packets = 0;  ///< random-port sweep budget
};

/// One DoS attack against a victim device (backscatter emission).
struct AttackPlan {
  std::vector<int> intervals;   ///< attacked hours (0-based)
  double total_packets = 0;     ///< backscatter budget
  net::Port service_port = 0;   ///< flooded service (backscatter src port)
  double icmp_fraction = 0.2;   ///< ICMP-reply share (rest TCP SYN-ACK/RST)
  int event = -1;               ///< index into dos_events(), or -1
};

/// Everything one device does during the window.
struct DevicePlan {
  std::uint32_t device = 0;  ///< index into the inventory's device vector
  std::uint8_t roles = 0;
  int first_interval = 0;    ///< first hour with any emission (Fig 2 curve)
  double duty = 1.0;         ///< fraction of post-onset hours active
  std::uint8_t ttl = 52;     ///< per-device TTL fingerprint
  ScanPlan scan;
  UdpPlan udp;
  std::vector<AttackPlan> attacks;
  double misconfig_packets = 0;
  double icmp_scan_packets = 0;

  bool has(RoleBits role) const noexcept { return (roles & role) != 0; }
};

/// A compromised IoT device that is NOT in the Shodan-style inventory —
/// the population the paper's Discussion §VI wants to surface via fuzzy
/// fingerprinting. The correlation engine cannot attribute it; the
/// fingerprinter should.
struct UnindexedDevice {
  net::Ipv4Address ip;
  int service = 0;           ///< index into spec scan_services()
  double total_packets = 0;  ///< scanning budget over the window
  int first_interval = 0;
};

/// The full scenario ground truth.
struct GroundTruth {
  std::vector<DevicePlan> plans;
  std::vector<UnindexedDevice> unindexed;
  /// device index -> plan index, for O(1) lookup in validation.
  std::unordered_map<std::uint32_t, std::uint32_t> by_device;

  std::size_t compromised_consumer = 0;
  std::size_t compromised_cps = 0;
  std::size_t dos_victims = 0;
  /// Plans minted by the propensity-driven selection pass alone, before
  /// any scripted role (hero, victim quota) could pull in extra devices.
  /// plans.size() - compromised_by_selection is therefore the number of
  /// devices the role quotas added on top — bounded by the scripted
  /// device count at any scale once quota fills clamp to the population.
  std::size_t compromised_by_selection = 0;

  const DevicePlan* plan_for(std::uint32_t device) const noexcept {
    const auto it = by_device.find(device);
    return it == by_device.end() ? nullptr : &plans[it->second];
  }
};

}  // namespace iotscope::workload
