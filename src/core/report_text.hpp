// Plain-text rendering of a full study result — the "reproduction report"
// an operator or reviewer reads: inference summary, country/ISP/type/CPS
// breakdowns, traffic characterization, DoS narrative, and maliciousness
// findings, section by section in the paper's own order.
#pragma once

#include <string>

#include "core/characterize.hpp"
#include "core/malicious.hpp"
#include "core/report.hpp"

namespace iotscope::core {

/// Rendering options.
struct ReportTextOptions {
  std::size_t top_countries = 15;
  std::size_t top_isps = 5;
  std::size_t top_protocols = 10;
  std::size_t top_services = 14;
  bool include_dos_narrative = true;
};

/// Renders the Section III inference + characterization breakdowns.
std::string render_inference_report(const Report& report,
                                    const CharacterizationReport& character,
                                    const inventory::IoTDeviceDatabase& db,
                                    const ReportTextOptions& options = {});

/// Renders the Section IV traffic characterization (protocol mix, UDP
/// ports, scanning services, DoS events).
std::string render_traffic_report(const Report& report,
                                  const inventory::IoTDeviceDatabase& db,
                                  const ReportTextOptions& options = {});

/// Renders the Section V maliciousness findings.
std::string render_maliciousness_report(const MaliciousnessReport& malicious);

}  // namespace iotscope::core
