// Probing-campaign clustering — the paper's concluding future-work item:
// "identifying and clustering IoT botnets and their illicit activities by
// solely scrutinizing passive measurements" (in the lineage of the
// authors' CSC-Detector). Scanning devices are grouped into campaigns by
// the service they predominantly probe and the overlap of their activity
// windows: a Mirai-style Telnet campaign shows up as hundreds of devices
// probing ports 23/2323 over the same span.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/report.hpp"

namespace iotscope::core {

/// Clustering knobs.
struct CampaignOptions {
  /// Minimum scanning packets for a device to be considered a campaign
  /// participant (drops one-off probes).
  std::uint64_t min_device_packets = 10;
  /// Maximum gap (hours) between a device's activity window and the
  /// campaign's current window for the device to join it.
  int max_window_gap = 12;
  /// Campaigns smaller than this many devices are dropped from the result.
  std::size_t min_campaign_devices = 2;
};

/// One inferred probing campaign.
struct Campaign {
  int service = -1;           ///< index into the scan-service table
  std::string service_name;
  int start_interval = 0;     ///< earliest member activity
  int end_interval = 0;       ///< latest member activity
  std::vector<std::uint32_t> devices;  ///< inventory indices of members
  std::uint64_t packets = 0;  ///< members' packets toward the service
  std::size_t consumer_devices = 0;

  int duration_hours() const noexcept {
    return end_interval - start_interval + 1;
  }
};

/// Result of campaign inference, descending by packet volume.
struct CampaignReport {
  std::vector<Campaign> campaigns;
  std::size_t devices_clustered = 0;
  std::size_t devices_unclustered = 0;  ///< scanners left out (small/isolated)
};

/// Clusters the report's scanners into campaigns.
CampaignReport cluster_campaigns(const Report& report,
                                 const inventory::IoTDeviceDatabase& db,
                                 const CampaignOptions& options = {});

}  // namespace iotscope::core
