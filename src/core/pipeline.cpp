#include "core/pipeline.hpp"

#include <algorithm>
#include <bitset>
#include <unordered_map>
#include <utility>

#include "core/fingerprint.hpp"
#include "util/timebase.hpp"
#include "workload/spec.hpp"

namespace iotscope::core {

namespace {

constexpr int kHours = util::AnalysisWindow::kHours;

/// Element-wise accumulation of one hourly series into another. All
/// pipeline series carry integral packet/device counts < 2^53, so the
/// double sums are exact and the merge order cannot change the result.
void add_series(analysis::HourlySeries& into,
                const analysis::HourlySeries& from) {
  for (int h = 0; h < kHours; ++h) {
    const double v = from.at(h);
    if (v != 0.0) into.add(h, v);
  }
}

/// Commutative-exact merge of two per-device ledgers (integral sums,
/// min/max intervals, OR'd day mask) — the reduction that makes the
/// stealing scheduler's partials collapse to the sequential result.
void merge_traffic(DeviceTraffic& into, const DeviceTraffic& from) {
  if (from.first_interval >= 0 &&
      (into.first_interval < 0 || from.first_interval < into.first_interval)) {
    into.first_interval = from.first_interval;
  }
  if (from.last_interval > into.last_interval) {
    into.last_interval = from.last_interval;
  }
  into.packets += from.packets;
  for (std::size_t s = 0; s < into.scan_by_service.size(); ++s) {
    into.scan_by_service[s] += from.scan_by_service[s];
  }
  into.tcp_scan += from.tcp_scan;
  into.tcp_backscatter += from.tcp_backscatter;
  into.icmp_scan += from.icmp_scan;
  into.icmp_backscatter += from.icmp_backscatter;
  into.udp += from.udp;
  into.tcp_other += from.tcp_other;
  into.icmp_other += from.icmp_other;
  into.days_active_mask |= from.days_active_mask;
}

// ---------------------------------------------------------------------
// Record access policies for the shard walk. The shard loop is written
// once against this accessor surface; which memory it reads — and when
// classification happens — is the policy:
//
//  * BatchView — the production path: contiguous FlowBatch columns plus
//    the tag column the coordinator filled in one up-front pass, so
//    cls() is a byte load.
//  * RowsView — the retained pre-batch path: AoS FlowTuple records,
//    classify at every point of use (the historical per-consumer cost).
//    Kept alive for the bench before-variant and the equivalence test.

/// Columnar accessors over a FlowBatch and its precomputed tag column.
/// Holds the raw column pointers (not the batch) and is passed by value:
/// the pointers live in registers across the shard walk's opaque calls
/// instead of being re-derived from the vectors after each one.
struct BatchView {
  /// Columns are dense, so the shard walk can read future source IPs for
  /// free and prefetch the inventory join ahead.
  static constexpr bool kPrefetchJoin = true;

  const net::Ipv4Address* src_col;
  const net::Ipv4Address* dst_col;
  const net::Port* dst_port_col;
  const net::Protocol* proto_col;
  const std::uint64_t* pkt_col;
  const ClassTag* tag_col;
  std::size_t count;

  BatchView(const net::FlowBatch& batch,
            const std::vector<ClassTag>& tags) noexcept
      : src_col(batch.src.data()),
        dst_col(batch.dst.data()),
        dst_port_col(batch.dst_port.data()),
        proto_col(batch.proto.data()),
        pkt_col(batch.pkt_count.data()),
        tag_col(tags.data()),
        count(batch.size()) {}

  std::size_t size() const noexcept { return count; }
  net::Ipv4Address src(std::size_t i) const noexcept { return src_col[i]; }
  std::uint32_t dst(std::size_t i) const noexcept { return dst_col[i].value(); }
  net::Port dst_port(std::size_t i) const noexcept { return dst_port_col[i]; }
  net::Protocol proto(std::size_t i) const noexcept { return proto_col[i]; }
  std::uint64_t packets(std::size_t i) const noexcept { return pkt_col[i]; }
  ClassTag cls(std::size_t i) const noexcept { return tag_col[i]; }
};

/// AoS accessors over HourlyFlows records; cls() re-derives the taxonomy
/// from the record's flags on every call.
struct RowsView {
  /// The pre-batch walk stays exactly as it was (no look-ahead): this
  /// view is the before-variant the batch path is measured against.
  static constexpr bool kPrefetchJoin = false;

  const net::FlowTuple* records;
  std::size_t count;
  const TaxonomyOptions* taxonomy;

  RowsView(const net::HourlyFlows& flows,
           const TaxonomyOptions& options) noexcept
      : records(flows.records.data()),
        count(flows.records.size()),
        taxonomy(&options) {}

  std::size_t size() const noexcept { return count; }
  net::Ipv4Address src(std::size_t i) const noexcept { return records[i].src; }
  std::uint32_t dst(std::size_t i) const noexcept {
    return records[i].dst.value();
  }
  net::Port dst_port(std::size_t i) const noexcept {
    return records[i].dst_port;
  }
  net::Protocol proto(std::size_t i) const noexcept {
    return records[i].protocol;
  }
  std::uint64_t packets(std::size_t i) const noexcept {
    return records[i].packet_count;
  }
  ClassTag cls(std::size_t i) const noexcept {
    const net::FlowTuple& r = records[i];
    return classify_tag(r.protocol, r.tcp_flags, r.src_port, *taxonomy);
  }
};

}  // namespace

/// One worker's accumulator. Under the static scheduler each state
/// receives exactly one source-keyed partition bucket, so source-keyed
/// state is disjoint across states; under the stealing scheduler a state
/// receives whatever morsels its worker claimed, so the same source (and
/// the same device) may accumulate into several states. Every merged
/// quantity is therefore commutative-exact — integral sums, min/max,
/// bitwise OR, and set unions — and the fan-in/finalize reduction walks
/// states in fixed order: the disjoint layouts are just the special case
/// where each key appears once, which is what keeps the three schedules
/// byte-identical.
///
/// The per-record containers are flat open-addressing tables
/// (util::FlatSet/FlatMap): inserts never allocate once a table reaches
/// its high-water capacity and the per-hour scratch sets clear by epoch
/// bump, so steady-state observe() performs zero heap allocations per
/// record. Cross-hour per-device maps (the victim series) stay
/// node-based — they are keyed per device, not per record, and
/// finalize() merges them by element-wise addition.
struct AnalysisPipeline::ShardState {
  /// Sentinel for "no record seen yet" — larger than any real
  /// ((observe sequence << 32) | record index) stream position.
  static constexpr std::uint64_t kNeverSeen = ~0ULL;

  /// A device ledger plus its first sighting in the observation stream:
  /// the minimum ((observe-call sequence << 32) | record index) over the
  /// records THIS state processed, with the class and packet count of
  /// that minimum record. Min-tracked per record (not set at creation)
  /// because a stealing worker can walk a device's records out of index
  /// order; finalize() takes the min across states to rebuild the
  /// sequential discovery order.
  struct LedgerSlot {
    DeviceTraffic traffic;
    std::uint64_t first_seen = kNeverSeen;
    FlowClass first_cls = FlowClass::TcpScan;
    std::uint64_t first_n = 0;
  };

  // ---- per-device ledgers ----
  util::FlatMap<std::uint32_t, std::uint32_t> ledger_index;
  std::vector<LedgerSlot> ledgers;

  // ---- additive report-level tallies ----
  std::uint64_t total_packets = 0;
  std::uint64_t unattributed_packets = 0;
  ByRealm<std::uint64_t> tcp_packets{};
  ByRealm<std::uint64_t> udp_packets{};
  ByRealm<std::uint64_t> icmp_packets{};
  ByRealm<analysis::HourlySeries> udp_packet_series;
  ByRealm<analysis::HourlySeries> scan_packet_series;
  ByRealm<analysis::HourlySeries> backscatter_series;

  // ---- UDP per-port totals and distinct-device tracking ----
  // Distinct (port, device) membership lives in the pair set; the
  // per-port device counts are recomputed at finalize() from the union
  // of the states' pair sets (a per-state insert-gated increment would
  // double-count devices split across stealing partials).
  std::array<std::uint64_t, 65536> udp_port_packets{};
  std::array<std::uint32_t, 65536> udp_port_devices{};
  util::FlatSet<std::uint64_t> udp_port_device_pairs;
  std::bitset<65536> udp_ports_seen;

  // ---- TCP scanning per named service (spec row index) ----
  std::vector<std::uint64_t> service_packets;
  std::vector<std::uint64_t> service_consumer_packets;
  util::FlatSet<std::uint64_t> service_device_pairs;
  std::vector<std::size_t> service_consumer_devices;
  std::vector<std::size_t> service_cps_devices;
  std::vector<analysis::HourlySeries> service_series;

  // ---- per-victim hourly backscatter (devices with backscatter only) ----
  std::unordered_map<std::uint32_t, std::vector<double>> victim_series;

  // ---- per-observe-call scratch, read by the coordinator at fan-in ----
  // (index 0 = consumer realm, 1 = CPS). The flat sets clear by epoch
  // bump (O(1)) and keep their high-water capacity across hours.
  util::FlatSet<std::uint32_t> hour_udp_dsts[2];
  util::FlatSet<std::uint32_t> hour_scan_dsts[2];
  std::bitset<65536> hour_udp_ports[2];
  std::bitset<65536> hour_scan_ports[2];
  util::FlatSet<std::uint32_t> hour_scanners;
  util::FlatMap<std::uint32_t, UnknownHourTally> unknown_hour;
  /// Devices whose ledger was created during the current observe call —
  /// first-sighting candidates the coordinator dedups globally.
  std::vector<std::uint32_t> hour_new_devices;

  explicit ShardState(std::size_t service_count) {
    service_packets.resize(service_count, 0);
    service_consumer_packets.resize(service_count, 0);
    service_consumer_devices.resize(service_count, 0);
    service_cps_devices.resize(service_count, 0);
    service_series.resize(service_count);
  }

  /// Resets the per-observe-call scratch. Called once per state per
  /// observe() by the coordinator — observe() itself is purely additive,
  /// because the stealing scheduler invokes it once per morsel.
  void begin_hour() {
    for (int realm = 0; realm < 2; ++realm) {
      hour_udp_dsts[realm].clear();
      hour_scan_dsts[realm].clear();
      hour_udp_ports[realm].reset();
      hour_scan_ports[realm].reset();
    }
    hour_scanners.clear();
    unknown_hour.clear();
    hour_new_devices.clear();
  }

  LedgerSlot& ledger_for(std::uint32_t device) {
    if (const std::uint32_t* existing = ledger_index.find(device)) {
      return ledgers[*existing];
    }
    LedgerSlot slot;
    slot.traffic.device = device;
    const auto index = static_cast<std::uint32_t>(ledgers.size());
    ledgers.push_back(std::move(slot));
    ledger_index.insert(device, index);
    return ledgers[index];
  }

  /// Walks a slice of one hour's records (indices == nullptr walks
  /// [0, count) of the view directly) through every analysis consumer.
  /// The View policy decides the record layout (columns vs AoS structs)
  /// and where the taxonomy tag comes from (precomputed column vs per-use
  /// classification); the accumulation logic is identical either way, so
  /// both instantiations produce the same Report by construction.
  template <typename View>
  void observe(const AnalysisPipeline& pipe, View view, int interval,
               const std::uint32_t* indices, std::size_t count,
               std::uint32_t observe_seq, bool collect_discoveries);
};

template <typename View>
void AnalysisPipeline::ShardState::observe(
    const AnalysisPipeline& pipe, const View view, int interval,
    const std::uint32_t* indices, std::size_t count,
    std::uint32_t observe_seq, bool collect_discoveries) {
  const int h = interval;
  const int day = util::AnalysisWindow::day_of_interval(h);
  const inventory::IoTDeviceDatabase& db = *pipe.db_;

  for (std::size_t k = 0; k < count; ++k) {
    const auto record_idx =
        indices ? indices[k] : static_cast<std::uint32_t>(k);
    if constexpr (View::kPrefetchJoin) {
      // Hide the inventory join's probe latency: hint the slot for the
      // source a handful of records ahead (far enough to beat a memory
      // round-trip, near enough to still be cached on arrival).
      constexpr std::size_t kJoinLookahead = 16;
      if (k + kJoinLookahead < count) {
        const auto ahead = indices ? indices[k + kJoinLookahead]
                                   : static_cast<std::uint32_t>(k + kJoinLookahead);
        db.prefetch(view.src(ahead));
      }
    }
    const net::Ipv4Address src = view.src(record_idx);
    const std::uint64_t n = view.packets(record_idx);
    const inventory::DeviceRecord* device = db.find(src);
    if (device == nullptr) {
      unattributed_packets += n;
      auto& tally = unknown_hour[src.value()];
      tally.packets += n;
      // TcpScan implies the TCP protocol, so the tag alone decides.
      if (tag_class(view.cls(record_idx)) == FlowClass::TcpScan) {
        tally.tcp_syn += n;
      }
      if (view.proto(record_idx) != net::Protocol::Icmp &&
          is_iot_associated_port(view.dst_port(record_idx))) {
        tally.iot_port += n;
      }
      continue;
    }
    const auto device_id = static_cast<std::uint32_t>(
        device - db.devices().data());
    const bool consumer = device->is_consumer();
    const int realm = consumer ? 0 : 1;
    const FlowClass cls = tag_class(view.cls(record_idx));

    LedgerSlot& slot = ledger_for(device_id);
    if (slot.first_seen == kNeverSeen && collect_discoveries) {
      hour_new_devices.push_back(device_id);
    }
    const std::uint64_t stream_pos =
        (static_cast<std::uint64_t>(observe_seq) << 32) | record_idx;
    if (stream_pos < slot.first_seen) {
      slot.first_seen = stream_pos;
      slot.first_cls = cls;
      slot.first_n = n;
    }
    DeviceTraffic& ledger = slot.traffic;
    if (ledger.first_interval < 0 || h < ledger.first_interval) {
      ledger.first_interval = h;
    }
    if (h > ledger.last_interval) ledger.last_interval = h;
    ledger.packets += n;
    ledger.days_active_mask |= static_cast<std::uint8_t>(1u << day);
    total_packets += n;

    switch (cls) {
      case FlowClass::TcpScan: {
        ledger.tcp_scan += n;
        tcp_packets.of(consumer) += n;
        scan_packet_series.of(consumer).add(h, static_cast<double>(n));
        const net::Port port = view.dst_port(record_idx);
        hour_scan_dsts[realm].insert(view.dst(record_idx));
        hour_scan_ports[realm].set(port);
        hour_scanners.insert(device_id);
        // Named-service attribution (Table V / Fig 10).
        int service = pipe.port_to_service_[port];
        if (service < 0) service = pipe.other_service_;
        const auto s = static_cast<std::size_t>(service);
        if (s < ledger.scan_by_service.size()) ledger.scan_by_service[s] += n;
        service_packets[s] += n;
        if (consumer) service_consumer_packets[s] += n;
        service_series[s].add(h, static_cast<double>(n));
        service_device_pairs.insert(
            (static_cast<std::uint64_t>(s) << 32) | device_id);
        break;
      }
      case FlowClass::TcpBackscatter:
      case FlowClass::IcmpBackscatter: {
        if (cls == FlowClass::TcpBackscatter) {
          ledger.tcp_backscatter += n;
          tcp_packets.of(consumer) += n;
        } else {
          ledger.icmp_backscatter += n;
          icmp_packets.of(consumer) += n;
        }
        backscatter_series.of(consumer).add(h, static_cast<double>(n));
        auto [it, inserted] = victim_series.try_emplace(device_id);
        if (inserted) it->second.assign(kHours, 0.0);
        if (h >= 0 && h < kHours) {
          it->second[static_cast<std::size_t>(h)] += static_cast<double>(n);
        }
        break;
      }
      case FlowClass::IcmpScan: {
        ledger.icmp_scan += n;
        icmp_packets.of(consumer) += n;
        break;
      }
      case FlowClass::Udp: {
        ledger.udp += n;
        udp_packets.of(consumer) += n;
        udp_packet_series.of(consumer).add(h, static_cast<double>(n));
        const net::Port port = view.dst_port(record_idx);
        hour_udp_dsts[realm].insert(view.dst(record_idx));
        hour_udp_ports[realm].set(port);
        udp_port_packets[port] += n;
        udp_ports_seen.set(port);
        udp_port_device_pairs.insert(
            (static_cast<std::uint64_t>(port) << 32) | device_id);
        break;
      }
      case FlowClass::TcpOther:
        ledger.tcp_other += n;
        tcp_packets.of(consumer) += n;
        break;
      case FlowClass::IcmpOther:
        ledger.icmp_other += n;
        icmp_packets.of(consumer) += n;
        break;
    }
  }
}

/// One in-flight hour of the Graph scheduler: every buffer the hour's
/// tasks touch before its fan-in, so concurrent hours never share
/// mutable state (shard scratch and the report are only touched from
/// the fence-serialized plan/observe/fan-in tail). Slots are reused
/// round-robin; buffers keep their high-water capacity across hours.
struct AnalysisPipeline::HourSlot {
  net::FlowBatch batch;                  ///< the hour, spliced/moved in
  std::vector<net::FlowBatch> parts;     ///< per-loader decode outputs
  std::vector<HourLoader> loaders;
  std::vector<ClassTag> tags;            ///< recompute target
  const std::vector<ClassTag>* tag_col = nullptr;
  std::vector<std::vector<std::uint32_t>> partition;
  std::vector<Morsel> morsels;
  int interval = 0;
  std::uint32_t seq = 0;                 ///< submission order (merge keys)
  bool collect_discoveries = false;
  AfterHourHook after;
  /// Fence the NEXT hour's plan task depends on; released by this
  /// hour's fan-in `finally`.
  util::TaskScheduler::TaskId fence = util::TaskScheduler::kNoTask;
  /// Whether the plan task got far enough to submit the fan-in. When
  /// fail-fast skips the plan (a decode/classify task of this or any
  /// hour threw), no fan-in exists and the plan's own `finally` must
  /// settle the hour — without this, the skipped hour's fence was never
  /// released and every later hour (plus the credit waiter) deadlocked.
  /// Read only from the plan's `finally`, which runs before the fan-in
  /// can (the gate below), so slot reuse can never race the read.
  bool fanin_submitted = false;
  /// The fan-in's manual-release gate (manual_dependencies = 1 on top
  /// of its morsel dependencies), released by the plan's `finally`.
  /// This orders "plan fully done, including its finally" before the
  /// fan-in — and therefore before finish_hour can recycle this slot.
  util::TaskScheduler::TaskId fanin_gate = util::TaskScheduler::kNoTask;
  std::chrono::steady_clock::time_point begin;  ///< for pipeline.overlap
};

AnalysisPipeline::Obs::Obs()
    : observe(obs::Registry::instance().stage("pipeline.observe")),
      classify(obs::Registry::instance().stage("pipeline.classify")),
      partition(obs::Registry::instance().stage("pipeline.partition")),
      shard(obs::Registry::instance().stage("pipeline.observe.shard")),
      fanin(obs::Registry::instance().stage("pipeline.fanin")),
      finalize(obs::Registry::instance().stage("pipeline.finalize")),
      merge(obs::Registry::instance().stage("pipeline.merge")),
      hours(obs::Registry::instance().counter("pipeline.hours")),
      records(obs::Registry::instance().counter("pipeline.records")),
      batch_records(
          obs::Registry::instance().counter("pipeline.batch.records")),
      batch_bytes(obs::Registry::instance().counter("pipeline.batch.bytes")),
      morsel_claimed(
          obs::Registry::instance().counter("pipeline.morsel.claimed")),
      morsel_stolen(
          obs::Registry::instance().counter("pipeline.morsel.stolen")),
      shard_skew(obs::Registry::instance().gauge("pipeline.shard.skew")),
      batch_mem(obs::Registry::instance().gauge("pipeline.batch.mem_peak")),
      overlap(obs::Registry::instance().stage("pipeline.overlap")),
      inflight_hours(
          obs::Registry::instance().gauge("pipeline.task.inflight_hours")) {}

AnalysisPipeline::AnalysisPipeline(const inventory::IoTDeviceDatabase& db,
                                   PipelineOptions options)
    : db_(&db), options_(options) {
  const auto& services = workload::scan_services();
  port_to_service_.fill(-1);
  for (std::size_t s = 0; s < services.size(); ++s) {
    for (const auto port : services[s].ports) {
      port_to_service_[port] = static_cast<int>(s);
    }
  }
  other_service_ = workload::scan_service_index("Other");
  report_.scan_service_series.resize(services.size());

  const unsigned threads = util::ThreadPool::resolve(options_.threads);
  shards_.reserve(threads);
  for (unsigned s = 0; s < threads; ++s) {
    shards_.push_back(std::make_unique<ShardState>(services.size()));
  }
  partition_.resize(threads);
  if (options_.scheduler == ShardScheduler::Graph) {
    // The graph scheduler replaces the flat pool entirely — synchronous
    // observe() fans out as a task batch over the same lanes. At one
    // resolved thread the scheduler runs tasks inline on the caller.
    graph_ = std::make_unique<util::TaskScheduler>(threads);
    const unsigned credits = std::max(1u, options_.max_inflight_hours);
    hour_slots_.reserve(credits);
    for (unsigned c = 0; c < credits; ++c) {
      hour_slots_.push_back(std::make_unique<HourSlot>());
    }
    credits_available_ = credits;
  } else if (threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
}

AnalysisPipeline::~AnalysisPipeline() = default;

std::size_t AnalysisPipeline::shard_of(std::uint32_t src) const noexcept {
  // Fibonacci-hash the source so adjacent /24 neighbours spread across
  // shards; the assignment must be stable (it defines the partition).
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(src) * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(mixed >> 33) % shards_.size();
}

void AnalysisPipeline::observe(const net::FlowBatch& batch) {
  // Serialize with any in-flight asynchronous hours: the synchronous
  // path reuses coordinator-owned scratch (partition_, tag_scratch_)
  // and must observe a quiescent pipeline.
  drain();
  obs::ScopedTimer observe_timer(obs_.observe);
  obs_.hours.add(1);
  obs_.records.add(batch.size());
  obs_.batch_records.add(batch.size());
  obs_.batch_bytes.add(batch.size() * net::FlowTupleCodec::kRecordBytes);

  // The shared classification pass: one branchy decode of tcp_flags/ICMP
  // types per record, written to a tag column every shard consumer
  // reads. A batch that already carries tags stamped with *this
  // pipeline's* taxonomy recipe (tag once where the batch is born —
  // study producer thread, pre-tagged corpora) is consumed as-is; any
  // other recipe, including untagged, is classified here so foreign
  // options can never skew the report.
  const std::vector<ClassTag>* tags = &batch.class_tag;
  if (batch.tag_recipe != tag_recipe_for(options_.taxonomy) ||
      batch.class_tag.size() != batch.size()) {
    obs::ScopedTimer classify_timer(obs_.classify);
    classify_batch(batch, options_.taxonomy, tag_scratch_);
    tags = &tag_scratch_;
  }
  observe_view(BatchView(batch, *tags), batch.interval);
}

void AnalysisPipeline::observe(const net::HourlyFlows& flows) {
  batch_scratch_.assign_rows(flows);
  observe(batch_scratch_);
}

void AnalysisPipeline::observe_aos(const net::HourlyFlows& flows) {
  drain();
  obs::ScopedTimer observe_timer(obs_.observe);
  obs_.hours.add(1);
  obs_.records.add(flows.records.size());
  observe_view(RowsView(flows, options_.taxonomy), flows.interval);
}

void AnalysisPipeline::observe_async(net::FlowBatch batch,
                                     AfterHourHook after) {
  if (!graph_) {
    // Synchronous degeneration: one code path for every scheduler.
    observe(batch);
    if (after) after(batch, true);
    return;
  }
  submit_hour(std::move(batch), {}, std::move(after));
}

void AnalysisPipeline::observe_async(std::vector<HourLoader> loaders,
                                     AfterHourHook after) {
  if (loaders.empty()) return;  // absent hour
  if (!graph_) {
    net::FlowBatch batch = loaders.front()();
    for (std::size_t p = 1; p < loaders.size(); ++p) {
      batch.append(loaders[p]());
    }
    observe(batch);
    if (after) after(batch, true);
    return;
  }
  submit_hour(net::FlowBatch(), std::move(loaders), std::move(after));
}

void AnalysisPipeline::drain() {
  if (graph_ && !graph_->on_lane()) graph_->wait_idle();
}

void AnalysisPipeline::submit_hour(net::FlowBatch batch,
                                   std::vector<HourLoader> loaders,
                                   AfterHourHook after) {
  using TaskId = util::TaskScheduler::TaskId;

  // Surface a pending failure before queueing more work on top of it.
  if (graph_->failed()) drain();  // throws the recorded error

  // The in-flight-hours credit: bounds resident batch memory and picks
  // the reused slot. Credits return in finish_hour — also on failure —
  // so this wait always makes progress.
  {
    std::unique_lock<std::mutex> lock(credit_mutex_);
    credit_cv_.wait(lock, [this] { return credits_available_ > 0; });
    --credits_available_;
  }

  const std::uint32_t seq = observe_seq_++;
  HourSlot& slot = *hour_slots_[seq % hour_slots_.size()];
  slot.batch = std::move(batch);
  slot.loaders = std::move(loaders);
  slot.tags.clear();
  slot.tag_col = nullptr;
  slot.after = std::move(after);
  slot.seq = seq;
  slot.collect_discoveries = static_cast<bool>(discovery_sink_);
  slot.fanin_submitted = false;
  slot.begin = std::chrono::steady_clock::now();
  obs_.inflight_hours.add(1);

  util::TaskScheduler& g = *graph_;

  // Fence for the NEXT hour, satisfied by this hour's finish_hour.
  util::TaskOptions fence_options;
  fence_options.manual_dependencies = 1;
  const TaskId prev_fence = fence_;
  slot.fence = g.submit([](unsigned) {}, {}, fence_options);
  fence_ = slot.fence;

  // Stage 1: decode parts (compressed block ranges / whole raw file),
  // then splice in part order — concatenation order IS record order,
  // which the first-sighting keys depend on.
  TaskId decode_tail = util::TaskScheduler::kNoTask;
  if (!slot.loaders.empty()) {
    slot.parts.resize(slot.loaders.size());
    std::vector<TaskId> decodes;
    decodes.reserve(slot.loaders.size());
    for (std::size_t p = 0; p < slot.loaders.size(); ++p) {
      decodes.push_back(g.submit(
          [s = &slot, p](unsigned) { s->parts[p] = s->loaders[p](); }));
    }
    decode_tail = g.submit(
        [s = &slot](unsigned) {
          s->batch = std::move(s->parts.front());
          for (std::size_t p = 1; p < s->parts.size(); ++p) {
            s->batch.append(s->parts[p]);
          }
        },
        decodes.data(), decodes.size());
  }

  // Stage 2: the shared classification pass (same recipe guard as the
  // synchronous observe(): foreign or missing tags are recomputed).
  const TaskId classify = g.submit(
      [this, s = &slot](unsigned) {
        s->interval = s->batch.interval;
        obs_.hours.add(1);
        obs_.records.add(s->batch.size());
        obs_.batch_records.add(s->batch.size());
        obs_.batch_bytes.add(s->batch.size() *
                             net::FlowTupleCodec::kRecordBytes);
        s->tag_col = &s->batch.class_tag;
        if (s->batch.tag_recipe != tag_recipe_for(options_.taxonomy) ||
            s->batch.class_tag.size() != s->batch.size()) {
          obs::ScopedTimer timer(obs_.classify);
          classify_batch(s->batch, options_.taxonomy, s->tags);
          s->tag_col = &s->tags;
        }
      },
      {decode_tail});

  // Stage 3: partition + morsel plan, into the slot's own buffers —
  // this is what may run while an earlier hour is still observing.
  const TaskId partition = g.submit(
      [this, s = &slot](unsigned) {
        obs::ScopedTimer timer(obs_.partition);
        const auto n = static_cast<std::uint32_t>(s->batch.size());
        s->partition.resize(shards_.size());
        for (auto& bucket : s->partition) bucket.clear();
        for (std::uint32_t i = 0; i < n; ++i) {
          s->partition[shard_of(s->batch.src[i].value())].push_back(i);
        }
        if (n > 0 && s->partition.size() > 1) {
          std::size_t max_bucket = 0;
          for (const auto& bucket : s->partition) {
            max_bucket = std::max(max_bucket, bucket.size());
          }
          obs_.shard_skew.set(static_cast<std::int64_t>(
              max_bucket * 100 * s->partition.size() / n));
        }
        s->morsels.clear();
        for (std::uint32_t b = 0;
             b < static_cast<std::uint32_t>(s->partition.size()); ++b) {
          const auto bucket_size =
              static_cast<std::uint32_t>(s->partition[b].size());
          for (std::uint32_t begin = 0; begin < bucket_size;
               begin += kMorselRecords) {
            s->morsels.push_back(
                {b, begin, std::min(begin + kMorselRecords, bucket_size)});
          }
        }
      },
      {classify});

  // Stage 4: the plan task — gated on the previous hour's fence, so
  // shard scratch (begin_hour) and the report are never touched while
  // an earlier hour is still folding. Submits the morsel and fan-in
  // tasks dynamically (their count is known only after partitioning).
  // Its `finally` settles the hour itself when fail-fast skipped the
  // body — the fan-in (whose `finally` normally does it) was then never
  // created, and an unsettled hour would strand its fence and credit
  // forever (every later hour is fence-chained behind it).
  util::TaskOptions plan_options;
  plan_options.finally = [this, s = &slot] {
    if (s->fanin_submitted) {
      graph_->release(s->fanin_gate);  // the fan-in may run from here on
    } else {
      finish_hour(*s);
    }
  };
  const TaskId plan_deps[] = {partition, prev_fence};
  g.submit(
      [this, s = &slot](unsigned) {
        for (auto& shard : shards_) shard->begin_hour();
        std::vector<TaskId> morsel_ids;
        morsel_ids.reserve(s->morsels.size());
        for (const Morsel& morsel : s->morsels) {
          util::TaskOptions options;
          // Locality hint: the first line the task reads is its slice
          // of the partition index array.
          options.prefetch =
              s->partition[morsel.shard].data() + morsel.begin;
          morsel_ids.push_back(graph_->submit(
              [this, s, morsel](unsigned lane) {
                obs::ScopedTimer timer(obs_.shard);
                const BatchView view(s->batch, *s->tag_col);
                shards_[lane]->observe(
                    *this, view, s->interval,
                    s->partition[morsel.shard].data() + morsel.begin,
                    morsel.end - morsel.begin, s->seq,
                    s->collect_discoveries);
              },
              {}, options));
        }
        util::TaskOptions fanin_options;
        fanin_options.finally = [this, s] { finish_hour(*s); };
        // The extra manual dependency keeps the fan-in from running
        // until the plan's `finally` releases it — even if every morsel
        // finishes first. Without the gate, the fan-in could complete
        // and finish_hour recycle this slot before the `finally` reads
        // fanin_submitted, double-settling the hour.
        fanin_options.manual_dependencies = 1;
        s->fanin_gate = graph_->submit(
            [this, s](unsigned) {
              obs::ScopedTimer timer(obs_.fanin);
              fan_in_hour(s->interval, s->collect_discoveries);
            },
            morsel_ids.data(), morsel_ids.size(), fanin_options);
        s->fanin_submitted = true;
      },
      plan_deps, 2, plan_options);
}

void AnalysisPipeline::finish_hour(HourSlot& slot) {
  // The fan-in task's `finally`: runs even when fail-fast skipped the
  // hour, so hooks, fences, credits, and gauges always settle.
  const bool ok = !graph_->failed();
  if (slot.after) {
    // Before the fence release: a hook that snapshots or evicts sees
    // hours up to this one fully folded and no later observe running.
    slot.after(slot.batch, ok);
    slot.after = nullptr;
  }
  obs_.overlap.record_ns(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - slot.begin)
          .count()));
  obs_.inflight_hours.add(-1);
  graph_->release(slot.fence);
  {
    std::lock_guard<std::mutex> lock(credit_mutex_);
    ++credits_available_;
  }
  credit_cv_.notify_one();
}

template <typename View>
void AnalysisPipeline::observe_view(const View view, int interval) {
  const std::uint32_t seq = observe_seq_++;
  const bool collect_discoveries = static_cast<bool>(discovery_sink_);
  const int h = interval;

  for (auto& shard : shards_) shard->begin_hour();

  // ---- fan-out ----
  if (shards_.size() == 1) {
    obs::ScopedTimer shard_timer(obs_.shard);
    shards_[0]->observe(*this, view, h, nullptr, view.size(), seq,
                        collect_discoveries);
  } else {
    const auto n = static_cast<std::uint32_t>(view.size());
    {
      obs::ScopedTimer partition_timer(obs_.partition);
      for (auto& bucket : partition_) bucket.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        partition_[shard_of(view.src(i).value())].push_back(i);
      }
      if (n > 0) {
        std::size_t max_bucket = 0;
        for (const auto& bucket : partition_) {
          max_bucket = std::max(max_bucket, bucket.size());
        }
        // max/mean x 100: 100 = even partition, threads x 100 = one hot
        // bucket. The gauge max over a run is its worst hour.
        obs_.shard_skew.set(static_cast<std::int64_t>(
            max_bucket * 100 * partition_.size() / n));
      }
    }
    if (options_.scheduler == ShardScheduler::Static) {
      pool_->run_indexed(shards_.size(), [&](std::size_t s) {
        obs::ScopedTimer shard_timer(obs_.shard);
        const auto& bucket = partition_[s];
        shards_[s]->observe(*this, view, h, bucket.data(), bucket.size(), seq,
                            collect_discoveries);
      });
    } else {
      morsels_.clear();
      for (std::uint32_t s = 0; s < partition_.size(); ++s) {
        const auto bucket_size = static_cast<std::uint32_t>(partition_[s].size());
        for (std::uint32_t begin = 0; begin < bucket_size;
             begin += kMorselRecords) {
          morsels_.push_back(
              {s, begin, std::min(begin + kMorselRecords, bucket_size)});
        }
      }
      if (graph_) {
        // Synchronous observe under the Graph scheduler: the same
        // morsel fan-out as stealing, but on the task substrate (the
        // ThreadPool adapter) — an independent task per morsel, each on
        // the lane-owned shard accumulator, full barrier at the end.
        graph_->run_indexed(morsels_.size(), [&](unsigned lane,
                                                 std::size_t m) {
          obs::ScopedTimer shard_timer(obs_.shard);
          const Morsel& morsel = morsels_[m];
          shards_[lane]->observe(
              *this, view, h, partition_[morsel.shard].data() + morsel.begin,
              morsel.end - morsel.begin, seq, collect_discoveries);
        });
      } else {
        util::ThreadPool::MorselStats stats;
        pool_->run_morsels(
            morsels_.size(),
            [&](unsigned worker, std::size_t m) {
              obs::ScopedTimer shard_timer(obs_.shard);
              const Morsel& morsel = morsels_[m];
              shards_[worker]->observe(
                  *this, view, h,
                  partition_[morsel.shard].data() + morsel.begin,
                  morsel.end - morsel.begin, seq, collect_discoveries);
            },
            &stats);
        obs_.morsel_claimed.add(stats.claimed);
        obs_.morsel_stolen.add(stats.stolen);
      }
    }
  }

  obs::ScopedTimer fanin_timer(obs_.fanin);
  fan_in_hour(h, collect_discoveries);
}

void AnalysisPipeline::fan_in_hour(const int h,
                                   const bool collect_discoveries) {
  // ---- fan-in: per-hour distinct-destination counts ----
  for (int realm = 0; realm < 2; ++realm) {
    const bool consumer = realm == 0;
    std::size_t udp_ips, udp_ports, scan_ips, scan_ports;
    if (shards_.size() == 1) {
      udp_ips = shards_[0]->hour_udp_dsts[realm].size();
      udp_ports = shards_[0]->hour_udp_ports[realm].count();
      scan_ips = shards_[0]->hour_scan_dsts[realm].size();
      scan_ports = shards_[0]->hour_scan_ports[realm].count();
    } else {
      // Destinations are not partitioned by the shard key — union.
      // Reserve the union bound up front: for_each feeds keys in hash
      // order, and a destination smaller than its sources probes
      // quadratically on such a stream (see build_report's pair-set
      // merge).
      std::bitset<65536> udp_port_union, scan_port_union;
      std::size_t udp_bound = 0, scan_bound = 0;
      for (const auto& shard : shards_) {
        udp_bound += shard->hour_udp_dsts[realm].size();
        scan_bound += shard->hour_scan_dsts[realm].size();
      }
      union_scratch_.clear();
      union_scratch_.reserve(udp_bound);
      for (const auto& shard : shards_) {
        shard->hour_udp_dsts[realm].for_each(
            [this](std::uint32_t dst) { union_scratch_.insert(dst); });
        udp_port_union |= shard->hour_udp_ports[realm];
      }
      udp_ips = union_scratch_.size();
      udp_ports = udp_port_union.count();
      union_scratch_.clear();
      union_scratch_.reserve(scan_bound);
      for (const auto& shard : shards_) {
        shard->hour_scan_dsts[realm].for_each(
            [this](std::uint32_t dst) { union_scratch_.insert(dst); });
        scan_port_union |= shard->hour_scan_ports[realm];
      }
      scan_ips = union_scratch_.size();
      scan_ports = scan_port_union.count();
    }
    report_.udp_series.of(consumer).dst_ips.add(
        h, static_cast<double>(udp_ips));
    report_.udp_series.of(consumer).dst_ports.add(
        h, static_cast<double>(udp_ports));
    report_.scan_series.of(consumer).dst_ips.add(
        h, static_cast<double>(scan_ips));
    report_.scan_series.of(consumer).dst_ports.add(
        h, static_cast<double>(scan_ports));
  }
  // Scanner devices: a union, not a sum of sizes — under stealing the
  // same device can scan from several worker partials in one hour.
  std::size_t scanners;
  if (shards_.size() == 1) {
    scanners = shards_[0]->hour_scanners.size();
  } else {
    std::size_t scanner_bound = 0;
    for (const auto& shard : shards_) {
      scanner_bound += shard->hour_scanners.size();
    }
    union_scratch_.clear();
    union_scratch_.reserve(scanner_bound);
    for (const auto& shard : shards_) {
      shard->hour_scanners.for_each(
          [this](std::uint32_t device) { union_scratch_.insert(device); });
    }
    scanners = union_scratch_.size();
  }
  scanners_per_hour_.add(h, static_cast<double>(scanners));

  // ---- fan-in: unknown-source promotion ----
  // The hourly floor must see a source's whole hour, so the per-state
  // tallies are summed first (under stealing one source's records can be
  // split across states; with one state — or the static schedule, where
  // a source maps to one bucket — the sum is the single tally).
  const auto promote = [&](std::uint32_t src, const UnknownHourTally& tally) {
    if (tally.packets < options_.unknown_profile_hourly_floor) return;
    auto& profile = unknown_profiles_[src];
    profile.ip = net::Ipv4Address(src);
    profile.packets += tally.packets;
    profile.tcp_syn_packets += tally.tcp_syn;
    profile.iot_port_packets += tally.iot_port;
    if (profile.first_interval < 0) profile.first_interval = h;
    profile.last_interval = h;
  };
  if (shards_.size() == 1) {
    shards_[0]->unknown_hour.for_each(promote);
  } else {
    std::size_t unknown_bound = 0;
    for (const auto& shard : shards_) {
      unknown_bound += shard->unknown_hour.size();
    }
    unknown_scratch_.clear();
    unknown_scratch_.reserve(unknown_bound);
    for (const auto& shard : shards_) {
      shard->unknown_hour.for_each(
          [this](std::uint32_t src, const UnknownHourTally& tally) {
            auto& sum = unknown_scratch_[src];
            sum.packets += tally.packets;
            sum.tcp_syn += tally.tcp_syn;
            sum.iot_port += tally.iot_port;
          });
    }
    unknown_scratch_.for_each(promote);
  }

  // ---- fan-in: first-sighting notifications, in record order ----
  // Each state lists the devices whose ledger it created this call; the
  // candidates are ordered by their min stream position (unique — one
  // record, one device) and deduped through the global discovered set,
  // so the sink sees exactly the sequential first sightings.
  if (collect_discoveries) {
    std::vector<std::pair<std::uint64_t, Discovery>> events;
    for (const auto& shard : shards_) {
      for (const std::uint32_t device : shard->hour_new_devices) {
        const std::uint32_t* slot_index = shard->ledger_index.find(device);
        const ShardState::LedgerSlot& slot = shard->ledgers[*slot_index];
        events.emplace_back(slot.first_seen,
                            Discovery{device, h, slot.first_cls, slot.first_n});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [pos, discovery] : events) {
      (void)pos;
      if (discovered_.insert(discovery.device)) discovery_sink_(discovery);
    }
  }
}

Report AnalysisPipeline::finalize() {
  drain();
  if (finalized_) return report_;
  report_ = build_report();
  finalized_ = true;
  return report_;
}

Report AnalysisPipeline::snapshot() const {
  // Off-lane callers must see every submitted hour folded (and a failed
  // pipeline rethrow, not report partial state). From inside a fan-in
  // hook the drain is skipped: the fence chain already guarantees hours
  // up to the hook's are folded, and no later observe task is running.
  if (graph_ && !graph_->on_lane()) graph_->wait_idle();
  // After finalize() the stored report already holds the completed
  // reduction; rebuilding from it would double-count.
  if (finalized_) return report_;
  return build_report();
}

std::size_t AnalysisPipeline::evict_idle_unknown_profiles(int before_interval) {
  std::size_t evicted = 0;
  for (auto it = unknown_profiles_.begin(); it != unknown_profiles_.end();) {
    if (it->second.last_interval < before_interval) {
      frozen_unknown_.push_back(it->second);
      it = unknown_profiles_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

Report AnalysisPipeline::build_report() const {
  obs::ScopedTimer finalize_timer(obs_.finalize);

  // Everything below reads the accumulated state and writes only into
  // this copy (the incrementally-maintained series and tallies are
  // already in report_), so repeated snapshots stay independent.
  Report report = report_;

  // ---- deterministic reduction: merge worker state in fixed order ----
  // Every operation below is commutative-exact (integral sums, min/max,
  // OR, set unions), so the result does not depend on which worker
  // processed which morsel — only the fixed state order and the total
  // sort keys decide the bytes.
  auto merged = std::make_unique<ShardState>(workload::scan_services().size());
  {
    obs::ScopedTimer merge_timer(obs_.merge);

    // Device ledgers: the same device can hold a ledger in several
    // states under stealing — fold them per device (min first sighting,
    // summed counters, OR'd day mask), then rebuild the sequential
    // discovery order by sorting on the min stream position of each
    // device's first sighting (one record names one source, so the keys
    // are unique).
    std::size_t slot_total = 0;
    for (const auto& shard : shards_) slot_total += shard->ledgers.size();
    std::vector<ShardState::LedgerSlot> ledgers;
    ledgers.reserve(slot_total);
    util::FlatMap<std::uint32_t, std::uint32_t> device_slot;
    device_slot.reserve(slot_total);
    for (const auto& shard : shards_) {
      for (const auto& slot : shard->ledgers) {
        if (const std::uint32_t* existing =
                device_slot.find(slot.traffic.device)) {
          ShardState::LedgerSlot& into = ledgers[*existing];
          if (slot.first_seen < into.first_seen) {
            into.first_seen = slot.first_seen;
            into.first_cls = slot.first_cls;
            into.first_n = slot.first_n;
          }
          merge_traffic(into.traffic, slot.traffic);
        } else {
          device_slot.insert(slot.traffic.device,
                             static_cast<std::uint32_t>(ledgers.size()));
          ledgers.push_back(slot);
        }
      }
    }
    std::vector<std::uint32_t> order(ledgers.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&ledgers](std::uint32_t a, std::uint32_t b) {
                return ledgers[a].first_seen < ledgers[b].first_seen;
              });
    report.devices.reserve(order.size());
    report.device_index.reserve(order.size());
    for (const std::uint32_t i : order) {
      const DeviceTraffic& traffic = ledgers[i].traffic;
      const auto index = static_cast<std::uint32_t>(report.devices.size());
      report.devices.push_back(traffic);
      report.device_index.emplace(traffic.device, index);
      if (db_->devices()[traffic.device].is_consumer()) {
        ++report.discovered_consumer;
      } else {
        ++report.discovered_cps;
      }
    }

    // Additive tallies and series fold into one merged accumulator;
    // distinct-device counts are recomputed from the union of the
    // states' (key, device) pair sets.
    //
    // The pair sets must be pre-sized to the union's upper bound:
    // for_each visits a FlatSet in slot (= hash) order, and feeding a
    // large hash-ordered stream into a smaller table with the same hash
    // function packs every key into one low-index probe cluster —
    // the union degenerates to quadratic probing (hours of CPU at
    // 10^8-record scale). A destination at least as large as the source
    // keeps the monotone arrivals at their home slots.
    std::size_t udp_pair_bound = 0, service_pair_bound = 0;
    for (const auto& shard : shards_) {
      udp_pair_bound += shard->udp_port_device_pairs.size();
      service_pair_bound += shard->service_device_pairs.size();
    }
    merged->udp_port_device_pairs.reserve(udp_pair_bound);
    merged->service_device_pairs.reserve(service_pair_bound);
    for (const auto& shard : shards_) {
      merged->total_packets += shard->total_packets;
      merged->unattributed_packets += shard->unattributed_packets;
      for (const bool consumer : {true, false}) {
        merged->tcp_packets.of(consumer) += shard->tcp_packets.of(consumer);
        merged->udp_packets.of(consumer) += shard->udp_packets.of(consumer);
        merged->icmp_packets.of(consumer) += shard->icmp_packets.of(consumer);
        add_series(merged->udp_packet_series.of(consumer),
                   shard->udp_packet_series.of(consumer));
        add_series(merged->scan_packet_series.of(consumer),
                   shard->scan_packet_series.of(consumer));
        add_series(merged->backscatter_series.of(consumer),
                   shard->backscatter_series.of(consumer));
      }
      for (std::uint32_t port = 0; port < 65536; ++port) {
        merged->udp_port_packets[port] += shard->udp_port_packets[port];
      }
      merged->udp_ports_seen |= shard->udp_ports_seen;
      shard->udp_port_device_pairs.for_each([&](std::uint64_t pair) {
        if (merged->udp_port_device_pairs.insert(pair)) {
          ++merged->udp_port_devices[static_cast<std::size_t>(pair >> 32)];
        }
      });
      for (std::size_t s = 0; s < merged->service_packets.size(); ++s) {
        merged->service_packets[s] += shard->service_packets[s];
        merged->service_consumer_packets[s] +=
            shard->service_consumer_packets[s];
        add_series(merged->service_series[s], shard->service_series[s]);
      }
      shard->service_device_pairs.for_each([&](std::uint64_t pair) {
        if (merged->service_device_pairs.insert(pair)) {
          const auto s = static_cast<std::size_t>(pair >> 32);
          const auto device = static_cast<std::uint32_t>(pair & 0xffffffffu);
          if (db_->devices()[device].is_consumer()) {
            ++merged->service_consumer_devices[s];
          } else {
            ++merged->service_cps_devices[s];
          }
        }
      });
      // Victim series add element-wise: per-hour sums are order-exact,
      // and under stealing one victim can appear in several states.
      for (const auto& [device, series] : shard->victim_series) {
        auto [it, inserted] = merged->victim_series.try_emplace(device);
        if (inserted) it->second.assign(kHours, 0.0);
        for (int hh = 0; hh < kHours; ++hh) {
          it->second[static_cast<std::size_t>(hh)] +=
              series[static_cast<std::size_t>(hh)];
        }
      }
    }
  }
  report.total_packets = merged->total_packets;
  report.unattributed_packets = merged->unattributed_packets;
  for (const bool consumer : {true, false}) {
    report.tcp_packets.of(consumer) = merged->tcp_packets.of(consumer);
    report.udp_packets.of(consumer) = merged->udp_packets.of(consumer);
    report.icmp_packets.of(consumer) = merged->icmp_packets.of(consumer);
    report.udp_series.of(consumer).packets =
        merged->udp_packet_series.of(consumer);
    report.scan_series.of(consumer).packets =
        merged->scan_packet_series.of(consumer);
    report.backscatter_series.of(consumer) =
        merged->backscatter_series.of(consumer);
  }

  // ---- discovery curve (Fig 2) and daily activity ----
  for (const auto& ledger : report.devices) {
    const bool consumer = db_->devices()[ledger.device].is_consumer();
    const int first_day =
        util::AnalysisWindow::day_of_interval(std::max(0, ledger.first_interval));
    for (int d = first_day; d < 6; ++d) {
      (consumer ? report.cumulative_by_day_consumer
                : report.cumulative_by_day_cps)[static_cast<std::size_t>(d)]++;
    }
    for (int d = 0; d < 6; ++d) {
      if (ledger.days_active_mask & (1u << d)) {
        (consumer ? report.active_by_day_consumer
                  : report.active_by_day_cps)[static_cast<std::size_t>(d)]++;
      }
    }
  }

  // ---- UDP roll-ups ----
  report.udp_total_packets =
      report.udp_packets.consumer + report.udp_packets.cps;
  for (const auto& ledger : report.devices) {
    if (ledger.udp > 0) {
      ++report.udp_device_count;
      if (db_->devices()[ledger.device].is_consumer()) {
        ++report.udp_consumer_devices;
      }
    }
  }
  report.udp_distinct_ports = merged->udp_ports_seen.count();
  {
    // Top UDP ports by packets.
    std::vector<UdpPortRow> rows;
    for (std::uint32_t port = 0; port < 65536; ++port) {
      if (merged->udp_port_packets[port] > 0) {
        rows.push_back({static_cast<net::Port>(port),
                        merged->udp_port_packets[port],
                        merged->udp_port_devices[port]});
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const UdpPortRow& a, const UdpPortRow& b) {
                if (a.packets != b.packets) return a.packets > b.packets;
                return a.port < b.port;
              });
    if (rows.size() > 32) rows.resize(32);
    report.udp_top_ports = std::move(rows);
  }
  report.udp_consumer_port_ip_correlation = analysis::pearson(
      report.udp_series.consumer.dst_ports.values(),
      report.udp_series.consumer.dst_ips.values());

  // ---- backscatter / DoS ----
  report.backscatter_packets.consumer = 0;
  report.backscatter_packets.cps = 0;
  for (const auto& ledger : report.devices) {
    const std::uint64_t bs = ledger.backscatter();
    if (bs == 0) continue;
    ++report.dos_victims;
    const bool consumer = db_->devices()[ledger.device].is_consumer();
    if (!consumer) ++report.dos_victims_cps;
    report.backscatter_packets.of(consumer) += bs;
  }
  report.backscatter_total =
      report.backscatter_packets.consumer + report.backscatter_packets.cps;
  report.backscatter_mwu =
      analysis::mann_whitney_u(report.backscatter_series.cps.values(),
                               report.backscatter_series.consumer.values());

  // Spike detection with dominant-victim attribution (Section IV-B1).
  {
    analysis::HourlySeries total_bs;
    for (int h = 0; h < kHours; ++h) {
      total_bs.add(h, report.backscatter_series.consumer.at(h) +
                          report.backscatter_series.cps.at(h));
    }
    for (const int h : total_bs.spikes(options_.spike_multiple)) {
      DosSpike spike;
      spike.interval = h;
      spike.backscatter_packets = total_bs.at(h);
      double best = 0.0;
      for (const auto& [device, series] : merged->victim_series) {
        const double v = series[static_cast<std::size_t>(h)];
        // Strict tie-break on the device id: the winner must not depend
        // on hash-map iteration order (it differs per shard count).
        if (v > best || (v == best && v > 0.0 && device < spike.top_victim)) {
          best = v;
          spike.top_victim = device;
        }
      }
      spike.top_victim_share =
          spike.backscatter_packets > 0 ? best / spike.backscatter_packets : 0;
      report.dos_spikes.push_back(spike);
    }
    std::sort(report.dos_spikes.begin(), report.dos_spikes.end(),
              [](const DosSpike& a, const DosSpike& b) {
                return a.interval < b.interval;
              });
  }

  // ---- TCP scanning roll-ups ----
  report.tcp_scan_total = 0;
  for (const auto& ledger : report.devices) {
    if (ledger.tcp_scan > 0) {
      ++report.scanner_devices;
      if (db_->devices()[ledger.device].is_consumer()) {
        ++report.scanner_consumer_devices;
      }
    }
    report.tcp_scan_total += ledger.tcp_scan;
  }
  {
    const auto& services = workload::scan_services();
    for (std::size_t s = 0; s < services.size(); ++s) {
      ScanServiceRow row;
      row.name = services[s].name;
      row.packets = merged->service_packets[s];
      row.consumer_packets = merged->service_consumer_packets[s];
      row.consumer_devices = merged->service_consumer_devices[s];
      row.cps_devices = merged->service_cps_devices[s];
      report.scan_services.push_back(std::move(row));
      report.scan_service_series[s] = merged->service_series[s];
    }
  }
  {
    analysis::HourlySeries scan_total;
    for (int h = 0; h < kHours; ++h) {
      scan_total.add(h, report.scan_series.consumer.packets.at(h) +
                            report.scan_series.cps.packets.at(h));
    }
    report.scan_device_packet_correlation = analysis::pearson(
        scanners_per_hour_.values(), scan_total.values());
  }

  // ---- unknown-source profiles (coordinator-owned; see observe_view) ----
  // A source can hold one hot profile and any number of frozen partials
  // (evicted, then re-promoted when it re-emerged). Fold them per IP with
  // the same commutative-exact operations as every other merge — summed
  // tallies, min first / max last interval — so eviction never shows in
  // the report bytes.
  std::unordered_map<std::uint32_t, UnknownSourceProfile> folded;
  folded.reserve(unknown_profiles_.size() + frozen_unknown_.size());
  const auto fold = [&folded](const UnknownSourceProfile& partial) {
    auto [it, inserted] = folded.try_emplace(partial.ip.value(), partial);
    if (inserted) return;
    UnknownSourceProfile& into = it->second;
    into.packets += partial.packets;
    into.tcp_syn_packets += partial.tcp_syn_packets;
    into.iot_port_packets += partial.iot_port_packets;
    if (partial.first_interval >= 0 &&
        (into.first_interval < 0 ||
         partial.first_interval < into.first_interval)) {
      into.first_interval = partial.first_interval;
    }
    if (partial.last_interval > into.last_interval) {
      into.last_interval = partial.last_interval;
    }
  };
  for (const auto& [src, profile] : unknown_profiles_) fold(profile);
  for (const auto& profile : frozen_unknown_) fold(profile);
  report.unknown_sources.reserve(folded.size());
  for (const auto& [src, profile] : folded) {
    report.unknown_sources.push_back(profile);
  }
  std::sort(report.unknown_sources.begin(), report.unknown_sources.end(),
            [](const UnknownSourceProfile& a, const UnknownSourceProfile& b) {
              // Total order (packets desc, then IP): a packets-only
              // comparator would leave tied rows in hash-map iteration
              // order, which varies with the shard count.
              if (a.packets != b.packets) return a.packets > b.packets;
              return a.ip.value() < b.ip.value();
            });

  // ---- ICMP scanning ----
  for (const auto& ledger : report.devices) {
    if (ledger.icmp_scan > 0) {
      ++report.icmp_scanner_devices;
      report.icmp_scan_total += ledger.icmp_scan;
      if (db_->devices()[ledger.device].is_consumer()) {
        ++report.icmp_scanner_consumer_devices;
        report.icmp_scan_consumer_packets += ledger.icmp_scan;
      }
    }
  }

  return report;
}

}  // namespace iotscope::core
