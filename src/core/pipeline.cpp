#include "core/pipeline.hpp"

#include <algorithm>

#include "core/fingerprint.hpp"
#include "util/timebase.hpp"
#include "workload/spec.hpp"

namespace iotscope::core {

namespace {
constexpr int kHours = util::AnalysisWindow::kHours;
}

/// Cross-hour accumulation state too bulky for the header.
struct AnalysisPipeline::Impl {
  // UDP per-port totals and distinct-device tracking.
  std::array<std::uint64_t, 65536> udp_port_packets{};
  std::array<std::uint32_t, 65536> udp_port_devices{};
  std::unordered_set<std::uint64_t> udp_port_device_pairs;
  std::bitset<65536> udp_ports_seen;

  // TCP scanning per named service (spec row index) per realm.
  std::array<int, 65536> port_to_service;  // -1 = unnamed ("Other")
  std::vector<std::uint64_t> service_packets;
  std::vector<std::uint64_t> service_consumer_packets;
  std::unordered_set<std::uint64_t> service_device_pairs;
  std::vector<std::size_t> service_consumer_devices;
  std::vector<std::size_t> service_cps_devices;
  std::vector<analysis::HourlySeries> service_series;

  // Per-victim hourly backscatter (devices with any backscatter only).
  std::unordered_map<std::uint32_t, std::vector<double>> victim_series;

  // Hourly distinct scanner devices (for the no-correlation check).
  analysis::HourlySeries scanners_per_hour;

  // Non-inventory sources with sustained activity (fingerprint substrate).
  std::unordered_map<std::uint32_t, UnknownSourceProfile> unknown_profiles;

  Impl() {
    port_to_service.fill(-1);
    const auto& services = workload::scan_services();
    service_packets.resize(services.size(), 0);
    service_consumer_packets.resize(services.size(), 0);
    service_consumer_devices.resize(services.size(), 0);
    service_cps_devices.resize(services.size(), 0);
    service_series.resize(services.size());
    for (std::size_t s = 0; s < services.size(); ++s) {
      for (const auto port : services[s].ports) {
        port_to_service[port] = static_cast<int>(s);
      }
    }
  }
};

AnalysisPipeline::AnalysisPipeline(const inventory::IoTDeviceDatabase& db,
                                   PipelineOptions options)
    : db_(&db), options_(options), impl_(std::make_unique<Impl>()) {
  report_.scan_service_series.resize(workload::scan_services().size());
}

AnalysisPipeline::~AnalysisPipeline() = default;

DeviceTraffic& AnalysisPipeline::ledger_for(std::uint32_t device) {
  const auto it = report_.device_index.find(device);
  if (it != report_.device_index.end()) return report_.devices[it->second];
  DeviceTraffic ledger;
  ledger.device = device;
  const auto index = static_cast<std::uint32_t>(report_.devices.size());
  report_.devices.push_back(ledger);
  report_.device_index.emplace(device, index);
  if (db_->devices()[device].is_consumer()) {
    ++report_.discovered_consumer;
  } else {
    ++report_.discovered_cps;
  }
  return report_.devices[index];
}

void AnalysisPipeline::observe(const net::HourlyFlows& flows) {
  const int h = flows.interval;
  const int day = util::AnalysisWindow::day_of_interval(h);

  // Per-hour distinct-destination trackers, one pair per realm
  // (index 0 = consumer, 1 = CPS).
  std::unordered_set<std::uint32_t> udp_dsts[2];
  std::bitset<65536> udp_ports[2];
  std::unordered_set<std::uint32_t> scan_dsts[2];
  std::bitset<65536> scan_ports[2];
  std::unordered_set<std::uint32_t> scanners_this_hour;

  struct UnknownHourTally {
    std::uint64_t packets = 0;
    std::uint64_t tcp_syn = 0;
    std::uint64_t iot_port = 0;
  };
  std::unordered_map<std::uint32_t, UnknownHourTally> unknown_hour;

  for (const auto& flow : flows.records) {
    const inventory::DeviceRecord* device = db_->find(flow.src);
    if (device == nullptr) {
      report_.unattributed_packets += flow.packet_count;
      auto& tally = unknown_hour[flow.src.value()];
      tally.packets += flow.packet_count;
      if (flow.protocol == net::Protocol::Tcp &&
          classify(flow, options_.taxonomy) == FlowClass::TcpScan) {
        tally.tcp_syn += flow.packet_count;
      }
      if (flow.protocol != net::Protocol::Icmp &&
          is_iot_associated_port(flow.dst_port)) {
        tally.iot_port += flow.packet_count;
      }
      continue;
    }
    const auto device_id = static_cast<std::uint32_t>(
        device - db_->devices().data());
    const bool consumer = device->is_consumer();
    const int realm = consumer ? 0 : 1;
    const std::uint64_t n = flow.packet_count;

    DeviceTraffic& ledger = ledger_for(device_id);
    const bool first_sighting = ledger.packets == 0;
    if (ledger.first_interval < 0 || h < ledger.first_interval) {
      ledger.first_interval = h;
    }
    if (h > ledger.last_interval) ledger.last_interval = h;
    ledger.packets += n;
    ledger.days_active_mask |= static_cast<std::uint8_t>(1u << day);
    report_.total_packets += n;

    const FlowClass cls = classify(flow, options_.taxonomy);
    if (first_sighting && discovery_sink_) {
      discovery_sink_(Discovery{device_id, h, cls, n});
    }
    switch (cls) {
      case FlowClass::TcpScan: {
        ledger.tcp_scan += n;
        report_.tcp_packets.of(consumer) += n;
        auto& series = report_.scan_series.of(consumer);
        series.packets.add(h, static_cast<double>(n));
        scan_dsts[realm].insert(flow.dst.value());
        scan_ports[realm].set(flow.dst_port);
        scanners_this_hour.insert(device_id);
        // Named-service attribution (Table V / Fig 10).
        int service = impl_->port_to_service[flow.dst_port];
        const int other =
            workload::scan_service_index("Other");
        if (service < 0) service = other;
        const auto s = static_cast<std::size_t>(service);
        if (s < ledger.scan_by_service.size()) ledger.scan_by_service[s] += n;
        impl_->service_packets[s] += n;
        if (consumer) impl_->service_consumer_packets[s] += n;
        impl_->service_series[s].add(h, static_cast<double>(n));
        const std::uint64_t pair =
            (static_cast<std::uint64_t>(s) << 32) | device_id;
        if (impl_->service_device_pairs.insert(pair).second) {
          if (consumer) {
            ++impl_->service_consumer_devices[s];
          } else {
            ++impl_->service_cps_devices[s];
          }
        }
        break;
      }
      case FlowClass::TcpBackscatter:
      case FlowClass::IcmpBackscatter: {
        if (cls == FlowClass::TcpBackscatter) {
          ledger.tcp_backscatter += n;
          report_.tcp_packets.of(consumer) += n;
        } else {
          ledger.icmp_backscatter += n;
          report_.icmp_packets.of(consumer) += n;
        }
        report_.backscatter_series.of(consumer).add(h, static_cast<double>(n));
        auto [it, inserted] = impl_->victim_series.try_emplace(device_id);
        if (inserted) it->second.assign(kHours, 0.0);
        if (h >= 0 && h < kHours) {
          it->second[static_cast<std::size_t>(h)] += static_cast<double>(n);
        }
        break;
      }
      case FlowClass::IcmpScan: {
        ledger.icmp_scan += n;
        report_.icmp_packets.of(consumer) += n;
        break;
      }
      case FlowClass::Udp: {
        ledger.udp += n;
        report_.udp_packets.of(consumer) += n;
        auto& series = report_.udp_series.of(consumer);
        series.packets.add(h, static_cast<double>(n));
        udp_dsts[realm].insert(flow.dst.value());
        udp_ports[realm].set(flow.dst_port);
        impl_->udp_port_packets[flow.dst_port] += n;
        impl_->udp_ports_seen.set(flow.dst_port);
        const std::uint64_t pair =
            (static_cast<std::uint64_t>(flow.dst_port) << 32) | device_id;
        if (impl_->udp_port_device_pairs.insert(pair).second) {
          ++impl_->udp_port_devices[flow.dst_port];
        }
        break;
      }
      case FlowClass::TcpOther:
        ledger.tcp_other += n;
        report_.tcp_packets.of(consumer) += n;
        break;
      case FlowClass::IcmpOther:
        ledger.icmp_other += n;
        report_.icmp_packets.of(consumer) += n;
        break;
    }
  }

  // Commit the hour's distinct-destination counts.
  for (int realm = 0; realm < 2; ++realm) {
    const bool consumer = realm == 0;
    report_.udp_series.of(consumer).dst_ips.add(
        h, static_cast<double>(udp_dsts[realm].size()));
    report_.udp_series.of(consumer).dst_ports.add(
        h, static_cast<double>(udp_ports[realm].count()));
    report_.scan_series.of(consumer).dst_ips.add(
        h, static_cast<double>(scan_dsts[realm].size()));
    report_.scan_series.of(consumer).dst_ports.add(
        h, static_cast<double>(scan_ports[realm].count()));
  }
  impl_->scanners_per_hour.add(
      h, static_cast<double>(scanners_this_hour.size()));

  // Promote sustained unknown sources into cross-hour profiles; the floor
  // keeps one-packet background radiation out of memory.
  for (const auto& [src, tally] : unknown_hour) {
    if (tally.packets < options_.unknown_profile_hourly_floor) continue;
    auto& profile = impl_->unknown_profiles[src];
    profile.ip = net::Ipv4Address(src);
    profile.packets += tally.packets;
    profile.tcp_syn_packets += tally.tcp_syn;
    profile.iot_port_packets += tally.iot_port;
    if (profile.first_interval < 0) profile.first_interval = h;
    profile.last_interval = h;
  }
}

Report AnalysisPipeline::finalize() {
  if (finalized_) return report_;
  finalized_ = true;

  // ---- discovery curve (Fig 2) and daily activity ----
  for (const auto& ledger : report_.devices) {
    const bool consumer = db_->devices()[ledger.device].is_consumer();
    const int first_day =
        util::AnalysisWindow::day_of_interval(std::max(0, ledger.first_interval));
    for (int d = first_day; d < 6; ++d) {
      (consumer ? report_.cumulative_by_day_consumer
                : report_.cumulative_by_day_cps)[static_cast<std::size_t>(d)]++;
    }
    for (int d = 0; d < 6; ++d) {
      if (ledger.days_active_mask & (1u << d)) {
        (consumer ? report_.active_by_day_consumer
                  : report_.active_by_day_cps)[static_cast<std::size_t>(d)]++;
      }
    }
  }

  // ---- UDP roll-ups ----
  report_.udp_total_packets =
      report_.udp_packets.consumer + report_.udp_packets.cps;
  for (const auto& ledger : report_.devices) {
    if (ledger.udp > 0) {
      ++report_.udp_device_count;
      if (db_->devices()[ledger.device].is_consumer()) {
        ++report_.udp_consumer_devices;
      }
    }
  }
  report_.udp_distinct_ports = impl_->udp_ports_seen.count();
  {
    // Top UDP ports by packets.
    std::vector<UdpPortRow> rows;
    for (std::uint32_t port = 0; port < 65536; ++port) {
      if (impl_->udp_port_packets[port] > 0) {
        rows.push_back({static_cast<net::Port>(port),
                        impl_->udp_port_packets[port],
                        impl_->udp_port_devices[port]});
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const UdpPortRow& a, const UdpPortRow& b) {
                if (a.packets != b.packets) return a.packets > b.packets;
                return a.port < b.port;
              });
    if (rows.size() > 32) rows.resize(32);
    report_.udp_top_ports = std::move(rows);
  }
  report_.udp_consumer_port_ip_correlation = analysis::pearson(
      report_.udp_series.consumer.dst_ports.values(),
      report_.udp_series.consumer.dst_ips.values());

  // ---- backscatter / DoS ----
  report_.backscatter_packets.consumer = 0;
  report_.backscatter_packets.cps = 0;
  for (const auto& ledger : report_.devices) {
    const std::uint64_t bs = ledger.backscatter();
    if (bs == 0) continue;
    ++report_.dos_victims;
    const bool consumer = db_->devices()[ledger.device].is_consumer();
    if (!consumer) ++report_.dos_victims_cps;
    report_.backscatter_packets.of(consumer) += bs;
  }
  report_.backscatter_total =
      report_.backscatter_packets.consumer + report_.backscatter_packets.cps;
  report_.backscatter_mwu =
      analysis::mann_whitney_u(report_.backscatter_series.cps.values(),
                               report_.backscatter_series.consumer.values());

  // Spike detection with dominant-victim attribution (Section IV-B1).
  {
    analysis::HourlySeries total_bs;
    for (int h = 0; h < kHours; ++h) {
      total_bs.add(h, report_.backscatter_series.consumer.at(h) +
                          report_.backscatter_series.cps.at(h));
    }
    for (const int h : total_bs.spikes(options_.spike_multiple)) {
      DosSpike spike;
      spike.interval = h;
      spike.backscatter_packets = total_bs.at(h);
      double best = 0.0;
      for (const auto& [device, series] : impl_->victim_series) {
        const double v = series[static_cast<std::size_t>(h)];
        if (v > best) {
          best = v;
          spike.top_victim = device;
        }
      }
      spike.top_victim_share =
          spike.backscatter_packets > 0 ? best / spike.backscatter_packets : 0;
      report_.dos_spikes.push_back(spike);
    }
    std::sort(report_.dos_spikes.begin(), report_.dos_spikes.end(),
              [](const DosSpike& a, const DosSpike& b) {
                return a.interval < b.interval;
              });
  }

  // ---- TCP scanning roll-ups ----
  report_.tcp_scan_total = 0;
  for (const auto& ledger : report_.devices) {
    if (ledger.tcp_scan > 0) {
      ++report_.scanner_devices;
      if (db_->devices()[ledger.device].is_consumer()) {
        ++report_.scanner_consumer_devices;
      }
    }
    report_.tcp_scan_total += ledger.tcp_scan;
  }
  {
    const auto& services = workload::scan_services();
    for (std::size_t s = 0; s < services.size(); ++s) {
      ScanServiceRow row;
      row.name = services[s].name;
      row.packets = impl_->service_packets[s];
      row.consumer_packets = impl_->service_consumer_packets[s];
      row.consumer_devices = impl_->service_consumer_devices[s];
      row.cps_devices = impl_->service_cps_devices[s];
      report_.scan_services.push_back(std::move(row));
      report_.scan_service_series[s] = impl_->service_series[s];
    }
  }
  {
    analysis::HourlySeries scan_total;
    for (int h = 0; h < kHours; ++h) {
      scan_total.add(h, report_.scan_series.consumer.packets.at(h) +
                            report_.scan_series.cps.packets.at(h));
    }
    report_.scan_device_packet_correlation = analysis::pearson(
        impl_->scanners_per_hour.values(), scan_total.values());
  }

  // ---- unknown-source profiles ----
  report_.unknown_sources.reserve(impl_->unknown_profiles.size());
  for (const auto& [src, profile] : impl_->unknown_profiles) {
    report_.unknown_sources.push_back(profile);
  }
  std::sort(report_.unknown_sources.begin(), report_.unknown_sources.end(),
            [](const UnknownSourceProfile& a, const UnknownSourceProfile& b) {
              return a.packets > b.packets;
            });

  // ---- ICMP scanning ----
  for (const auto& ledger : report_.devices) {
    if (ledger.icmp_scan > 0) {
      ++report_.icmp_scanner_devices;
      report_.icmp_scan_total += ledger.icmp_scan;
      if (db_->devices()[ledger.device].is_consumer()) {
        ++report_.icmp_scanner_consumer_devices;
        report_.icmp_scan_consumer_packets += ledger.icmp_scan;
      }
    }
  }

  return report_;
}

}  // namespace iotscope::core
