// Section V's maliciousness analysis: select the "explored" device set
// (all DoS victims + the most active scanners/UDP senders), correlate it
// with the threat repository (Table VI), and correlate the full inferred
// set with the sandbox malware database + family resolver (Table VII).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "intel/malware.hpp"
#include "intel/threat.hpp"

namespace iotscope::core {

/// Options mirroring the paper's exploration protocol.
struct MaliciousnessOptions {
  /// Top-N most active scanning/UDP devices per realm added to the
  /// explored set (4,000 each in the paper). Scaled by callers.
  std::size_t top_per_realm = 4000;
};

/// Result of the threat-repository and malware-database correlations.
struct MaliciousnessReport {
  // ---- explored set / Cymon correlation (Table VI, Fig 11) ----
  std::size_t explored_devices = 0;
  std::size_t flagged_devices = 0;  ///< linked to >= 1 malicious activity
  std::array<std::size_t, intel::kThreatCategoryCount> category_devices{};
  std::size_t malware_cps = 0;        ///< CPS devices linked to malware
  std::size_t malware_consumer = 0;   ///< consumer devices linked to malware
  std::size_t malware_scanning_cps = 0;  ///< ... of which also TCP-scanned
  std::size_t malware_scanning_consumer = 0;
  /// Per-device total packets for the explored set and its flagged subset
  /// (the two CDFs of Fig 11).
  std::vector<double> explored_packets;
  std::vector<double> flagged_packets;

  // ---- malware-database correlation (Table VII) ----
  std::size_t devices_in_reports = 0;  ///< inferred devices hit by any IOC
  std::size_t unique_hashes = 0;       ///< malware variants involved
  std::size_t domains = 0;             ///< associated domains
  std::vector<std::string> families;   ///< resolved family names (sorted)
};

/// Runs both correlations over a finished analysis report.
MaliciousnessReport analyze_maliciousness(
    const Report& report, const inventory::IoTDeviceDatabase& db,
    const intel::ThreatRepository& threats,
    const intel::MalwareDatabase& malware,
    const intel::FamilyResolver& resolver,
    const MaliciousnessOptions& options = {});

}  // namespace iotscope::core
