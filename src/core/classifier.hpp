// The darknet traffic taxonomy (Sections IV-A/B/C): every flowtuple is
// classified as scanning, backscatter, UDP probing, or other/
// misconfiguration, using exactly the header semantics the paper relies
// on — TCP flags and ICMP message types.
//
// Two entry points share one taxonomy:
//  * classify() — the per-record reference implementation over an AoS
//    FlowTuple (unchanged semantics since PR 0).
//  * classify_tag()/classify_batch() — the columnar pass: one branchy
//    decode of tcp_flags/ICMP types per record, written once into a
//    per-batch `class_tag` byte column that every downstream consumer
//    (inventory ledgers, DoS inference, scan analysis, unknown-source
//    tallies) reads instead of re-deriving flag logic. classify_tag is
//    implemented independently of classify(); classifier_batch_test pins
//    the two equal over randomized flag/proto/port sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flowtuple.hpp"
#include "net/protocol.hpp"

namespace iotscope::core {

/// Traffic classes a one-way darknet flow can belong to.
enum class FlowClass {
  TcpScan,          ///< TCP SYN-only probes
  TcpBackscatter,   ///< SYN-ACK / RST replies from DoS victims
  IcmpScan,         ///< ICMP Echo Request sweeps
  IcmpBackscatter,  ///< ICMP reply family (Echo Reply, Dest Unreachable, ...)
  Udp,              ///< UDP datagrams (scan/DoS/misconfig-ambiguous, §IV-A)
  TcpOther,         ///< remaining TCP (misconfiguration and anomalies)
  IcmpOther,        ///< remaining ICMP (requests other than echo)
};

const char* to_string(FlowClass c) noexcept;

/// Backscatter / scanning policy knobs (the DESIGN.md taxonomy ablation).
struct TaxonomyOptions {
  /// If false, only Echo Reply and Destination Unreachable count as ICMP
  /// backscatter (the strict variant); default follows the paper's full
  /// reply-family list.
  bool full_icmp_reply_family = true;
  /// If true, a RST+ACK combination still counts as backscatter (default);
  /// pure-RST-only classification is the strict variant.
  bool rst_counts_as_backscatter = true;
};

/// Classifies one flowtuple. For ICMP flows the type/code are carried in
/// the port fields per the corsaro convention (see FlowTuple).
FlowClass classify(const net::FlowTuple& flow,
                   const TaxonomyOptions& options = {}) noexcept;

/// True for the classes that the paper's Section IV-C treats as scanning.
constexpr bool is_scanning(FlowClass c) noexcept {
  return c == FlowClass::TcpScan || c == FlowClass::IcmpScan;
}

/// True for backscatter classes (Section IV-B).
constexpr bool is_backscatter(FlowClass c) noexcept {
  return c == FlowClass::TcpBackscatter || c == FlowClass::IcmpBackscatter;
}

// ---------------------------------------------------------------------
// Columnar classification: the shared one-pass tag column.

/// One byte per record: the FlowClass in the low 3 bits plus cheap
/// sub-predicate bits so consumers never re-inspect tcp_flags/ICMP types.
using ClassTag = std::uint8_t;

inline constexpr ClassTag kTagClassMask = 0x07;
/// Set for TCP records whose flags carry SYN (scan probes and SYN-ACK
/// backscatter both qualify; combine with the class bits to separate).
inline constexpr ClassTag kTagTcpSyn = 0x08;
/// Set for ICMP Echo Request / Echo Reply records (the ping family).
inline constexpr ClassTag kTagIcmpEcho = 0x10;

/// The FlowClass encoded in a tag.
constexpr FlowClass tag_class(ClassTag tag) noexcept {
  return static_cast<FlowClass>(tag & kTagClassMask);
}

/// Classifies one record from its column fields. For ICMP the type rides
/// in the src_port column (corsaro convention). Independent of
/// classify() by construction — the property test keeps them equal.
ClassTag classify_tag(net::Protocol proto, std::uint8_t tcp_flags,
                      net::Port icmp_type_port,
                      const TaxonomyOptions& options = {}) noexcept;

/// Writes one tag per record of `batch` into `out` (resized to match).
/// The out-param form lets the pipeline reuse a scratch vector and apply
/// its own TaxonomyOptions without mutating a shared batch.
void classify_batch(const net::FlowBatch& batch, const TaxonomyOptions& options,
                    std::vector<ClassTag>& out);

/// Fills `batch.class_tag` in place and stamps `batch.tag_recipe` (the
/// producer side of the shared classification pass: tag once where the
/// batch is born, every consumer reads the column).
void classify_batch(net::FlowBatch& batch, const TaxonomyOptions& options = {});

/// The nonzero fingerprint classify_batch stamps into FlowBatch::
/// tag_recipe for `options`. Consumers accept a batch's tags only when
/// the batch carries the recipe for *their* options (see
/// AnalysisPipeline::observe); 0 always means untagged.
constexpr std::uint8_t tag_recipe_for(const TaxonomyOptions& options) noexcept {
  return static_cast<std::uint8_t>(
      0x01 | (options.full_icmp_reply_family ? 0x02 : 0) |
      (options.rst_counts_as_backscatter ? 0x04 : 0));
}

}  // namespace iotscope::core
