// The darknet traffic taxonomy (Sections IV-A/B/C): every flowtuple is
// classified as scanning, backscatter, UDP probing, or other/
// misconfiguration, using exactly the header semantics the paper relies
// on — TCP flags and ICMP message types.
#pragma once

#include "net/flowtuple.hpp"
#include "net/protocol.hpp"

namespace iotscope::core {

/// Traffic classes a one-way darknet flow can belong to.
enum class FlowClass {
  TcpScan,          ///< TCP SYN-only probes
  TcpBackscatter,   ///< SYN-ACK / RST replies from DoS victims
  IcmpScan,         ///< ICMP Echo Request sweeps
  IcmpBackscatter,  ///< ICMP reply family (Echo Reply, Dest Unreachable, ...)
  Udp,              ///< UDP datagrams (scan/DoS/misconfig-ambiguous, §IV-A)
  TcpOther,         ///< remaining TCP (misconfiguration and anomalies)
  IcmpOther,        ///< remaining ICMP (requests other than echo)
};

const char* to_string(FlowClass c) noexcept;

/// Backscatter / scanning policy knobs (the DESIGN.md taxonomy ablation).
struct TaxonomyOptions {
  /// If false, only Echo Reply and Destination Unreachable count as ICMP
  /// backscatter (the strict variant); default follows the paper's full
  /// reply-family list.
  bool full_icmp_reply_family = true;
  /// If true, a RST+ACK combination still counts as backscatter (default);
  /// pure-RST-only classification is the strict variant.
  bool rst_counts_as_backscatter = true;
};

/// Classifies one flowtuple. For ICMP flows the type/code are carried in
/// the port fields per the corsaro convention (see FlowTuple).
FlowClass classify(const net::FlowTuple& flow,
                   const TaxonomyOptions& options = {}) noexcept;

/// True for the classes that the paper's Section IV-C treats as scanning.
constexpr bool is_scanning(FlowClass c) noexcept {
  return c == FlowClass::TcpScan || c == FlowClass::IcmpScan;
}

/// True for backscatter classes (Section IV-B).
constexpr bool is_backscatter(FlowClass c) noexcept {
  return c == FlowClass::TcpBackscatter || c == FlowClass::IcmpBackscatter;
}

}  // namespace iotscope::core
