// Near-real-time discovery notifications — the operational capability the
// paper's Discussion section calls for: "automate the devised
// methodologies ... to index, in near real-time, unsolicited
// Internet-scale IoT devices". The pipeline invokes the sink the moment a
// device is first observed at the telescope, carrying enough context for
// an ISP- or operator-facing alert.
#pragma once

#include <cstdint>
#include <functional>

#include "core/classifier.hpp"

namespace iotscope::core {

/// A first-sighting event for an inventory device.
struct Discovery {
  std::uint32_t device = 0;   ///< index into the inventory
  int interval = 0;           ///< hour of first observation
  FlowClass first_class = FlowClass::TcpScan;  ///< class of the first flow
  std::uint64_t packets = 0;  ///< packets in that first flow
};

/// Callback invoked synchronously from AnalysisPipeline::observe for each
/// newly discovered device. Must be cheap; heavy work belongs downstream.
using DiscoverySink = std::function<void(const Discovery&)>;

}  // namespace iotscope::core
