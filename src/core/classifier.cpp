#include "core/classifier.hpp"

namespace iotscope::core {

const char* to_string(FlowClass c) noexcept {
  switch (c) {
    case FlowClass::TcpScan:
      return "TCP scanning";
    case FlowClass::TcpBackscatter:
      return "TCP backscatter";
    case FlowClass::IcmpScan:
      return "ICMP scanning";
    case FlowClass::IcmpBackscatter:
      return "ICMP backscatter";
    case FlowClass::Udp:
      return "UDP";
    case FlowClass::TcpOther:
      return "TCP other/misconfiguration";
    case FlowClass::IcmpOther:
      return "ICMP other";
  }
  return "?";
}

FlowClass classify(const net::FlowTuple& flow,
                   const TaxonomyOptions& options) noexcept {
  switch (flow.protocol) {
    case net::Protocol::Udp:
      return FlowClass::Udp;
    case net::Protocol::Tcp: {
      const std::uint8_t f = flow.tcp_flags;
      const bool syn = f & net::kSyn;
      const bool ack = f & net::kAck;
      const bool rst = f & net::kRst;
      const bool fin = f & net::kFin;
      if (syn && ack && !rst) return FlowClass::TcpBackscatter;
      if (rst) {
        return options.rst_counts_as_backscatter ? FlowClass::TcpBackscatter
                                                 : FlowClass::TcpOther;
      }
      if (syn && !ack && !fin) return FlowClass::TcpScan;
      return FlowClass::TcpOther;
    }
    case net::Protocol::Icmp: {
      const auto type = flow.icmp_type();
      if (type == net::IcmpType::EchoRequest) return FlowClass::IcmpScan;
      if (options.full_icmp_reply_family) {
        if (net::is_icmp_backscatter(type)) return FlowClass::IcmpBackscatter;
      } else if (type == net::IcmpType::EchoReply ||
                 type == net::IcmpType::DestinationUnreachable) {
        return FlowClass::IcmpBackscatter;
      }
      return FlowClass::IcmpOther;
    }
  }
  return FlowClass::TcpOther;
}

}  // namespace iotscope::core
