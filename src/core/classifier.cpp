#include "core/classifier.hpp"

#include <array>

#include "net/flow_batch.hpp"

namespace iotscope::core {

const char* to_string(FlowClass c) noexcept {
  switch (c) {
    case FlowClass::TcpScan:
      return "TCP scanning";
    case FlowClass::TcpBackscatter:
      return "TCP backscatter";
    case FlowClass::IcmpScan:
      return "ICMP scanning";
    case FlowClass::IcmpBackscatter:
      return "ICMP backscatter";
    case FlowClass::Udp:
      return "UDP";
    case FlowClass::TcpOther:
      return "TCP other/misconfiguration";
    case FlowClass::IcmpOther:
      return "ICMP other";
  }
  return "?";
}

FlowClass classify(const net::FlowTuple& flow,
                   const TaxonomyOptions& options) noexcept {
  switch (flow.protocol) {
    case net::Protocol::Udp:
      return FlowClass::Udp;
    case net::Protocol::Tcp: {
      const std::uint8_t f = flow.tcp_flags;
      const bool syn = f & net::kSyn;
      const bool ack = f & net::kAck;
      const bool rst = f & net::kRst;
      const bool fin = f & net::kFin;
      if (syn && ack && !rst) return FlowClass::TcpBackscatter;
      if (rst) {
        return options.rst_counts_as_backscatter ? FlowClass::TcpBackscatter
                                                 : FlowClass::TcpOther;
      }
      if (syn && !ack && !fin) return FlowClass::TcpScan;
      return FlowClass::TcpOther;
    }
    case net::Protocol::Icmp: {
      const auto type = flow.icmp_type();
      if (type == net::IcmpType::EchoRequest) return FlowClass::IcmpScan;
      if (options.full_icmp_reply_family) {
        if (net::is_icmp_backscatter(type)) return FlowClass::IcmpBackscatter;
      } else if (type == net::IcmpType::EchoReply ||
                 type == net::IcmpType::DestinationUnreachable) {
        return FlowClass::IcmpBackscatter;
      }
      return FlowClass::IcmpOther;
    }
  }
  return FlowClass::TcpOther;
}

ClassTag classify_tag(net::Protocol proto, std::uint8_t tcp_flags,
                      net::Port icmp_type_port,
                      const TaxonomyOptions& options) noexcept {
  const auto tag_of = [](FlowClass c, ClassTag sub) noexcept {
    return static_cast<ClassTag>(static_cast<ClassTag>(c) | sub);
  };
  switch (proto) {
    case net::Protocol::Udp:
      return tag_of(FlowClass::Udp, 0);
    case net::Protocol::Tcp: {
      const bool syn = tcp_flags & net::kSyn;
      const bool ack = tcp_flags & net::kAck;
      const bool rst = tcp_flags & net::kRst;
      const bool fin = tcp_flags & net::kFin;
      const ClassTag sub = syn ? kTagTcpSyn : ClassTag{0};
      if (syn && ack && !rst) return tag_of(FlowClass::TcpBackscatter, sub);
      if (rst) {
        return tag_of(options.rst_counts_as_backscatter
                          ? FlowClass::TcpBackscatter
                          : FlowClass::TcpOther,
                      sub);
      }
      if (syn && !ack && !fin) return tag_of(FlowClass::TcpScan, sub);
      return tag_of(FlowClass::TcpOther, sub);
    }
    case net::Protocol::Icmp: {
      const auto type = static_cast<net::IcmpType>(icmp_type_port);
      const ClassTag sub = (type == net::IcmpType::EchoRequest ||
                            type == net::IcmpType::EchoReply)
                               ? kTagIcmpEcho
                               : ClassTag{0};
      if (type == net::IcmpType::EchoRequest) {
        return tag_of(FlowClass::IcmpScan, sub);
      }
      if (options.full_icmp_reply_family) {
        if (net::is_icmp_backscatter(type)) {
          return tag_of(FlowClass::IcmpBackscatter, sub);
        }
      } else if (type == net::IcmpType::EchoReply ||
                 type == net::IcmpType::DestinationUnreachable) {
        return tag_of(FlowClass::IcmpBackscatter, sub);
      }
      return tag_of(FlowClass::IcmpOther, sub);
    }
  }
  return tag_of(FlowClass::TcpOther, 0);
}

void classify_batch(const net::FlowBatch& batch, const TaxonomyOptions& options,
                    std::vector<ClassTag>& out) {
  // The tag is a pure function of (protocol, one byte): tcp_flags for
  // TCP, the low type byte for ICMP (the IcmpType cast truncates the
  // 16-bit port column to the enum's uint8_t underlying type), a
  // constant for UDP, and classify_tag's constant fallback for anything
  // out of domain. This pass sits ahead of every consumer on the hot
  // path, so materialize classify_tag into a four-segment table up
  // front and make the per-record loop branchless: segment base from
  // the protocol byte, offset from the flags/type byte.
  enum : std::size_t { kTcp = 0, kIcmp = 256, kUdp = 512, kOther = 768 };
  std::array<ClassTag, 1024> lut;
  for (std::size_t v = 0; v < 256; ++v) {
    lut[kTcp + v] = classify_tag(net::Protocol::Tcp,
                                 static_cast<std::uint8_t>(v), 0, options);
    lut[kIcmp + v] = classify_tag(net::Protocol::Icmp, 0,
                                  static_cast<net::Port>(v), options);
    lut[kUdp + v] = classify_tag(net::Protocol::Udp, 0, 0, options);
    lut[kOther + v] =
        classify_tag(static_cast<net::Protocol>(0), 0, 0, options);
  }
  std::array<std::uint16_t, 256> base;
  base.fill(kOther);
  base[static_cast<std::uint8_t>(net::Protocol::Tcp)] = kTcp;
  base[static_cast<std::uint8_t>(net::Protocol::Icmp)] = kIcmp;
  base[static_cast<std::uint8_t>(net::Protocol::Udp)] = kUdp;

  const std::size_t n = batch.size();
  out.resize(n);
  const net::Protocol* proto = batch.proto.data();
  const std::uint8_t* flags = batch.tcp_flags.data();
  const net::Port* src_port = batch.src_port.data();
  ClassTag* tags = out.data();
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = static_cast<std::uint8_t>(proto[i]);
    // For non-ICMP records src_port holds a real port; the byte only
    // reaches an ICMP segment when the protocol base says so.
    const std::uint8_t byte = p == static_cast<std::uint8_t>(net::Protocol::Tcp)
                                  ? flags[i]
                                  : static_cast<std::uint8_t>(src_port[i]);
    tags[i] = lut[base[p] + byte];
  }
}

void classify_batch(net::FlowBatch& batch, const TaxonomyOptions& options) {
  classify_batch(batch, options, batch.class_tag);
  batch.tag_recipe = tag_recipe_for(options);
}

}  // namespace iotscope::core
