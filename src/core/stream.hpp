// The streaming study engine — continuous watermarked ingestion of a
// live telescope store (ROADMAP item: the daemon the batch pipeline
// grows into). Where run_study synthesizes and analyzes one closed
// dataset, StreamingStudy follows a FlowTupleStore while a capture
// process is still rotating hourly files into it, and keeps a current
// report available the whole time:
//
//  * Watermark-ordered admission. Hours are admitted in interval order
//    as their files appear (the store's atomic rename publication means
//    a visible file is a complete hour). The watermark is one past the
//    highest admitted interval; an hour that surfaces below it arrived
//    after the merged reduction already moved past its slot, so it is
//    dropped and counted (`stream.late_hours`) rather than admitted out
//    of order — exactly the late-data discipline of a streaming
//    dataflow watermark.
//
//  * Incremental folding. Each admitted hour runs the pipeline's normal
//    sharded observe(); because every accumulated quantity merges with
//    commutative-exact operations (see core/pipeline.hpp), the running
//    state after hour N is byte-equivalent to a batch run over hours
//    0..N — the stream pays no precision or determinism tax.
//
//  * Periodic immutable snapshots. Every `snapshot_every` admitted
//    hours the engine builds a full Report via the pipeline's const
//    snapshot() reduction and publishes it — stamped with a
//    monotonically increasing epoch — through an atomic shared_ptr:
//    readers on other threads (the serve/ query workers) load the
//    pointer lock-free and then read an immutable object at leisure
//    while ingestion continues. The final snapshot equals finalize()'s
//    batch report byte for byte.
//
//  * Corrupt-hour quarantine. A published hour whose bytes fail to
//    decode (torn .iftc block, truncated records, hostile header — any
//    util::IoError) must not kill a 24/7 daemon: the hour is skipped,
//    counted (`stream.corrupt_hours`), logged once, and the watermark
//    advances past it — folding nothing is byte-equivalent to the hour
//    never having existed, so the stream stays byte-identical to a
//    batch run over the surviving hours.
//
//  * Bounded memory. Cold unknown-source first-seen state (the one
//    per-source map that grows with the source population, not the
//    inventory) is evicted to a frozen archive once idle for
//    `evict_after_hours` behind the watermark, counted in
//    `stream.evicted`. Eviction is invisible in report bytes — frozen
//    partials fold back commutative-exactly at snapshot/finalize.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "inventory/database.hpp"
#include "obs/metrics.hpp"
#include "telescope/store.hpp"

namespace iotscope::core {

/// One published snapshot: an immutable Report stamped with the epoch it
/// was published under. Epochs are assigned by the publishing study and
/// increase by one per publication (periodic snapshot, explicit
/// publish_snapshot(), or finalize()), so a consumer that caches derived
/// artifacts — the serve/ query layer keys rendered responses on
/// (epoch, query) — invalidates naturally when a new snapshot lands.
struct PublishedReport {
  std::uint64_t epoch = 0;
  Report report;
};

/// Streaming-engine knobs (pipeline knobs live in PipelineOptions).
struct StreamOptions {
  /// Publish an immutable snapshot every N admitted hours; 0 publishes
  /// no periodic snapshots (explicit publish_snapshot()/finalize() only).
  int snapshot_every = 24;
  /// Freeze unknown-source profiles whose last activity is at least this
  /// many hours behind the watermark; 0 never evicts.
  int evict_after_hours = 6;
  /// How long follow() sleeps between store polls that found nothing.
  std::chrono::milliseconds poll_interval{5};
};

/// Streaming counters, all cumulative over the engine's lifetime.
struct StreamStats {
  /// Hours accepted at/above the watermark — including quarantined
  /// corrupt hours, so snapshot cadence and drain predicates behave the
  /// same whether an hour decoded or not.
  std::uint64_t hours_admitted = 0;
  std::uint64_t hours_late = 0;         ///< below-watermark, dropped
  /// Admitted hours whose file failed to decode (util::IoError: torn
  /// .iftc, truncated records, hostile header). The hour is skipped and
  /// the watermark advances past it; nothing of it is folded.
  std::uint64_t hours_corrupt = 0;
  std::uint64_t profiles_evicted = 0;   ///< hot -> frozen moves
  std::uint64_t snapshots_published = 0;  ///< periodic + explicit
};

/// Follows a FlowTupleStore as hourly files rotate in, feeding an
/// AnalysisPipeline incrementally and publishing point-in-time reports.
///
/// Threading contract: one ingest thread owns poll_once()/follow()/
/// publish_snapshot()/finalize(); latest_snapshot() and watermark() may
/// be called concurrently from any thread. stats() is ingest-thread (or
/// after the ingest thread is done).
class StreamingStudy {
 public:
  /// The database and store must outlive the study.
  StreamingStudy(const inventory::IoTDeviceDatabase& db,
                 const telescope::FlowTupleStore& store,
                 PipelineOptions pipeline_options = {},
                 StreamOptions options = {});

  StreamingStudy(const StreamingStudy&) = delete;
  StreamingStudy& operator=(const StreamingStudy&) = delete;

  /// One rotation-watcher poll: admits every newly appeared hour at or
  /// above the watermark (ascending), drops newly appeared hours below
  /// it as late. Returns how many hours were admitted.
  std::size_t poll_once();

  /// Polls until a poll that found nothing coincides with should_stop()
  /// returning true. The predicate is only consulted when the store is
  /// drained, so a stop request never strands already-published hours.
  void follow(const std::function<bool()>& should_stop);

  /// Builds a point-in-time report over everything admitted so far and
  /// publishes it as the latest snapshot. Ingest-thread only.
  std::shared_ptr<const Report> publish_snapshot();

  /// Most recently published snapshot (null before the first one).
  /// Lock-free and safe from any thread — publication is an atomic
  /// shared_ptr store, so a server worker hammering this during
  /// follow() never blocks ingest (and never races it: the returned
  /// report is immutable). The pointer aliases the PublishedReport
  /// that owns it, so it stays valid for as long as the caller holds it.
  std::shared_ptr<const Report> latest_snapshot() const;

  /// The same snapshot together with its epoch stamp, as one consistent
  /// load (epoch and report travel in a single atomic pointer — a reader
  /// can never observe a new report under an old epoch). Null before the
  /// first publication. Lock-free, any thread.
  std::shared_ptr<const PublishedReport> latest_published() const;

  /// Epoch of the latest published snapshot (0 before the first one).
  /// Lock-free, any thread.
  std::uint64_t epoch() const noexcept;

  /// Finalizes the pipeline and publishes the result as the latest
  /// snapshot. Byte-identical to a batch run over the same hours. The
  /// study must not be polled afterwards.
  Report finalize();

  /// Next interval the stream will admit (one past the highest admitted;
  /// 0 before the first hour). Safe from any thread.
  int watermark() const noexcept {
    return watermark_.load(std::memory_order_acquire);
  }

  const StreamStats& stats() const noexcept { return stats_; }
  const AnalysisPipeline& pipeline() const noexcept { return pipeline_; }

 private:
  void admit(const net::FlowBatch& batch);
  /// Graph-mode after-hook: runs on a scheduler lane inside the hour's
  /// fan-in (fence-serialized — at most one instance at a time, hours in
  /// submission order, with every hour <= this one fully folded and no
  /// later observe task running), so the watermark publication, idle
  /// eviction, and periodic snapshot are exactly as safe here as on the
  /// ingest thread in admit().
  void hour_folded(const net::FlowBatch& batch, bool ok, bool snapshot_due);
  /// Records a quarantined hour: bumps hours_corrupt and the
  /// stream.corrupt_hours counter, logs the first occurrence. Called on
  /// the ingest thread (sync modes) or from the fence-serialized
  /// after-hook (graph mode) — never concurrently with itself.
  void note_corrupt_hour(int interval, const std::string& message);
  /// Whether the hour just counted into hours_admitted lands on the
  /// periodic snapshot cadence.
  bool snapshot_due_now() const;

  const telescope::FlowTupleStore* store_;
  StreamOptions options_;
  AnalysisPipeline pipeline_;
  telescope::RotationWatcher watcher_;
  StreamStats stats_;
  std::atomic<int> watermark_{0};
  /// One past the highest *submitted* interval — the ingest thread's own
  /// late-drop frontier. Equal to watermark() in the synchronous modes;
  /// under ShardScheduler::Graph it leads the watermark by the in-flight
  /// hours (submission happens at poll time, the watermark only moves
  /// when the hour's fan-in completes), and late-drop decisions must use
  /// this frontier: an hour below it is already in the task graph even
  /// if not yet folded.
  int admit_frontier_ = 0;
  bool warned_late_ = false;
  bool warned_corrupt_ = false;

  /// Publication slot. A plain shared_ptr store here raced the server's
  /// worker-thread readers (shared_ptr copy vs store is a data race on
  /// the control block pointer); the atomic specialization makes
  /// publish-and-read lock-free on both sides.
  std::atomic<std::shared_ptr<const PublishedReport>> latest_;

  // Observability handles, resolved once (registry lookups are mutexed).
  obs::Gauge& watermark_gauge_;  ///< stream.watermark (display only;
                                 ///< watermark() reads the atomic above)
  obs::Stage& snapshot_stage_;   ///< stream.snapshot — build+publish time
  obs::Stage& admit_stage_;      ///< stream.admit — per-hour observe time
  obs::Stage& decode_stage_;     ///< store.decode — same stage the batch
                                 ///< read path times, for comparability
  obs::Counter& hours_counter_;  ///< stream.hours
  obs::Counter& late_counter_;   ///< stream.late_hours
  obs::Counter& corrupt_counter_;  ///< stream.corrupt_hours
  obs::Counter& evicted_counter_;  ///< stream.evicted
};

}  // namespace iotscope::core
