// The analysis report: every quantity the paper's evaluation section
// derives from the darknet/inventory correlation, in one structured
// result. Populated by AnalysisPipeline; consumed by the bench harness
// (one binary per table/figure), the examples, and the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/stats.hpp"
#include "analysis/timeseries.hpp"
#include "inventory/database.hpp"
#include "net/protocol.hpp"

namespace iotscope::core {

/// Upper bound on named scan services tracked per device (spec rows + the
/// residual bucket; currently 15).
inline constexpr std::size_t kMaxScanServices = 16;

/// Per-device traffic ledger accumulated by the correlation engine.
struct DeviceTraffic {
  std::uint32_t device = 0;  ///< index into the inventory
  int first_interval = -1;   ///< hour of first observed packet
  int last_interval = -1;    ///< hour of last observed packet
  std::uint64_t packets = 0;
  /// TCP scanning packets per named service (row-aligned with the scan
  /// service table); drives campaign clustering.
  std::array<std::uint64_t, kMaxScanServices> scan_by_service{};

  // Per-class packet counts (the classifier's taxonomy).
  std::uint64_t tcp_scan = 0;
  std::uint64_t tcp_backscatter = 0;
  std::uint64_t icmp_scan = 0;
  std::uint64_t icmp_backscatter = 0;
  std::uint64_t udp = 0;
  std::uint64_t tcp_other = 0;
  std::uint64_t icmp_other = 0;

  std::uint8_t days_active_mask = 0;  ///< bit d set if active on day d

  std::uint64_t backscatter() const noexcept {
    return tcp_backscatter + icmp_backscatter;
  }
  std::uint64_t tcp() const noexcept {
    return tcp_scan + tcp_backscatter + tcp_other;
  }
  std::uint64_t icmp() const noexcept {
    return icmp_scan + icmp_backscatter + icmp_other;
  }
  int days_active() const noexcept { return __builtin_popcount(days_active_mask); }

  /// Index of the service receiving most of this device's scan packets;
  /// -1 if the device never scanned.
  int dominant_scan_service() const noexcept {
    int best = -1;
    std::uint64_t best_packets = 0;
    for (std::size_t s = 0; s < scan_by_service.size(); ++s) {
      if (scan_by_service[s] > best_packets) {
        best_packets = scan_by_service[s];
        best = static_cast<int>(s);
      }
    }
    return best;
  }
};

/// Behavioural profile of a non-inventory ("unknown") source that emitted
/// sustained traffic — the raw material for the fuzzy IoT fingerprinting
/// of Discussion §VI. Only sources above a per-hour activity floor are
/// profiled, so one-packet background radiation never accumulates here.
struct UnknownSourceProfile {
  net::Ipv4Address ip;
  std::uint64_t packets = 0;
  std::uint64_t tcp_syn_packets = 0;
  std::uint64_t iot_port_packets = 0;  ///< toward IoT-associated ports
  int first_interval = -1;
  int last_interval = -1;
};

/// A (packets, distinct destination IPs, distinct destination ports)
/// triple of hourly series — the axes of Figures 5 and 9.
struct TrafficSeries {
  analysis::HourlySeries packets;
  analysis::HourlySeries dst_ips;
  analysis::HourlySeries dst_ports;
};

/// Per-realm split of any accumulator.
template <typename T>
struct ByRealm {
  T consumer;
  T cps;

  T& of(bool is_consumer) noexcept { return is_consumer ? consumer : cps; }
  const T& of(bool is_consumer) const noexcept {
    return is_consumer ? consumer : cps;
  }
};

/// One row of the scanned-services table (Table V).
struct ScanServiceRow {
  std::string name;
  std::uint64_t packets = 0;
  std::uint64_t consumer_packets = 0;
  std::size_t consumer_devices = 0;
  std::size_t cps_devices = 0;
};

/// One row of the UDP port table (Table IV).
struct UdpPortRow {
  net::Port port = 0;
  std::uint64_t packets = 0;
  std::size_t devices = 0;
};

/// An inferred DoS attack interval (Section IV-B1's narrative).
struct DosSpike {
  int interval = 0;
  double backscatter_packets = 0;
  std::uint32_t top_victim = 0;   ///< inventory index of the dominant victim
  double top_victim_share = 0.0;  ///< its share of the interval's packets
};

/// The full analysis result.
struct Report {
  // ---- correlation / inference (Section III) ----
  std::uint64_t total_packets = 0;       ///< packets attributed to IoT devices
  std::uint64_t unattributed_packets = 0;  ///< darknet packets from unknown IPs
  std::vector<DeviceTraffic> devices;    ///< one entry per discovered device
  std::unordered_map<std::uint32_t, std::uint32_t> device_index;
  std::size_t discovered_consumer = 0;
  std::size_t discovered_cps = 0;
  /// Cumulative devices discovered by end of each day, per realm (Fig 2).
  std::array<std::size_t, 6> cumulative_by_day_consumer{};
  std::array<std::size_t, 6> cumulative_by_day_cps{};
  /// Devices active per day (any traffic), total over days / 6 gives the
  /// paper's "10,889 unsolicited IoT devices daily".
  std::array<std::size_t, 6> active_by_day_consumer{};
  std::array<std::size_t, 6> active_by_day_cps{};

  // ---- protocol mix (Fig 4) ----
  ByRealm<std::uint64_t> tcp_packets{};
  ByRealm<std::uint64_t> udp_packets{};
  ByRealm<std::uint64_t> icmp_packets{};

  // ---- UDP characterization (Fig 5, Table IV) ----
  ByRealm<TrafficSeries> udp_series;
  std::vector<UdpPortRow> udp_top_ports;  ///< descending by packets (top 32)
  std::uint64_t udp_total_packets = 0;
  std::size_t udp_device_count = 0;
  std::size_t udp_consumer_devices = 0;
  std::size_t udp_distinct_ports = 0;
  /// Pearson correlation of hourly (#dst ports, #dst IPs) for consumer
  /// devices (the paper reports r = 0.95, p < 0.0001).
  analysis::PearsonResult udp_consumer_port_ip_correlation;

  // ---- backscatter / DoS (Figs 6-8) ----
  ByRealm<analysis::HourlySeries> backscatter_series;
  std::size_t dos_victims = 0;
  std::size_t dos_victims_cps = 0;
  std::uint64_t backscatter_total = 0;
  ByRealm<std::uint64_t> backscatter_packets{};
  std::vector<DosSpike> dos_spikes;  ///< dominant-victim attack intervals
  /// Mann–Whitney U over hourly backscatter (CPS vs consumer).
  analysis::MannWhitneyResult backscatter_mwu;

  // ---- TCP scanning (Fig 9, Table V, Fig 10) ----
  ByRealm<TrafficSeries> scan_series;
  std::uint64_t tcp_scan_total = 0;
  std::size_t scanner_devices = 0;
  std::size_t scanner_consumer_devices = 0;
  std::vector<ScanServiceRow> scan_services;  ///< ordered as in the spec
  /// Hourly packets per named service (row-aligned with scan_services).
  std::vector<analysis::HourlySeries> scan_service_series;
  /// Pearson correlation of hourly (#scanners, packets) — paper finds none.
  analysis::PearsonResult scan_device_packet_correlation;

  // ---- unknown-source profiles (fingerprinting substrate) ----
  std::vector<UnknownSourceProfile> unknown_sources;

  // ---- ICMP scanning ----
  std::uint64_t icmp_scan_total = 0;
  std::size_t icmp_scanner_devices = 0;
  std::uint64_t icmp_scan_consumer_packets = 0;
  std::size_t icmp_scanner_consumer_devices = 0;

  // ---- helpers ----
  const DeviceTraffic* traffic_for(std::uint32_t device) const noexcept {
    const auto it = device_index.find(device);
    return it == device_index.end() ? nullptr : &devices[it->second];
  }

  std::size_t discovered_total() const noexcept {
    return discovered_consumer + discovered_cps;
  }
};

}  // namespace iotscope::core
